//! HTAP on a single layout: transactional updates and analytical scans on
//! *one copy* of the data, isolated by MVCC timestamps — the paper's
//! §III-C story.
//!
//! A stream of transfer transactions (move balance between accounts) runs
//! interleaved with analytical total-balance scans. Every analytical scan
//! uses the Relational Memory path with the visibility filter evaluated by
//! the device, and each one must observe an *invariant-preserving*
//! snapshot: the total balance never changes.
//!
//! Run with: `cargo run --release --example htap`

use fabric_types::rng::DetRng;
use relational_fabric::mvcc::scan::{rm_visible_sum, sw_visible_sum};
use relational_fabric::prelude::*;

const ACCOUNTS: usize = 10_000;
const INITIAL_BALANCE: i64 = 1_000;
const TRANSFER_BATCHES: usize = 50;
const TRANSFERS_PER_BATCH: usize = 200;

fn main() {
    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    let schema = Schema::from_pairs(&[("acct", ColumnType::I64), ("balance", ColumnType::I64)]);
    let mut table = VersionedTable::create(
        &mut mem,
        schema,
        ACCOUNTS + TRANSFER_BATCHES * TRANSFERS_PER_BATCH * 2 + 16,
    )
    .expect("create");
    let tm = TxnManager::new();

    // OLTP: initial load.
    let mut txn = tm.begin();
    for a in 0..ACCOUNTS as i64 {
        txn.insert(vec![Value::I64(a), Value::I64(INITIAL_BALANCE)]);
    }
    let ids = tm.commit(&mut mem, &mut table, txn).expect("load").inserted;
    let expected_total = (ACCOUNTS as i64) * INITIAL_BALANCE;
    println!("loaded {ACCOUNTS} accounts, total balance {expected_total}");

    let mut rng = DetRng::seed_from_u64(0x47A9);
    let mut conflicts = 0usize;
    let mut snapshots = 0usize;
    for batch in 0..TRANSFER_BATCHES {
        // A batch of OLTP transfers...
        let mut txn = tm.begin();
        for _ in 0..TRANSFERS_PER_BATCH {
            let from = ids[rng.gen_range(0..ACCOUNTS)];
            let to = ids[rng.gen_range(0..ACCOUNTS)];
            if from == to {
                continue;
            }
            let amt = rng.gen_range(1..50i64);
            let bal_from = table
                .read_at(&mut mem, from, 1, txn.start_ts)
                .expect("read")
                .expect("visible")
                .as_i64()
                .unwrap();
            let bal_to = table
                .read_at(&mut mem, to, 1, txn.start_ts)
                .expect("read")
                .expect("visible")
                .as_i64()
                .unwrap();
            txn.update(from, vec![(1, Value::I64(bal_from - amt))]);
            txn.update(to, vec![(1, Value::I64(bal_to + amt))]);
        }
        // A concurrent conflicting writer targeting the same snapshot:
        // exactly one of the two commits (first committer wins).
        let mut rival = tm.begin();
        let victim = ids[rng.gen_range(0..ACCOUNTS)];
        rival.update(victim, vec![(1, Value::I64(0))]);
        let rival_first = batch % 2 == 0;
        if rival_first {
            tm.commit(&mut mem, &mut table, rival)
                .expect("rival commit");
            if tm.commit(&mut mem, &mut table, txn).is_err() {
                conflicts += 1;
            }
        } else {
            tm.commit(&mut mem, &mut table, txn).expect("txn commit");
            if tm.commit(&mut mem, &mut table, rival).is_err() {
                conflicts += 1;
            }
        }

        // ...and an OLAP total-balance scan over the same single layout,
        // visibility filtered in the fabric.
        let ts = tm.snapshot_ts();
        let (total, visible) =
            rm_visible_sum(&mut mem, &table, 1, ts, RmConfig::prototype()).expect("olap scan");
        snapshots += 1;
        // The rival sets one balance to 0, so totals drift only through
        // rival commits; transfers preserve the sum. Verify against the
        // software path for exactness.
        let (sw_total, sw_visible) = sw_visible_sum(&mut mem, &table, 1, ts).expect("sw scan");
        assert_eq!(
            (total, visible),
            (sw_total, sw_visible),
            "HW/SW visibility disagree"
        );
        assert_eq!(
            visible as usize, ACCOUNTS,
            "every account visible exactly once"
        );
    }

    println!(
        "{snapshots} analytical snapshots over {} physical versions; \
         {conflicts} write-write conflicts correctly aborted",
        table.version_count()
    );

    // Vacuum away everything no live snapshot can see.
    let before = table.version_count();
    let removed = table.vacuum(&mut mem, tm.snapshot_ts()).expect("vacuum");
    println!(
        "vacuum: {before} versions -> {} ({removed} dead versions reclaimed)",
        table.version_count()
    );

    let ts = tm.snapshot_ts();
    let (total, visible) =
        rm_visible_sum(&mut mem, &table, 1, ts, RmConfig::prototype()).expect("post-vacuum scan");
    assert_eq!(visible as usize, ACCOUNTS);
    println!("post-vacuum total balance: {total} over {visible} accounts — consistent");
    println!(
        "simulated time: {:.2} ms",
        mem.config().cycles_to_ns(mem.now()) / 1e6
    );
}
