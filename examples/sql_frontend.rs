//! The simplified software stack of §III-B: SQL in, layout-aware plan out.
//!
//! The optimizer does not search a space of physical designs — it prices
//! the three access paths (Volcano row scan, column-at-a-time, Relational
//! Memory) and constructs the fastest one. The example runs a small query
//! mix and prints which path each query took and what the alternatives
//! would have cost.
//!
//! Run with: `cargo run --release --example sql_frontend`

use relational_fabric::prelude::*;

fn main() {
    let mut engine = Engine::new(SimConfig::zynq_a53());

    // An orders table in both layouts, so every path is available.
    let schema = Schema::from_pairs(&[
        ("o_id", ColumnType::I64),
        ("o_region", ColumnType::FixedStr(1)),
        ("o_qty", ColumnType::F64),
        ("o_price", ColumnType::F64),
        ("o_tax", ColumnType::F64),
        ("o_disc", ColumnType::F64),
        ("o_ship", ColumnType::Date),
        ("o_flag", ColumnType::I32),
    ]);
    let rows = 200_000;
    let mut rt = RowTable::create(engine.mem(), schema.clone(), rows).expect("rows");
    let mut ct = ColTable::create(engine.mem(), schema, rows).expect("cols");
    println!("loading {rows} orders into both layouts...");
    for i in 0..rows as i64 {
        let row = vec![
            Value::I64(i),
            Value::Str(["N", "S", "E", "W"][(i % 4) as usize].into()),
            Value::F64((i % 40 + 1) as f64),
            Value::F64((i % 9000) as f64 + 100.0),
            Value::F64((i % 8) as f64 / 100.0),
            Value::F64((i % 10) as f64 / 100.0),
            Value::Date(9000 + (i % 1000) as u32),
            Value::I32((i % 3) as i32),
        ];
        rt.load(engine.mem(), &row).expect("load");
        ct.load(engine.mem(), &row).expect("load");
    }
    engine.register("orders", rt, ct);

    let queries = [
        // Narrow aggregate: a single column — columnar territory.
        "SELECT sum(o_qty) FROM orders",
        // Wide grouped aggregation — fabric territory.
        "SELECT o_region, count(*), sum(o_price * (1 - o_disc)), avg(o_tax) \
         FROM orders GROUP BY o_region",
        // Selective wide projection.
        "SELECT o_id, o_price, o_qty, o_tax, o_disc \
         FROM orders WHERE o_ship >= DATE '1994-09-01' AND o_flag = 1",
        // Point-ish lookup.
        "SELECT o_price FROM orders WHERE o_id = 123456",
    ];

    for q in queries {
        let out = engine.session().run(q).expect("query");
        println!("\nSQL> {q}");
        println!(
            "  chose {:>3}  ({:.3} ms simulated; estimates: ROW {:.2} ms, COL {}, RM {:.2} ms)",
            out.path.to_string(),
            out.ns / 1e6,
            out.cost.row_ns / 1e6,
            out.cost
                .col_ns
                .map(|c| format!("{:.2} ms", c / 1e6))
                .unwrap_or_else(|| "n/a".into()),
            out.cost.rm_ns / 1e6,
        );
        for row in out.rows.iter().take(4) {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            println!("  | {}", cells.join(", "));
        }
        if out.rows.len() > 4 {
            println!("  | ... {} rows total", out.rows.len());
        }
    }

    println!(
        "\nNote: without the columnar copy, a fabric-native deployment keeps \
         only the row layout — drop the COL registration and every query \
         still runs, via ROW or RM."
    );
}
