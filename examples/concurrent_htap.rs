//! Concurrent HTAP: real OS threads sharing one database — an OLTP writer
//! and two OLAP readers — coordinated only by MVCC snapshots.
//!
//! The simulated machine is a shared resource (one `MemoryHierarchy`), so
//! threads take a `std::sync::Mutex` for each operation; the *logical*
//! isolation, however, comes entirely from the §III-C timestamps: readers
//! never block writers, and every analytical answer corresponds to a
//! consistent commit point.
//!
//! Run with: `cargo run --release --example concurrent_htap`

use fabric_types::rng::DetRng;
use relational_fabric::mvcc::scan::rm_visible_sum;
use relational_fabric::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

const ACCOUNTS: usize = 5_000;
const BATCHES: usize = 40;
const UPDATES_PER_BATCH: usize = 100;

struct Db {
    mem: MemoryHierarchy,
    table: VersionedTable,
}

fn main() {
    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    let schema = Schema::from_pairs(&[("acct", ColumnType::I64), ("balance", ColumnType::I64)]);
    let mut table = VersionedTable::create(
        &mut mem,
        schema,
        ACCOUNTS + BATCHES * UPDATES_PER_BATCH + 16,
    )
    .expect("create");
    let tm = TxnManager::new();

    let mut txn = tm.begin();
    for a in 0..ACCOUNTS as i64 {
        txn.insert(vec![Value::I64(a), Value::I64(1_000)]);
    }
    let ids = tm.commit(&mut mem, &mut table, txn).expect("load").inserted;
    println!("loaded {ACCOUNTS} accounts from the main thread");

    let db = Mutex::new(Db { mem, table });
    let writer_done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // OLTP writer: balance-preserving transfers.
        let writer = scope.spawn(|| {
            let mut rng = DetRng::seed_from_u64(0xC0FFEE);
            let mut committed = 0usize;
            let mut conflicts = 0usize;
            for _ in 0..BATCHES {
                let mut txn = tm.begin();
                {
                    let mut db = db.lock().expect("db mutex");
                    let Db { mem, table } = &mut *db;
                    // Buffered transactions have no read-your-writes, so
                    // accumulate this batch's deltas locally and emit one
                    // update per touched account.
                    let mut deltas: std::collections::HashMap<usize, i64> =
                        std::collections::HashMap::new();
                    for _ in 0..UPDATES_PER_BATCH / 2 {
                        let from = ids[rng.gen_range(0..ACCOUNTS)];
                        let to = ids[rng.gen_range(0..ACCOUNTS)];
                        if from == to {
                            continue;
                        }
                        let amt = rng.gen_range(1..20i64);
                        *deltas.entry(from).or_insert(0) -= amt;
                        *deltas.entry(to).or_insert(0) += amt;
                    }
                    for (l, delta) in deltas {
                        let bal = table
                            .read_at(mem, l, 1, txn.start_ts)
                            .unwrap()
                            .unwrap()
                            .as_i64()
                            .unwrap();
                        txn.update(l, vec![(1, Value::I64(bal + delta))]);
                    }
                }
                let mut db = db.lock().expect("db mutex");
                let Db { mem, table } = &mut *db;
                match tm.commit(mem, table, txn) {
                    Ok(_) => committed += 1,
                    Err(_) => conflicts += 1,
                }
            }
            writer_done.store(true, Ordering::SeqCst);
            (committed, conflicts)
        });

        // Two OLAP readers: the invariant (total balance) must hold in
        // every snapshot, no matter how the threads interleave.
        let mut readers = Vec::new();
        for reader_id in 0..2 {
            let writer_done = &writer_done;
            let db = &db;
            let tm = &tm;
            readers.push(scope.spawn(move || {
                let expected = (ACCOUNTS as i64) * 1_000;
                let mut scans = 0usize;
                loop {
                    {
                        let mut db = db.lock().expect("db mutex");
                        let Db { mem, table } = &mut *db;
                        let ts = tm.snapshot_ts();
                        let (total, n) =
                            rm_visible_sum(mem, table, 1, ts, RmConfig::prototype()).unwrap();
                        assert_eq!(n as usize, ACCOUNTS, "reader {reader_id}: lost accounts");
                        assert_eq!(
                            total as i64, expected,
                            "reader {reader_id}: transfers must preserve the total"
                        );
                        scans += 1;
                    }
                    if writer_done.load(Ordering::SeqCst) {
                        break;
                    }
                    std::thread::yield_now();
                }
                scans
            }));
        }

        let (committed, conflicts) = writer.join().unwrap();
        let scans: usize = readers.into_iter().map(|r| r.join().unwrap()).sum();
        println!(
            "writer committed {committed} batches ({conflicts} conflicts); \
             readers completed {scans} consistent snapshot scans"
        );
    });

    let db = db.into_inner().expect("db mutex");
    println!(
        "final: {} physical versions for {} logical rows; every snapshot satisfied \
         the balance invariant",
        db.table.version_count(),
        db.table.logical_len(),
    );
}
