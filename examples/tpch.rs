//! TPC-H Q1 and Q6 across the three engines — a miniature of the paper's
//! Fig. 7 runnable in a few seconds.
//!
//! Run with: `cargo run --release --example tpch [-- target_mib]`

use relational_fabric::prelude::*;
use relational_fabric::workload::{queries, Lineitem};

fn main() {
    let target_mib: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let rows = Lineitem::rows_for_q6_target(target_mib);
    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    println!(
        "generating lineitem: {rows} rows (~{} MiB table, {} MiB Q6 target columns)...",
        rows * Lineitem::row_width() / (1024 * 1024),
        target_mib
    );
    let li = Lineitem::generate(&mut mem, rows, 7).expect("generate");

    println!("\nTPC-H Q6 (movement-bound; the fabric's sweet spot):");
    let row = queries::q6_row(&mut mem, &li).expect("row");
    let col = queries::q6_col(&mut mem, &li).expect("col");
    let rm = queries::q6_rm(&mut mem, &li, RmConfig::prototype()).expect("rm");
    let push = queries::q6_rm_pushdown(&mut mem, &li, RmConfig::prototype()).expect("push");
    println!(
        "  ROW          {:9.3} ms   revenue = {:.2}",
        row.ns / 1e6,
        row.checksum
    );
    println!(
        "  COL          {:9.3} ms   revenue = {:.2}",
        col.ns / 1e6,
        col.checksum
    );
    println!(
        "  RM           {:9.3} ms   revenue = {:.2}",
        rm.ns / 1e6,
        rm.checksum
    );
    println!(
        "  RM+pushdown  {:9.3} ms   revenue = {:.2}",
        push.ns / 1e6,
        push.checksum
    );
    println!(
        "  RM speedup: {:.2}x vs ROW, {:.2}x vs COL",
        row.ns / rm.ns,
        col.ns / rm.ns
    );

    println!("\nTPC-H Q1 (compute-bound; layouts matter less):");
    let row = queries::q1_row(&mut mem, &li).expect("row");
    let col = queries::q1_col(&mut mem, &li).expect("col");
    let rm = queries::q1_rm(&mut mem, &li, RmConfig::prototype()).expect("rm");
    println!("  ROW          {:9.3} ms", row.ns / 1e6);
    println!("  COL          {:9.3} ms", col.ns / 1e6);
    println!("  RM           {:9.3} ms", rm.ns / 1e6);
    println!(
        "  RM speedup: {:.2}x vs ROW, {:.2}x vs COL",
        row.ns / rm.ns,
        col.ns / rm.ns
    );
}
