//! Quickstart: the paper's Fig. 3 as runnable code.
//!
//! A row-oriented table is created and filled; an *ephemeral variable* is
//! configured for the column group `{key, num_fld1, num_fld4}`; touching it
//! sets the Relational Memory machinery in motion and the query loop runs
//! over densely packed data that never existed in memory.
//!
//! Run with: `cargo run --release --example quickstart`

use relational_fabric::prelude::*;

fn main() {
    // The simulated platform of the paper (§V): Cortex-A53-class cores,
    // 32 KB L1, 1 MB L2, and an RM engine at 100 MHz with a 2 MB buffer.
    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());

    // struct row { long key; char text_fld1[12]; char text_fld2[16];
    //              long num_fld1..num_fld4; }   — paper Fig. 3.
    let schema = Schema::from_pairs(&[
        ("key", ColumnType::I64),
        ("text_fld1", ColumnType::FixedStr(12)),
        ("text_fld2", ColumnType::FixedStr(16)),
        ("num_fld1", ColumnType::I64),
        ("num_fld2", ColumnType::I64),
        ("num_fld3", ColumnType::I64),
        ("num_fld4", ColumnType::I64),
    ]);
    let rows = 100_000;
    let mut table = RowTable::create(&mut mem, schema, rows).expect("create table");
    println!(
        "loading {rows} rows ({}-byte rows)...",
        table.layout().row_width()
    );
    for i in 0..rows as i64 {
        table
            .load(
                &mut mem,
                &[
                    Value::I64(i),
                    Value::Str(format!("t{}", i % 100)),
                    Value::Str("padding-data".into()),
                    Value::I64(i % 97),
                    Value::I64(i % 11),
                    Value::I64(i % 7),
                    Value::I64(i % 13),
                ],
            )
            .expect("load row");
    }

    // SELECT SUM(num_fld1 * num_fld4) FROM the_table WHERE key > 10
    //
    // cg = configure(the_table, QUERY);     // paper Fig. 3, line 25
    let geometry = table
        .geometry_by_name(&["key", "num_fld1", "num_fld4"])
        .expect("geometry");
    println!(
        "ephemeral column group: {} bytes/row instead of {} bytes/row",
        geometry.output_row_width(),
        table.layout().row_width()
    );
    let t0 = mem.now();
    let mut cg =
        EphemeralColumns::configure(&mut mem, RmConfig::prototype(), geometry).expect("configure");

    // for (i...) if (cg[i].key > 10) sum += cg[i].num_fld1 * cg[i].num_fld4;
    let mut sum = 0i64;
    while let Some(batch) = cg.next_batch(&mut mem) {
        for r in 0..batch.len() {
            if batch.i64_at(r, 0) > 10 {
                sum += batch.i64_at(r, 1) * batch.i64_at(r, 2);
            }
        }
    }
    let ns = mem.ns_since(t0);

    let stats = cg.stats();
    println!("sum = {sum}");
    println!("simulated time: {:.2} ms", ns / 1e6);
    println!(
        "device: scanned {} rows, fetched {} source lines, delivered {} packed lines",
        stats.rows_scanned, stats.source_lines, stats.output_lines
    );
    println!(
        "gather amplification: {:.1}x (sparse geometry -> dense delivery)",
        stats.gather_amplification()
    );
}
