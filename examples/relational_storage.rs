//! Relational Storage (§IV-D): the fabric in a computational SSD.
//!
//! The same row-oriented table lives on simulated flash; the example
//! contrasts shipping whole pages to the host against letting the
//! controller project, select, aggregate, and decompress near the data.
//!
//! Run with: `cargo run --release --example relational_storage`

use relational_fabric::compress;
use relational_fabric::prelude::*;
use relational_fabric::rs::CompressedTable;
use relational_fabric::types::{AggFunc, AggSpec, ColumnPredicate, FieldSlice, OutputMode};

fn main() {
    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    let mut dev = SsdDevice::new(RsConfig::smartssd(), &mem);

    // 300k rows of (id i64, region i32, amount i64, pad...) = 24-byte rows.
    let rows = 300_000usize;
    let mut bytes = Vec::with_capacity(rows * 24);
    for i in 0..rows {
        bytes.extend_from_slice(&(i as i64).to_le_bytes());
        bytes.extend_from_slice(&((i % 50) as i32).to_le_bytes());
        bytes.extend_from_slice(&(0u32).to_le_bytes()); // pad
        bytes.extend_from_slice(&((i % 997) as i64).to_le_bytes());
    }
    let table = dev.store_rows(&bytes, 24).expect("store");
    println!(
        "stored {rows} rows on flash: {} pages across {} channels",
        table.pages,
        dev.config().channels
    );

    let id = FieldSlice::new(0, 0, ColumnType::I64);
    let region = FieldSlice::new(1, 8, ColumnType::I32);
    let amount = FieldSlice::new(3, 16, ColumnType::I64);

    // Host path: everything over the link.
    let t0 = mem.now();
    let (_raw, host) = dev.fetch_raw(&mut mem, &table).expect("fetch_raw");
    println!(
        "\nhost path:      {:7.3} ms, shipped {:5.1} MiB (whole pages)",
        mem.ns_since(t0) / 1e6,
        host.bytes_shipped as f64 / (1024.0 * 1024.0)
    );

    // Near-data: SELECT id, amount WHERE region = 7.
    dev.reset_timing();
    let pred = Predicate::always_true().and(ColumnPredicate::new(region, CmpOp::Eq, Value::I32(7)));
    let t0 = mem.now();
    let (out, near) = dev
        .fetch_geometry(&mut mem, &table, vec![id, amount], pred.clone())
        .expect("fetch_geometry");
    println!(
        "near-data path: {:7.3} ms, shipped {:5.1} KiB ({} qualifying rows)",
        mem.ns_since(t0) / 1e6,
        near.bytes_shipped as f64 / 1024.0,
        out.len() / 16
    );

    // Near-data aggregation: only scalars cross the link.
    dev.reset_timing();
    let g = Geometry::packed(0, 24, table.rows, vec![amount])
        .with_predicate(pred)
        .with_mode(OutputMode::Aggregate(vec![
            AggSpec::count(),
            AggSpec::over(AggFunc::Sum, amount),
        ]));
    let t0 = mem.now();
    let (vals, agg) = dev
        .fetch_aggregate(&mut mem, &table, &g)
        .expect("fetch_aggregate");
    println!(
        "aggregation:    {:7.3} ms, shipped {} bytes: count = {}, sum = {}",
        mem.ns_since(t0) / 1e6,
        agg.bytes_shipped,
        vals[0],
        vals[1]
    );

    // On-the-fly decompression (the open question Q3 of §VII).
    let schema = Schema::from_pairs(&[("region", ColumnType::I32), ("amount", ColumnType::I64)]);
    let col_region: Vec<u8> = (0..rows)
        .flat_map(|i| ((i % 50) as i32).to_le_bytes())
        .collect();
    let col_amount: Vec<u8> = (0..rows)
        .flat_map(|i| ((i % 997) as i64).to_le_bytes())
        .collect();
    let ct = CompressedTable::store(&mut dev, schema, rows, vec![col_region, col_amount])
        .expect("compressed store");
    println!(
        "\ncompressed column store: {:.1}x dictionary compression",
        ct.original_bytes() as f64 / ct.compressed_bytes() as f64
    );
    dev.reset_timing();
    let t0 = mem.now();
    let (_, near) = ct
        .fetch_rows_decompressed(&mut dev, &mut mem, &[0, 1])
        .expect("near");
    let near_ms = mem.ns_since(t0) / 1e6;
    dev.reset_timing();
    let t0 = mem.now();
    let (_, host) = ct
        .fetch_rows_host_decode(&mut dev, &mut mem, &[0, 1])
        .expect("host");
    let host_ms = mem.ns_since(t0) / 1e6;
    println!(
        "device decompress -> rows: {near_ms:6.3} ms ({:.1} MiB shipped)",
        near.bytes_shipped as f64 / (1024.0 * 1024.0)
    );
    println!(
        "host decode of compressed: {host_ms:6.3} ms ({:.1} MiB shipped)",
        host.bytes_shipped as f64 / (1024.0 * 1024.0)
    );

    // The codec compatibility analysis (§III-D) on the amount column.
    let amounts: Vec<i64> = (0..rows as i64).map(|i| i % 997).collect();
    println!("\ncodec analysis of the amount column:");
    for r in compress::analyze_i64(&amounts).expect("analyze") {
        println!(
            "  {:10} ratio {:5.2}x  fabric-compatible: {}",
            r.name,
            r.ratio(),
            r.fabric_compatible()
        );
    }
}
