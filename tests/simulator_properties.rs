//! Property-based tests of the simulator substrate: the reproduction's
//! conclusions are only as good as the hierarchy model, so its invariants
//! get the same adversarial treatment as the data structures.

#![cfg(feature = "proptest")]

use fabric_sim::{MemoryHierarchy, SetAssocCache, SimConfig};
use proptest::prelude::*;

/// A shadow model of one LRU set: a vector of tags, MRU last.
#[derive(Default)]
struct ShadowSet {
    ways: Vec<u64>,
    assoc: usize,
}

impl ShadowSet {
    fn probe(&mut self, tag: u64) -> bool {
        if let Some(pos) = self.ways.iter().position(|&t| t == tag) {
            let t = self.ways.remove(pos);
            self.ways.push(t);
            true
        } else {
            false
        }
    }

    fn fill(&mut self, tag: u64) {
        if self.ways.contains(&tag) {
            return;
        }
        if self.ways.len() == self.assoc {
            self.ways.remove(0);
        }
        self.ways.push(tag);
    }
}

proptest! {
    /// The cache agrees with a straightforward LRU shadow model under any
    /// access sequence confined to one set.
    #[test]
    fn cache_matches_lru_shadow_model(ops in proptest::collection::vec((0u64..12, any::<bool>()), 1..300)) {
        // One set, 4 ways; lines 0..12 all map to set 0 of a 4x64-line,
        // single-set configuration.
        let mut cache = SetAssocCache::new(4 * 64, 4, 64);
        prop_assert_eq!(cache.num_sets(), 1);
        let mut shadow = ShadowSet { ways: Vec::new(), assoc: 4 };
        for (line, do_fill) in ops {
            let addr = line * 64;
            let hit = cache.probe(addr);
            let shadow_hit = shadow.probe(addr);
            prop_assert_eq!(hit, shadow_hit, "probe divergence on line {}", line);
            if !hit && do_fill {
                cache.fill(addr);
                shadow.fill(addr);
            }
        }
    }

    /// Simulated time is monotone and every read returns the bytes that
    /// were last written, regardless of the access pattern.
    #[test]
    fn hierarchy_time_monotone_and_data_correct(
        writes in proptest::collection::vec((0u64..64, any::<u8>()), 1..100)
    ) {
        let mut mem = MemoryHierarchy::new(SimConfig::tiny());
        let base = mem.alloc(64 * 64, 64).unwrap();
        let mut shadow = vec![0u8; 64 * 64];
        let mut last_now = mem.now();
        for (slot, byte) in writes {
            let addr = base + slot * 64;
            mem.write(addr, &[byte; 64]);
            shadow[(slot * 64) as usize..(slot * 64 + 64) as usize].fill(byte);
            prop_assert!(mem.now() >= last_now);
            last_now = mem.now();
        }
        for slot in 0..64u64 {
            let got = mem.read(base + slot * 64, 64).to_vec();
            prop_assert_eq!(&got[..], &shadow[(slot * 64) as usize..(slot * 64 + 64) as usize]);
        }
        prop_assert!(mem.now() > 0);
    }

    /// Gather reads and sequential reads of the same spans account the same
    /// bytes and leave the same cache contents (timing may differ — that is
    /// the point — but correctness must not).
    #[test]
    fn gather_and_serial_reads_agree_on_traffic(
        spans in proptest::collection::vec((0u64..256, 1usize..32), 1..20)
    ) {
        let build = || {
            let mut mem = MemoryHierarchy::new(SimConfig::tiny());
            let base = mem.alloc(64 * 64 * 8, 64).unwrap();
            (mem, base)
        };
        let parts: Vec<(u64, usize)> = spans
            .iter()
            .map(|&(off, len)| (off * 16, len))
            .collect();

        let (mut serial, base) = build();
        for &(off, len) in &parts {
            serial.touch_read(base + off, len);
        }
        let (mut gather, base2) = build();
        let abs: Vec<(u64, usize)> = parts.iter().map(|&(o, l)| (base2 + o, l)).collect();
        gather.touch_read_gather(&abs);

        let s = serial.stats();
        let g = gather.stats();
        prop_assert_eq!(s.bytes_read, g.bytes_read);
        prop_assert_eq!(s.line_accesses, g.line_accesses);
        // Gather may only be cheaper by overlapping misses, or dearer by
        // its small per-miss issue slot — never wildly different.
        let issue_slack = g.demand_misses * SimConfig::tiny().l1_hit_cycles;
        prop_assert!(
            gather.now() <= serial.now() + issue_slack,
            "gather {} vs serial {} (+{})",
            gather.now(),
            serial.now(),
            issue_slack
        );
    }

    /// Flushing the caches never changes data, only timing.
    #[test]
    fn flush_is_timing_only(values in proptest::collection::vec(any::<u8>(), 64..256)) {
        let mut mem = MemoryHierarchy::new(SimConfig::tiny());
        let base = mem.alloc(values.len(), 64).unwrap();
        mem.write_untimed(base, &values);
        let before = mem.read(base, values.len()).to_vec();
        mem.flush_caches();
        let after = mem.read(base, values.len()).to_vec();
        prop_assert_eq!(before.clone(), after);
        prop_assert_eq!(&before[..], &values[..]);
    }
}
