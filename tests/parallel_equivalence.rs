//! Morsel-driven parallelism, end to end: on every access path and every
//! core count, a query's answer is **bit-identical** to the 1-core run —
//! including f64 aggregates, whose fold shape is fixed by the
//! [`query::MORSEL_ROWS`] morsel grid, never by the core count — and the
//! per-core cycle attribution reconciles exactly with the global clock.
//!
//! The grid is environment-tunable like the chaos suite:
//!
//! ```text
//! FABRIC_PAR_CORES=1,2,4,8 FABRIC_CHAOS_SEED=12345 \
//!     cargo test --test parallel_equivalence
//! ```

use fabric_sim::{FaultConfig, RecoveryPolicy, SimConfig};
use query::{AccessPath, Engine, FaultContext, QueryOutput};
use workload::Lineitem;

const ROWS: usize = 20_000;
const DATA_SEED: u64 = 0x9A5_5EED;
const DEFAULT_SEED: u64 = 0xFA_B51C;

/// TPC-H Q1 (grouped f64 aggregates — the hard case for fold-shape
/// identity) and Q6 (selective range aggregate), as the SQL front end
/// runs them.
const QUERIES: &[&str] = &[
    "SELECT l_returnflag, l_linestatus, sum(l_quantity), sum(l_extendedprice), \
     sum(l_extendedprice * (1 - l_discount)), avg(l_quantity), count(*) \
     FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' \
     GROUP BY l_returnflag, l_linestatus",
    "SELECT sum(l_extendedprice * l_discount) FROM lineitem \
     WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
     AND l_discount >= 0.05 AND l_discount <= 0.07 AND l_quantity < 24",
];

fn seed() -> u64 {
    std::env::var("FABRIC_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Core counts under test; override with `FABRIC_PAR_CORES=1,2,4,8`.
fn core_grid() -> Vec<usize> {
    std::env::var("FABRIC_PAR_CORES")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n >= 1)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4])
}

fn engine(cores: usize) -> Engine {
    let mut e = Engine::with_cores(SimConfig::zynq_a53(), cores);
    let li = Lineitem::generate(e.mem(), ROWS, DATA_SEED).unwrap();
    e.register("lineitem", li.rows, li.cols);
    e
}

/// Every core's clock advance must be fully attributed (`busy == cpu +
/// stall + mem_lat`) and every core must close the elapsed window
/// (`busy + idle == elapsed`): that is what lets EXPLAIN ANALYZE sum the
/// per-core table back to the global clock.
fn assert_attribution_reconciles(out: &QueryOutput, cores: usize, ctx: &str) {
    assert_eq!(
        out.cores.len(),
        cores,
        "{ctx}: one attribution row per core"
    );
    let elapsed = out
        .cores
        .iter()
        .map(|a| a.busy_cycles + a.idle_cycles)
        .max()
        .unwrap_or(0);
    for a in &out.cores {
        assert_eq!(
            a.busy_cycles,
            a.cpu_cycles + a.stall_cycles + a.mem_lat_cycles,
            "{ctx}: core {} busy must equal cpu+stall+mem_lat",
            a.core
        );
        assert_eq!(
            a.busy_cycles + a.idle_cycles,
            elapsed,
            "{ctx}: core {} busy+idle must close the elapsed window",
            a.core
        );
    }
    if cores == 1 {
        assert_eq!(
            out.cores[0].idle_cycles, 0,
            "{ctx}: a single core never waits for peers"
        );
    }
}

#[test]
fn any_core_count_is_bit_identical_to_one_core_on_every_path() {
    let grid = core_grid();
    for sql in QUERIES {
        for path in [AccessPath::Row, AccessPath::Col, AccessPath::Rm] {
            let base = engine(1).session().run_on(sql, path).unwrap();
            assert_attribution_reconciles(&base, 1, &format!("{path:?} 1c"));
            for &cores in &grid {
                let out = engine(cores).session().run_on(sql, path).unwrap();
                assert_eq!(
                    out.rows, base.rows,
                    "{path:?} at {cores} cores diverged from the 1-core answer"
                );
                assert_attribution_reconciles(&out, cores, &format!("{path:?} {cores}c"));
            }
        }
    }
}

#[test]
fn chaos_seeded_parallel_runs_stay_bit_identical_and_replayable() {
    // Faults under parallelism: degradation must keep answers
    // bit-identical to the fault-free 1-core run, and the same seed must
    // replay the same simulated timeline at the same core count.
    let s = seed();
    let stormy = || FaultConfig {
        rm_stall_prob: 0.3,
        rm_stall_ns: 2_500.0,
        rm_timeout_prob: 0.3,
        rm_corrupt_prob: 0.3,
        ..FaultConfig::quiet(s)
    };
    let reference = engine(1)
        .session()
        .run_on(QUERIES[0], AccessPath::Rm)
        .unwrap();
    for &cores in &core_grid() {
        let run = || {
            let mut e = engine(cores);
            e.set_fault_context(FaultContext::new(stormy(), RecoveryPolicy::default()));
            let out = e.session().run_on(QUERIES[0], AccessPath::Rm).unwrap();
            let injected = e.fault_context().plan.stats().total();
            (out, injected)
        };
        let (a, inj_a) = run();
        let (b, inj_b) = run();
        assert_eq!(
            a.rows, reference.rows,
            "chaos at {cores} cores diverged (seed {s})"
        );
        assert_eq!(
            inj_a, inj_b,
            "fault schedules diverged at {cores} cores (seed {s})"
        );
        assert_eq!(
            a.ns.to_bits(),
            b.ns.to_bits(),
            "simulated time must replay to the bit at {cores} cores (seed {s})"
        );
        assert_attribution_reconciles(&a, cores, &format!("chaos {cores}c"));
    }
}

#[test]
fn plan_cache_hit_is_identical_to_a_cold_prepare() {
    let mut e = engine(4);
    let mut session = e.session();
    let cold = session.run(QUERIES[0]).unwrap();
    let warm = session.run(QUERIES[0]).unwrap();
    assert_eq!(
        warm.rows, cold.rows,
        "a cached plan must answer identically"
    );
    assert_eq!(
        warm.path, cold.path,
        "a cached plan must keep its access path"
    );
    drop(session);
    let (hits, misses) = e.plan_cache_stats();
    assert!(hits >= 1, "second run must hit the plan cache");
    assert!(misses >= 1, "first run must miss the plan cache");
}

#[test]
fn four_core_q1_speeds_up_while_staying_exact() {
    // The acceptance gate's shape, in-tree: simulated-cycle speedup on
    // TPC-H Q1 at 4 cores with a bit-identical answer. The bar here is
    // deliberately below the >1.8x the fig7 bench demonstrates — this
    // test guards the mechanism, the bench reports the headline.
    let base = engine(1)
        .session()
        .run_on(QUERIES[0], AccessPath::Col)
        .unwrap();
    let par = engine(4)
        .session()
        .run_on(QUERIES[0], AccessPath::Col)
        .unwrap();
    assert_eq!(par.rows, base.rows);
    let speedup = base.ns / par.ns;
    assert!(
        speedup > 1.5,
        "4-core Q1 must overlap compute across cores (got {speedup:.2}x)"
    );
}
