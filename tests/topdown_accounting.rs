//! Top-down cycle accounting and flight-recorder postmortems, end to end
//! (DESIGN.md §12).
//!
//! The hard invariant: every simulated cycle of a query window is
//! classified into exactly one leaf bucket (retired / mem.{l1,l2,dram,
//! rm_device} / stall.{bw,retry,idle}), so the buckets sum to the elapsed
//! window on every access path, at every core count, with or without
//! injected faults. Postmortems are pure functions of simulated state, so
//! same-seed reruns must produce byte-identical artifacts.
//!
//! The grid is environment-tunable like the chaos suite:
//!
//! ```text
//! FABRIC_PAR_CORES=1,2,4,8 FABRIC_CHAOS_SEED=12345 \
//!     cargo test --test topdown_accounting
//! ```

use fabric_sim::{
    parse_json, validate_chrome_trace, FaultConfig, Json, Postmortem, RecoveryPolicy, SimConfig,
};
use fabric_types::{ColumnType, Schema, Value};
use query::{AccessPath, Engine, FaultContext, QueryOutput};
use rowstore::RowTable;
use workload::Lineitem;

const ROWS: usize = 20_000;
const DATA_SEED: u64 = 0x9A5_5EED;
const DEFAULT_SEED: u64 = 0xFA_B51C;

/// TPC-H Q1: grouped f64 aggregates over most of the table — touches
/// every layer (scan, predicate, grouping) on all three access paths.
const Q1: &str = "SELECT l_returnflag, l_linestatus, sum(l_quantity), sum(l_extendedprice), \
                  sum(l_extendedprice * (1 - l_discount)), avg(l_quantity), count(*) \
                  FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' \
                  GROUP BY l_returnflag, l_linestatus";

fn seed() -> u64 {
    std::env::var("FABRIC_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Core counts under test; override with `FABRIC_PAR_CORES=1,2,4,8`.
fn core_grid() -> Vec<usize> {
    std::env::var("FABRIC_PAR_CORES")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n >= 1)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4])
}

fn engine(cores: usize) -> Engine {
    let mut e = Engine::with_cores(SimConfig::zynq_a53(), cores);
    let li = Lineitem::generate(e.mem(), ROWS, DATA_SEED).unwrap();
    e.register("lineitem", li.rows, li.cols);
    e
}

/// Wide rows-only table the optimizer routes to RM (16 × i64) — the shape
/// the flight-recorder chaos runs use so every query exercises the
/// fault-injected device path.
fn rm_engine() -> Engine {
    let mut engine = Engine::new(SimConfig::zynq_a53());
    let names: Vec<(String, ColumnType)> = (0..16)
        .map(|i| (format!("c{i}"), ColumnType::I64))
        .collect();
    let pairs: Vec<(&str, ColumnType)> = names.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    let schema = Schema::from_pairs(&pairs);
    let mut rt = RowTable::create(engine.mem(), schema, 4_096).unwrap();
    for i in 0..4_096i64 {
        let row: Vec<Value> = (0..16).map(|j| Value::I64(i * 16 + j)).collect();
        rt.load(engine.mem(), &row).unwrap();
    }
    engine.register_rows("t", rt);
    engine
}

const RM_SQL: &str = "SELECT c0, c5 FROM t WHERE c0 < 1000000";

/// A dead device: every delivery times out, so every RM-routed query
/// either retries to exhaustion and degrades or is skipped by the open
/// circuit breaker — guaranteed postmortems, independent of the seed.
fn dead_device(sweep_seed: u64) -> FaultConfig {
    FaultConfig {
        rm_timeout_prob: 1.0,
        ..FaultConfig::quiet(sweep_seed)
    }
}

/// Every delivered batch fails its CRC32 frame check.
fn corrupting_device(sweep_seed: u64) -> FaultConfig {
    FaultConfig {
        rm_corrupt_prob: 1.0,
        ..FaultConfig::quiet(sweep_seed)
    }
}

/// The full reconciliation contract between the per-core attribution
/// table and the top-down breakdown built from the same clocks:
///
/// * every core's eight buckets sum exactly to its elapsed window;
/// * every core closes the same window (the global clock advance);
/// * the taxonomy refines — not re-measures — the coarse attribution:
///   `retired == cpu`, `mem.l1 + mem.l2 == mem_lat`, and the four stall
///   buckets partition `stall_cycles` exactly.
fn assert_topdown_reconciles(out: &QueryOutput, cores: usize, ctx: &str) {
    out.topdown
        .verify()
        .unwrap_or_else(|why| panic!("{ctx}: {why}"));
    assert_eq!(
        out.topdown.cores.len(),
        cores,
        "{ctx}: one breakdown per core"
    );
    assert_eq!(
        out.cores.len(),
        cores,
        "{ctx}: one attribution row per core"
    );
    let elapsed = out
        .cores
        .iter()
        .map(|a| a.busy_cycles + a.idle_cycles)
        .max()
        .unwrap_or(0);
    for (td, a) in out.topdown.cores.iter().zip(&out.cores) {
        assert_eq!(td.core, a.core, "{ctx}: breakdown/attribution order");
        let sum: u64 = td.buckets().iter().map(|&(_, v)| v).sum();
        assert_eq!(
            sum, td.elapsed,
            "{ctx}: core {} buckets must sum to elapsed",
            td.core
        );
        assert_eq!(
            td.elapsed, elapsed,
            "{ctx}: core {} must close the query window",
            td.core
        );
        assert_eq!(td.retired, a.cpu_cycles, "{ctx}: retired == cpu");
        assert_eq!(td.idle, a.idle_cycles, "{ctx}: idle bucket == idle wait");
        assert_eq!(
            td.mem_l1 + td.mem_l2,
            a.mem_lat_cycles,
            "{ctx}: L1+L2 latency must partition mem_lat"
        );
        assert_eq!(
            td.mem_dram + td.mem_rm_device + td.bw_wait + td.fault_retry,
            a.stall_cycles,
            "{ctx}: dram+device+bw+retry must partition stall_cycles"
        );
    }
}

#[test]
fn buckets_sum_to_elapsed_on_every_path_and_core_count() {
    for path in [AccessPath::Row, AccessPath::Col, AccessPath::Rm] {
        for &cores in &core_grid() {
            let mut e = engine(cores);
            let out = e.session().run_on(Q1, path).unwrap();
            assert_topdown_reconciles(&out, cores, &format!("{path:?} {cores}c"));
            // The breakdown is exported into the metrics registry too.
            let snap = e.mem_ref().metrics().snapshot().to_json();
            for key in ["query.core0.td.retired", "query.core0.td.elapsed"] {
                assert!(
                    snap.contains(key),
                    "{path:?} {cores}c: snapshot lacks {key}"
                );
            }
        }
    }
}

#[test]
fn chaos_seeded_faulty_runs_still_reconcile_exactly() {
    let s = seed();
    let stormy = || FaultConfig {
        rm_stall_prob: 0.3,
        rm_stall_ns: 2_500.0,
        rm_timeout_prob: 0.3,
        rm_corrupt_prob: 0.3,
        ..FaultConfig::quiet(s)
    };
    for &cores in &core_grid() {
        let mut e = engine(cores);
        e.set_fault_context(FaultContext::new(stormy(), RecoveryPolicy::default()));
        let out = e.session().run_on(Q1, AccessPath::Rm).unwrap();
        assert_topdown_reconciles(&out, cores, &format!("chaos {cores}c (seed {s})"));
    }
}

/// The bugfix regression: when the RM path degrades mid-query, nothing is
/// silently dropped — the failed attempt's `rm_stats` fault counters stay
/// on the output, the retry backoff shows up in the `stall.retry` bucket,
/// and the accounting still reconciles to the cycle.
#[test]
fn attribution_reconciles_and_keeps_fault_counters_under_degradation() {
    let s = seed();
    let mut e = rm_engine();
    e.set_fault_context(FaultContext::new(dead_device(s), RecoveryPolicy::default()));
    let out = e.session().run_on(RM_SQL, AccessPath::Rm).unwrap();
    assert_eq!(
        out.degraded_from,
        Some(AccessPath::Rm),
        "a dead device must degrade the first query (seed {s})"
    );
    let rm = out
        .rm_stats
        .as_ref()
        .expect("degraded output must keep the failed RM attempt's stats");
    assert!(rm.injected_faults > 0, "fault counters dropped: {rm:?}");
    assert!(rm.delivery_timeouts > 0, "timeout counters dropped: {rm:?}");
    assert_topdown_reconciles(&out, 1, &format!("degraded (seed {s})"));
    let retry: u64 = out.topdown.cores.iter().map(|c| c.fault_retry).sum();
    assert!(
        retry > 0,
        "retry backoff must be attributed to the stall.retry bucket"
    );
}

/// Drive a chaos-seeded sweep and drain the postmortems it dumped.
fn postmortem_run(cfg: FaultConfig, queries: usize) -> (Vec<Postmortem>, String) {
    let mut e = rm_engine();
    e.set_fault_context(FaultContext::new(cfg, RecoveryPolicy::default()));
    for _ in 0..queries {
        e.session().run(RM_SQL).expect("resilient");
    }
    let snap = e.mem_ref().metrics().snapshot().to_json();
    (e.mem().take_postmortems(), snap)
}

#[test]
fn degraded_runs_dump_validator_clean_postmortems() {
    let (pms, snap) = postmortem_run(dead_device(seed()), 8);
    assert!(!pms.is_empty(), "dead-device sweep produced no postmortems");
    for pm in &pms {
        assert!(
            pm.reason == "degraded" || pm.reason == "breaker-open",
            "unexpected trigger {:?}",
            pm.reason
        );
        // The embedded trace stands alone as a valid Chrome trace, and the
        // combined artifact is parser-grade JSON.
        validate_chrome_trace(&pm.trace).expect("postmortem trace validates");
        let doc = parse_json(&pm.to_json()).expect("postmortem artifact parses");
        assert_eq!(
            doc.get("reason").and_then(Json::as_str),
            Some(pm.reason),
            "artifact must carry its trigger"
        );
        parse_json(&pm.metrics_delta).expect("metrics delta parses");
    }
    // The dead device's timeouts appear on at least one fault timeline.
    assert!(
        pms.iter().any(|pm| {
            parse_json(&pm.fault_timeline)
                .ok()
                .and_then(|doc| doc.as_arr().map(|a| !a.is_empty()))
                .unwrap_or(false)
        }),
        "no postmortem captured the fault timeline"
    );
    // Dumps are counted in the registry; the breaker-skip counter — the
    // silently-dropped field this PR fixes — is recorded there too.
    assert!(snap.contains("\"flight.dumps\""), "flight.dumps missing");
    assert!(
        snap.contains("\"query.breaker_skips\""),
        "breaker skips must reach the metrics registry, not just the trace"
    );
    assert!(
        pms.iter().any(|pm| pm.reason == "breaker-open"),
        "8 dead-device queries must trip the circuit breaker"
    );
}

#[test]
fn crc_failures_dump_their_own_postmortems() {
    let (pms, _) = postmortem_run(corrupting_device(seed()), 2);
    assert!(
        pms.iter().any(|pm| pm.reason == "crc-failure"),
        "corrupting device must trigger crc-failure dumps: {:?}",
        pms.iter().map(|p| p.reason).collect::<Vec<_>>()
    );
}

#[test]
fn same_seed_reruns_produce_bit_identical_postmortems() {
    let s = seed();
    let run = || {
        let (pms, _) = postmortem_run(dead_device(s), 8);
        pms.iter().map(Postmortem::to_json).collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty(), "run is vacuous (seed {s})");
    assert_eq!(
        a, b,
        "postmortems must be byte-deterministic for one seed (seed {s})"
    );
}
