//! Crash-recovery matrix: a deterministic power cut at **every** durable
//! write site of a transactional workload, with the DESIGN.md §14
//! invariant checked at each one:
//!
//! * every transaction whose commit was acknowledged before the cut is
//!   durable and visible after recovery;
//! * effects of unacknowledged transactions are absent — except the one
//!   legitimate ambiguity, a commit record that became fully durable in
//!   the same write the crash interrupted (recovery may resurrect it);
//! * the recovered store's answers are **bit-identical** to a
//!   never-crashed run of the same workload at the same watermark;
//! * replaying the same surviving image twice yields the same store
//!   (recovery is idempotent);
//! * every crash leaves a validator-clean, byte-deterministic
//!   [`fabric_obs::Postmortem`] in the flight recorder.
//!
//! Determinism: the crash schedule is `FaultConfig::with_crash_at(n)` on
//! the sweep seed, so any red run replays with
//! `FABRIC_CHAOS_SEED=<seed> cargo test --test crash_recovery`.

use durability::DurabilityConfig;
use fabric_obs::validate_chrome_trace;
use fabric_sim::{parse_json, FaultConfig, Json, MemoryHierarchy, Postmortem, SimConfig};
use fabric_types::{ColumnType, FabricError, Result, Schema, Value};
use mvcc::{CommitReceipt, DurableStore, LogicalId};
use query::Engine;
use rowstore::RowTable;
use std::collections::BTreeMap;

/// Default sweep seed; override with `FABRIC_CHAOS_SEED`.
const DEFAULT_SEED: u64 = 0xFA_B51C;
/// Commits in the workload and the auto-checkpoint cadence: small enough
/// that the full per-write crash matrix stays fast, large enough to put
/// crash sites on commit appends, checkpoint pages, and checkpoint refs.
const N_OPS: u64 = 12;
const CKPT_EVERY: u64 = 3;
const CAPACITY: usize = 256;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn base_seed() -> u64 {
    env_u64("FABRIC_CHAOS_SEED", DEFAULT_SEED)
}

fn schema() -> Schema {
    Schema::from_pairs(&[("k", ColumnType::I64), ("v", ColumnType::I64)])
}

fn mem() -> MemoryHierarchy {
    MemoryHierarchy::new(SimConfig::zynq_a53())
}

/// Op `i` of the deterministic workload: mostly inserts, with an update
/// every 4th op and a delete every 7th — so checkpoints carry version
/// chains and tombstones, not just fresh rows.
fn apply_op(
    m: &mut MemoryHierarchy,
    s: &mut DurableStore,
    i: u64,
    logicals: &mut Vec<LogicalId>,
) -> Result<CommitReceipt> {
    let mut txn = s.begin();
    if i % 4 == 3 && !logicals.is_empty() {
        let l = logicals[i as usize % logicals.len()];
        txn.update(l, vec![(1, Value::I64(i as i64 * 1000))]);
    } else if i % 7 == 6 && logicals.len() > 1 {
        let l = logicals.remove(0);
        txn.delete(l);
    } else {
        txn.insert(vec![Value::I64(i as i64), Value::I64(i as i64 * 10)]);
    }
    let receipt = s.commit(m, txn)?;
    logicals.extend(receipt.inserted.iter().copied());
    Ok(receipt)
}

/// The never-crashed run: every `watermark -> visible rows` point along
/// the workload, plus the total durable-write count (the crash-site
/// budget for the matrix).
fn reference_run(seed: u64) -> (BTreeMap<u64, Vec<Vec<Value>>>, u64) {
    let mut m = mem();
    let mut s = DurableStore::create(
        &mut m,
        schema(),
        CAPACITY,
        DurabilityConfig::quiet(seed),
        CKPT_EVERY,
    )
    .unwrap();
    let mut snapshots = BTreeMap::new();
    snapshots.insert(s.snapshot_ts(), s.snapshot_rows(&mut m).unwrap());
    let mut logicals = Vec::new();
    for i in 0..N_OPS {
        let r = apply_op(&mut m, &mut s, i, &mut logicals).unwrap();
        snapshots.insert(r.commit_ts, s.snapshot_rows(&mut m).unwrap());
    }
    let writes = s.media().stats().durable_writes;
    (snapshots, writes)
}

/// Run the workload against a device scheduled to cut power at durable
/// write `crash_at`; returns the hierarchy (postmortems inside), the
/// surviving image, and the highest acknowledged commit timestamp.
fn crashed_run(seed: u64, crash_at: u64) -> (MemoryHierarchy, durability::DurableImage, u64) {
    let mut m = mem();
    let cfg =
        DurabilityConfig::quiet(seed).with_faults(FaultConfig::quiet(seed).with_crash_at(crash_at));
    let mut s = DurableStore::create(&mut m, schema(), CAPACITY, cfg, CKPT_EVERY).unwrap();
    let mut logicals = Vec::new();
    let mut acked = 0u64;
    let mut crashed = false;
    for i in 0..N_OPS {
        match apply_op(&mut m, &mut s, i, &mut logicals) {
            Ok(r) => {
                acked = acked.max(r.commit_ts);
                // A cut during the cadence checkpoint surfaces out-of-band:
                // the commit itself was durable and acknowledged.
                if let Some(e) = s.take_checkpoint_failure() {
                    match e {
                        FabricError::PowerLoss { device, .. } => {
                            assert!(
                                device == "wal" || device == "checkpoint",
                                "cut on unexpected device `{device}`"
                            );
                            crashed = true;
                            break;
                        }
                        other => panic!(
                            "crash_at={crash_at}: unexpected checkpoint error {other} \
                             (replay: FABRIC_CHAOS_SEED={seed})"
                        ),
                    }
                }
            }
            Err(FabricError::PowerLoss { device, .. }) => {
                assert_eq!(
                    device, "wal",
                    "a commit-path cut can only strike the WAL append"
                );
                crashed = true;
                break;
            }
            Err(e) => panic!(
                "crash_at={crash_at}: unexpected error {e} \
                 (replay: FABRIC_CHAOS_SEED={seed})"
            ),
        }
    }
    assert!(
        crashed,
        "crash_at={crash_at} is within the write budget, the run must cut"
    );
    (m, s.crash_image(), acked)
}

/// The headline matrix: cut power at every durable write the workload
/// performs, recover, and hold the whole §14 invariant each time.
#[test]
fn crash_matrix_every_write_site_recovers_consistently() {
    let seed = base_seed();
    let (reference, total_writes) = reference_run(seed);
    assert!(
        total_writes > N_OPS,
        "workload must write checkpoints too (got {total_writes} writes)"
    );

    let mut saw_partial_tail = false;
    for crash_at in 1..=total_writes {
        let (mut m, image, acked) = crashed_run(seed, crash_at);

        // Recover twice from the same image: idempotent by the bit.
        let recover = |m: &mut MemoryHierarchy, image| {
            DurableStore::replay(
                m,
                schema(),
                CAPACITY,
                image,
                DurabilityConfig::quiet(seed ^ 0xD0),
                CKPT_EVERY,
            )
            .unwrap()
        };
        let (r1, rep1) = recover(&mut m, image.clone());
        let (r2, rep2) = recover(&mut m, image);
        assert_eq!(rep1, rep2, "crash_at={crash_at}: recovery not idempotent");
        let rows = r1.snapshot_rows(&mut m).unwrap();
        assert_eq!(
            rows,
            r2.snapshot_rows(&mut m).unwrap(),
            "crash_at={crash_at}: recovered rows not idempotent"
        );

        // Acknowledged commits are durable: the watermark covers them.
        assert!(
            rep1.watermark >= acked,
            "crash_at={crash_at}: acked commit ts {acked} lost \
             (recovered watermark {}, seed {seed})",
            rep1.watermark
        );

        // Bit-identical to the never-crashed run at the same watermark —
        // which also proves unacknowledged effects beyond it are absent.
        let expect = reference.get(&rep1.watermark).unwrap_or_else(|| {
            panic!(
                "crash_at={crash_at}: recovered watermark {} matches no \
                 point of the reference run (seed {seed})",
                rep1.watermark
            )
        });
        assert_eq!(
            &rows, expect,
            "crash_at={crash_at}: recovered answers diverge from the \
             never-crashed run at watermark {} (seed {seed})",
            rep1.watermark
        );

        // The cut left a validator-clean postmortem; recovery logged one
        // of its own ("crash-recovery" or "recovery-degraded").
        let pms = m.take_postmortems();
        assert!(
            pms.iter().any(|p| p.reason == "power-loss"),
            "crash_at={crash_at}: no power-loss postmortem"
        );
        assert!(
            pms.iter()
                .any(|p| p.reason == "crash-recovery" || p.reason == "recovery-degraded"),
            "crash_at={crash_at}: no recovery postmortem"
        );
        for p in &pms {
            validate_chrome_trace(&p.trace).unwrap_or_else(|e| {
                panic!(
                    "crash_at={crash_at}: postmortem `{}` trace invalid: {e}",
                    p.reason
                )
            });
        }

        // Every recovery postmortem embeds a parseable RecoveryReport
        // context with the watermark the replay settled on.
        for p in pms
            .iter()
            .filter(|p| p.reason == "crash-recovery" || p.reason == "recovery-degraded")
        {
            let ctx = p.context.as_deref().unwrap_or_else(|| {
                panic!("crash_at={crash_at}: recovery postmortem has no report context")
            });
            let doc = parse_json(ctx).unwrap_or_else(|e| {
                panic!("crash_at={crash_at}: postmortem context does not parse: {e}")
            });
            assert_eq!(
                doc.get("watermark").and_then(Json::as_num),
                Some(rep1.watermark as f64),
                "crash_at={crash_at}: context watermark diverges from the report"
            );
        }

        // A commit acknowledged *after* recovery must survive a second,
        // clean restart — the regression where replay left the torn tail
        // on the log, so post-recovery appends landed after garbage and
        // the next scan dropped them.
        saw_partial_tail |= rep1.truncated_bytes > 0;
        let mut r1 = r1;
        let mut txn = r1.begin();
        let key = 900_000 + crash_at as i64;
        txn.insert(vec![Value::I64(key), Value::I64(1)]);
        let rc = r1.commit(&mut m, txn).unwrap_or_else(|e| {
            panic!("crash_at={crash_at}: post-recovery commit failed: {e} (seed {seed})")
        });
        let mut expect2 = rows.clone();
        expect2.push(vec![Value::I64(key), Value::I64(1)]);
        let (r3, rep3) = recover(&mut m, r1.crash_image());
        assert_eq!(
            rep3.truncated_bytes, 0,
            "crash_at={crash_at}: clean restart found a torn tail (seed {seed})"
        );
        assert_eq!(
            rep3.watermark, rc.commit_ts,
            "crash_at={crash_at}: post-recovery commit missing from the \
             second restart's watermark (seed {seed})"
        );
        assert_eq!(
            r3.snapshot_rows(&mut m).unwrap(),
            expect2,
            "crash_at={crash_at}: acked post-recovery commit lost after a \
             second restart (seed {seed})"
        );

        // The instrumented write path counted its work on this machine:
        // WAL appends (the post-recovery commit at minimum), the cut
        // itself, and all three replays.
        let reg = m.metrics();
        assert!(
            reg.counter("durability.wal.appends") > 0,
            "crash_at={crash_at}: no WAL appends counted"
        );
        assert!(
            reg.counter("durability.power_losses") >= 1,
            "crash_at={crash_at}: the cut was not counted"
        );
        assert!(
            reg.counter("durability.replay.count") >= 3,
            "crash_at={crash_at}: all three replays must be counted"
        );
    }
    if seed == DEFAULT_SEED {
        assert!(
            saw_partial_tail,
            "no crash point left a partial torn tail — the second-restart \
             sweep never exercised tail truncation; rechoose DEFAULT_SEED"
        );
    }
}

/// The same cut produces byte-for-byte the same postmortem artifact —
/// crash forensics are replayable, not just the data.
#[test]
fn crash_postmortems_are_byte_deterministic() {
    let seed = base_seed();
    let dump = |crash_at: u64| -> Vec<Postmortem> {
        let (mut m, _, _) = crashed_run(seed, crash_at);
        m.take_postmortems()
    };
    for crash_at in [1, 4, 9] {
        let a = dump(crash_at);
        let b = dump(crash_at);
        assert!(!a.is_empty(), "crash_at={crash_at}: no postmortems");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.to_json(),
                y.to_json(),
                "crash_at={crash_at}: postmortem bytes diverge (seed {seed})"
            );
        }
    }
}

/// Query-level closure of the invariant: an engine opened from the
/// surviving image answers SQL bit-identically to an engine loaded with
/// the never-crashed rows at the same watermark.
#[test]
fn recovered_engine_answers_match_the_never_crashed_run() {
    let seed = base_seed();
    let (reference, total_writes) = reference_run(seed);
    let sqls = [
        "SELECT count(*), sum(v) FROM t",
        "SELECT k, v FROM t WHERE k >= 3 ORDER BY 1, 2",
    ];
    for crash_at in [2, total_writes / 2, total_writes - 1] {
        let (_, image, _) = crashed_run(seed, crash_at);

        let mut recovered = Engine::new(SimConfig::zynq_a53());
        let (_, report) = recovered
            .open_recovered(
                "t",
                &schema(),
                CAPACITY,
                image,
                DurabilityConfig::quiet(seed ^ 0xD0),
                CKPT_EVERY,
            )
            .unwrap();
        assert_eq!(recovered.recoveries().len(), 1);

        let mut never_crashed = Engine::new(SimConfig::zynq_a53());
        let mut t = RowTable::create(never_crashed.mem(), schema(), CAPACITY).unwrap();
        for row in &reference[&report.watermark] {
            t.load(never_crashed.mem(), row).unwrap();
        }
        never_crashed.register_rows("t", t);

        for sql in sqls {
            let a = recovered.session().run(sql).unwrap().rows;
            let b = never_crashed.session().run(sql).unwrap().rows;
            assert_eq!(
                a, b,
                "crash_at={crash_at}: `{sql}` diverged after recovery (seed {seed})"
            );
        }
    }
}

/// Oracle edge cases at the recovery boundary: the first post-recovery
/// commit lands exactly one past the watermark, a transaction begun
/// immediately after replay (the "begin during replay" snapshot) sees
/// exactly the recovered state, and time travel to the pre-crash
/// watermark still answers bit-identically after new commits.
#[test]
fn oracle_watermark_ordering_survives_recovery() {
    let seed = base_seed();
    let (_, image, acked) = crashed_run(seed, 5);
    let mut m = mem();
    let (mut r, report) = DurableStore::replay(
        &mut m,
        schema(),
        CAPACITY,
        image,
        DurabilityConfig::quiet(seed ^ 0xD0),
        CKPT_EVERY,
    )
    .unwrap();
    assert!(report.watermark >= acked);

    // A snapshot begun right after replay reads at the watermark.
    assert_eq!(r.snapshot_ts(), report.watermark);
    let early = r.begin();
    assert_eq!(early.start_ts, report.watermark);
    let at_watermark = r.snapshot_rows(&mut m).unwrap();

    // The next commit is ordered strictly after everything recovered.
    let mut txn = r.begin();
    txn.insert(vec![Value::I64(777), Value::I64(7770)]);
    let receipt = r.commit(&mut m, txn).unwrap();
    assert_eq!(receipt.commit_ts, report.watermark + 1);

    // New state sees the commit; the early snapshot does not.
    let now_rows = r.snapshot_rows(&mut m).unwrap();
    assert_eq!(now_rows.len(), at_watermark.len() + 1);
    assert_eq!(
        r.table().snapshot_rows(&mut m, report.watermark).unwrap(),
        at_watermark,
        "time travel to the recovery watermark must still be exact"
    );
    assert_eq!(early.start_ts, report.watermark);
}

/// Crashing *again* — including during the recovered run's own writes —
/// still recovers: what the second survivor replays is the first
/// recovered state plus whatever the second run acknowledged.
#[test]
fn double_crash_recovery_stays_consistent() {
    let seed = base_seed();
    let (_, image, _) = crashed_run(seed, 4);
    let mut m = mem();

    // First recovery, armed to crash again on its own 2nd durable write.
    let cfg2 = DurabilityConfig::quiet(seed)
        .with_faults(FaultConfig::quiet(seed ^ 0xBEEF).with_crash_at(2));
    let (mut r, rep1) = DurableStore::replay(&mut m, schema(), CAPACITY, image, cfg2, 0).unwrap();
    let recovered_rows = r.snapshot_rows(&mut m).unwrap();

    // Continue with fresh keys until the second cut.
    let mut acked2 = Vec::new();
    let mut second_cut = false;
    for i in 0..4i64 {
        let mut txn = r.begin();
        txn.insert(vec![Value::I64(1000 + i), Value::I64(i)]);
        match r.commit(&mut m, txn) {
            Ok(rc) => acked2.push((1000 + i, rc.commit_ts)),
            Err(FabricError::PowerLoss { .. }) => {
                second_cut = true;
                break;
            }
            Err(e) => panic!("unexpected error after recovery: {e}"),
        }
    }
    assert!(second_cut, "the re-armed device must cut again");

    // Second recovery: first recovered state is intact, acked post-
    // recovery commits survive, order is preserved.
    let (r2, rep2) = DurableStore::replay(
        &mut m,
        schema(),
        CAPACITY,
        r.crash_image(),
        DurabilityConfig::quiet(seed ^ 0xD00D),
        0,
    )
    .unwrap();
    assert!(rep2.watermark >= rep1.watermark);
    assert!(rep2.watermark >= acked2.iter().map(|&(_, ts)| ts).max().unwrap_or(0));
    let final_rows = r2.snapshot_rows(&mut m).unwrap();
    assert_eq!(
        &final_rows[..recovered_rows.len()],
        &recovered_rows[..],
        "first recovery's rows must survive the second crash in order"
    );
    let tail: Vec<i64> = final_rows[recovered_rows.len()..]
        .iter()
        .map(|row| match row[0] {
            Value::I64(k) => k,
            ref other => panic!("unexpected key {other:?}"),
        })
        .collect();
    for (i, &(k, _)) in acked2.iter().enumerate() {
        assert_eq!(tail[i], k, "acked post-recovery commit lost");
    }
    // At most one unacknowledged in-flight commit may be resurrected.
    assert!(tail.len() <= acked2.len() + 1, "tail {tail:?}");
}

/// A degraded open at the engine layer dumps an `engine-degraded-open`
/// postmortem whose context embeds the [`mvcc::RecoveryReport`] verbatim
/// — and the artifact is byte-deterministic across identical opens.
#[test]
fn degraded_open_postmortem_embeds_the_recovery_report() {
    let seed = base_seed();
    // Every checkpoint page tears: the blob is unreadable at recovery, so
    // the open must fall back to full log replay and report degraded.
    let torn = DurabilityConfig::quiet(seed).with_faults(FaultConfig {
        torn_write_prob: 1.0,
        ..FaultConfig::quiet(seed)
    });
    let image = {
        let mut m = mem();
        let mut s = DurableStore::create(&mut m, schema(), CAPACITY, torn, 0).unwrap();
        let mut logicals = Vec::new();
        for i in 0..5 {
            apply_op(&mut m, &mut s, i, &mut logicals).unwrap();
        }
        s.checkpoint(&mut m).unwrap();
        s.crash_image()
    };

    let open = |image: durability::DurableImage| {
        let mut engine = Engine::new(SimConfig::zynq_a53());
        let (_, report) = engine
            .open_recovered(
                "t",
                &schema(),
                CAPACITY,
                image,
                DurabilityConfig::quiet(seed ^ 0xD0),
                0,
            )
            .unwrap();
        let pm = engine
            .mem()
            .take_postmortems()
            .into_iter()
            .find(|p| p.reason == "engine-degraded-open")
            .expect("degraded open dumps an engine postmortem");
        (report, pm)
    };
    let (report, pm) = open(image.clone());
    assert!(report.degraded.is_some(), "torn checkpoint must degrade");
    assert_eq!(
        pm.context.as_deref(),
        Some(report.to_json().as_str()),
        "postmortem context must embed the report verbatim"
    );
    let doc = parse_json(&pm.to_json()).expect("postmortem parses");
    assert_eq!(
        doc.get("context")
            .and_then(|c| c.get("watermark"))
            .and_then(Json::as_num),
        Some(report.watermark as f64)
    );
    assert_eq!(
        doc.get("context")
            .and_then(|c| c.get("degraded"))
            .and_then(Json::as_str),
        report.degraded.as_deref()
    );

    // Same image, same config: the artifact is byte-deterministic.
    let (_, pm2) = open(image);
    assert_eq!(pm.to_json(), pm2.to_json(), "degraded-open bytes diverge");
}
