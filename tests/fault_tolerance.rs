//! Chaos suite: seeded fault plans against the whole stack.
//!
//! Every test here drives Fig-5/Q6-shaped queries through a
//! [`query::Engine`] session while a deterministic [`FaultPlan`]
//! injects device stalls, delivery timeouts, and bit flips — and asserts
//! the **transparency invariant** of DESIGN.md §9: under any fault plan,
//! a query either succeeds on the RM path after retries or degrades onto
//! a software path, and its answer is bit-identical to the fault-free
//! run. No panics, anywhere, ever.
//!
//! Determinism makes every failure replayable: the sweep seed comes from
//! `FABRIC_CHAOS_SEED` (and the plan count from `FABRIC_CHAOS_PLANS`),
//! and every assertion message carries the seed that reproduces it:
//!
//! ```text
//! FABRIC_CHAOS_SEED=12345 cargo test --test fault_tolerance
//! ```

use fabric_sim::{FaultConfig, FaultPlan, MemoryHierarchy, RecoveryPolicy, SimConfig};
use fabric_types::rng::SplitMix64;
use fabric_types::{ColumnType, FabricError, Schema, Value};
use query::{AccessPath, Engine, FaultContext};
use relstore::{RsConfig, SsdDevice};
use rowstore::RowTable;

/// Default sweep seed; override with `FABRIC_CHAOS_SEED`.
const DEFAULT_SEED: u64 = 0xFA_B51C;
/// Default number of randomized plans; override with `FABRIC_CHAOS_PLANS`.
const DEFAULT_PLANS: u64 = 8;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn base_seed() -> u64 {
    env_u64("FABRIC_CHAOS_SEED", DEFAULT_SEED)
}

/// Wide rows-only table the optimizer always routes to RM (16 × i64, no
/// columnar copy; the packed projection dominates a full-row scan).
/// c_j(i) = i*16 + j.
fn chaos_engine(rows: usize) -> Engine {
    let mut engine = Engine::new(SimConfig::zynq_a53());
    let names: Vec<(String, ColumnType)> = (0..16)
        .map(|i| (format!("c{i}"), ColumnType::I64))
        .collect();
    let pairs: Vec<(&str, ColumnType)> = names.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    let schema = Schema::from_pairs(&pairs);
    let mut rt = RowTable::create(engine.mem(), schema, rows).unwrap();
    for i in 0..rows as i64 {
        let row: Vec<Value> = (0..16).map(|j| Value::I64(i * 16 + j)).collect();
        rt.load(engine.mem(), &row).unwrap();
    }
    engine.register_rows("t", rt);
    engine
}

const CHAOS_ROWS: usize = 12_288;

/// The query shapes under chaos: Fig-5-style projections at two
/// projectivities, a Q6-shaped range-predicate aggregate, and a grouped
/// aggregate (ORDER BY exercises post-processing on the degraded path).
const QUERIES: &[&str] = &[
    "SELECT c0, c5 FROM t WHERE c0 < 64000",
    "SELECT c0, c3, c7, c11 FROM t",
    "SELECT sum(c5), count(*) FROM t WHERE c0 >= 1600 AND c0 < 160000",
    "SELECT c1, sum(c2) FROM t WHERE c0 < 512 GROUP BY c1 ORDER BY 2 DESC LIMIT 8",
];

/// Derive plan `i`'s fault configuration from the sweep seed: per-site
/// rates up to ~12% plus engine stalls, all pure functions of the seed.
fn derived_cfg(sweep_seed: u64, i: u64) -> FaultConfig {
    let mut sm = SplitMix64::new(sweep_seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut rate = || (sm.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 0.12;
    let rm_stall_prob = rate();
    let rm_timeout_prob = rate();
    let rm_corrupt_prob = rate();
    FaultConfig {
        rm_stall_prob,
        rm_stall_ns: 2_500.0,
        rm_timeout_prob,
        rm_corrupt_prob,
        ..FaultConfig::quiet(sweep_seed.wrapping_add(i))
    }
}

/// The headline chaos sweep: randomized fault plans, bit-identical
/// answers, no panics. Every failure message carries the replay seed.
#[test]
fn chaos_randomized_fault_plans_preserve_answers() {
    let seed = base_seed();
    let plans = env_u64("FABRIC_CHAOS_PLANS", DEFAULT_PLANS);

    // Fault-free reference answers, computed once.
    let mut engine = chaos_engine(CHAOS_ROWS);
    let reference: Vec<Vec<Vec<Value>>> = QUERIES
        .iter()
        .map(|sql| engine.session().run_on(sql, AccessPath::Rm).unwrap().rows)
        .collect();

    let mut total_injected = 0u64;
    let mut total_fallbacks = 0u64;
    for i in 0..plans {
        let cfg = derived_cfg(seed, i);
        let mut engine = chaos_engine(CHAOS_ROWS);
        engine.set_fault_context(FaultContext::new(cfg, RecoveryPolicy::default()));
        for (qi, sql) in QUERIES.iter().enumerate() {
            let out = engine.session().run(sql).unwrap_or_else(|e| {
                panic!(
                    "plan #{i} query {qi} errored: {e}\n  replay: FABRIC_CHAOS_SEED={seed} \
                     FABRIC_CHAOS_PLANS={plans} cargo test --test fault_tolerance"
                )
            });
            assert_eq!(
                out.rows, reference[qi],
                "plan #{i} query {qi} diverged from the fault-free answer\n  \
                 replay: FABRIC_CHAOS_SEED={seed} FABRIC_CHAOS_PLANS={plans} \
                 cargo test --test fault_tolerance"
            );
            // Outputs must carry the consumer-side view of what happened.
            if let Some(s) = &out.rm_stats {
                assert!(s.retries >= (s.crc_failures + s.delivery_timeouts).saturating_sub(1));
            }
        }
        let ctx = engine.fault_context();
        total_fallbacks += ctx.fallbacks;
        total_injected += ctx.plan.stats().total();
    }
    // The sweep is vacuous if nothing was ever injected.
    assert!(
        total_injected > 0,
        "no faults injected across {plans} plans (seed {seed}) — sweep is vacuous"
    );
    // Fallbacks may legitimately be zero at low rates; record, don't require.
    let _ = total_fallbacks;
}

/// Guaranteed-fault plan: the device always times out, so every RM-routed
/// query must degrade — transparently — and the degradation must be
/// visible in `QueryOutput` and the context's counters.
#[test]
fn chaos_guaranteed_fallback_is_transparent_and_counted() {
    let seed = base_seed();
    let mut engine = chaos_engine(4096);
    let sql = QUERIES[0];
    let reference = engine.session().run_on(sql, AccessPath::Rm).unwrap().rows;

    let cfg = FaultConfig {
        rm_timeout_prob: 1.0,
        ..FaultConfig::quiet(seed)
    };
    let policy = RecoveryPolicy::default();
    engine.set_fault_context(FaultContext::new(cfg, policy));
    let mut degraded = 0u64;
    for round in 0..(policy.breaker_threshold + policy.breaker_cooldown) {
        let out = engine.session().run(sql).unwrap_or_else(|e| {
            panic!("round {round} errored: {e} (replay: FABRIC_CHAOS_SEED={seed})")
        });
        assert_eq!(out.rows, reference, "replay: FABRIC_CHAOS_SEED={seed}");
        assert_eq!(out.degraded_from, Some(AccessPath::Rm));
        assert_ne!(out.path, AccessPath::Rm);
        if let Some(s) = out.rm_stats {
            assert!(s.delivery_timeouts > 0, "failed-attempt stats must surface");
            degraded += 1;
        }
    }
    let ctx = engine.fault_context();
    assert_eq!(ctx.fallbacks, degraded, "every RM attempt fell back");
    assert_eq!(ctx.fallbacks, policy.breaker_threshold as u64);
    assert!(
        ctx.breaker_skips > 0,
        "the breaker must eventually fail fast instead of retrying a dead device"
    );
    assert!(ctx.rm_health().trips >= 1);
}

/// Replay: the same seed produces the same simulated timeline, the same
/// fault counters, and the same answers — chaos failures are debuggable.
#[test]
fn chaos_same_seed_replays_bit_identically() {
    let seed = base_seed();
    let run = || {
        let cfg = derived_cfg(seed, 3);
        let mut engine = chaos_engine(4096);
        engine.set_fault_context(FaultContext::new(cfg, RecoveryPolicy::default()));
        let mut rows = Vec::new();
        let mut ns = Vec::new();
        for sql in QUERIES {
            let out = engine.session().run(sql).unwrap();
            rows.push(out.rows);
            ns.push(out.ns.to_bits());
        }
        let ctx = engine.fault_context();
        (rows, ns, ctx.plan.stats(), ctx.fallbacks)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "answers must replay (seed {seed})");
    assert_eq!(
        a.1, b.1,
        "simulated time must replay to the bit (seed {seed})"
    );
    assert_eq!(a.2, b.2, "fault stats must replay (seed {seed})");
    assert_eq!(a.3, b.3, "fallback counts must replay (seed {seed})");
}

/// Relational Storage under chaos: transient page failures and link
/// corruption recover to bit-identical shipments; a latent sector error
/// surfaces as a clean `FlashReadError` — never a panic, never bad data.
#[test]
fn chaos_relstore_recovers_or_fails_cleanly() {
    let seed = base_seed();
    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    let mut dev = SsdDevice::new(RsConfig::smartssd(), &mem);
    // Enough pages that a 15% per-page fault rate injects something for
    // any seed (the no-injection probability is below 1e-9).
    let rows = 16_384usize;
    let mut bytes = Vec::with_capacity(rows * 32);
    for i in 0..rows {
        for j in 0..8 {
            bytes.extend_from_slice(&((i * 8 + j) as i32).to_le_bytes());
        }
    }
    let t = dev.store_rows(&bytes, 32).unwrap();
    let (clean, _) = dev.fetch_raw(&mut mem, &t).unwrap();
    dev.reset_timing();

    // Transient faults: either recovery is invisible in the bytes, or —
    // if some unlucky page burns the whole retry budget — the failure
    // surfaces as the typed error, never as bad data or a panic.
    let cfg = FaultConfig {
        flash_transient_prob: 0.08,
        link_corrupt_prob: 0.08,
        ..FaultConfig::quiet(seed)
    };
    dev.inject_faults(FaultPlan::new(cfg), RecoveryPolicy::default());
    match dev.fetch_raw(&mut mem, &t) {
        Ok((faulty, stats)) => {
            assert_eq!(clean, faulty, "replay: FABRIC_CHAOS_SEED={seed}");
            assert!(stats.injected_faults > 0, "sweep vacuous at seed {seed}");
            assert_eq!(stats.retries, stats.injected_faults);
        }
        Err(FabricError::FlashReadError { attempts, .. }) => {
            assert_eq!(attempts, RecoveryPolicy::default().max_retries + 1);
        }
        Err(FabricError::CorruptBatch { device, .. }) => {
            assert_eq!(device, "host-link", "replay: FABRIC_CHAOS_SEED={seed}");
        }
        Err(other) => {
            panic!("untyped transient failure: {other:?} (replay: FABRIC_CHAOS_SEED={seed})")
        }
    }

    // Latent sector errors: unrecoverable, and reported as exactly that.
    dev.inject_faults(
        FaultPlan::new(FaultConfig::quiet(seed).with_latent(1.0)),
        RecoveryPolicy::default(),
    );
    match dev.fetch_raw(&mut mem, &t) {
        Err(FabricError::FlashReadError { page, attempts }) => {
            assert_eq!(page, t.first_page);
            assert_eq!(attempts, RecoveryPolicy::default().max_retries + 1);
        }
        other => panic!("expected FlashReadError, got {other:?} (seed {seed})"),
    }
}

/// The flash *write* path under chaos (DESIGN.md §14): seeded program
/// failures either retry invisibly — the stored table reads back
/// bit-identical — or exhaust the budget as a typed `FlashWriteError`;
/// silent torn pages are exactly the set the CRC scrub reports; and the
/// same seed replays answers, fault stats, scrub sets, and the simulated
/// clock to the bit.
#[test]
fn chaos_flash_write_path_recovers_and_replays() {
    let seed = base_seed();
    let rows = 16_384usize;
    let mut bytes = Vec::with_capacity(rows * 32);
    for i in 0..rows {
        for j in 0..8 {
            bytes.extend_from_slice(&((i * 8 + j) as i32).to_le_bytes());
        }
    }

    // Fault-free durable store: pages cost program time, bytes round-trip.
    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    let mut dev = SsdDevice::new(RsConfig::smartssd(), &mem);
    let t = dev.store_rows_durable(&mut mem, &bytes, 32).unwrap();
    assert_eq!(dev.verify_pages(&t), Vec::<u64>::new());
    let (clean, _) = dev.fetch_raw(&mut mem, &t).unwrap();
    assert_eq!(clean, bytes);

    // One chaos run: store under the derived write-fault plan, scrub,
    // read back. Everything observable is returned for replay checks.
    let run = |flash_write_prob: f64, torn_write_prob: f64| {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let mut dev = SsdDevice::new(RsConfig::smartssd(), &mem);
        let cfg = FaultConfig {
            flash_write_prob,
            torn_write_prob,
            ..FaultConfig::quiet(seed)
        };
        dev.inject_faults(FaultPlan::new(cfg), RecoveryPolicy::default());
        match dev.store_rows_durable(&mut mem, &bytes, 32) {
            Ok(t) => {
                let torn = dev.verify_pages(&t);
                let (out, _) = dev.fetch_raw(&mut mem, &t).unwrap();
                (Some((torn, out)), dev.fault_stats(), mem.now())
            }
            Err(e) => {
                assert!(
                    matches!(e, FabricError::FlashWriteError { .. }),
                    "untyped write failure: {e:?} (replay: FABRIC_CHAOS_SEED={seed})"
                );
                (None, dev.fault_stats(), mem.now())
            }
        }
    };

    // Transient program failures only: success means bit-identical bytes
    // and a clean scrub — retries are invisible in the data.
    let (state, stats, _) = run(0.08, 0.0);
    if let Some((torn, out)) = &state {
        assert!(torn.is_empty(), "replay: FABRIC_CHAOS_SEED={seed}");
        assert_eq!(*out, bytes, "replay: FABRIC_CHAOS_SEED={seed}");
        assert!(
            stats.flash_write_errors > 0,
            "write sweep vacuous at seed {seed}"
        );
    }

    // Torn pages: the scrub must report exactly the injected tears.
    let (state, stats, _) = run(0.0, 0.1);
    let (torn, _) = state.expect("tears never exhaust the retry budget");
    assert_eq!(
        torn.len() as u64,
        stats.torn_writes,
        "scrub must find exactly the injected tears (seed {seed})"
    );
    assert!(stats.torn_writes > 0, "torn sweep vacuous at seed {seed}");

    // Replay: same seed, same everything — including the clock.
    for (p, q) in [(0.08, 0.0), (0.0, 0.1), (0.04, 0.04)] {
        let a = run(p, q);
        let b = run(p, q);
        assert_eq!(a, b, "write path must replay bit-identically (seed {seed})");
    }
}
