//! The observability plane's contracts, end to end: across every access
//! path, core count, chaos seed, and cache temperature, the engine-wide
//! query log and the cost-calibration ledger are **byte-deterministic**
//! (two identically seeded engines export identical JSON), per-operator
//! cost estimates sum *bit-exactly* to the path estimate the optimizer
//! saw, and the ledger converges (mean == EWMA) under repeated identical
//! observations while cache hits never calibrate.
//!
//! The grid is environment-tunable like the chaos suite:
//!
//! ```text
//! FABRIC_PAR_CORES=1,2,4,8 FABRIC_CHAOS_SEED=12345 \
//!     cargo test --test querylog_determinism
//! ```

use fabric_sim::{FaultConfig, RecoveryPolicy, SimConfig};
use query::{AccessPath, Engine, FaultContext};
use workload::Lineitem;

const ROWS: usize = 20_000;
const DATA_SEED: u64 = 0x9A5_5EED;
const DEFAULT_SEED: u64 = 0xFA_B51C;

/// Same class coverage as the executor-equivalence grid: grouped
/// aggregate (q1), scalar aggregate over a conjunctive filter (q6), and
/// a projection with post-processing (scan class).
const QUERIES: &[&str] = &[
    "SELECT l_returnflag, l_linestatus, sum(l_quantity), avg(l_quantity), count(*) \
     FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' \
     GROUP BY l_returnflag, l_linestatus",
    "SELECT sum(l_extendedprice * l_discount) FROM lineitem \
     WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
     AND l_discount >= 0.05 AND l_discount <= 0.07 AND l_quantity < 24",
    "SELECT l_orderkey, l_extendedprice FROM lineitem \
     WHERE l_quantity < 5 ORDER BY 2 DESC LIMIT 10",
];

fn seed() -> u64 {
    std::env::var("FABRIC_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Core counts under test; override with `FABRIC_PAR_CORES=1,2,4,8`.
fn core_grid() -> Vec<usize> {
    std::env::var("FABRIC_PAR_CORES")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n >= 1)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4])
}

fn engine(cores: usize) -> Engine {
    let mut e = Engine::with_cores(SimConfig::zynq_a53(), cores);
    let li = Lineitem::generate(e.mem(), ROWS, DATA_SEED).unwrap();
    e.register("lineitem", li.rows, li.cols);
    e
}

/// Drive one engine through the full mixed workload: a cold + warm run
/// of every (query, path) pair, then a seeded fault storm on RM. Every
/// grid point the log must account for — miss, hit, bypass, degraded —
/// shows up in the export.
fn run_workload(e: &mut Engine, chaos: u64) {
    for sql in QUERIES {
        for path in [AccessPath::Row, AccessPath::Col, AccessPath::Rm] {
            let mut s = e.session();
            s.run_on(sql, path).unwrap();
            s.run_on(sql, path).unwrap();
        }
    }
    let stormy = FaultConfig {
        rm_stall_prob: 0.3,
        rm_stall_ns: 2_500.0,
        rm_timeout_prob: 0.3,
        rm_corrupt_prob: 0.3,
        ..FaultConfig::quiet(chaos)
    };
    e.set_fault_context(FaultContext::new(stormy, RecoveryPolicy::default()));
    e.session().run_on(QUERIES[1], AccessPath::Rm).unwrap();
}

/// The headline determinism contract: two engines built from the same
/// seeds, run through the same mixed workload at the same core count,
/// export **byte-identical** query-log, workload-report, and calibration
/// JSON. Reading the log mid-workload is free — it must not perturb the
/// simulated clock or any later record.
#[test]
fn querylog_and_calib_exports_are_byte_identical_across_engines() {
    let chaos = seed();
    for &cores in &core_grid() {
        let mut a = engine(cores);
        let mut b = engine(cores);
        run_workload(&mut a, chaos);
        // Engine B's log is exported (and re-exported) between queries;
        // recording and export are host-side bookkeeping, so the bytes
        // still match an engine that was never observed mid-flight.
        let _ = b.querylog().to_json();
        run_workload(&mut b, chaos);
        let _ = b.workload_report().to_json();
        assert_eq!(
            a.querylog().to_json(),
            b.querylog().to_json(),
            "query-log JSON diverged at {cores} cores (seed {chaos})"
        );
        assert_eq!(
            a.workload_report().to_json(),
            b.workload_report().to_json(),
            "workload report diverged at {cores} cores (seed {chaos})"
        );
        assert_eq!(
            a.calib().to_json(),
            b.calib().to_json(),
            "calibration ledger diverged at {cores} cores (seed {chaos})"
        );
        assert_eq!(a.querylog().dropped(), 0, "workload fits the ring");
    }
}

/// Tentpole invariant: on every path and core count, a cold run's
/// per-operator estimates sum bit-exactly (`f64::to_bits`) to the path
/// estimate the optimizer priced — the split loses nothing to rounding.
/// A cache hit replays memoized rows and carries no operator tree.
#[test]
fn per_op_estimates_sum_bit_exactly_to_the_path_estimate() {
    for &cores in &core_grid() {
        let mut e = engine(cores);
        for sql in QUERIES {
            for path in [AccessPath::Row, AccessPath::Col, AccessPath::Rm] {
                let mut s = e.session();
                let cold = s.run_on(sql, path).unwrap();
                assert!(!cold.cache_hit);
                assert!(!cold.ops.is_empty(), "{path:?}: cold run must carry ops");
                let sum: f64 = cold.ops.iter().map(|o| o.est_ns).sum();
                let est = cold.cost.ns(cold.path).unwrap();
                assert_eq!(
                    sum.to_bits(),
                    est.to_bits(),
                    "{path:?} at {cores} cores: op estimates {sum} != path estimate {est}"
                );
                let bsum: f64 = cold.ops.iter().map(|o| o.est_bytes).sum();
                let best = cold.cost.bytes(cold.path).unwrap();
                assert_eq!(
                    bsum.to_bits(),
                    best.to_bits(),
                    "{path:?} at {cores} cores: op byte estimates lost precision"
                );
                let warm = s.run_on(sql, path).unwrap();
                assert!(warm.cache_hit);
                assert!(warm.ops.is_empty(), "{path:?}: a hit replays, no op tree");
            }
        }
    }
}

/// Calibration convergence, on real observations: N fresh identical
/// engines each make one clean cold observation of the same
/// (table, geometry, path) key. Determinism makes those observations
/// bit-identical, and the ledger's update rule (`mean += (x-mean)/n`,
/// `ewma += alpha*(x-ewma)`) is exactly stationary under identical
/// inputs — so folding them into one ledger converges mean == EWMA to
/// the bit. Cache hits are recorded in the query log but never feed the
/// ledger; repeated cold runs *within* one engine keep observing (the
/// simulated hierarchy is stateful, so their errors legitimately drift).
#[test]
fn calibration_converges_and_cache_hits_never_calibrate() {
    const REPS: u64 = 4;
    let mut samples = Vec::new();
    for _ in 0..REPS {
        let mut e = engine(2);
        e.session().run_on(QUERIES[1], AccessPath::Col).unwrap();
        assert_eq!(e.calib().len(), 1, "one (table, geometry, path) key");
        let (key, entry) = e
            .calib()
            .entries()
            .next()
            .map(|(k, v)| (k.to_string(), *v))
            .unwrap();
        assert!(key.starts_with("lineitem/"), "key carries the table: {key}");
        assert!(key.ends_with("/col"), "key carries the path: {key}");
        assert_eq!(entry.runs, 1);
        samples.push((key, entry.mean_rel_err_ns, entry.mean_rel_err_bytes));
    }
    let (key, ns0, by0) = samples[0].clone();
    for (k, ns, by) in &samples {
        assert_eq!(*k, key);
        assert_eq!(
            ns.to_bits(),
            ns0.to_bits(),
            "cold observations must be identical"
        );
        assert_eq!(
            by.to_bits(),
            by0.to_bits(),
            "cold observations must be identical"
        );
    }
    let mut ledger = fabric_sim::CalibLedger::default();
    for (k, ns, by) in &samples {
        ledger.observe(k, *ns, *by);
    }
    let entry = ledger.get(&key).unwrap();
    assert_eq!(entry.runs, REPS);
    assert_eq!(
        entry.mean_rel_err_ns.to_bits(),
        entry.ewma_rel_err_ns.to_bits(),
        "identical observations must converge mean == EWMA (ns)"
    );
    assert_eq!(
        entry.mean_rel_err_bytes.to_bits(),
        entry.ewma_rel_err_bytes.to_bits(),
        "identical observations must converge mean == EWMA (bytes)"
    );

    // Within one engine: repeated cold runs (cache cleared between reps)
    // keep advancing the run counter, while a warm hit is logged but
    // does not observe.
    let mut e = engine(2);
    for rep in 1..=3u64 {
        e.session().run_on(QUERIES[1], AccessPath::Col).unwrap();
        assert_eq!(e.calib().observations(), rep);
        e.clear_op_cache();
    }
    let entry = *e.calib().get(&key).unwrap();
    assert_eq!(entry.runs, 3);
    assert!(entry.mean_rel_err_ns.is_finite() && entry.ewma_rel_err_ns.is_finite());
    e.session().run_on(QUERIES[1], AccessPath::Col).unwrap(); // warm the cache
    let before = e.calib().observations();
    let warm = e.session().run_on(QUERIES[1], AccessPath::Col).unwrap();
    assert!(warm.cache_hit);
    assert_eq!(e.calib().observations(), before, "hits never calibrate");
    let last = e.querylog().records().last().unwrap();
    assert!(last.cache_hit, "the hit itself is still in the log");
}

/// Degraded and fault-injected runs are quarantined from the ledger (a
/// storm-skewed observation would poison the cost model) yet fully
/// recorded in the log with their provenance: the planned path, the path
/// degraded from, and the injected-fault count.
#[test]
fn degraded_runs_are_logged_with_provenance_but_never_calibrate() {
    let mut e = engine(2);
    let cfg = FaultConfig {
        rm_timeout_prob: 1.0,
        ..FaultConfig::quiet(seed())
    };
    e.set_fault_context(FaultContext::new(cfg, RecoveryPolicy::default()));
    let out = e.session().run_on(QUERIES[1], AccessPath::Rm).unwrap();
    assert_eq!(out.degraded_from, Some(AccessPath::Rm));
    assert!(e.calib().is_empty(), "a degraded run must not calibrate");
    let rec = e.querylog().records().last().unwrap();
    assert_eq!(rec.degraded_from.as_deref(), Some("Rm"));
    assert!(!rec.cache_hit, "an armed fault plan bypasses the cache");
    assert_eq!(
        e.querylog().total_recorded(),
        1,
        "the degraded run is logged"
    );
}
