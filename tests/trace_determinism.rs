//! fabric-obs guarantees, end to end: deterministic traces under chaos,
//! bounded ring overflow, validator round-trips, and the zero-cost
//! promise of the no-op recorder.
//!
//! The tracer stamps events with the simulated cycle clock and never
//! advances it, so a trace is a pure function of (workload, platform
//! config, fault seed): two runs with the same `FABRIC_CHAOS_SEED` and
//! fault plan must export byte-identical JSON and metrics snapshots.

use durability::DurabilityConfig;
use fabric_sim::{
    parse_json, validate_chrome_trace, FaultConfig, Json, MemoryHierarchy, NoopRecorder,
    RecoveryPolicy, RingRecorder, SamplingProfiler, SimConfig,
};
use fabric_types::{ColumnType, Schema, Value};
use mvcc::DurableStore;
use query::{AccessPath, Engine, FaultContext};
use rowstore::RowTable;

/// Default sweep seed; override with `FABRIC_CHAOS_SEED`.
const DEFAULT_SEED: u64 = 0xFA_B51C;
const ROWS: usize = 4_096;
const SQL: &str = "SELECT c0, c5 FROM t WHERE c0 < 1000000";

fn seed() -> u64 {
    std::env::var("FABRIC_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Wide rows-only table the optimizer routes to RM (16 × i64).
fn engine() -> Engine {
    let mut engine = Engine::new(SimConfig::zynq_a53());
    let names: Vec<(String, ColumnType)> = (0..16)
        .map(|i| (format!("c{i}"), ColumnType::I64))
        .collect();
    let pairs: Vec<(&str, ColumnType)> = names.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    let schema = Schema::from_pairs(&pairs);
    let mut rt = RowTable::create(engine.mem(), schema, ROWS).unwrap();
    for i in 0..ROWS as i64 {
        let row: Vec<Value> = (0..16).map(|j| Value::I64(i * 16 + j)).collect();
        rt.load(engine.mem(), &row).unwrap();
    }
    engine.register_rows("t", rt);
    engine
}

/// A chaos-seeded resilient sweep under a recorder of the given capacity:
/// returns (chrome trace JSON, metrics snapshot JSON, total rows out,
/// faults injected by the plan).
fn chaos_run(
    cfg: FaultConfig,
    queries: usize,
    ring_capacity: usize,
) -> (String, String, usize, u64) {
    let mut engine = engine();
    engine.set_fault_context(FaultContext::new(cfg, RecoveryPolicy::default()));
    engine
        .mem()
        .set_recorder(Box::new(RingRecorder::new(ring_capacity)));
    let mut rows_out = 0usize;
    for _ in 0..queries {
        let out = engine.session().run(SQL).expect("resilient");
        rows_out += out.rows.len();
    }
    let trace = engine
        .mem()
        .export_trace()
        .expect("ring recorder exports a trace");
    let metrics = engine.mem_ref().metrics().snapshot().to_json();
    let injected = engine.fault_context().plan.stats().total();
    (trace, metrics, rows_out, injected)
}

/// High-but-probabilistic fault rates: enough draws over 8 queries that a
/// fault-free sweep is astronomically unlikely for any seed.
fn stormy(sweep_seed: u64) -> FaultConfig {
    FaultConfig {
        rm_stall_prob: 0.35,
        rm_stall_ns: 2_500.0,
        rm_timeout_prob: 0.35,
        rm_corrupt_prob: 0.35,
        ..FaultConfig::quiet(sweep_seed)
    }
}

/// A dead device: every delivery times out, so every query either retries
/// to exhaustion and degrades or is skipped by the open circuit breaker —
/// guaranteed fault instants in the trace, independent of the seed.
fn dead_device(sweep_seed: u64) -> FaultConfig {
    FaultConfig {
        rm_timeout_prob: 1.0,
        ..FaultConfig::quiet(sweep_seed)
    }
}

#[test]
fn chaos_seeded_trace_is_bit_identical_across_runs() {
    let s = seed();
    let (t1, m1, r1, inj1) = chaos_run(stormy(s), 8, 1 << 14);
    let (t2, m2, r2, inj2) = chaos_run(stormy(s), 8, 1 << 14);
    assert!(inj1 > 0, "no faults injected (seed {s}) — run is vacuous");
    assert_eq!(inj1, inj2, "fault schedules diverged (seed {s})");
    assert_eq!(r1, r2, "answers diverged (seed {s})");
    assert_eq!(t1, t2, "trace streams diverged (seed {s})");
    assert_eq!(m1, m2, "metrics snapshots diverged (seed {s})");
    // The faults left a mark: the stormy trace differs from a quiet run's.
    let (quiet, ..) = chaos_run(FaultConfig::quiet(s), 8, 1 << 14);
    assert_ne!(t1, quiet, "injected faults are invisible in the trace");
}

#[test]
fn exported_trace_round_trips_through_the_validator() {
    let (trace, metrics, _, _) = chaos_run(dead_device(seed()), 8, 1 << 14);
    let summary = validate_chrome_trace(&trace).expect("structurally valid trace");
    assert!(summary.events > 0);
    assert_eq!(
        summary.begins, summary.ends,
        "unbalanced spans even though every error path closes its span"
    );
    assert!(
        summary.instants > 0,
        "dead-device run must emit degrade/breaker instants"
    );
    assert_eq!(summary.dropped, 0, "16 Ki ring must not wrap on this run");
    // The metrics snapshot uses the same parser-grade JSON.
    parse_json(&metrics).expect("metrics snapshot parses");
}

#[test]
fn ring_overflow_counts_drops_and_never_grows() {
    let capacity = 8;
    let (trace, ..) = chaos_run(FaultConfig::quiet(seed()), 4, capacity);
    // Wrap-around cuts the oldest events (possibly a span's `B`), so full
    // chrome validation does not apply — but the JSON must still parse,
    // the ring must hold at most `capacity` events, and the drop count
    // must make the truncation visible instead of silent.
    let doc = parse_json(&trace).expect("wrapped trace still parses");
    let dropped = doc
        .get("otherData")
        .and_then(|o| o.get("dropped"))
        .and_then(Json::as_num)
        .expect("dropped count exported") as u64;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array")
        .len();
    assert!(dropped > 0, "a 4-query run must overflow an 8-event ring");
    assert!(
        events <= capacity,
        "ring exceeded its capacity: {events} > {capacity}"
    );
}

/// Ops and checkpoint cadence of the deterministic write-path workload:
/// small enough to stay fast, dense enough that crash sites land on both
/// WAL appends and checkpoint writes, and that the post-recovery commits
/// cross a checkpoint boundary.
const D_OPS: i64 = 10;
const D_CKPT: u64 = 2;

/// Crash-and-recover workload on one hierarchy: commit under a device
/// armed to cut power at durable write `crash_at`, replay the surviving
/// image on the *same* machine (so one trace covers the WAL appends, the
/// checkpoint writes, and the replay phases), then commit past a
/// checkpoint boundary post-recovery.
fn durable_workload(m: &mut MemoryHierarchy, seed: u64, crash_at: u64) {
    let schema = Schema::from_pairs(&[("k", ColumnType::I64), ("v", ColumnType::I64)]);
    let cfg =
        DurabilityConfig::quiet(seed).with_faults(FaultConfig::quiet(seed).with_crash_at(crash_at));
    let mut s = DurableStore::create(m, schema.clone(), 128, cfg, D_CKPT).expect("create");
    let mut crashed = false;
    for i in 0..D_OPS {
        let mut txn = s.begin();
        txn.insert(vec![Value::I64(i), Value::I64(i * 10)]);
        match s.commit(m, txn) {
            Ok(_) => {
                if s.take_checkpoint_failure().is_some() {
                    crashed = true;
                    break;
                }
            }
            Err(_) => {
                crashed = true;
                break;
            }
        }
    }
    assert!(
        crashed,
        "crash_at={crash_at} must cut within {D_OPS} commits"
    );
    let image = s.crash_image();
    let (mut r, report) = DurableStore::replay(
        m,
        schema,
        128,
        image,
        DurabilityConfig::quiet(seed ^ 0xD0),
        D_CKPT,
    )
    .expect("replay");
    for i in 0..2 * D_CKPT as i64 {
        let mut txn = r.begin();
        txn.insert(vec![Value::I64(1000 + i), Value::I64(i)]);
        r.commit(m, txn).expect("post-recovery commit");
    }
    assert!(r.snapshot_ts() > report.watermark);
}

/// Everything observable a write-path run produces, for bit-comparison.
struct WritePathRun {
    trace: String,
    metrics: String,
    folded: String,
    postmortems: Vec<String>,
    wal_appends: u64,
    replay_records: u64,
}

fn write_path_run(seed: u64, crash_at: u64, period: u64) -> WritePathRun {
    let mut m = MemoryHierarchy::new(SimConfig::zynq_a53());
    m.set_recorder(Box::new(SamplingProfiler::wrapping(
        Box::new(RingRecorder::new(1 << 15)),
        period,
    )));
    durable_workload(&mut m, seed, crash_at);
    WritePathRun {
        trace: m.export_trace().expect("ring exports a trace"),
        metrics: m.metrics().snapshot().to_json(),
        folded: m.export_folded().expect("profiler exports folded stacks"),
        wal_appends: m.metrics().counter("durability.wal.appends"),
        replay_records: m.metrics().counter("durability.replay.records"),
        postmortems: m.take_postmortems().iter().map(|p| p.to_json()).collect(),
    }
}

/// The write-path grid: for every (crash site, sampling period) cell, two
/// chaos-seeded runs must agree by the bit on the trace, the metrics
/// snapshot, the folded profile, and every postmortem artifact — and the
/// one trace must be validator-clean while covering the WAL append,
/// checkpoint write, and replay-phase spans.
#[test]
fn write_path_trace_and_profile_are_bit_identical_across_runs() {
    let s = seed();
    for crash_at in [2u64, 5] {
        for period in [128u64, 1024] {
            let ctx = format!("crash_at={crash_at} period={period} seed={s}");
            let a = write_path_run(s, crash_at, period);
            let b = write_path_run(s, crash_at, period);
            assert_eq!(a.trace, b.trace, "trace diverged ({ctx})");
            assert_eq!(a.metrics, b.metrics, "metrics diverged ({ctx})");
            assert_eq!(a.folded, b.folded, "folded profile diverged ({ctx})");
            assert_eq!(a.postmortems, b.postmortems, "postmortems diverged ({ctx})");

            let summary = validate_chrome_trace(&a.trace).expect("valid trace");
            assert_eq!(summary.begins, summary.ends, "unbalanced spans ({ctx})");
            for span in [
                "wal-append",
                "ckpt-write",
                "replay-scan",
                "replay-ckpt-load",
                "replay-reapply",
            ] {
                assert!(a.trace.contains(span), "trace missing `{span}` ({ctx})");
            }
            assert!(!a.folded.is_empty(), "empty folded profile ({ctx})");
            assert!(a.wal_appends > 0, "no WAL appends counted ({ctx})");
            assert!(a.replay_records > 0, "no replay records counted ({ctx})");

            // The recovery postmortem embeds the RecoveryReport context.
            let recovery = a
                .postmortems
                .iter()
                .find(|p| {
                    p.contains("\"reason\":\"crash-recovery\"")
                        || p.contains("\"reason\":\"recovery-degraded\"")
                })
                .unwrap_or_else(|| panic!("no recovery postmortem ({ctx})"));
            assert!(
                recovery.contains("watermark"),
                "recovery postmortem lacks the report context ({ctx})"
            );
        }
    }
}

/// The profiler's zero-cost promise on the write path: wrapping the
/// recorder in a `SamplingProfiler` must not move the simulated clock by
/// a single cycle relative to a `NoopRecorder` run — and the sample total
/// must reconcile exactly with the cycles it observed.
#[test]
fn sampling_profiler_is_zero_cost_on_the_simulated_clock() {
    let s = seed();
    let mut base = MemoryHierarchy::new(SimConfig::zynq_a53());
    base.set_recorder(Box::new(NoopRecorder));
    durable_workload(&mut base, s, 5);
    let base_now = base.now();

    let mut prof = MemoryHierarchy::new(SimConfig::zynq_a53());
    prof.set_recorder(Box::new(SamplingProfiler::wrapping(
        Box::new(RingRecorder::new(1 << 15)),
        256,
    )));
    durable_workload(&mut prof, s, 5);
    assert_eq!(
        prof.now(),
        base_now,
        "profiler advanced the simulated clock"
    );

    let stats = prof.profile_stats().expect("profiler reports stats");
    assert!(stats.samples > 0, "profiled run took no samples");
    assert_eq!(
        stats.samples,
        (stats.end - stats.start) / stats.period,
        "sample total must reconcile with observed cycles"
    );
}

#[test]
fn noop_recorder_run_matches_uninstrumented_cycle_counts_exactly() {
    // Baseline: the hierarchy as constructed (its default recorder).
    let mut base_engine = engine();
    let base = base_engine
        .session()
        .run_on(SQL, AccessPath::Rm)
        .expect("rm");
    let base_stats = base_engine.mem_ref().stats();

    // An explicit no-op recorder must not perturb a single cycle.
    let mut noop_engine = engine();
    noop_engine.mem().set_recorder(Box::new(NoopRecorder));
    let noop = noop_engine
        .session()
        .run_on(SQL, AccessPath::Rm)
        .expect("rm");
    assert_eq!(noop.ns, base.ns, "no-op recorder changed simulated time");
    assert_eq!(
        noop_engine.mem_ref().stats(),
        base_stats,
        "no-op recorder changed hierarchy stats"
    );
    assert_eq!(noop.rows, base.rows);

    // Full tracing observes the same clock: recording never advances it.
    let mut traced_engine = engine();
    traced_engine
        .mem()
        .set_recorder(Box::new(RingRecorder::new(1 << 14)));
    let traced = traced_engine
        .session()
        .run_on(SQL, AccessPath::Rm)
        .expect("rm");
    assert_eq!(traced.ns, base.ns, "tracing advanced the simulated clock");
    assert_eq!(
        traced_engine.mem_ref().stats(),
        base_stats,
        "tracing changed hierarchy stats"
    );
    let summary = validate_chrome_trace(&traced_engine.mem().export_trace().unwrap()).unwrap();
    assert!(summary.begins > 0, "traced run recorded no spans");
}
