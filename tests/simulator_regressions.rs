//! Deterministic simulator tests that always run, independent of the
//! `proptest` feature: the replay-determinism check that used to live in
//! `simulator_properties.rs`, plus plain-`#[test]` ports of every failure
//! case proptest has found (the seeds recorded in
//! `simulator_properties.proptest-regressions`), so the regressions stay
//! covered in offline builds where proptest is unavailable.

use fabric_sim::{MemoryHierarchy, SimConfig};

/// Deterministic replay: identical access sequences produce identical
/// simulated times and statistics.
#[test]
fn simulation_is_deterministic() {
    let run = || {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let base = mem.alloc(1 << 20, 64).unwrap();
        for i in 0..4096u64 {
            mem.touch_read(base + (i * 97) % (1 << 20), 16);
            mem.cpu(3);
        }
        (mem.now(), mem.stats())
    };
    let (t1, s1) = run();
    let (t2, s2) = run();
    assert_eq!(t1, t2);
    assert_eq!(s1, s2);
}

/// Shared body of `gather_and_serial_reads_agree_on_traffic` from
/// `simulator_properties.rs`, extracted so regression seeds replay as
/// plain tests. `spans` uses the property's encoding: each `(off, len)`
/// becomes a read of `len` bytes at byte offset `off * 16`.
fn check_gather_and_serial_agree(spans: &[(u64, usize)]) {
    let build = || {
        let mut mem = MemoryHierarchy::new(SimConfig::tiny());
        let base = mem.alloc(64 * 64 * 8, 64).unwrap();
        (mem, base)
    };
    let parts: Vec<(u64, usize)> = spans.iter().map(|&(off, len)| (off * 16, len)).collect();

    let (mut serial, base) = build();
    for &(off, len) in &parts {
        serial.touch_read(base + off, len);
    }
    let (mut gather, base2) = build();
    let abs: Vec<(u64, usize)> = parts.iter().map(|&(o, l)| (base2 + o, l)).collect();
    gather.touch_read_gather(&abs);

    let s = serial.stats();
    let g = gather.stats();
    assert_eq!(s.bytes_read, g.bytes_read, "bytes diverge for {spans:?}");
    assert_eq!(
        s.line_accesses, g.line_accesses,
        "line accesses diverge for {spans:?}"
    );
    // Gather may only be cheaper by overlapping misses, or dearer by its
    // small per-miss issue slot — never wildly different.
    let issue_slack = g.demand_misses * SimConfig::tiny().l1_hit_cycles;
    assert!(
        gather.now() <= serial.now() + issue_slack,
        "gather {} vs serial {} (+{}) for {spans:?}",
        gather.now(),
        serial.now(),
        issue_slack
    );
}

/// Port of the proptest-regressions seed
/// `cc262f353088edfd960371e3fa74c1b8d610bf80834dcb81978db5eb2ab7f782`,
/// which shrank to `spans = [(0, 1)]`: a single one-byte read. The original
/// failure was a timing asymmetry on the smallest possible gather — the
/// gather path must not be slower than one serial read plus its issue slot.
#[test]
fn regression_single_byte_gather_matches_serial() {
    check_gather_and_serial_agree(&[(0, 1)]);
}

/// Neighborhood of the shrunken seed: tiny spans at the base of the arena,
/// where any fixed per-gather setup cost is proportionally largest.
#[test]
fn regression_small_span_gathers_match_serial() {
    check_gather_and_serial_agree(&[(0, 1), (0, 1)]);
    check_gather_and_serial_agree(&[(0, 16)]);
    check_gather_and_serial_agree(&[(1, 1)]);
    check_gather_and_serial_agree(&[(0, 1), (4, 1), (8, 1)]);
    check_gather_and_serial_agree(&[(255, 31)]);
}
