//! Edge cases of the timed memory interface that the engines rely on but
//! exercise only implicitly.

use fabric_sim::{MemoryHierarchy, SimConfig};

fn mem() -> MemoryHierarchy {
    MemoryHierarchy::new(SimConfig::zynq_a53())
}

#[test]
fn reads_straddling_line_boundaries_touch_both_lines() {
    let mut m = mem();
    let p = m.alloc(256, 64).unwrap();
    let before = m.stats();
    m.touch_read(p + 60, 8); // 4 bytes in line 0, 4 in line 1
    let d = m.stats().delta_since(&before);
    assert_eq!(d.line_accesses, 2);
    assert_eq!(d.bytes_read, 8);
}

#[test]
fn writes_are_timed_like_reads_and_persist() {
    let mut m = mem();
    let p = m.alloc(128, 64).unwrap();
    let t0 = m.now();
    m.write(p + 32, &[9u8; 64]); // straddles two lines
    assert!(m.now() > t0);
    assert_eq!(m.stats().bytes_written, 64);
    assert_eq!(m.read_untimed(p + 32, 64), &[9u8; 64]);
}

#[test]
fn l1_conflict_misses_emerge_from_associativity() {
    // 32 KB 4-way L1: five lines mapping to the same set cannot all stay
    // resident; the paper's cache-pollution argument depends on this.
    let mut m = mem();
    let set_stride = 8 * 1024; // 128 sets * 64 B
    let p = m.alloc(set_stride * 8, 64).unwrap();
    // Warm five conflicting lines.
    for i in 0..5u64 {
        m.touch_read(p + i * set_stride as u64, 8);
    }
    // Re-touch the first: it was evicted from L1 (4 ways), so this is not
    // an L1 hit.
    let before = m.stats();
    m.touch_read(p, 8);
    let d = m.stats().delta_since(&before);
    assert_eq!(d.l1_hits, 0, "{d:?}");
}

#[test]
fn dram_demand_latency_exceeds_l2_hit_by_design() {
    let mut m = mem();
    let p = m.alloc(1 << 16, 64).unwrap();
    // Cold miss.
    let t0 = m.now();
    m.touch_read(p, 8);
    let miss = m.now() - t0;
    // Immediate re-read: L1 hit.
    let t0 = m.now();
    m.touch_read(p, 8);
    let hit = m.now() - t0;
    assert!(
        miss > hit * 10,
        "demand miss ({miss}) should dwarf an L1 hit ({hit})"
    );
}

#[test]
fn arena_allocations_are_line_aligned_when_requested() {
    let mut m = mem();
    for _ in 0..10 {
        let p = m.alloc(17, 64).unwrap();
        assert_eq!(p % 64, 0);
    }
}

#[test]
fn stats_bytes_track_payload_not_lines() {
    let mut m = mem();
    let p = m.alloc(1024, 64).unwrap();
    m.touch_read(p, 3);
    m.touch_read(p + 100, 5);
    assert_eq!(m.stats().bytes_read, 8);
    // But line traffic is line-granular.
    assert!(m.stats().line_accesses >= 2);
}
