//! Cross-crate pipeline: Relational Storage feeding Relational Memory
//! (the paper's open question Q3 — both fabrics cooperating): a table on
//! flash is fetched through the SSD controller, landed in simulated main
//! memory as row-oriented base data, and then carved up by the RM device.

use fabric_sim::{MemoryHierarchy, SimConfig};
use fabric_types::{FieldSlice, Geometry};
use relational_fabric::prelude::*;
use relational_fabric::types::Predicate;

#[test]
fn flash_to_memory_to_ephemeral_columns() {
    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    let mut dev = SsdDevice::new(RsConfig::smartssd(), &mem);

    // 10k rows of 8 i64 columns on flash, c_j(i) = i * 8 + j.
    let rows = 10_000usize;
    let row_width = 64usize;
    let mut bytes = Vec::with_capacity(rows * row_width);
    for i in 0..rows {
        for j in 0..8usize {
            bytes.extend_from_slice(&((i * 8 + j) as i64).to_le_bytes());
        }
    }
    let stored = dev.store_rows(&bytes, row_width).unwrap();

    // Fetch everything to host memory (the storage fabric could also
    // project here; this test lands full rows to serve as RM base data).
    let (raw, stats) = dev.fetch_raw(&mut mem, &stored).unwrap();
    assert_eq!(stats.rows_scanned as usize, rows);

    // Land it in the arena as a row table region.
    let base = mem.alloc(raw.len(), 64).unwrap();
    mem.write_untimed(base, &raw);

    // Carve out columns 1 and 6 with the in-memory fabric.
    let fields = vec![
        FieldSlice::new(1, 8, ColumnType::I64),
        FieldSlice::new(6, 48, ColumnType::I64),
    ];
    let g = Geometry::packed(base, row_width, rows, fields);
    let mut eph = EphemeralColumns::configure(&mut mem, RmConfig::prototype(), g).unwrap();
    let mut sum = 0i64;
    let mut seen = 0usize;
    while let Some(b) = eph.next_batch(&mut mem) {
        for r in 0..b.len() {
            let i = seen + r;
            assert_eq!(b.i64_at(r, 0), (i * 8 + 1) as i64);
            assert_eq!(b.i64_at(r, 1), (i * 8 + 6) as i64);
            sum += b.i64_at(r, 0) + b.i64_at(r, 1);
        }
        seen += b.len();
    }
    assert_eq!(seen, rows);
    let expect: i64 = (0..rows as i64).map(|i| (i * 8 + 1) + (i * 8 + 6)).sum();
    assert_eq!(sum, expect);
}

#[test]
fn near_storage_projection_then_rm_consumption_agree_with_host_path() {
    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    let mut dev = SsdDevice::new(RsConfig::smartssd(), &mem);

    let rows = 5_000usize;
    let mut bytes = Vec::with_capacity(rows * 16);
    for i in 0..rows {
        bytes.extend_from_slice(&(i as i64).to_le_bytes());
        bytes.extend_from_slice(&((i % 100) as i64).to_le_bytes());
    }
    let stored = dev.store_rows(&bytes, 16).unwrap();

    // Near-data projection of column 1.
    let (near, _) = dev
        .fetch_geometry(
            &mut mem,
            &stored,
            vec![FieldSlice::new(1, 8, ColumnType::I64)],
            Predicate::always_true(),
        )
        .unwrap();

    // Host path: fetch raw, extract on the CPU.
    let (raw, _) = dev.fetch_raw(&mut mem, &stored).unwrap();
    let host: Vec<u8> = (0..rows)
        .flat_map(|i| raw[i * 16 + 8..i * 16 + 16].to_vec())
        .collect();
    assert_eq!(near, host);
}
