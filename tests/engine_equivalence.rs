//! Cross-crate equivalence: every access path returns the same answers on
//! the same logical data, for microbenchmark queries, TPC-H, and the SQL
//! front end.

use fabric_sim::{MemoryHierarchy, SimConfig};
use relational_fabric::prelude::*;
use relational_fabric::sql::AccessPath;
use relational_fabric::workload::micro::{run_col, run_rm, run_rm_pushdown, run_row, MicroQuery};
use relational_fabric::workload::{queries, Lineitem, SyntheticData};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0)
}

#[test]
fn micro_queries_agree_across_engines_and_pushdown() {
    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    let d = SyntheticData::build(&mut mem, 10_000, 16, 0xE0).unwrap();
    let grid = [
        MicroQuery::projectivity(1),
        MicroQuery::projectivity(11),
        MicroQuery::proj_sel(3, 3, 16, 0.5),
        MicroQuery::proj_sel(10, 10, 16, 0.95),
        MicroQuery::proj_sel(1, 1, 16, 0.0),
    ];
    for q in grid {
        let row = run_row(&mut mem, &d.rows, &q).unwrap();
        let col = run_col(&mut mem, &d.cols, &q).unwrap();
        let rm = run_rm(&mut mem, &d.rows, &q, RmConfig::prototype()).unwrap();
        let push = run_rm_pushdown(&mut mem, &d.rows, &q, RmConfig::prototype()).unwrap();
        assert_eq!(row.checksum, col.checksum, "{q:?}");
        assert_eq!(row.checksum, rm.checksum, "{q:?}");
        assert_eq!(row.checksum, push.checksum, "{q:?}");
    }
}

#[test]
fn tpch_q1_q6_agree_across_engines() {
    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    let li = Lineitem::generate(&mut mem, 30_000, 0xE1).unwrap();
    let (r1, c1, m1) = (
        queries::q1_row(&mut mem, &li).unwrap(),
        queries::q1_col(&mut mem, &li).unwrap(),
        queries::q1_rm(&mut mem, &li, RmConfig::prototype()).unwrap(),
    );
    assert!(close(r1.checksum, c1.checksum));
    assert!(close(r1.checksum, m1.checksum));

    let (r6, c6, m6, p6) = (
        queries::q6_row(&mut mem, &li).unwrap(),
        queries::q6_col(&mut mem, &li).unwrap(),
        queries::q6_rm(&mut mem, &li, RmConfig::prototype()).unwrap(),
        queries::q6_rm_pushdown(&mut mem, &li, RmConfig::prototype()).unwrap(),
    );
    assert!(close(r6.checksum, c6.checksum));
    assert!(close(r6.checksum, m6.checksum));
    assert!(close(r6.checksum, p6.checksum));
}

#[test]
fn sql_q6_matches_hand_written_engines() {
    let mut engine = Engine::new(SimConfig::zynq_a53());
    let li = Lineitem::generate(engine.mem(), 20_000, 0xE2).unwrap();
    let hand = queries::q6_row(engine.mem(), &li).unwrap();

    engine.register("lineitem", li.rows, li.cols);
    let sql_text = "SELECT sum(l_extendedprice * l_discount) FROM lineitem \
                    WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
                    AND l_discount >= 0.05 AND l_discount <= 0.07 AND l_quantity < 24";
    let mut session = engine.session();
    for path in [AccessPath::Row, AccessPath::Col, AccessPath::Rm] {
        let out = session.run_on(sql_text, path).unwrap();
        let revenue = out.rows[0][0].as_f64().unwrap();
        assert!(
            close(revenue, hand.checksum),
            "{path}: {revenue} vs {}",
            hand.checksum
        );
    }
}

#[test]
fn sql_q1_matches_across_paths() {
    let mut engine = Engine::new(SimConfig::zynq_a53());
    let li = Lineitem::generate(engine.mem(), 20_000, 0xE3).unwrap();
    engine.register("lineitem", li.rows, li.cols);
    let sql_text = "SELECT l_returnflag, l_linestatus, sum(l_quantity), \
                    sum(l_extendedprice), sum(l_extendedprice * (1 - l_discount)), \
                    avg(l_quantity), count(*) \
                    FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' \
                    GROUP BY l_returnflag, l_linestatus";
    let mut session = engine.session();
    let row = session.run_on(sql_text, AccessPath::Row).unwrap();
    let col = session.run_on(sql_text, AccessPath::Col).unwrap();
    let rm = session.run_on(sql_text, AccessPath::Rm).unwrap();
    assert_eq!(row.rows.len(), 4); // A/F, N/F, N/O, R/F
    assert_eq!(row.rows, col.rows);
    assert_eq!(row.rows, rm.rows);
}

#[test]
fn rm_stats_account_for_all_rows() {
    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    let d = SyntheticData::build(&mut mem, 5000, 16, 0xE4).unwrap();
    let g = d.rows.geometry(&[0, 1, 2]).unwrap();
    let mut eph = EphemeralColumns::configure(&mut mem, RmConfig::prototype(), g).unwrap();
    let mut delivered = 0;
    while let Some(b) = eph.next_batch(&mut mem) {
        delivered += b.len();
    }
    let s = eph.stats();
    assert_eq!(delivered, 5000);
    assert_eq!(s.rows_scanned, 5000);
    assert_eq!(s.rows_emitted, 5000);
    // 3 x i32 = 12 bytes/row -> 938 output lines for 5000 rows.
    assert_eq!(s.output_lines, (5000u64 * 12).div_ceil(64));
}
