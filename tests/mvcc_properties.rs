//! Property-based testing of snapshot isolation: a random history of
//! inserts/updates/deletes is applied both to the versioned table and to a
//! shadow model that records the logical state after every commit; every
//! snapshot of the real table must match the model exactly, through both
//! the software and the in-fabric visibility paths — and keep matching
//! after vacuum.

#![cfg(feature = "proptest")]

use fabric_sim::{MemoryHierarchy, SimConfig};
use proptest::prelude::*;
use relational_fabric::mvcc::scan::{collect_visible, rm_visible_sum, sw_visible_sum};
use relational_fabric::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64),
    Update(usize, i64),
    Delete(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..1000).prop_map(Op::Insert),
        ((0usize..64), (0i64..1000)).prop_map(|(l, v)| Op::Update(l, v)),
        (0usize..64).prop_map(Op::Delete),
    ]
}

/// The logical state (logical id -> value) after each commit timestamp.
type History = BTreeMap<u64, BTreeMap<usize, i64>>;

fn run_history(ops: &[Op]) -> (MemoryHierarchy, VersionedTable, TxnManager, History) {
    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    let schema = Schema::from_pairs(&[("k", ColumnType::I64), ("v", ColumnType::I64)]);
    let mut table = VersionedTable::create(&mut mem, schema, ops.len() * 2 + 8).unwrap();
    let tm = TxnManager::new();
    let mut state: BTreeMap<usize, i64> = BTreeMap::new();
    let mut history = History::new();
    history.insert(0, state.clone());

    for op in ops {
        let mut txn = tm.begin();
        let mut model_effect: Option<Box<dyn FnOnce(&mut BTreeMap<usize, i64>, &[usize])>> = None;
        match op {
            Op::Insert(v) => {
                txn.insert(vec![Value::I64(*v), Value::I64(*v)]);
                let v = *v;
                model_effect = Some(Box::new(move |m, inserted| {
                    m.insert(inserted[0], v);
                }));
            }
            Op::Update(l, v) => {
                if state.contains_key(l) {
                    txn.update(*l, vec![(1, Value::I64(*v))]);
                    let (l, v) = (*l, *v);
                    model_effect = Some(Box::new(move |m, _| {
                        m.insert(l, v);
                    }));
                }
            }
            Op::Delete(l) => {
                if state.contains_key(l) {
                    txn.delete(*l);
                    let l = *l;
                    model_effect = Some(Box::new(move |m, _| {
                        m.remove(&l);
                    }));
                }
            }
        }
        if let Some(effect) = model_effect {
            let receipt = tm.commit(&mut mem, &mut table, txn).unwrap();
            effect(&mut state, &receipt.inserted);
            history.insert(receipt.commit_ts, state.clone());
        }
    }
    (mem, table, tm, history)
}

/// The visible rows of the real table at `ts`, as (logical key ordering is
/// not defined, so compare as multisets of (k, v)).
fn visible_multiset(mem: &mut MemoryHierarchy, table: &VersionedTable, ts: u64) -> Vec<(i64, i64)> {
    let mut rows: Vec<(i64, i64)> = collect_visible(mem, table, ts)
        .unwrap()
        .into_iter()
        .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
        .collect();
    rows.sort_unstable();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshots_match_the_shadow_model(ops in proptest::collection::vec(op_strategy(), 1..48)) {
        let (mut mem, table, _tm, history) = run_history(&ops);
        for (&ts, model) in &history {
            let mut expect: Vec<(i64, i64)> = Vec::new();
            // The model stores logical-id -> v, where k == original v of the
            // insert; reconstruct (k, v) pairs through read_at.
            for (&l, &v) in model {
                let k = table.read_at(&mut mem, l, 0, ts).unwrap();
                prop_assert!(k.is_some(), "logical {l} invisible at ts {ts}");
                expect.push((k.unwrap().as_i64().unwrap(), v));
            }
            expect.sort_unstable();
            let got = visible_multiset(&mut mem, &table, ts);
            prop_assert_eq!(&got, &expect, "mismatch at ts {}", ts);
        }
    }

    #[test]
    fn hw_and_sw_visibility_agree_everywhere(
        ops in proptest::collection::vec(op_strategy(), 1..40)
    ) {
        let (mut mem, table, tm, history) = run_history(&ops);
        let mut timestamps: Vec<u64> = history.keys().copied().collect();
        timestamps.push(tm.snapshot_ts() + 5);
        for ts in timestamps {
            let (sw, n_sw) = sw_visible_sum(&mut mem, &table, 1, ts).unwrap();
            let (hw, n_hw) =
                rm_visible_sum(&mut mem, &table, 1, ts, RmConfig::prototype()).unwrap();
            prop_assert_eq!((sw, n_sw), (hw, n_hw), "paths diverge at ts {}", ts);
        }
    }

    #[test]
    fn vacuum_preserves_the_latest_snapshot(
        ops in proptest::collection::vec(op_strategy(), 1..40)
    ) {
        let (mut mem, mut table, tm, _history) = run_history(&ops);
        let ts = tm.snapshot_ts();
        let before = visible_multiset(&mut mem, &table, ts);
        table.vacuum(&mut mem, ts).unwrap();
        let after = visible_multiset(&mut mem, &table, ts);
        prop_assert_eq!(before, after);
        // Every surviving dead-version space is really gone: a second
        // vacuum removes nothing.
        prop_assert_eq!(table.vacuum(&mut mem, ts).unwrap(), 0);
    }
}
