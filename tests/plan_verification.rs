//! End-to-end negative-path tests for pre-execution plan verification:
//! each of the four canonical malformed plans must be rejected with a
//! structured diagnostic — by `query::analyze` directly, and by the
//! engine front door — without panicking anywhere in the stack.
//!
//! Malformed `BoundQuery` values cannot be produced through the SQL
//! session API, so this suite hands them to [`query::Session::run_bound`]
//! and [`query::Session::run_bound_on`]: the engine entry points for
//! plans that did not come from the parser, which must push every such
//! plan through the same `analyze` gate before it may touch an executor.

use fabric_sim::{MemoryHierarchy, SimConfig};
use fabric_types::{CmpOp, ColumnType, Expr, FabricError, FieldSlice, Geometry, Schema, Value};
use query::analyze::{analyze, PlanDiagnostic};
use query::bind::{BoundQuery, OutputItem};
use query::{AccessPath, Engine};
use relmem::{RmConfig, VerifiedGeometry};
use rowstore::RowTable;

/// Engine with one row-only table `t(id i64, flag char(1), qty f64)` and
/// a handful of rows so executors would actually run if verification let
/// a plan through.
fn setup() -> Engine {
    let mut engine = Engine::new(SimConfig::zynq_a53());
    let schema = Schema::from_pairs(&[
        ("id", ColumnType::I64),
        ("flag", ColumnType::FixedStr(1)),
        ("qty", ColumnType::F64),
    ]);
    let mut t = RowTable::create(engine.mem(), schema, 16).unwrap();
    for i in 0..10 {
        t.load(
            engine.mem(),
            &[Value::I64(i), Value::Str("A".into()), Value::F64(i as f64)],
        )
        .unwrap();
    }
    engine.register_rows("t", t);
    engine
}

fn plan(touched: Vec<usize>) -> BoundQuery {
    BoundQuery {
        table: "t".into(),
        items: (0..touched.len())
            .map(|s| OutputItem::Expr(Expr::col(s)))
            .collect(),
        touched,
        preds: vec![],
        group_by: vec![],
        order_by: vec![],
        limit: None,
    }
}

/// Both front doors must reject without panicking: `analyze` with the
/// expected diagnostic, `run_bound` / `run_bound_on` with an error.
fn assert_rejected(bound: &BoundQuery, want: impl Fn(&PlanDiagnostic) -> bool) {
    let mut engine = setup();
    let entry = engine.catalog().get("t").unwrap();
    let err = analyze(entry, bound, &RmConfig::prototype())
        .err()
        .expect("analyzer accepted a malformed plan");
    assert!(
        err.diagnostics.iter().any(want),
        "wrong diagnostics: {err:?}"
    );
    let mut session = engine.session();
    assert!(session.run_bound(bound).is_err());
    for path in [AccessPath::Row, AccessPath::Col, AccessPath::Rm] {
        assert!(session.run_bound_on(bound, path).is_err(), "{path:?} ran");
    }
}

/// Fixture 1: a column group reaching outside the schema / base row.
#[test]
fn rejects_out_of_bounds_column_group() {
    assert_rejected(&plan(vec![0, 7]), |d| {
        matches!(
            d,
            PlanDiagnostic::ProjectionColumnOutOfRange {
                column: 7,
                columns: 3
            }
        )
    });
    // The same class of defect at the geometry level: a field past the end
    // of the row is refused device admission.
    let g = Geometry::packed(0, 17, 10, vec![FieldSlice::new(0, 16, ColumnType::I64)]);
    let err = VerifiedGeometry::new(&RmConfig::prototype(), g).unwrap_err();
    assert!(
        matches!(
            err,
            FabricError::GeometryOutOfBounds {
                offset: 16,
                width: 8,
                row_width: 17
            }
        ),
        "got {err:?}"
    );
}

/// Fixture 2: two requested fields whose destination byte ranges overlap.
#[test]
fn rejects_overlapping_destinations() {
    let g = Geometry::packed(
        0,
        64,
        10,
        vec![
            FieldSlice::new(0, 0, ColumnType::I64),
            FieldSlice::new(1, 4, ColumnType::I32), // bytes 4..8 overlap 0..8
        ],
    );
    let err = VerifiedGeometry::new(&RmConfig::prototype(), g).unwrap_err();
    assert!(
        matches!(err, FabricError::InvalidGeometry(_)),
        "got {err:?}"
    );
    // And the device API front door refuses the same geometry.
    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    let base = mem.alloc(64 * 10, 64).unwrap();
    let g = Geometry::packed(
        base,
        64,
        10,
        vec![
            FieldSlice::new(0, 0, ColumnType::I64),
            FieldSlice::new(1, 4, ColumnType::I32),
        ],
    );
    assert!(relmem::EphemeralColumns::configure(&mut mem, RmConfig::prototype(), g).is_err());
}

/// Fixture 3: a predicate comparing incomparable types.
#[test]
fn rejects_type_mismatched_predicate() {
    let mut b = plan(vec![0]);
    b.preds = vec![(0, CmpOp::Eq, Value::Str("oops".into()))];
    assert_rejected(&b, |d| {
        matches!(
            d,
            PlanDiagnostic::PredicateTypeMismatch { column, literal_type, .. }
                if column == "id" && literal_type == "char(4)"
        )
    });
    let mut b = plan(vec![1]);
    b.preds = vec![(0, CmpOp::Gt, Value::F64(1.5))];
    assert_rejected(
        &b,
        |d| matches!(d, PlanDiagnostic::PredicateTypeMismatch { column, .. } if column == "flag"),
    );
}

/// Fixture 4: the same column projected into two slots.
#[test]
fn rejects_duplicate_projection_column() {
    assert_rejected(&plan(vec![2, 2]), |d| {
        matches!(d, PlanDiagnostic::DuplicateProjectionColumn { column: 2 })
    });
}

/// Sanity: a well-formed plan still verifies and runs on every path.
#[test]
fn well_formed_plan_still_runs_on_every_path() {
    let mut engine = setup();
    let mut b = plan(vec![0, 2]);
    b.preds = vec![(0, CmpOp::Lt, Value::I64(3))];
    let mut session = engine.session();
    let out = session.run_bound(&b).unwrap();
    assert_eq!(out.rows.len(), 3);
    for path in [AccessPath::Row, AccessPath::Rm] {
        let out = session.run_bound_on(&b, path).unwrap();
        assert_eq!(out.rows.len(), 3);
        assert_eq!(out.rows[2], vec![Value::I64(2), Value::F64(2.0)]);
    }
}
