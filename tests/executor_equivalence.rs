//! The staged executor's contracts, end to end: across every access
//! path, core count, chaos seed, and operator-cache temperature, a
//! query's answer is **bit-identical**; an op-cache hit replays the
//! memoized stage output without touching the hierarchy; and the
//! per-session scratchpad recycles morsel buffers across queries without
//! ever aliasing a live one (buffer epochs make aliasing a panic, reuse
//! counters make recycling observable).
//!
//! The grid is environment-tunable like the chaos suite:
//!
//! ```text
//! FABRIC_PAR_CORES=1,2,4,8 FABRIC_CHAOS_SEED=12345 \
//!     cargo test --test executor_equivalence
//! ```

use fabric_sim::{FaultConfig, RecoveryPolicy, SimConfig};
use query::{AccessPath, Engine, FaultContext};
use workload::Lineitem;

const ROWS: usize = 20_000;
const DATA_SEED: u64 = 0x9A5_5EED;
const DEFAULT_SEED: u64 = 0xFA_B51C;

/// Q1's grouped f64 aggregates pin the fold shape; Q6's conjunctive
/// range filter pins the branch-free predicate kernels; the projection
/// query pins ORDER BY/LIMIT post-processing on top of a shared cache
/// entry.
const QUERIES: &[&str] = &[
    "SELECT l_returnflag, l_linestatus, sum(l_quantity), sum(l_extendedprice), \
     sum(l_extendedprice * (1 - l_discount)), avg(l_quantity), count(*) \
     FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' \
     GROUP BY l_returnflag, l_linestatus",
    "SELECT sum(l_extendedprice * l_discount) FROM lineitem \
     WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
     AND l_discount >= 0.05 AND l_discount <= 0.07 AND l_quantity < 24",
    "SELECT l_orderkey, l_extendedprice FROM lineitem \
     WHERE l_quantity < 5 ORDER BY 2 DESC LIMIT 10",
];

fn seed() -> u64 {
    std::env::var("FABRIC_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Core counts under test; override with `FABRIC_PAR_CORES=1,2,4,8`.
fn core_grid() -> Vec<usize> {
    std::env::var("FABRIC_PAR_CORES")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n >= 1)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4])
}

fn engine(cores: usize) -> Engine {
    let mut e = Engine::with_cores(SimConfig::zynq_a53(), cores);
    let li = Lineitem::generate(e.mem(), ROWS, DATA_SEED).unwrap();
    e.register("lineitem", li.rows, li.cols);
    e
}

/// The tentpole grid: (path × cores × cache temperature). The cold run
/// earns the answer through the hierarchy; the warm run must replay the
/// identical rows from the op cache with **zero** hierarchy traffic and
/// zero stall — the cache hit never re-touches the data.
#[test]
fn cache_temperature_never_changes_an_answer_on_any_grid_point() {
    let grid = core_grid();
    for sql in QUERIES {
        for path in [AccessPath::Row, AccessPath::Col, AccessPath::Rm] {
            let reference = engine(1).session().run_on(sql, path).unwrap().rows;
            for &cores in &grid {
                let mut e = engine(cores);
                let mut s = e.session();
                let cold = s.run_on(sql, path).unwrap();
                let warm = s.run_on(sql, path).unwrap();
                assert_eq!(
                    cold.rows, reference,
                    "{path:?} at {cores} cores diverged from the 1-core answer"
                );
                assert_eq!(
                    warm.rows, cold.rows,
                    "{path:?} at {cores} cores: warm run diverged from cold"
                );
                assert_eq!(warm.path, cold.path);
                let warm_bytes: u64 = warm.cores.iter().map(|c| c.bytes_read).sum();
                let warm_stall: u64 = warm.cores.iter().map(|c| c.stall_cycles).sum();
                assert_eq!(
                    warm_bytes, 0,
                    "{path:?} at {cores} cores: a cache hit must not touch the hierarchy"
                );
                assert_eq!(
                    warm_stall, 0,
                    "{path:?} at {cores} cores: a cache hit cannot stall on memory"
                );
                assert!(
                    warm.ns < cold.ns,
                    "{path:?} at {cores} cores: replay must be cheaper than re-execution"
                );
                drop(s);
                let (hits, _) = e.op_cache_stats();
                assert_eq!(hits, 1, "{path:?} at {cores} cores: exactly one warm hit");
            }
        }
    }
}

/// Chaos grid point: with a seeded fault plan armed, RM-routed queries
/// bypass the op cache entirely (a memoized answer must not mask the
/// configured fault behaviour), and cold/warm answers stay bit-identical
/// to the fault-free reference at every core count.
#[test]
fn chaos_seeded_runs_bypass_the_cache_and_stay_identical() {
    let s = seed();
    let stormy = || FaultConfig {
        rm_stall_prob: 0.3,
        rm_stall_ns: 2_500.0,
        rm_timeout_prob: 0.3,
        rm_corrupt_prob: 0.3,
        ..FaultConfig::quiet(s)
    };
    let reference = engine(1)
        .session()
        .run_on(QUERIES[0], AccessPath::Rm)
        .unwrap()
        .rows;
    for &cores in &core_grid() {
        let mut e = engine(cores);
        e.set_fault_context(FaultContext::new(stormy(), RecoveryPolicy::default()));
        let mut session = e.session();
        let a = session.run_on(QUERIES[0], AccessPath::Rm).unwrap();
        let b = session.run_on(QUERIES[0], AccessPath::Rm).unwrap();
        assert_eq!(a.rows, reference, "chaos cold diverged (seed {s})");
        assert_eq!(b.rows, reference, "chaos repeat diverged (seed {s})");
        drop(session);
        let (hits, _) = e.op_cache_stats();
        assert_eq!(
            hits, 0,
            "an armed fault plan must keep RM runs out of the op cache (seed {s})"
        );
        assert!(
            e.op_cache().is_empty(),
            "no RM entry may be memoized under an armed fault plan (seed {s})"
        );
    }
}

/// ORDER BY / LIMIT are applied per-query on top of the shared cache
/// entry: the plain projection and its sorted/limited variant share one
/// memoized stage output, and the hit still returns the variant's own
/// post-processed rows.
#[test]
fn post_processing_variants_share_one_cache_entry() {
    let mut e = engine(2);
    let mut s = e.session();
    let plain = "SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_quantity < 5";
    let sorted = "SELECT l_orderkey, l_extendedprice FROM lineitem \
                  WHERE l_quantity < 5 ORDER BY 2 DESC LIMIT 10";
    // What the sorted variant must answer, earned cold on a fresh engine.
    let expect = engine(2).session().run(sorted).unwrap().rows;
    let base = s.run(plain).unwrap();
    let top = s.run(sorted).unwrap();
    assert_eq!(top.rows.len(), 10);
    assert_eq!(top.rows, expect, "hit must equal a cold run, post-sort");
    assert!(base.rows.len() > top.rows.len());
    drop(s);
    let (hits, _) = e.op_cache_stats();
    assert_eq!(hits, 1, "the sorted variant must hit the plain entry");
    assert_eq!(e.op_cache().len(), 1, "one shared entry, not two");
}

/// Scratchpad lifetime rules, observed from outside: buffers recycle
/// across queries within a session (allocation count stays flat after
/// warm-up) and a cache hit does not take stage buffers at all. The
/// aliasing guarantee itself is a panic inside the pool (`buffer.rs`
/// epoch asserts), exercised by every run in this file.
#[test]
fn scratchpad_recycles_across_queries_without_fresh_allocations() {
    let mut e = engine(1);
    let mut s = e.session();
    s.run_on(QUERIES[1], AccessPath::Row).unwrap();
    let allocs_after_warmup = s.scratch_allocs();
    let reuses_after_warmup = s.scratch_reuses();
    // Different SQL, same operator shapes: must be served from the pool.
    s.run_on(
        "SELECT sum(l_quantity) FROM lineitem WHERE l_orderkey < 1000",
        AccessPath::Row,
    )
    .unwrap();
    assert_eq!(
        s.scratch_allocs(),
        allocs_after_warmup,
        "a second query must not grow the pool"
    );
    assert!(
        s.scratch_reuses() > reuses_after_warmup,
        "a second query must recycle pooled buffers"
    );
    // A warm replay of the first query is a cache hit: no stage
    // buffers taken, reuse counter flat.
    let reuses_before_hit = s.scratch_reuses();
    s.run_on(QUERIES[1], AccessPath::Row).unwrap();
    assert_eq!(
        s.scratch_reuses(),
        reuses_before_hit,
        "a cache hit takes no stage buffers"
    );
}
