//! Regression guard for the reproduced evaluation shapes.
//!
//! These are the paper's qualitative claims (the things EXPERIMENTS.md
//! reports); if a change to the simulator or the engines breaks one of
//! them, the reproduction is broken even if every unit test passes.

use fabric_sim::{MemoryHierarchy, SimConfig};
use relational_fabric::prelude::*;
use relational_fabric::workload::micro::{run_col, run_rm, run_row, MicroQuery};
use relational_fabric::workload::{queries, Lineitem, SyntheticData};

const MICRO_ROWS: usize = 49_152; // 3 MiB table: well past the 1 MiB L2

fn micro_setup() -> (MemoryHierarchy, SyntheticData) {
    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    let d = SyntheticData::build(&mut mem, MICRO_ROWS, 16, 0x5AFE).unwrap();
    (mem, d)
}

/// Fig. 5, claim 1: RM outperforms direct row-wise accesses at every
/// projectivity.
#[test]
fn fig5_rm_always_beats_row() {
    let (mut mem, d) = micro_setup();
    for p in [1usize, 3, 4, 6, 9, 11] {
        let q = MicroQuery::projectivity(p);
        let row = run_row(&mut mem, &d.rows, &q).unwrap();
        let rm = run_rm(&mut mem, &d.rows, &q, RmConfig::prototype()).unwrap();
        assert_eq!(row.checksum, rm.checksum);
        assert!(
            rm.ns < row.ns,
            "p={p}: RM {:.0} !< ROW {:.0}",
            rm.ns,
            row.ns
        );
    }
}

/// Fig. 5, claim 2: columnar accesses win below four projected columns; RM
/// wins above four (the prefetcher-stream crossover).
#[test]
fn fig5_col_rm_crossover_at_four_columns() {
    let (mut mem, d) = micro_setup();
    for p in [1usize, 2, 3] {
        let q = MicroQuery::projectivity(p);
        let col = run_col(&mut mem, &d.cols, &q).unwrap();
        let rm = run_rm(&mut mem, &d.rows, &q, RmConfig::prototype()).unwrap();
        assert!(
            col.ns < rm.ns,
            "p={p}: COL {:.0} !< RM {:.0}",
            col.ns,
            rm.ns
        );
    }
    for p in [5usize, 7, 9, 11] {
        let q = MicroQuery::projectivity(p);
        let col = run_col(&mut mem, &d.cols, &q).unwrap();
        let rm = run_rm(&mut mem, &d.rows, &q, RmConfig::prototype()).unwrap();
        assert!(
            rm.ns < col.ns,
            "p={p}: RM {:.0} !< COL {:.0}",
            rm.ns,
            col.ns
        );
    }
}

/// Fig. 5, claim 3: at high projectivity the column store degrades to
/// around (or slightly past) the row store.
#[test]
fn fig5_col_approaches_row_at_high_projectivity() {
    let (mut mem, d) = micro_setup();
    let q = MicroQuery::projectivity(11);
    let row = run_row(&mut mem, &d.rows, &q).unwrap();
    let col = run_col(&mut mem, &d.cols, &q).unwrap();
    let ratio = col.ns / row.ns;
    assert!(
        (0.85..=1.6).contains(&ratio),
        "COL/ROW at p=11 should be near 1, got {ratio:.2}"
    );
}

/// Fig. 6 corners: RM beats ROW everywhere; COL wins the lowest-left
/// corner; RM dominates at high column counts.
#[test]
fn fig6_corner_behaviour() {
    let (mut mem, d) = micro_setup();
    let corners = [(1usize, 1usize), (1, 10), (10, 1), (10, 10)];
    for (p, s) in corners {
        let q = MicroQuery::proj_sel(p, s, 16, 0.93);
        let row = run_row(&mut mem, &d.rows, &q).unwrap();
        let rm = run_rm(&mut mem, &d.rows, &q, RmConfig::prototype()).unwrap();
        assert_eq!(row.checksum, rm.checksum);
        assert!(rm.ns < row.ns, "RM must beat ROW at p={p} s={s}");
    }
    // Lower-left: columnar is faster (total columns < 4).
    let q = MicroQuery::proj_sel(1, 1, 16, 0.93);
    let col = run_col(&mut mem, &d.cols, &q).unwrap();
    let rm = run_rm(&mut mem, &d.rows, &q, RmConfig::prototype()).unwrap();
    assert!(col.ns < rm.ns, "COL must win the (1,1) corner");
    // Upper-right: RM dominates.
    let q = MicroQuery::proj_sel(10, 10, 16, 0.93);
    let col = run_col(&mut mem, &d.cols, &q).unwrap();
    let rm = run_rm(&mut mem, &d.rows, &q, RmConfig::prototype()).unwrap();
    assert!(rm.ns < col.ns, "RM must win the (10,10) corner");
}

/// Fig. 7b: for Q6 (movement-bound) RM is fastest, ROW slowest.
#[test]
fn fig7b_q6_ordering() {
    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    let li = Lineitem::generate(&mut mem, Lineitem::rows_for_q6_target(2), 0x71).unwrap();
    let row = queries::q6_row(&mut mem, &li).unwrap();
    let col = queries::q6_col(&mut mem, &li).unwrap();
    let rm = queries::q6_rm(&mut mem, &li, RmConfig::prototype()).unwrap();
    assert!(rm.ns < col.ns, "RM {:.0} !< COL {:.0}", rm.ns, col.ns);
    assert!(col.ns < row.ns, "COL {:.0} !< ROW {:.0}", col.ns, row.ns);
}

/// Fig. 7a: for Q1 (compute-bound) the three layouts are comparable — the
/// spread is small relative to Q6's.
#[test]
fn fig7a_q1_layouts_are_close() {
    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    let li = Lineitem::generate(&mut mem, Lineitem::rows_for_q1_target(2), 0x71A).unwrap();
    let row = queries::q1_row(&mut mem, &li).unwrap();
    let col = queries::q1_col(&mut mem, &li).unwrap();
    let rm = queries::q1_rm(&mut mem, &li, RmConfig::prototype()).unwrap();
    assert!(rm.ns <= row.ns, "RM should not lose to ROW on Q1");
    let spread = row.ns / rm.ns.min(col.ns);
    assert!(
        spread < 2.0,
        "Q1 layouts should be within 2x, spread {spread:.2}"
    );
}

/// The prefetch-stream ablation: the column store's degradation at high
/// projectivity comes from the prefetcher's stream-table capacity — give
/// the (hypothetical) hardware a 16-stream table and the p=7 penalty
/// disappears; this is a mechanism, not a fitted curve.
#[test]
fn prefetch_stream_capacity_drives_col_degradation() {
    let col_at = |streams: usize, p: usize| {
        let mut cfg = SimConfig::zynq_a53();
        cfg.prefetch_streams = streams;
        let mut mem = MemoryHierarchy::new(cfg);
        let d = SyntheticData::build(&mut mem, MICRO_ROWS, 16, 0x5AFE).unwrap();
        run_col(&mut mem, &d.cols, &MicroQuery::projectivity(p))
            .unwrap()
            .ns
    };
    // At p = 7 (past the A53's 4 streams) a 16-stream prefetcher would
    // remove most of the penalty...
    let narrow = col_at(4, 7);
    let wide = col_at(16, 7);
    assert!(
        wide < narrow * 0.85,
        "16 streams should cure the p=7 penalty: {wide:.0} vs {narrow:.0}"
    );
    // ...while below the capacity the table size is irrelevant.
    let narrow = col_at(4, 3);
    let wide = col_at(16, 3);
    let ratio = wide / narrow;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "p=3 should not depend on stream capacity: ratio {ratio:.2}"
    );
}
