#!/usr/bin/env sh
# Noise-aware perf regression gate (DESIGN.md §12).
#
# Reruns bench binaries into a scratch results directory (via the
# FABRIC_RESULTS_DIR redirect every bin honors through bench::harness) and
# compares each fresh BENCH_<name>.json against the checked-in baseline in
# results/ with the perf_gate binary: cycle counters must match exactly
# (the simulator is deterministic), gauges tolerate 5% drift, wall-clock
# metrics are excluded. Offline, like everything else in tools/.
#
# Usage:
#   tools/perf_gate.sh --check [bench ...]              fail on regression
#   tools/perf_gate.sh --update-baselines [bench ...]   refresh results/
#
# With no bench names, the full suite (all 16 binaries) runs. Bench names
# are binary names (fig7_tpch covers both of its artifacts). --check
# appends one machine-readable line per artifact to results/TRAJECTORY.jsonl.

set -eu

cd "$(dirname "$0")/.."

MODE=check
NAMES=""
for a in "$@"; do
    case "$a" in
        --check) MODE=check ;;
        --update-baselines) MODE=update ;;
        --*) echo "perf_gate.sh: unknown flag $a" >&2; exit 2 ;;
        *) NAMES="$NAMES $a" ;;
    esac
done

# The full bench suite with gate-sized arguments. Baselines are generated
# by --update-baselines with EXACTLY these invocations, so a --check rerun
# of any subset is an apples-to-apples comparison.
ALL_BENCHES="abl_compression abl_faults abl_htap abl_index abl_mvcc \
abl_opcache abl_parallel abl_pushdown abl_recovery abl_relstore \
abl_rm_device fig5_projectivity fig6_heatmap fig7_tpch profile_query \
querylog_report trace_query"

bench_args() {
    case "$1" in
        abl_compression)   echo "--rows 20000" ;;
        abl_faults)        echo "--rows 8192 --rounds 8" ;;
        abl_htap)          echo "--accounts 10000 --batches 8 --updates 200" ;;
        abl_index)         echo "--rows 65536" ;;
        abl_mvcc)          echo "--rows 20000" ;;
        abl_opcache)       echo "--rows 20000 --reps 4" ;;
        abl_parallel)      echo "--rows 20000 --cores 1,2,4" ;;
        abl_pushdown)      echo "--rows 65536" ;;
        abl_recovery)      echo "--commits 256" ;;
        abl_relstore)      echo "--rows 100000" ;;
        abl_rm_device)     echo "--rows 65536" ;;
        fig5_projectivity) echo "--rows 65536" ;;
        fig6_heatmap)      echo "--rows 65536" ;;
        fig7_tpch)         echo "both --max-target 4" ;;
        profile_query)     echo "--rows 4096 --period 512 --reps 8" ;;
        querylog_report)   echo "--rows 20000 --reps 3" ;;
        trace_query)       echo "--rows 8192" ;;
        *) echo "perf_gate.sh: unknown bench $1" >&2; exit 2 ;;
    esac
}

[ -n "$NAMES" ] || NAMES="$ALL_BENCHES"

SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT INT TERM

say() { printf '\n==> %s\n' "$*"; }

say "building bench binaries (release)"
cargo build -q --release -p bench

FAILED=0
for name in $NAMES; do
    rm -rf "$SCRATCH/run"
    mkdir -p "$SCRATCH/run"
    say "running $name $(bench_args "$name")"
    # shellcheck disable=SC2046
    FABRIC_RESULTS_DIR="$SCRATCH/run" \
        cargo run -q --release -p bench --bin "$name" -- $(bench_args "$name") \
        >/dev/null
    artifacts=$(cd "$SCRATCH/run" && ls BENCH_*.json 2>/dev/null || true)
    if [ -z "$artifacts" ]; then
        echo "perf_gate.sh: $name produced no BENCH_*.json artifact" >&2
        FAILED=1
        continue
    fi
    for art in $artifacts; do
        if [ "$MODE" = update ]; then
            mkdir -p results
            cp "$SCRATCH/run/$art" "results/$art"
            echo "updated results/$art"
        else
            if [ ! -f "results/$art" ]; then
                echo "perf_gate.sh: no baseline results/$art (run with --update-baselines)" >&2
                FAILED=1
                continue
            fi
            if ! cargo run -q --release -p bench --bin perf_gate -- \
                --baseline "results/$art" --fresh "$SCRATCH/run/$art" \
                --trajectory results/TRAJECTORY.jsonl; then
                FAILED=1
            fi
        fi
    done
done

if [ "$MODE" = check ]; then
    say "gate self-test (synthetic +10% cycle regression must fail)"
    if [ -f results/BENCH_trace_query.json ]; then
        self_baseline=results/BENCH_trace_query.json
    else
        self_baseline=$(ls results/BENCH_*.json | head -n 1)
    fi
    cargo run -q --release -p bench --bin perf_gate -- --self-test "$self_baseline"
fi

if [ "$FAILED" -ne 0 ]; then
    say "perf gate FAILED"
    exit 1
fi
say "perf gate passed"
