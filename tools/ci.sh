#!/usr/bin/env sh
# Tier-1 gate for the Relational Fabric workspace (see README.md).
#
# Everything here runs OFFLINE: the workspace resolves with zero external
# crates, so this script must never need the network. Run it from the
# repository root before every commit; CI runs exactly the same steps.
#
#   1. cargo fmt --check        (skipped if rustfmt is not installed)
#   2. cargo build --release
#   3. cargo test -q            (whole workspace)
#   4. cargo run -p fabric-lint (source lints vs. lint-baseline.txt)

set -eu

cd "$(dirname "$0")/.."

say() { printf '\n==> %s\n' "$*"; }

if cargo fmt --version >/dev/null 2>&1; then
    say "cargo fmt --check"
    cargo fmt --check
else
    say "cargo fmt not available — skipping format check"
fi

say "cargo build --release"
cargo build --release

say "cargo test -q --workspace"
cargo test -q --workspace

say "cargo run -p fabric-lint"
cargo run -q -p fabric-lint

say "tier-1 gate passed"
