#!/usr/bin/env sh
# Tier-1 gate for the Relational Fabric workspace (see README.md).
#
# Everything here runs OFFLINE: the workspace resolves with zero external
# crates, so this script must never need the network. Run it from the
# repository root before every commit; CI runs exactly the same steps.
#
#   1. cargo fmt --check        (skipped if rustfmt is not installed)
#   2. cargo build --release
#   3. cargo test -q            (whole workspace)
#   4. fabric-lint --self-check (the token-level analyzer first replays
#                                its fixture corpus — every rule's
#                                expected findings, exactly — then scans
#                                the workspace against lint-baseline.txt,
#                                failing on new debt AND on stale entries)
#   5. bounded chaos sweep      (tests/fault_tolerance.rs with a fixed
#                                seed; fails on any answer divergence and
#                                prints the replay seed)
#   6. traced query             (trace_query bin: one Fig-5-shaped query
#                                under the ring recorder; the exported
#                                Chrome trace is structurally validated
#                                and two same-seed chaos runs must export
#                                bit-identical traces — trace_determinism)
#   7. parallel equivalence     (tests/parallel_equivalence.rs at 1/2/4
#                                cores with a fixed chaos seed: morsel-
#                                parallel answers must be bit-identical
#                                to the 1-core run on every access path)
#   8. executor equivalence    (tests/executor_equivalence.rs over the
#                                staged-executor grid — path x cores x
#                                chaos seed x op-cache temperature: warm
#                                answers bit-identical to cold with zero
#                                hierarchy traffic, armed fault plans
#                                bypass the cache, scratch buffers recycle
#                                without fresh allocations)
#   9. querylog determinism    (tests/querylog_determinism.rs over the
#                                same grid: byte-identical query-log /
#                                workload / calibration JSON from two
#                                identically seeded engines, per-operator
#                                estimates summing bit-exactly to the
#                                path estimate, hits and degraded runs
#                                logged but never calibrated)
#  10. profiler determinism     (profile_query bin twice under the fixed
#                                seed: the cycle-domain sampling profiler
#                                must export byte-identical .folded
#                                collapsed-stack profiles, with the sample
#                                total reconciling against elapsed cycles
#                                — the bin asserts the reconciliation)
#  11. perf regression gate     (tools/perf_gate.sh --check on one bench
#                                per family, compared against the checked-
#                                in results/BENCH_*.json baselines: cycle
#                                counters exact, gauges — including the
#                                q1/q6 latency percentiles — at 5%,
#                                wall-clock excluded; ends with the gate
#                                self-test, which injects a synthetic
#                                +10% cycle regression and asserts the
#                                gate fails it)
#  12. crash-recovery matrix    (tests/crash_recovery.rs with the same
#                                fixed seed: a power cut at every durable
#                                write of a transactional workload, each
#                                recovered and checked bit-identical to
#                                the never-crashed run at the recovered
#                                watermark, replay idempotent, postmortems
#                                validator-clean and byte-deterministic)

set -eu

cd "$(dirname "$0")/.."

say() { printf '\n==> %s\n' "$*"; }

if cargo fmt --version >/dev/null 2>&1; then
    say "cargo fmt --check"
    cargo fmt --check
else
    say "cargo fmt not available — skipping format check"
fi

say "cargo build --release"
cargo build --release

say "cargo test -q --workspace"
cargo test -q --workspace

say "cargo run -p fabric-lint -- --self-check"
cargo run -q -p fabric-lint -- --self-check

# Bounded chaos: a fixed-seed sweep of randomized fault plans over
# RM-routed queries. Deterministic, so a red run here reproduces locally
# with the exact command below. Override the seed to explore, e.g.
#   FABRIC_CHAOS_SEED=$RANDOM FABRIC_CHAOS_PLANS=32 tools/ci.sh
CHAOS_SEED="${FABRIC_CHAOS_SEED:-16430364}"
CHAOS_PLANS="${FABRIC_CHAOS_PLANS:-12}"
say "chaos sweep (FABRIC_CHAOS_SEED=$CHAOS_SEED, $CHAOS_PLANS plans)"
if ! FABRIC_CHAOS_SEED="$CHAOS_SEED" FABRIC_CHAOS_PLANS="$CHAOS_PLANS" \
    cargo test -q --test fault_tolerance; then
    printf '\nchaos sweep FAILED — replay with:\n'
    printf '  FABRIC_CHAOS_SEED=%s FABRIC_CHAOS_PLANS=%s cargo test --test fault_tolerance\n' \
        "$CHAOS_SEED" "$CHAOS_PLANS"
    exit 1
fi

# Bounded observability check: trace one query end to end (the bin
# validates the export with fabric-obs's own chrome-trace validator and
# exits non-zero on a malformed or unbalanced trace), then assert the
# determinism contract — two runs with the same chaos seed must export
# byte-identical event streams and metrics snapshots.
say "traced query (trace_query --rows 8192) + trace determinism"
cargo run -q --release -p bench --bin trace_query -- --rows 8192
if ! FABRIC_CHAOS_SEED="$CHAOS_SEED" cargo test -q --test trace_determinism; then
    printf '\ntrace determinism FAILED — replay with:\n'
    printf '  FABRIC_CHAOS_SEED=%s cargo test --test trace_determinism\n' "$CHAOS_SEED"
    exit 1
fi

# Parallel equivalence: morsel-driven execution at 1/2/4 cores must return
# answers bit-identical to the 1-core run on every access path, with the
# per-core cycle attribution reconciling against the global clock — under
# the same fixed chaos seed as the sweep above. Widen the grid with e.g.
#   FABRIC_PAR_CORES=1,2,4,8 tools/ci.sh
PAR_CORES="${FABRIC_PAR_CORES:-1,2,4}"
say "parallel equivalence (FABRIC_PAR_CORES=$PAR_CORES, FABRIC_CHAOS_SEED=$CHAOS_SEED)"
if ! FABRIC_PAR_CORES="$PAR_CORES" FABRIC_CHAOS_SEED="$CHAOS_SEED" \
    cargo test -q --test parallel_equivalence; then
    printf '\nparallel equivalence FAILED — replay with:\n'
    printf '  FABRIC_PAR_CORES=%s FABRIC_CHAOS_SEED=%s cargo test --test parallel_equivalence\n' \
        "$PAR_CORES" "$CHAOS_SEED"
    exit 1
fi

# Executor equivalence: the staged executor's contracts over the full
# grid — every access path at 1/2/4 cores, cold and warm operator cache,
# with the fixed chaos seed arming the cache-bypass check. Warm runs must
# replay bit-identical answers with zero hierarchy traffic.
say "executor equivalence (FABRIC_PAR_CORES=$PAR_CORES, FABRIC_CHAOS_SEED=$CHAOS_SEED)"
if ! FABRIC_PAR_CORES="$PAR_CORES" FABRIC_CHAOS_SEED="$CHAOS_SEED" \
    cargo test -q --test executor_equivalence; then
    printf '\nexecutor equivalence FAILED — replay with:\n'
    printf '  FABRIC_PAR_CORES=%s FABRIC_CHAOS_SEED=%s cargo test --test executor_equivalence\n' \
        "$PAR_CORES" "$CHAOS_SEED"
    exit 1
fi

# Query-log / calibration determinism: the engine-wide query log and the
# cost-calibration ledger over the same grid (path x cores x chaos seed x
# cache temperature). Two identically seeded engines must export
# byte-identical querylog/workload/calib JSON, per-operator estimates
# must sum bit-exactly to the path estimate, and cache hits / degraded
# runs must be logged without ever feeding the ledger.
say "querylog determinism (FABRIC_PAR_CORES=$PAR_CORES, FABRIC_CHAOS_SEED=$CHAOS_SEED)"
if ! FABRIC_PAR_CORES="$PAR_CORES" FABRIC_CHAOS_SEED="$CHAOS_SEED" \
    cargo test -q --test querylog_determinism; then
    printf '\nquerylog determinism FAILED — replay with:\n'
    printf '  FABRIC_PAR_CORES=%s FABRIC_CHAOS_SEED=%s cargo test --test querylog_determinism\n' \
        "$PAR_CORES" "$CHAOS_SEED"
    exit 1
fi

# Profiler determinism: the cycle-domain sampling profiler is a pure
# function of the workload and the simulated clock, so two same-seed runs
# must export byte-identical collapsed-stack profiles. The bin itself
# asserts the sample total reconciles with the cycles it observed.
say "profiler determinism (profile_query twice, byte-identical .folded)"
PROF_SCRATCH="$(mktemp -d)"
trap 'rm -rf "$PROF_SCRATCH"' EXIT INT TERM
for run in 1 2; do
    mkdir -p "$PROF_SCRATCH/$run"
    FABRIC_RESULTS_DIR="$PROF_SCRATCH/$run" FABRIC_CHAOS_SEED="$CHAOS_SEED" \
        cargo run -q --release -p bench --bin profile_query -- --rows 4096 --period 512 \
        >/dev/null
done
if ! cmp -s "$PROF_SCRATCH/1/PROFILE_query.folded" "$PROF_SCRATCH/2/PROFILE_query.folded"; then
    printf '\nprofiler determinism FAILED — two same-seed runs exported different profiles:\n'
    diff "$PROF_SCRATCH/1/PROFILE_query.folded" "$PROF_SCRATCH/2/PROFILE_query.folded" || true
    exit 1
fi
rm -rf "$PROF_SCRATCH"

# Perf regression gate: rerun one bench from each family (ablation,
# figure reproduction, traced query, crash recovery, profiled query) into
# a scratch results dir and compare against the checked-in baselines. The
# simulator is deterministic, so cycle counters must match the baseline
# EXACTLY; gauges — including the per-class latency percentiles — get 5%;
# host wall-clock metrics are excluded by policy. A legitimate perf
# change re-stamps baselines with:
#   tools/perf_gate.sh --update-baselines
say "perf regression gate (abl_parallel fig5_projectivity trace_query abl_recovery profile_query querylog_report + self-test)"
tools/perf_gate.sh --check abl_parallel fig5_projectivity trace_query abl_recovery profile_query querylog_report

# Crash-recovery matrix: deterministic power cuts at every durable write
# site of the WAL/checkpoint protocol (DESIGN.md §14), plus recovery
# idempotence and the recovered-answer equivalence invariant. Same seed
# discipline as the chaos sweep; a red run replays with the printed
# command.
say "crash-recovery matrix (FABRIC_CHAOS_SEED=$CHAOS_SEED)"
if ! FABRIC_CHAOS_SEED="$CHAOS_SEED" cargo test -q --test crash_recovery; then
    printf '\ncrash-recovery matrix FAILED — replay with:\n'
    printf '  FABRIC_CHAOS_SEED=%s cargo test --test crash_recovery\n' "$CHAOS_SEED"
    exit 1
fi

say "tier-1 gate passed"
