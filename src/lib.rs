//! # Relational Fabric
//!
//! A complete, software-simulated implementation of **"Relational Fabric:
//! Transparent Data Transformation"** (ICDE 2023): near-data hardware that
//! carves arbitrary column groups out of row-oriented base data on the fly,
//! so one physical layout serves both transactional and analytical work.
//!
//! This crate is the facade over the workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`types`] | schemas, values, layouts, geometries, predicates, expressions |
//! | [`sim`] | the timed memory-hierarchy simulator (caches, prefetcher, DRAM) |
//! | [`rm`] | **Relational Memory** — the paper's core: device model + ephemeral variables |
//! | [`row`] | the Volcano row-store baseline |
//! | [`col`] | the column-at-a-time column-store baseline |
//! | [`mvcc`] | snapshot isolation over begin/end row timestamps (§III-C) |
//! | [`durability`] | WAL + checkpoint media with seeded crash injection (§14 of DESIGN.md) |
//! | [`compress`] | fabric-compatible codecs and the §III-D analysis |
//! | [`rs`] | **Relational Storage** — the computational-SSD instance (§IV-D) |
//! | [`sql`] | SQL front end + layout-aware optimizer (§III-B) |
//! | [`workload`] | TPC-H-style and synthetic generators, the paper's queries |
//!
//! ## Quick start
//!
//! ```
//! use relational_fabric::prelude::*;
//!
//! // A simulated platform and a row-oriented table.
//! let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
//! let schema = Schema::uniform(16, ColumnType::I32);
//! let mut table = RowTable::create(&mut mem, schema, 1024).unwrap();
//! for i in 0..1024i32 {
//!     let row: Vec<Value> = (0..16).map(|j| Value::I32(i * 16 + j)).collect();
//!     table.load(&mut mem, &row).unwrap();
//! }
//!
//! // Configure an ephemeral column group (columns 2 and 7) and stream it.
//! let geometry = table.geometry(&[2, 7]).unwrap();
//! let mut eph = EphemeralColumns::configure(&mut mem, RmConfig::prototype(), geometry).unwrap();
//! let mut sum = 0i64;
//! while let Some(batch) = eph.next_batch(&mut mem) {
//!     for r in 0..batch.len() {
//!         sum += batch.i32_at(r, 0) as i64 + batch.i32_at(r, 1) as i64;
//!     }
//! }
//! assert!(sum > 0);
//! ```

pub use colstore as col;
pub use compress;
pub use durability;
pub use fabric_sim as sim;
pub use fabric_types as types;
pub use mvcc;
pub use query as sql;
pub use relmem as rm;
pub use relstore as rs;
pub use rowstore as row;
pub use workload;

/// The most common imports in one place.
pub mod prelude {
    pub use colstore::ColTable;
    pub use durability::{DurabilityConfig, DurableImage, DurableMedia};
    pub use fabric_sim::{
        FabricRecorder, MemoryHierarchy, MetricsRegistry, NoopRecorder, RingRecorder, SimConfig,
    };
    pub use fabric_types::{
        AggFunc, CmpOp, ColumnType, Expr, Geometry, Predicate, RowLayout, Schema, Value,
    };
    pub use mvcc::{DurableStore, RecoveryReport, TxnManager, VersionedTable};
    pub use query::{Catalog, Engine};
    pub use relmem::{EphemeralColumns, PackedBatch, RmConfig};
    pub use relstore::{RsConfig, SsdDevice};
    pub use rowstore::RowTable;
}
