//! Vectorized morsel scan over a [`RowTable`].
//!
//! The Volcano operators in [`crate::volcano`] pay `volcano_next` per
//! tuple per operator and a `branch_miss` per rejected row — the
//! interpretation tax the paper's host path does not need once morsels
//! feed vector primitives. This kernel runs one *fused*
//! scan→filter→emit pass over a row range: one `vector_setup` per
//! invocation, then per row the same line-granular memory traffic as
//! [`crate::SeqScan`] plus branch-free predicate evaluation (every
//! conjunct is evaluated, no mispredict charge). Rejected rows cost
//! `decode·cols + value_op·preds`; there is no per-operator `next()`
//! overhead at all.
//!
//! The memory-access pattern (which lines are touched, in which order,
//! interleaved with how much compute) deliberately mirrors the Volcano
//! scan row for row, so the kernel is a strict cycle improvement rather
//! than a different memory model.

use fabric_sim::MemoryHierarchy;
use fabric_types::geometry::merge_field_spans;
use fabric_types::{CmpOp, ColumnId, Result, Value};

use crate::table::RowTable;

/// Rows consumed / rows emitted by one kernel invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanCounts {
    pub rows_in: u64,
    pub rows_out: u64,
}

/// Fused vectorized scan+filter over rows `[start, end)` of `table`,
/// decoding `cols` (projection pushed into the scan) and keeping rows
/// that satisfy every `(slot, op, literal)` conjunct over the decoded
/// slots. Passing rows are handed to `emit` in scan order; the caller
/// charges its own consumption cycles there.
///
/// Charges one `vector_setup` per call (amortize it by scanning
/// morsel-sized ranges) and, per row, `decode` per column plus
/// `value_op` per conjunct — branch-free, so no `branch_miss` and no
/// `volcano_next`.
///
/// `tuple` is the caller's decode buffer (host-side scratch, typically
/// recycled from a `Scratchpad`): it is cleared and refilled per row, so
/// one allocation serves every morsel of every query.
pub fn scan_range_vectorized(
    mem: &mut MemoryHierarchy,
    table: &RowTable,
    cols: &[ColumnId],
    preds: &[(usize, CmpOp, Value)],
    start: usize,
    end: usize,
    tuple: &mut Vec<Value>,
    mut emit: impl FnMut(&mut MemoryHierarchy, &[Value]) -> Result<()>,
) -> Result<ScanCounts> {
    let costs = mem.costs();
    let layout = table.layout();
    let fields = layout.fields(cols)?;
    let spans = merge_field_spans(&fields, 0);
    let end = end.min(table.len());
    let start = start.min(end);
    // One setup for the whole morsel: the per-row loop below is the
    // "steady state" of the vector kernel.
    mem.cpu_vector(0, 0);

    let row_cycles = costs.decode * cols.len() as u64 + costs.value_op * preds.len() as u64;
    let mut counts = ScanCounts::default();
    let mut parts: Vec<(u64, usize)> = Vec::with_capacity(spans.len());
    for r in start..end {
        counts.rows_in += 1;
        let row_addr = table.row_addr(r);
        // Same line-granular traffic as the Volcano scan: one touch per
        // merged field span, gathered so independent misses overlap.
        if spans.len() == 1 {
            let (off, len) = spans[0];
            mem.touch_read(row_addr + off as u64, len);
        } else {
            parts.clear();
            parts.extend(spans.iter().map(|&(off, len)| (row_addr + off as u64, len)));
            mem.touch_read_gather(&parts);
        }
        mem.cpu(row_cycles);

        tuple.clear();
        let row = mem.bytes(row_addr, layout.row_width());
        for &c in cols {
            let ty = layout.column_type(c)?;
            tuple.push(Value::decode(ty, &row[layout.range(c)?]));
        }
        // Branch-free conjunction: every predicate is evaluated (already
        // charged above); the pass/fail bit is a data dependency, not a
        // branch.
        let mut pass = true;
        for (slot, op, lit) in preds {
            pass &= op.matches(tuple[*slot].compare(lit)?);
        }
        if pass {
            counts.rows_out += 1;
            emit(mem, &tuple)?;
        }
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volcano::{execute_collect, Filter, SeqScan};
    use fabric_sim::SimConfig;
    use fabric_types::{ColumnType, Schema};

    fn fixture() -> (MemoryHierarchy, RowTable) {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::from_pairs(&[
            ("id", ColumnType::I64),
            ("grp", ColumnType::FixedStr(1)),
            ("val", ColumnType::F64),
        ]);
        let mut t = RowTable::create(&mut mem, schema, 128).unwrap();
        for i in 0..100i64 {
            let g = if i % 2 == 0 { "A" } else { "B" };
            t.load(
                &mut mem,
                &[Value::I64(i), Value::Str(g.into()), Value::F64(i as f64)],
            )
            .unwrap();
        }
        (mem, t)
    }

    fn collect(
        mem: &mut MemoryHierarchy,
        t: &RowTable,
        cols: &[ColumnId],
        preds: &[(usize, CmpOp, Value)],
        start: usize,
        end: usize,
    ) -> (Vec<Vec<Value>>, ScanCounts) {
        let mut rows = Vec::new();
        let mut tuple = Vec::new();
        let counts =
            scan_range_vectorized(mem, t, cols, preds, start, end, &mut tuple, |_, vals| {
                rows.push(vals.to_vec());
                Ok(())
            })
            .unwrap();
        (rows, counts)
    }

    #[test]
    fn matches_volcano_scan_filter_output() {
        let (mut mem, t) = fixture();
        let preds = vec![
            (0, CmpOp::Ge, Value::I64(90)),
            (2, CmpOp::Lt, Value::F64(95.0)),
        ];
        let scan = SeqScan::new(&t, vec![0, 1, 2]).unwrap();
        let mut volcano = Filter::new(Box::new(scan), preds.clone());
        let expected = execute_collect(&mut mem, &mut volcano).unwrap();
        let (rows, counts) = collect(&mut mem, &t, &[0, 1, 2], &preds, 0, 100);
        assert_eq!(rows, expected);
        assert_eq!(counts.rows_in, 100);
        assert_eq!(counts.rows_out, 5);
    }

    #[test]
    fn ranged_invocations_cover_the_table_exactly_once() {
        let (mut mem, t) = fixture();
        let mut all = Vec::new();
        for start in (0..100).step_by(32) {
            let (rows, _) = collect(&mut mem, &t, &[0], &[], start, start + 32);
            all.extend(rows);
        }
        let mut full = SeqScan::new(&t, vec![0]).unwrap();
        assert_eq!(all, execute_collect(&mut mem, &mut full).unwrap());
        // Out-of-bounds ranges clamp instead of panicking.
        let (rows, _) = collect(&mut mem, &t, &[0], &[], 96, 1000);
        assert_eq!(rows.len(), 4);
        let (rows, _) = collect(&mut mem, &t, &[0], &[], 500, 600);
        assert!(rows.is_empty());
    }

    #[test]
    fn strictly_cheaper_than_volcano_per_morsel() {
        let (mut mem, t) = fixture();
        let preds = vec![(0, CmpOp::Lt, Value::I64(50))];
        // Warm the caches identically before each measured pass.
        let _ = collect(&mut mem, &t, &[0, 2], &preds, 0, 100);
        let t0 = mem.now();
        let _ = collect(&mut mem, &t, &[0, 2], &preds, 0, 100);
        let vectorized = mem.now() - t0;

        let t0 = mem.now();
        let scan = SeqScan::new(&t, vec![0, 2]).unwrap();
        let mut volcano = Filter::new(Box::new(scan), preds.clone());
        execute_collect(&mut mem, &mut volcano).unwrap();
        let tuple_at_a_time = mem.now() - t0;
        assert!(
            vectorized < tuple_at_a_time,
            "vectorized {vectorized} !< volcano {tuple_at_a_time}"
        );
    }

    #[test]
    fn branch_free_conjunction_evaluates_every_predicate() {
        let (mut mem, t) = fixture();
        // First conjunct rejects everything; the second (slot 1 of the
        // [id, val] tuple) is type-valid and must still be evaluated
        // without error.
        let preds = vec![
            (0, CmpOp::Lt, Value::I64(0)),
            (1, CmpOp::Ge, Value::F64(0.0)),
        ];
        let (rows, counts) = collect(&mut mem, &t, &[0, 2], &preds, 0, 100);
        assert!(rows.is_empty());
        assert_eq!(counts.rows_in, 100);
        assert_eq!(counts.rows_out, 0);
    }
}
