//! The ROW baseline: an in-memory row store with Volcano-style
//! (tuple-at-a-time) query processing.
//!
//! Paper §V: *"we custom implement an in-memory row-store following the
//! volcano-style processing model (tuple-at-a-time)"*. This crate is that
//! baseline, built over the simulated memory hierarchy:
//!
//! * [`RowTable`] stores fixed-width rows contiguously in the arena — the
//!   same base data the Relational Memory device gathers from, so ROW and RM
//!   literally share one copy of the data (the paper's single-layout HTAP
//!   story);
//! * [`volcano`] provides the classic iterator operators — sequential scan,
//!   filter, projection, (hash) aggregation — each charging per-tuple CPU
//!   costs and going through the timed memory hierarchy for row access.

pub mod index;
pub mod table;
pub mod vector;
pub mod volcano;

pub use index::{HashIndex, OrderedIndex};
pub use table::{RowId, RowTable};
pub use vector::{scan_range_vectorized, ScanCounts};
pub use volcano::{execute_collect, Filter, HashAggregate, Operator, Project, SeqScan};
