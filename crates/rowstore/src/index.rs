//! Indexes over row tables — the piece of physical design the paper keeps
//! (§III-A): *"indexes will mostly be useful for workloads with point
//! queries and updates, since range queries can be very efficiently
//! evaluated with column-group accesses."*
//!
//! Two classic structures are provided, both with timed probe paths so the
//! index-vs-fabric trade-off can be measured:
//!
//! * [`HashIndex`] — equality lookups: O(1) probes, useless for ranges;
//! * [`OrderedIndex`] — a sorted (key, row) array with binary search:
//!   point and range lookups, at logarithmic probe cost and per-match
//!   random row access.

use crate::table::{RowId, RowTable};
use fabric_sim::MemoryHierarchy;
use fabric_types::{ColumnId, FabricError, Result, Value};
use std::collections::BTreeMap;

/// Bytes per index entry we charge for index traffic (key + row id).
const ENTRY_BYTES: usize = 16;

/// A hash index on one column: equality probes only.
///
/// Buckets live in the simulated arena, so index probes pay real (random)
/// memory traffic plus hashing CPU.
pub struct HashIndex {
    col: ColumnId,
    /// key (encoded i64 image) -> row ids. A `BTreeMap` (not `HashMap`)
    /// so any whole-index traversal is key-ordered and deterministic; the
    /// *simulated* cost model still charges hash-probe economics.
    map: BTreeMap<i64, Vec<RowId>>,
    /// Arena region standing in for the bucket array (traffic charging).
    buckets_addr: fabric_types::Addr,
    buckets: usize,
}

impl HashIndex {
    /// Build over the current contents of `table` (untimed: index build is
    /// physical-design time; probes are what we measure).
    pub fn build(mem: &mut MemoryHierarchy, table: &RowTable, col: ColumnId) -> Result<Self> {
        let ty = table.layout().column_type(col)?;
        if !ty.is_numeric() {
            return Err(FabricError::Internal(
                "hash index requires a numeric column".into(),
            ));
        }
        let buckets = (table.len() * 2).next_power_of_two().max(64);
        let buckets_addr = mem.alloc(buckets * ENTRY_BYTES, 64)?;
        let mut map: BTreeMap<i64, Vec<RowId>> = BTreeMap::new();
        for rid in 0..table.len() {
            let v = table.decode_row_untimed(mem, rid)?[col].as_i64()?;
            map.entry(v).or_default().push(rid);
        }
        Ok(HashIndex {
            col,
            map,
            buckets_addr,
            buckets,
        })
    }

    /// The indexed column.
    pub fn column(&self) -> ColumnId {
        self.col
    }

    #[inline]
    fn bucket_of(&self, key: i64) -> u64 {
        // Fibonacci hashing for the simulated bucket address.
        (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.buckets as u64
    }

    /// Timed equality probe: returns the matching row ids.
    pub fn probe(
        &self,
        mem: &mut MemoryHierarchy,
        table: &RowTable,
        key: i64,
    ) -> Result<Vec<RowId>> {
        let costs = mem.costs();
        // Hash + one random bucket access.
        mem.cpu(costs.hash_op);
        mem.touch_read(
            self.buckets_addr + self.bucket_of(key) * ENTRY_BYTES as u64,
            ENTRY_BYTES,
        );
        let rows = self.map.get(&key).cloned().unwrap_or_default();
        // Verify each hit against the base row (charged row access).
        for &rid in &rows {
            let off = table.layout().offset(self.col)? as u64;
            mem.touch_read(table.row_addr(rid) + off, table.layout().width(self.col)?);
            mem.cpu(costs.value_op);
        }
        Ok(rows)
    }
}

/// A sorted `(key, row id)` secondary index with binary search — supports
/// point and range lookups.
pub struct OrderedIndex {
    col: ColumnId,
    entries: Vec<(i64, RowId)>,
    entries_addr: fabric_types::Addr,
}

impl OrderedIndex {
    /// Build over the current contents of `table` (untimed).
    pub fn build(mem: &mut MemoryHierarchy, table: &RowTable, col: ColumnId) -> Result<Self> {
        let ty = table.layout().column_type(col)?;
        if !ty.is_numeric() {
            return Err(FabricError::Internal(
                "ordered index requires a numeric column".into(),
            ));
        }
        let mut entries = Vec::with_capacity(table.len());
        for rid in 0..table.len() {
            let v = table.decode_row_untimed(mem, rid)?[col].as_i64()?;
            entries.push((v, rid));
        }
        entries.sort_unstable();
        let entries_addr = mem.alloc(entries.len().max(1) * ENTRY_BYTES, 64)?;
        Ok(OrderedIndex {
            col,
            entries,
            entries_addr,
        })
    }

    pub fn column(&self) -> ColumnId {
        self.col
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Charge the binary-search traffic: log2(n) random entry touches.
    fn charge_search(&self, mem: &mut MemoryHierarchy) {
        let costs = mem.costs();
        let lo = 0usize;
        let mut hi = self.entries.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            mem.touch_read(self.entries_addr + (mid * ENTRY_BYTES) as u64, ENTRY_BYTES);
            mem.cpu(costs.value_op + costs.branch_miss / 2);
            // The probe count is log2(n) whichever way the search turns;
            // halving `hi` charges exactly that many touches.
            hi = mid;
        }
    }

    /// Timed point lookup.
    pub fn probe(&self, mem: &mut MemoryHierarchy, key: i64) -> Result<Vec<RowId>> {
        self.charge_search(mem);
        let start = self.entries.partition_point(|&(k, _)| k < key);
        let mut out = Vec::new();
        let costs = mem.costs();
        for &(k, rid) in &self.entries[start..] {
            if k != key {
                break;
            }
            mem.cpu(costs.value_op);
            out.push(rid);
        }
        Ok(out)
    }

    /// Timed range lookup `lo..hi` (half-open): returns matching row ids in
    /// key order and charges the sequential leaf walk.
    pub fn range(&self, mem: &mut MemoryHierarchy, lo: i64, hi: i64) -> Result<Vec<RowId>> {
        self.charge_search(mem);
        let start = self.entries.partition_point(|&(k, _)| k < lo);
        let end = self.entries.partition_point(|&(k, _)| k < hi);
        // Sequential scan of the qualifying index entries.
        if end > start {
            mem.touch_read(
                self.entries_addr + (start * ENTRY_BYTES) as u64,
                (end - start) * ENTRY_BYTES,
            );
            mem.cpu(mem.costs().vector_elem * (end - start) as u64);
        }
        Ok(self.entries[start..end]
            .iter()
            .map(|&(_, rid)| rid)
            .collect())
    }

    /// Timed range *aggregation*: sum `sum_col` over rows whose indexed key
    /// is in `lo..hi` — the index-based plan a pre-fabric system would use
    /// for a range query, paying one random base-row access per match.
    pub fn range_sum(
        &self,
        mem: &mut MemoryHierarchy,
        table: &RowTable,
        lo: i64,
        hi: i64,
        sum_col: ColumnId,
    ) -> Result<(f64, usize)> {
        let rows = self.range(mem, lo, hi)?;
        let costs = mem.costs();
        let layout = table.layout();
        let off = layout.offset(sum_col)? as u64;
        let w = layout.width(sum_col)?;
        let ty = layout.column_type(sum_col)?;
        let mut sum = 0.0;
        for &rid in &rows {
            mem.touch_read(table.row_addr(rid) + off, w);
            mem.cpu(costs.f64_op);
            let bytes = mem.bytes(table.row_addr(rid) + off, w);
            sum += Value::decode(ty, bytes).as_f64()?;
        }
        Ok((sum, rows.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::SimConfig;
    use fabric_types::{ColumnType, Schema};

    /// 10k rows: key = (i * 7) % 10000 (a permutation), payload = i.
    fn setup() -> (MemoryHierarchy, RowTable) {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::from_pairs(&[("key", ColumnType::I64), ("v", ColumnType::I64)]);
        let mut t = RowTable::create(&mut mem, schema, 10_000).unwrap();
        for i in 0..10_000i64 {
            t.load(&mut mem, &[Value::I64((i * 7) % 10_000), Value::I64(i)])
                .unwrap();
        }
        (mem, t)
    }

    #[test]
    fn hash_index_point_lookup() {
        let (mut mem, t) = setup();
        let idx = HashIndex::build(&mut mem, &t, 0).unwrap();
        let rows = idx.probe(&mut mem, &t, 21).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            t.decode_row_untimed(&mem, rows[0]).unwrap()[1],
            Value::I64(3)
        );
        assert!(idx.probe(&mut mem, &t, 123_456).unwrap().is_empty());
    }

    #[test]
    fn hash_index_probe_is_much_cheaper_than_scan() {
        let (mut mem, t) = setup();
        let idx = HashIndex::build(&mut mem, &t, 0).unwrap();
        let t0 = mem.now();
        idx.probe(&mut mem, &t, 21).unwrap();
        let probe = mem.now() - t0;
        // A full Volcano scan for the same point query.
        let t0 = mem.now();
        let scan = crate::volcano::SeqScan::new(&t, vec![0, 1]).unwrap();
        let mut f = crate::volcano::Filter::new(
            Box::new(scan),
            vec![(0, fabric_types::CmpOp::Eq, Value::I64(21))],
        );
        crate::volcano::execute_collect(&mut mem, &mut f).unwrap();
        let scan_t = mem.now() - t0;
        assert!(scan_t > probe * 100, "scan {scan_t} vs probe {probe}");
    }

    #[test]
    fn ordered_index_point_and_range() {
        let (mut mem, t) = setup();
        let idx = OrderedIndex::build(&mut mem, &t, 0).unwrap();
        assert_eq!(idx.len(), 10_000);
        let rows = idx.probe(&mut mem, 35).unwrap();
        assert_eq!(rows.len(), 1);
        // Range [100, 110): ten distinct keys exist (permutation).
        let rows = idx.range(&mut mem, 100, 110).unwrap();
        assert_eq!(rows.len(), 10);
        // Returned in key order.
        let keys: Vec<i64> = rows
            .iter()
            .map(|&r| t.decode_row_untimed(&mem, r).unwrap()[0].as_i64().unwrap())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn range_sum_matches_brute_force() {
        let (mut mem, t) = setup();
        let idx = OrderedIndex::build(&mut mem, &t, 0).unwrap();
        let (sum, n) = idx.range_sum(&mut mem, &t, 500, 600, 1).unwrap();
        let mut expect = 0.0;
        let mut count = 0;
        for i in 0..10_000 {
            let row = t.decode_row_untimed(&mem, i).unwrap();
            let k = row[0].as_i64().unwrap();
            if (500..600).contains(&k) {
                expect += row[1].as_f64().unwrap();
                count += 1;
            }
        }
        assert_eq!(n, count);
        assert_eq!(sum, expect);
    }

    #[test]
    fn duplicate_keys_all_found() {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::from_pairs(&[("key", ColumnType::I64), ("v", ColumnType::I64)]);
        let mut t = RowTable::create(&mut mem, schema, 100).unwrap();
        for i in 0..100i64 {
            t.load(&mut mem, &[Value::I64(i % 10), Value::I64(i)])
                .unwrap();
        }
        let h = HashIndex::build(&mut mem, &t, 0).unwrap();
        assert_eq!(h.probe(&mut mem, &t, 3).unwrap().len(), 10);
        let o = OrderedIndex::build(&mut mem, &t, 0).unwrap();
        assert_eq!(o.probe(&mut mem, 3).unwrap().len(), 10);
    }

    #[test]
    fn non_numeric_columns_rejected() {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::from_pairs(&[("s", ColumnType::FixedStr(4))]);
        let mut t = RowTable::create(&mut mem, schema, 4).unwrap();
        t.load(&mut mem, &[Value::Str("x".into())]).unwrap();
        assert!(HashIndex::build(&mut mem, &t, 0).is_err());
        assert!(OrderedIndex::build(&mut mem, &t, 0).is_err());
    }

    #[test]
    fn empty_table_indexes() {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::from_pairs(&[("key", ColumnType::I64)]);
        let t = RowTable::create(&mut mem, schema, 4).unwrap();
        let o = OrderedIndex::build(&mut mem, &t, 0).unwrap();
        assert!(o.is_empty());
        assert!(o.probe(&mut mem, 1).unwrap().is_empty());
        assert!(o.range(&mut mem, 0, 100).unwrap().is_empty());
    }
}
