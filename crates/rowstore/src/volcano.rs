//! Volcano-style (tuple-at-a-time) operators.
//!
//! Each operator implements [`Operator::next`], pulling one tuple at a time
//! from its child — the processing model the paper's ROW baseline uses
//! (§V). Per-tuple interpretation overhead is charged via
//! [`fabric_sim::hierarchy::OpCosts::volcano_next`]; row bytes travel
//! through the timed memory hierarchy.

use fabric_sim::MemoryHierarchy;
use fabric_types::geometry::merge_field_spans;
use fabric_types::{AggFunc, CmpOp, ColumnId, Expr, FabricError, Result, Value, ValueAgg};
use std::collections::BTreeMap;

use crate::table::RowTable;

/// A pull-based operator producing positional tuples.
pub trait Operator {
    /// Number of output slots per tuple.
    fn arity(&self) -> usize;

    /// Produce the next tuple into `out` (resized as needed). Returns
    /// `false` at end of stream.
    fn next(&mut self, mem: &mut MemoryHierarchy, out: &mut Vec<Value>) -> Result<bool>;
}

/// Sequential scan over a [`RowTable`], decoding only the requested columns
/// (projection pushed into the scan, as any reasonable row engine does) —
/// but still paying the memory traffic of the lines those fields live in.
pub struct SeqScan<'a> {
    table: &'a RowTable,
    cols: Vec<ColumnId>,
    spans: Vec<(usize, usize)>,
    cursor: usize,
    end: usize,
}

impl<'a> SeqScan<'a> {
    pub fn new(table: &'a RowTable, cols: Vec<ColumnId>) -> Result<Self> {
        let end = table.len();
        Self::with_range(table, cols, 0, end)
    }

    /// Scan only rows `[start, end)` — the morsel-driven executor carves
    /// the row space into fixed-size ranges and runs one scan per morsel.
    /// `end` is clamped to the table length.
    pub fn with_range(
        table: &'a RowTable,
        cols: Vec<ColumnId>,
        start: usize,
        end: usize,
    ) -> Result<Self> {
        let fields = table.layout().fields(&cols)?;
        let spans = merge_field_spans(&fields, 0);
        let end = end.min(table.len());
        Ok(SeqScan {
            table,
            cols,
            spans,
            cursor: start.min(end),
            end,
        })
    }

    /// Scan every column.
    pub fn full(table: &'a RowTable) -> Result<Self> {
        Self::new(table, (0..table.schema().len()).collect())
    }
}

impl Operator for SeqScan<'_> {
    fn arity(&self) -> usize {
        self.cols.len()
    }

    fn next(&mut self, mem: &mut MemoryHierarchy, out: &mut Vec<Value>) -> Result<bool> {
        if self.cursor >= self.end {
            return Ok(false);
        }
        let costs = mem.costs();
        let row_addr = self.table.row_addr(self.cursor);
        // Touch the lines holding the accessed fields; the spans of one
        // tuple are independent loads, so their misses overlap.
        if self.spans.len() == 1 {
            let (off, len) = self.spans[0];
            mem.touch_read(row_addr + off as u64, len);
        } else {
            let parts: Vec<(u64, usize)> = self
                .spans
                .iter()
                .map(|&(off, len)| (row_addr + off as u64, len))
                .collect();
            mem.touch_read_gather(&parts);
        }
        mem.cpu(costs.volcano_next + costs.decode * self.cols.len() as u64);

        out.clear();
        let layout = self.table.layout();
        let row = mem.bytes(row_addr, layout.row_width());
        for &c in &self.cols {
            let ty = layout.column_type(c)?;
            out.push(Value::decode(ty, &row[layout.range(c)?]));
        }
        self.cursor += 1;
        Ok(true)
    }
}

/// Filter on the child's output slots: a conjunction of
/// `slot <op> constant` tests.
pub struct Filter<'a> {
    child: Box<dyn Operator + 'a>,
    preds: Vec<(usize, CmpOp, Value)>,
}

impl<'a> Filter<'a> {
    pub fn new(child: Box<dyn Operator + 'a>, preds: Vec<(usize, CmpOp, Value)>) -> Self {
        Filter { child, preds }
    }
}

impl Operator for Filter<'_> {
    fn arity(&self) -> usize {
        self.child.arity()
    }

    fn next(&mut self, mem: &mut MemoryHierarchy, out: &mut Vec<Value>) -> Result<bool> {
        let costs = mem.costs();
        loop {
            if !self.child.next(mem, out)? {
                return Ok(false);
            }
            mem.cpu(costs.volcano_next);
            let mut pass = true;
            for (slot, op, val) in &self.preds {
                mem.cpu(costs.value_op);
                let v = out.get(*slot).ok_or(FabricError::ColumnIndexOutOfRange {
                    index: *slot,
                    len: out.len(),
                })?;
                if !op.matches(v.compare(val)?) {
                    pass = false;
                    break;
                }
            }
            if pass {
                return Ok(true);
            }
            // Selective branch: mispredictions cost.
            mem.cpu(costs.branch_miss);
        }
    }
}

/// Projection: evaluate expressions over the child's slots.
pub struct Project<'a> {
    child: Box<dyn Operator + 'a>,
    exprs: Vec<Expr>,
    expr_ops: u64,
    input: Vec<Value>,
}

impl<'a> Project<'a> {
    pub fn new(child: Box<dyn Operator + 'a>, exprs: Vec<Expr>) -> Self {
        let expr_ops = exprs.iter().map(Expr::ops).sum();
        Project {
            child,
            exprs,
            expr_ops,
            input: Vec::new(),
        }
    }
}

impl Operator for Project<'_> {
    fn arity(&self) -> usize {
        self.exprs.len()
    }

    fn next(&mut self, mem: &mut MemoryHierarchy, out: &mut Vec<Value>) -> Result<bool> {
        if !self.child.next(mem, &mut self.input)? {
            return Ok(false);
        }
        let costs = mem.costs();
        mem.cpu(costs.volcano_next + costs.value_op * (self.expr_ops + self.exprs.len() as u64));
        out.clear();
        for e in &self.exprs {
            out.push(e.eval(&self.input)?);
        }
        Ok(true)
    }
}

/// One aggregate: function over an expression of the child's slots.
#[derive(Debug, Clone)]
pub struct AggExpr {
    pub func: AggFunc,
    pub expr: Expr,
}

impl AggExpr {
    pub fn new(func: AggFunc, expr: Expr) -> Self {
        AggExpr { func, expr }
    }
}

/// Hash aggregation with optional grouping. Consumes the child on the first
/// `next()`, then emits one tuple per group: the group-key slots followed by
/// the aggregate results, ordered by key for determinism.
pub struct HashAggregate<'a> {
    child: Box<dyn Operator + 'a>,
    group_by: Vec<usize>,
    aggs: Vec<AggExpr>,
    results: Option<std::vec::IntoIter<Vec<Value>>>,
}

impl<'a> HashAggregate<'a> {
    pub fn new(child: Box<dyn Operator + 'a>, group_by: Vec<usize>, aggs: Vec<AggExpr>) -> Self {
        HashAggregate {
            child,
            group_by,
            aggs,
            results: None,
        }
    }

    fn consume(&mut self, mem: &mut MemoryHierarchy) -> Result<Vec<Vec<Value>>> {
        let costs = mem.costs();
        let expr_ops: u64 = self.aggs.iter().map(|a| a.expr.ops()).sum();
        // BTreeMap keeps the groups key-ordered as they build, so the
        // emission order below never depends on hash iteration.
        let mut groups: BTreeMap<String, (Vec<Value>, Vec<ValueAgg>)> = BTreeMap::new();
        let mut tuple = Vec::new();
        while self.child.next(mem, &mut tuple)? {
            mem.cpu(
                costs.volcano_next
                    + costs.hash_op
                    + costs.f64_op * (expr_ops + self.aggs.len() as u64),
            );
            let key = encode_key(&tuple, &self.group_by)?;
            let entry = groups.entry(key).or_insert_with(|| {
                let key_vals = self.group_by.iter().map(|&s| tuple[s].clone()).collect();
                let accs = self.aggs.iter().map(|a| ValueAgg::new(a.func)).collect();
                (key_vals, accs)
            });
            for (acc, agg) in entry.1.iter_mut().zip(&self.aggs) {
                acc.update(&agg.expr.eval(&tuple)?)?;
            }
        }
        let mut rows = Vec::with_capacity(groups.len());
        for (_, (mut key_vals, accs)) in groups {
            for acc in &accs {
                key_vals.push(acc.finish()?);
            }
            rows.push(key_vals);
        }
        Ok(rows)
    }
}

fn encode_key(tuple: &[Value], slots: &[usize]) -> Result<String> {
    use std::fmt::Write;
    let mut key = String::new();
    for &s in slots {
        let v = tuple.get(s).ok_or(FabricError::ColumnIndexOutOfRange {
            index: s,
            len: tuple.len(),
        })?;
        write!(key, "{v}\u{1f}").expect("writing to String cannot fail");
    }
    Ok(key)
}

impl Operator for HashAggregate<'_> {
    fn arity(&self) -> usize {
        self.group_by.len() + self.aggs.len()
    }

    fn next(&mut self, mem: &mut MemoryHierarchy, out: &mut Vec<Value>) -> Result<bool> {
        if self.results.is_none() {
            let rows = self.consume(mem)?;
            self.results = Some(rows.into_iter());
        }
        match self.results.as_mut().unwrap().next() {
            Some(row) => {
                *out = row;
                Ok(true)
            }
            None => Ok(false),
        }
    }
}

/// Drain an operator into a materialized result set.
pub fn execute_collect(
    mem: &mut MemoryHierarchy,
    op: &mut dyn Operator,
) -> Result<Vec<Vec<Value>>> {
    let mut rows = Vec::new();
    let mut tuple = Vec::new();
    while op.next(mem, &mut tuple)? {
        rows.push(tuple.clone());
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::SimConfig;
    use fabric_types::{ColumnType, Schema};

    /// Table: (id i64, grp char(1), val f64), 100 rows,
    /// id = i, grp = "A"/"B" alternating, val = i as f64.
    fn fixture() -> (MemoryHierarchy, RowTable) {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::from_pairs(&[
            ("id", ColumnType::I64),
            ("grp", ColumnType::FixedStr(1)),
            ("val", ColumnType::F64),
        ]);
        let mut t = RowTable::create(&mut mem, schema, 128).unwrap();
        for i in 0..100i64 {
            let g = if i % 2 == 0 { "A" } else { "B" };
            t.load(
                &mut mem,
                &[Value::I64(i), Value::Str(g.into()), Value::F64(i as f64)],
            )
            .unwrap();
        }
        (mem, t)
    }

    #[test]
    fn scan_returns_all_rows_in_order() {
        let (mut mem, t) = fixture();
        let mut scan = SeqScan::new(&t, vec![0]).unwrap();
        let rows = execute_collect(&mut mem, &mut scan).unwrap();
        assert_eq!(rows.len(), 100);
        assert_eq!(rows[17], vec![Value::I64(17)]);
    }

    #[test]
    fn scan_advances_simulated_time() {
        let (mut mem, t) = fixture();
        let t0 = mem.now();
        let mut scan = SeqScan::full(&t).unwrap();
        execute_collect(&mut mem, &mut scan).unwrap();
        assert!(mem.now() > t0);
        assert!(mem.stats().bytes_read > 0);
    }

    #[test]
    fn filter_selects_matching_tuples() {
        let (mut mem, t) = fixture();
        let scan = SeqScan::new(&t, vec![0, 2]).unwrap();
        let mut filter = Filter::new(
            Box::new(scan),
            vec![
                (0, CmpOp::Ge, Value::I64(90)),
                (1, CmpOp::Lt, Value::F64(95.0)),
            ],
        );
        let rows = execute_collect(&mut mem, &mut filter).unwrap();
        assert_eq!(rows.len(), 5); // ids 90..94
        assert_eq!(rows[0][0], Value::I64(90));
    }

    #[test]
    fn project_evaluates_expressions() {
        let (mut mem, t) = fixture();
        let scan = SeqScan::new(&t, vec![0, 2]).unwrap();
        let mut proj = Project::new(
            Box::new(scan),
            vec![Expr::mul(Expr::col(1), Expr::lit(Value::F64(2.0)))],
        );
        let rows = execute_collect(&mut mem, &mut proj).unwrap();
        assert_eq!(rows[3], vec![Value::F64(6.0)]);
        assert_eq!(proj.arity(), 1);
    }

    #[test]
    fn grouped_aggregation() {
        let (mut mem, t) = fixture();
        // SELECT grp, count(*), sum(val) FROM t GROUP BY grp ORDER BY grp
        let scan = SeqScan::new(&t, vec![1, 2]).unwrap();
        let mut agg = HashAggregate::new(
            Box::new(scan),
            vec![0],
            vec![
                AggExpr::new(AggFunc::Count, Expr::col(0)),
                AggExpr::new(AggFunc::Sum, Expr::col(1)),
            ],
        );
        let rows = execute_collect(&mut mem, &mut agg).unwrap();
        assert_eq!(rows.len(), 2);
        // A: even i in 0..100 -> 50 rows, sum = 2450.
        assert_eq!(rows[0][0], Value::Str("A".into()));
        assert_eq!(rows[0][1], Value::I64(50));
        assert_eq!(rows[0][2], Value::F64(2450.0));
        // B: odd i -> 50 rows, sum = 2500.
        assert_eq!(rows[1][0], Value::Str("B".into()));
        assert_eq!(rows[1][2], Value::F64(2500.0));
    }

    #[test]
    fn scalar_aggregation_no_groups() {
        let (mut mem, t) = fixture();
        let scan = SeqScan::new(&t, vec![2]).unwrap();
        let mut agg = HashAggregate::new(
            Box::new(scan),
            vec![],
            vec![AggExpr::new(AggFunc::Max, Expr::col(0))],
        );
        let rows = execute_collect(&mut mem, &mut agg).unwrap();
        assert_eq!(rows, vec![vec![Value::F64(99.0)]]);
    }

    #[test]
    fn full_pipeline_scan_filter_agg() {
        let (mut mem, t) = fixture();
        // SELECT sum(val * 2) FROM t WHERE id < 10
        let scan = SeqScan::new(&t, vec![0, 2]).unwrap();
        let filter = Filter::new(Box::new(scan), vec![(0, CmpOp::Lt, Value::I64(10))]);
        let mut agg = HashAggregate::new(
            Box::new(filter),
            vec![],
            vec![AggExpr::new(
                AggFunc::Sum,
                Expr::mul(Expr::col(1), Expr::lit(Value::F64(2.0))),
            )],
        );
        let rows = execute_collect(&mut mem, &mut agg).unwrap();
        assert_eq!(rows, vec![vec![Value::F64(90.0)]]); // 2 * (0+..+9)
    }

    #[test]
    fn narrow_scan_touches_fewer_bytes_than_full_scan() {
        let (mut mem, t) = fixture();
        let before = mem.stats();
        let mut narrow = SeqScan::new(&t, vec![0]).unwrap();
        execute_collect(&mut mem, &mut narrow).unwrap();
        let narrow_bytes = mem.stats().delta_since(&before).bytes_read;

        let before = mem.stats();
        let mut full = SeqScan::full(&t).unwrap();
        execute_collect(&mut mem, &mut full).unwrap();
        let full_bytes = mem.stats().delta_since(&before).bytes_read;
        assert!(narrow_bytes < full_bytes);
    }

    #[test]
    fn ranged_scans_cover_the_table_exactly_once() {
        let (mut mem, t) = fixture();
        let mut all = Vec::new();
        for start in (0..100).step_by(32) {
            let mut scan = SeqScan::with_range(&t, vec![0], start, start + 32).unwrap();
            all.extend(execute_collect(&mut mem, &mut scan).unwrap());
        }
        let mut full = SeqScan::new(&t, vec![0]).unwrap();
        assert_eq!(all, execute_collect(&mut mem, &mut full).unwrap());
        // Out-of-bounds ranges clamp instead of panicking.
        let mut over = SeqScan::with_range(&t, vec![0], 96, 1000).unwrap();
        assert_eq!(execute_collect(&mut mem, &mut over).unwrap().len(), 4);
        let mut empty = SeqScan::with_range(&t, vec![0], 500, 600).unwrap();
        assert!(execute_collect(&mut mem, &mut empty).unwrap().is_empty());
    }

    #[test]
    fn filter_on_bad_slot_is_error() {
        let (mut mem, t) = fixture();
        let scan = SeqScan::new(&t, vec![0]).unwrap();
        let mut f = Filter::new(Box::new(scan), vec![(5, CmpOp::Eq, Value::I64(0))]);
        let mut tuple = Vec::new();
        assert!(f.next(&mut mem, &mut tuple).is_err());
    }
}
