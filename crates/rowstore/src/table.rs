//! Row-oriented base tables.

use fabric_sim::MemoryHierarchy;
use fabric_types::{Addr, ColumnId, FabricError, Geometry, Result, RowLayout, Schema, Value};

/// Index of a row within a table.
pub type RowId = usize;

/// A fixed-width, row-oriented table stored contiguously in the simulated
/// arena. This is the *single* base layout of the Relational Fabric design:
/// OLTP writes land here, the RM device gathers from here, and the Volcano
/// engine scans it directly.
pub struct RowTable {
    schema: Schema,
    layout: RowLayout,
    base: Addr,
    rows: usize,
    capacity: usize,
}

impl RowTable {
    /// Create a table with a packed layout and room for `capacity` rows.
    pub fn create(mem: &mut MemoryHierarchy, schema: Schema, capacity: usize) -> Result<Self> {
        let layout = RowLayout::packed(&schema);
        Self::create_with_layout(mem, schema, layout, capacity)
    }

    /// Create with an explicit layout (e.g. padded to 64-byte rows for the
    /// paper's microbenchmarks).
    pub fn create_with_layout(
        mem: &mut MemoryHierarchy,
        schema: Schema,
        layout: RowLayout,
        capacity: usize,
    ) -> Result<Self> {
        if layout.num_columns() != schema.len() {
            return Err(FabricError::Internal(
                "layout/schema column count mismatch".into(),
            ));
        }
        let base = mem.alloc(capacity * layout.row_width(), mem.config().line_size)?;
        Ok(RowTable {
            schema,
            layout,
            base,
            rows: 0,
            capacity,
        })
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn layout(&self) -> &RowLayout {
        &self.layout
    }

    /// Base address of row 0.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Number of rows currently stored.
    pub fn len(&self) -> usize {
        self.rows
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Address of row `id`.
    pub fn row_addr(&self, id: RowId) -> Addr {
        debug_assert!(id < self.rows || id < self.capacity);
        self.base + (id * self.layout.row_width()) as u64
    }

    fn encode_row(&self, values: &[Value], buf: &mut [u8]) -> Result<()> {
        if values.len() != self.schema.len() {
            return Err(FabricError::Internal(format!(
                "row has {} values, schema has {} columns",
                values.len(),
                self.schema.len()
            )));
        }
        for (id, v) in values.iter().enumerate() {
            let ty = self.layout.column_type(id)?;
            let range = self.layout.range(id)?;
            v.encode_into(ty, &mut buf[range])?;
        }
        Ok(())
    }

    /// Append a row through the timed hierarchy — the OLTP ingest path.
    /// Row stores shine here: one contiguous write per row.
    pub fn append(&mut self, mem: &mut MemoryHierarchy, values: &[Value]) -> Result<RowId> {
        if self.rows == self.capacity {
            return Err(FabricError::Internal("table full".into()));
        }
        let mut buf = vec![0u8; self.layout.row_width()];
        self.encode_row(values, &mut buf)?;
        let id = self.rows;
        mem.cpu(mem.costs().value_op * self.schema.len() as u64);
        mem.write(self.row_addr(id), &buf);
        self.rows += 1;
        Ok(id)
    }

    /// Append without charging simulated time — bulk loading outside the
    /// measured window.
    pub fn load(&mut self, mem: &mut MemoryHierarchy, values: &[Value]) -> Result<RowId> {
        if self.rows == self.capacity {
            return Err(FabricError::Internal("table full".into()));
        }
        let mut buf = vec![0u8; self.layout.row_width()];
        self.encode_row(values, &mut buf)?;
        let id = self.rows;
        mem.write_untimed(self.row_addr(id), &buf);
        self.rows += 1;
        Ok(id)
    }

    /// Overwrite one column of an existing row through the timed hierarchy
    /// — the in-place OLTP update path.
    pub fn update_column(
        &mut self,
        mem: &mut MemoryHierarchy,
        id: RowId,
        col: ColumnId,
        v: &Value,
    ) -> Result<()> {
        if id >= self.rows {
            return Err(FabricError::Internal(format!("row {id} out of bounds")));
        }
        let ty = self.layout.column_type(col)?;
        let mut buf = vec![0u8; ty.width()];
        v.encode_into(ty, &mut buf)?;
        mem.cpu(mem.costs().value_op);
        mem.write(self.row_addr(id) + self.layout.offset(col)? as u64, &buf);
        Ok(())
    }

    /// Decode one full row without charging time (verification helper).
    pub fn decode_row_untimed(&self, mem: &MemoryHierarchy, id: RowId) -> Result<Vec<Value>> {
        let row = mem.read_untimed(self.row_addr(id), self.layout.row_width());
        (0..self.schema.len())
            .map(|c| {
                let ty = self.layout.column_type(c)?;
                Ok(Value::decode(ty, &row[self.layout.range(c)?]))
            })
            .collect()
    }

    /// Decode a single column value, charging a timed read of that field —
    /// the OLTP point-read path.
    pub fn read_column(
        &self,
        mem: &mut MemoryHierarchy,
        id: RowId,
        col: ColumnId,
    ) -> Result<Value> {
        if id >= self.rows {
            return Err(FabricError::Internal(format!("row {id} out of bounds")));
        }
        let ty = self.layout.column_type(col)?;
        let addr = self.row_addr(id) + self.layout.offset(col)? as u64;
        mem.touch_read(addr, ty.width());
        mem.cpu(mem.costs().value_op);
        let bytes = mem.bytes(addr, ty.width());
        Ok(Value::decode(ty, bytes))
    }

    /// Overwrite the row count. For storage-maintenance operations (e.g.
    /// MVCC vacuum compaction) that rewrite the tail of the table; `new_len`
    /// must not exceed the current length.
    pub fn set_len(&mut self, new_len: usize) {
        assert!(new_len <= self.rows, "set_len may only shrink the table");
        self.rows = new_len;
    }

    /// Copy the raw bytes of row `src` over row `dst` through the timed
    /// hierarchy (compaction move).
    pub fn move_row(&mut self, mem: &mut MemoryHierarchy, src: RowId, dst: RowId) {
        if src == dst {
            return;
        }
        let w = self.layout.row_width();
        let mut buf = vec![0u8; w];
        mem.read_into(self.row_addr(src), &mut buf);
        mem.write(self.row_addr(dst), &buf);
    }

    /// Build the [`Geometry`] describing an ephemeral access to `cols` of
    /// this table — the bridge from the row store to Relational Memory.
    pub fn geometry(&self, cols: &[ColumnId]) -> Result<Geometry> {
        let fields = self.layout.fields(cols)?;
        Ok(Geometry::packed(
            self.base,
            self.layout.row_width(),
            self.rows,
            fields,
        ))
    }

    /// Geometry of `cols` restricted to the row range `[start, end)` — the
    /// paper's §III-A combination of on-the-fly vertical partitioning with
    /// conventional horizontal partitioning/sharding: *"the data system can
    /// request the desired column group on a sharding key range"*.
    pub fn geometry_range(&self, cols: &[ColumnId], start: RowId, end: RowId) -> Result<Geometry> {
        if start > end || end > self.rows {
            return Err(FabricError::Internal(format!(
                "row range {start}..{end} out of bounds (len {})",
                self.rows
            )));
        }
        let fields = self.layout.fields(cols)?;
        Ok(Geometry::packed(
            self.row_addr(start),
            self.layout.row_width(),
            end - start,
            fields,
        ))
    }

    /// Geometry of columns named `names`.
    pub fn geometry_by_name(&self, names: &[&str]) -> Result<Geometry> {
        let ids: Vec<ColumnId> = names
            .iter()
            .map(|n| self.schema.column_id(n))
            .collect::<Result<_>>()?;
        self.geometry(&ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::SimConfig;
    use fabric_types::ColumnType;

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(SimConfig::zynq_a53())
    }

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("key", ColumnType::I64),
            ("flag", ColumnType::FixedStr(4)),
            ("qty", ColumnType::F64),
        ])
    }

    #[test]
    fn append_and_decode_roundtrip() {
        let mut mem = mem();
        let mut t = RowTable::create(&mut mem, schema(), 16).unwrap();
        let row = vec![Value::I64(42), Value::Str("ab".into()), Value::F64(1.5)];
        let id = t.append(&mut mem, &row).unwrap();
        assert_eq!(t.decode_row_untimed(&mem, id).unwrap(), row);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn append_charges_time_load_does_not() {
        let mut mem = mem();
        let mut t = RowTable::create(&mut mem, schema(), 16).unwrap();
        let row = vec![Value::I64(1), Value::Str("x".into()), Value::F64(0.0)];
        let t0 = mem.now();
        t.load(&mut mem, &row).unwrap();
        assert_eq!(mem.now(), t0);
        t.append(&mut mem, &row).unwrap();
        assert!(mem.now() > t0);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut mem = mem();
        let mut t = RowTable::create(&mut mem, schema(), 1).unwrap();
        let row = vec![Value::I64(1), Value::Str("x".into()), Value::F64(0.0)];
        t.append(&mut mem, &row).unwrap();
        assert!(t.append(&mut mem, &row).is_err());
    }

    #[test]
    fn update_and_point_read_column() {
        let mut mem = mem();
        let mut t = RowTable::create(&mut mem, schema(), 4).unwrap();
        let row = vec![Value::I64(7), Value::Str("hi".into()), Value::F64(2.0)];
        let id = t.append(&mut mem, &row).unwrap();
        t.update_column(&mut mem, id, 2, &Value::F64(9.5)).unwrap();
        assert_eq!(t.read_column(&mut mem, id, 2).unwrap(), Value::F64(9.5));
        assert_eq!(t.read_column(&mut mem, id, 0).unwrap(), Value::I64(7));
        assert!(t.read_column(&mut mem, 99, 0).is_err());
        assert!(t.update_column(&mut mem, 99, 0, &Value::I64(0)).is_err());
    }

    #[test]
    fn wrong_arity_rejected() {
        let mut mem = mem();
        let mut t = RowTable::create(&mut mem, schema(), 4).unwrap();
        assert!(t.append(&mut mem, &[Value::I64(1)]).is_err());
    }

    #[test]
    fn geometry_describes_the_table() {
        let mut mem = mem();
        let mut t = RowTable::create(&mut mem, schema(), 4).unwrap();
        let row = vec![Value::I64(1), Value::Str("x".into()), Value::F64(0.0)];
        t.load(&mut mem, &row).unwrap();
        t.load(&mut mem, &row).unwrap();
        let g = t.geometry_by_name(&["qty", "key"]).unwrap();
        assert_eq!(g.rows, 2);
        assert_eq!(g.row_width, 20);
        assert_eq!(g.fields[0].offset, 12); // qty after key(8) + flag(4)
        assert_eq!(g.fields[1].offset, 0);
        assert_eq!(g.output_row_width(), 16);
        assert!(g.validate().is_ok());
        assert!(t.geometry_by_name(&["nope"]).is_err());
    }

    #[test]
    fn geometry_range_is_a_horizontal_partition() {
        let mut mem = mem();
        let mut t = RowTable::create(&mut mem, schema(), 8).unwrap();
        for i in 0..8i64 {
            t.load(
                &mut mem,
                &[Value::I64(i), Value::Str("x".into()), Value::F64(0.0)],
            )
            .unwrap();
        }
        let g = t.geometry_range(&[0], 2, 6).unwrap();
        assert_eq!(g.rows, 4);
        assert_eq!(g.base, t.row_addr(2));
        assert!(g.validate().is_ok());
        assert!(t.geometry_range(&[0], 5, 3).is_err());
        assert!(t.geometry_range(&[0], 0, 9).is_err());
    }

    #[test]
    fn padded_layout_table() {
        let mut mem = mem();
        let s = Schema::uniform(3, ColumnType::I32);
        let layout = RowLayout::padded(&s, 64).unwrap();
        let mut t = RowTable::create_with_layout(&mut mem, s, layout, 8).unwrap();
        let id = t
            .load(&mut mem, &[Value::I32(1), Value::I32(2), Value::I32(3)])
            .unwrap();
        assert_eq!(t.row_addr(id + 1) - t.row_addr(id), 64);
    }
}
