//! Staging-buffer flow control under backpressure.
//!
//! The RM engine may run at most `window_batches()` deliveries ahead of
//! the consumer: the batch about to be produced reuses the staging-buffer
//! slot of the batch taken `window` deliveries ago. These tests pin the
//! observable consequences: a slow consumer throttles the device (and
//! loses nothing), lookahead hides production latency from a bursty
//! consumer exactly up to the buffer's depth, and the window never drops
//! below classic double buffering — including when `buffer_bytes` does
//! not divide evenly by `batch_bytes`.

use fabric_sim::{Cycles, FaultPlan, MemoryHierarchy, RecoveryPolicy, SimConfig};
use fabric_types::{ColumnType, Geometry, RowLayout, Schema};
use relmem::{EphemeralColumns, RmConfig};

/// `rows` rows of 16 i32 columns, c_j(i) = i*16+j, projecting {0, 5}.
fn fixture(rows: usize) -> (MemoryHierarchy, Geometry) {
    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    let schema = Schema::uniform(16, ColumnType::I32);
    let layout = RowLayout::packed(&schema);
    let base = mem.alloc(rows * 64, 64).unwrap();
    for i in 0..rows {
        for j in 0..16usize {
            let v = (i * 16 + j) as i32;
            mem.write_untimed(base + (i * 64 + j * 4) as u64, &v.to_le_bytes());
        }
    }
    let fields = layout.fields(&[0, 5]).unwrap();
    (mem, Geometry::packed(base, 64, rows, fields))
}

fn cfg_with(buffer_bytes: usize, batch_bytes: usize) -> RmConfig {
    RmConfig {
        buffer_bytes,
        batch_bytes,
        ..RmConfig::prototype()
    }
}

/// Drain the variable, charging `burn_per_batch` CPU cycles of consumer
/// work after each pull. Returns (bytes delivered, batches, elapsed).
fn drain(
    mem: &mut MemoryHierarchy,
    eph: &mut EphemeralColumns,
    burn_per_batch: Cycles,
) -> (Vec<u8>, u64, Cycles) {
    let t0 = mem.now();
    let mut bytes = Vec::new();
    let mut batches = 0u64;
    while let Some(b) = eph.next_batch(mem) {
        bytes.extend_from_slice(b.data());
        batches += 1;
        if burn_per_batch > 0 {
            mem.cpu(burn_per_batch);
        }
    }
    (bytes, batches, mem.now() - t0)
}

#[test]
fn window_never_drops_below_double_buffering() {
    // Exact division.
    assert_eq!(cfg_with(8 * 4096, 4096).window_batches(), 8);
    // Non-divisible: rounds down, never up.
    assert_eq!(cfg_with(13_000, 4096).window_batches(), 3);
    // Buffer == batch, and buffer < batch: floor of 2 (double buffering).
    assert_eq!(cfg_with(4096, 4096).window_batches(), 2);
    assert_eq!(cfg_with(1024, 4096).window_batches(), 2);
}

#[test]
fn slow_consumer_loses_no_data_and_no_batches() {
    let rows = 10_000;
    let (mut mem, g) = fixture(rows);
    let mut eph = EphemeralColumns::configure(&mut mem, cfg_with(2 * 4096, 4096), g).unwrap();
    let (fast_bytes, fast_batches, _) = drain(&mut mem, &mut eph, 0);

    let (mut mem, g) = fixture(rows);
    let burn = mem.config().ns_to_cycles(50_000.0); // 50 µs of host work per batch
    let mut eph = EphemeralColumns::configure(&mut mem, cfg_with(2 * 4096, 4096), g).unwrap();
    let (slow_bytes, slow_batches, _) = drain(&mut mem, &mut eph, burn);

    assert_eq!(
        fast_bytes, slow_bytes,
        "backpressure must not drop or reorder data"
    );
    assert_eq!(fast_batches, slow_batches);
    assert_eq!(slow_bytes.len(), rows * 8);
    assert_eq!(eph.stats().rows_scanned, rows as u64);
    assert_eq!(eph.stats().batches, slow_batches);
}

#[test]
fn slow_consumer_dominates_elapsed_time() {
    // When the consumer is far slower than the engine, total time is the
    // consumer's: production hides entirely behind the burn, even with
    // the minimum window.
    let rows = 10_000;
    let (mut mem, g) = fixture(rows);
    let burn = mem.config().ns_to_cycles(50_000.0);
    let mut eph = EphemeralColumns::configure(&mut mem, cfg_with(4096, 4096), g).unwrap();
    let (_, batches, elapsed) = drain(&mut mem, &mut eph, burn);
    assert!(
        elapsed >= batches * burn,
        "elapsed {elapsed} must include {batches} burns of {burn}"
    );
    // The engine contributes at most ~one batch of unhidden latency plus
    // the bus transfers; 2x the pure-burn floor is a generous ceiling.
    assert!(
        elapsed < 2 * batches * burn,
        "device time must overlap a slow consumer (elapsed {elapsed}, floor {})",
        batches * burn
    );
}

#[test]
fn lookahead_hides_production_from_a_bursty_consumer() {
    // The consumer goes away for 1 ms, then drains as fast as it can. A
    // deep staging buffer lets the device fill every slot during the
    // absence; the minimum window caps pre-production at two batches, so
    // the tiny-buffer drain pays engine latency batch after batch.
    let run = |buffer_bytes: usize| {
        let (mut mem, g) = fixture(20_000);
        let mut eph =
            EphemeralColumns::configure(&mut mem, cfg_with(buffer_bytes, 4096), g).unwrap();
        let away = mem.config().ns_to_cycles(1_000_000.0);
        mem.cpu(away);
        let (bytes, _, elapsed) = drain(&mut mem, &mut eph, 0);
        (bytes, elapsed)
    };
    let (tiny_bytes, tiny) = run(4096); // window floor: 2 batches
    let (deep_bytes, deep) = run(64 * 4096); // deeper than the whole scan
    assert_eq!(
        tiny_bytes, deep_bytes,
        "window depth must not change the data"
    );
    assert!(
        deep < tiny,
        "a deep buffer must hide production latency behind the consumer's \
         absence (deep {deep} vs tiny {tiny})"
    );
}

#[test]
fn deeper_windows_are_monotonically_not_slower() {
    // Same bursty consumer; windows 2, 3, and 8. Each extra slot can only
    // help (or do nothing once production is fully hidden).
    let run = |buffer_bytes: usize| {
        let (mut mem, g) = fixture(20_000);
        let mut eph =
            EphemeralColumns::configure(&mut mem, cfg_with(buffer_bytes, 4096), g).unwrap();
        mem.cpu(mem.config().ns_to_cycles(200_000.0));
        drain(&mut mem, &mut eph, 0).2
    };
    let w2 = run(2 * 4096);
    let w3 = run(3 * 4096 + 1000); // non-divisible on purpose: still window 3
    let w8 = run(8 * 4096);
    assert!(
        w3 <= w2,
        "window 3 ({w3}) must not be slower than window 2 ({w2})"
    );
    assert!(
        w8 <= w3,
        "window 8 ({w8}) must not be slower than window 3 ({w3})"
    );
}

#[test]
fn resilient_delivery_respects_the_same_flow_control() {
    // The fault-tolerant pull path shares the staging-buffer window with
    // the plain one: a quiet plan under a slow consumer delivers the
    // identical byte stream and batch count.
    let rows = 6_000;
    let (mut mem, g) = fixture(rows);
    let mut eph = EphemeralColumns::configure(&mut mem, cfg_with(2 * 4096, 4096), g).unwrap();
    let (plain_bytes, plain_batches, _) = drain(&mut mem, &mut eph, 0);

    let (mut mem, g) = fixture(rows);
    let burn = mem.config().ns_to_cycles(25_000.0);
    let mut eph = EphemeralColumns::configure(&mut mem, cfg_with(2 * 4096, 4096), g).unwrap();
    let mut plan = FaultPlan::quiet();
    let policy = RecoveryPolicy::default();
    let mut bytes = Vec::new();
    let mut batches = 0u64;
    while let Some(b) = eph
        .next_batch_resilient(&mut mem, &mut plan, &policy)
        .unwrap()
    {
        bytes.extend_from_slice(b.data());
        batches += 1;
        mem.cpu(burn);
    }
    assert_eq!(plain_bytes, bytes);
    assert_eq!(plain_batches, batches);
    assert_eq!(eph.stats().retries, 0);
    assert_eq!(plan.stats().total(), 0);
}
