//! Relational Memory device parameters.

/// Parameters of the RM engine, defaulting to the paper's prototype
/// (§V "Target Platform": programmable logic constrained to 100 MHz, a 2 MB
/// on-device data memory refilled whenever it is full).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RmConfig {
    /// Time for the engine to emit one packed 64-byte output line
    /// (one beat of the 100 MHz datapath = 10 ns).
    pub engine_ns_per_line: f64,
    /// Time for the row-disassembly pipeline to ingest one base row
    /// (one row per engine clock in the prototype: the gather stage issues
    /// all of a row's line requests in parallel across banks/AXI ports,
    /// and the shredder consumes one row per cycle regardless of width).
    pub engine_ns_per_row: f64,
    /// Capacity of the on-device staging buffer.
    pub buffer_bytes: usize,
    /// Size of one delivery batch; the buffer holds
    /// `buffer_bytes / batch_bytes` batches of production lookahead.
    pub batch_bytes: usize,
    /// CPU-side cost of pulling one ready output line across the bus into
    /// the core (an uncached-but-streaming AXI read; dearer than an L2 hit,
    /// far cheaper than a DRAM miss).
    pub bus_ns_per_line: f64,
    /// One-time cost of configuring an ephemeral variable (writing the
    /// geometry into the device's control registers).
    pub configure_ns: f64,
}

impl RmConfig {
    /// The paper's prototype parameters.
    pub fn prototype() -> Self {
        RmConfig {
            engine_ns_per_line: 10.0,
            engine_ns_per_row: 10.0,
            buffer_bytes: 2 * 1024 * 1024,
            batch_bytes: 64 * 1024,
            bus_ns_per_line: 7.0,
            configure_ns: 500.0,
        }
    }

    /// The envisioned Relational Memory *Controller* (§IV-C): the engine
    /// integrated into the memory controller itself. Low-level DIMM access
    /// and ISA integration shrink both the per-access setup and the
    /// delivery cost; the engine runs at the controller clock.
    pub fn rmc() -> Self {
        RmConfig {
            engine_ns_per_line: 2.5, // 400 MHz controller-domain engine
            engine_ns_per_row: 2.5,
            buffer_bytes: 2 * 1024 * 1024,
            batch_bytes: 64 * 1024,
            bus_ns_per_line: 5.0, // no AXI hop: data arrives like a miss fill
            configure_ns: 50.0,   // an ISA instruction, not MMIO writes
        }
    }

    /// This configuration with the engine time-multiplexed across
    /// `tenants` concurrently active ephemeral variables (the EDBT
    /// prototype exposes a small number of geometry slots): each tenant
    /// sees a 1/`tenants` share of the row and line beats, and of the
    /// staging buffer.
    pub fn shared(self, tenants: usize) -> RmConfig {
        assert!(tenants >= 1);
        RmConfig {
            engine_ns_per_line: self.engine_ns_per_line * tenants as f64,
            engine_ns_per_row: self.engine_ns_per_row * tenants as f64,
            buffer_bytes: (self.buffer_bytes / tenants).max(self.batch_bytes.min(4096) * 2),
            batch_bytes: self
                .batch_bytes
                .min((self.buffer_bytes / tenants / 2).max(4096)),
            ..self
        }
    }

    /// Batches of lookahead the staging buffer affords (min 2: classic
    /// double buffering).
    pub fn window_batches(&self) -> usize {
        (self.buffer_bytes / self.batch_bytes).max(2)
    }
}

impl Default for RmConfig {
    fn default() -> Self {
        Self::prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_paper() {
        let c = RmConfig::prototype();
        assert_eq!(c.buffer_bytes, 2 * 1024 * 1024);
        assert!((c.engine_ns_per_line - 10.0).abs() < 1e-9); // 100 MHz
    }

    #[test]
    fn shared_divides_engine_and_buffer() {
        let c = RmConfig::prototype().shared(4);
        assert!((c.engine_ns_per_row - 40.0).abs() < 1e-9);
        assert!((c.engine_ns_per_line - 40.0).abs() < 1e-9);
        assert_eq!(c.buffer_bytes, 512 * 1024);
        assert_eq!(RmConfig::prototype().shared(1), RmConfig::prototype());
    }

    #[test]
    fn rmc_is_strictly_tighter_than_the_prototype() {
        let rm = RmConfig::prototype();
        let rmc = RmConfig::rmc();
        assert!(rmc.engine_ns_per_row < rm.engine_ns_per_row);
        assert!(rmc.bus_ns_per_line < rm.bus_ns_per_line);
        assert!(rmc.configure_ns < rm.configure_ns);
    }

    #[test]
    fn window_is_buffer_over_batch_with_floor() {
        let c = RmConfig::prototype();
        assert_eq!(c.window_batches(), 32);
        let tiny = RmConfig {
            buffer_bytes: 1024,
            batch_bytes: 1024,
            ..c
        };
        assert_eq!(tiny.window_batches(), 2);
    }
}
