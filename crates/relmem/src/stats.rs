//! Device-side statistics.

/// What the RM device did while serving ephemeral accesses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RmStats {
    /// Base rows examined (visibility + predicate evaluated).
    pub rows_scanned: u64,
    /// Rows that qualified and contributed output.
    pub rows_emitted: u64,
    /// Source cache lines fetched from DRAM by the gather engine.
    pub source_lines: u64,
    /// Packed output lines delivered toward the CPU.
    pub output_lines: u64,
    /// Delivery batches produced.
    pub batches: u64,
    /// Ephemeral variables configured.
    pub configures: u64,
    /// Faults injected into this device (engine stalls, delivery
    /// timeouts, bit flips) by the active [`fabric_sim::FaultPlan`].
    pub injected_faults: u64,
    /// Delivery attempts that elapsed with no data (device timeout).
    pub delivery_timeouts: u64,
    /// Delivered batches whose CRC32 frame check failed.
    pub crc_failures: u64,
    /// Redelivery attempts performed during fault recovery.
    pub retries: u64,
}

impl RmStats {
    /// Ratio of source bytes fetched to output bytes delivered — the
    /// device-side amplification of a sparse geometry.
    pub fn gather_amplification(&self) -> f64 {
        if self.output_lines == 0 {
            return 0.0;
        }
        self.source_lines as f64 / self.output_lines as f64
    }

    /// Record every counter into a metrics registry under
    /// `<prefix>.<counter>` — the single serialization path for stats
    /// (replaces hand-rolled formatters; see fabric-lint `raw-stats-print`).
    pub fn record_into(&self, registry: &mut fabric_sim::MetricsRegistry, prefix: &str) {
        for (name, value) in [
            ("rows_scanned", self.rows_scanned),
            ("rows_emitted", self.rows_emitted),
            ("source_lines", self.source_lines),
            ("output_lines", self.output_lines),
            ("batches", self.batches),
            ("configures", self.configures),
            ("injected_faults", self.injected_faults),
            ("delivery_timeouts", self.delivery_timeouts),
            ("crc_failures", self.crc_failures),
            ("retries", self.retries),
        ] {
            registry.counter_add(&format!("{prefix}.{name}"), value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplification() {
        let s = RmStats {
            source_lines: 160,
            output_lines: 10,
            ..Default::default()
        };
        assert!((s.gather_amplification() - 16.0).abs() < 1e-12);
        assert_eq!(RmStats::default().gather_amplification(), 0.0);
    }
}
