//! Device-side aggregation units (paper §IV-B).
//!
//! In `Aggregate` output mode the fabric reduces qualifying rows to a
//! handful of scalars while gathering, so only the results — not the data —
//! cross the memory hierarchy: *"the ephemeral variables will contain only
//! the required data or the aggregation result, which will be passed through
//! the memory hierarchy ensuring minimal data movement"*.

use fabric_types::{AggFunc, AggSpec, ColumnType, FabricError, Result, Value};

/// Running state of one aggregate unit.
#[derive(Debug, Clone)]
pub struct AggState {
    spec: AggSpec,
    count: u64,
    sum_f: f64,
    sum_i: i64,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    pub fn new(spec: AggSpec) -> Self {
        AggState {
            spec,
            count: 0,
            sum_f: 0.0,
            sum_i: 0,
            min: None,
            max: None,
        }
    }

    /// Feed one qualifying row (raw bytes).
    pub fn update_raw(&mut self, row: &[u8]) -> Result<()> {
        self.count += 1;
        let Some(field) = self.spec.field else {
            return Ok(()); // COUNT(*)
        };
        let v = Value::decode(field.ty, &row[field.range()]);
        match self.spec.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => {
                self.sum_f += v.as_f64()?;
                if let Ok(i) = v.as_i64() {
                    self.sum_i = self.sum_i.wrapping_add(i);
                }
            }
            AggFunc::Min => {
                let better = match &self.min {
                    None => true,
                    Some(cur) => v.compare(cur)? == std::cmp::Ordering::Less,
                };
                if better {
                    self.min = Some(v);
                }
            }
            AggFunc::Max => {
                let better = match &self.max {
                    None => true,
                    Some(cur) => v.compare(cur)? == std::cmp::Ordering::Greater,
                };
                if better {
                    self.max = Some(v);
                }
            }
        }
        Ok(())
    }

    /// Final result. Empty inputs yield `Count = 0` and an error for
    /// min/max/avg (there is no value to return), matching SQL's NULL with
    /// the means this library has.
    pub fn finish(&self) -> Result<Value> {
        match self.spec.func {
            AggFunc::Count => Ok(Value::I64(self.count as i64)),
            AggFunc::Sum => match self.spec.field {
                Some(field) if is_integral(field.ty) => Ok(Value::I64(self.sum_i)),
                Some(_) => Ok(Value::F64(self.sum_f)),
                None => Err(FabricError::Internal(
                    "SUM aggregate without a source field".into(),
                )),
            },
            AggFunc::Avg => {
                if self.count == 0 {
                    Err(FabricError::Internal("AVG over zero rows".into()))
                } else {
                    Ok(Value::F64(self.sum_f / self.count as f64))
                }
            }
            AggFunc::Min => self
                .min
                .clone()
                .ok_or_else(|| FabricError::Internal("MIN over zero rows".into())),
            AggFunc::Max => self
                .max
                .clone()
                .ok_or_else(|| FabricError::Internal("MAX over zero rows".into())),
        }
    }
}

fn is_integral(ty: ColumnType) -> bool {
    matches!(
        ty,
        ColumnType::I8 | ColumnType::I16 | ColumnType::I32 | ColumnType::I64 | ColumnType::Date
    )
}

/// A bank of aggregate units fed row by row.
#[derive(Debug, Clone)]
pub struct AggBank {
    states: Vec<AggState>,
}

impl AggBank {
    pub fn new(specs: &[AggSpec]) -> Self {
        AggBank {
            states: specs.iter().map(|s| AggState::new(*s)).collect(),
        }
    }

    pub fn update_raw(&mut self, row: &[u8]) -> Result<()> {
        for s in &mut self.states {
            s.update_raw(row)?;
        }
        Ok(())
    }

    pub fn finish(&self) -> Result<Vec<Value>> {
        self.states.iter().map(|s| s.finish()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_types::FieldSlice;

    fn row_i32(v: i32) -> Vec<u8> {
        v.to_le_bytes().to_vec()
    }

    fn field() -> FieldSlice {
        FieldSlice::new(0, 0, ColumnType::I32)
    }

    #[test]
    fn count_sum_min_max_avg() {
        let specs = vec![
            AggSpec::count(),
            AggSpec::over(AggFunc::Sum, field()),
            AggSpec::over(AggFunc::Min, field()),
            AggSpec::over(AggFunc::Max, field()),
            AggSpec::over(AggFunc::Avg, field()),
        ];
        let mut bank = AggBank::new(&specs);
        for v in [5, -3, 10, 0] {
            bank.update_raw(&row_i32(v)).unwrap();
        }
        let out = bank.finish().unwrap();
        assert_eq!(out[0], Value::I64(4));
        assert_eq!(out[1], Value::I64(12));
        assert_eq!(out[2], Value::I32(-3));
        assert_eq!(out[3], Value::I32(10));
        assert_eq!(out[4], Value::F64(3.0));
    }

    #[test]
    fn float_sum_uses_f64() {
        let f = FieldSlice::new(0, 0, ColumnType::F64);
        let mut s = AggState::new(AggSpec::over(AggFunc::Sum, f));
        for v in [1.5f64, 2.25] {
            s.update_raw(&v.to_le_bytes()).unwrap();
        }
        assert_eq!(s.finish().unwrap(), Value::F64(3.75));
    }

    #[test]
    fn empty_input_behaviour() {
        let bank = AggBank::new(&[AggSpec::count()]);
        assert_eq!(bank.finish().unwrap(), vec![Value::I64(0)]);
        let s = AggState::new(AggSpec::over(AggFunc::Min, field()));
        assert!(s.finish().is_err());
        let s = AggState::new(AggSpec::over(AggFunc::Avg, field()));
        assert!(s.finish().is_err());
    }

    #[test]
    fn integral_sum_wraps_not_panics() {
        let f = FieldSlice::new(0, 0, ColumnType::I64);
        let mut s = AggState::new(AggSpec::over(AggFunc::Sum, f));
        s.update_raw(&i64::MAX.to_le_bytes()).unwrap();
        s.update_raw(&1i64.to_le_bytes()).unwrap();
        // Wrapping, like the hardware adder would.
        assert_eq!(s.finish().unwrap(), Value::I64(i64::MIN));
    }
}
