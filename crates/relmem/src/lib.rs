//! Relational Memory — the paper's primary contribution.
//!
//! Relational Memory (RM) is a near-data transformation engine that sits
//! between the processor and main memory and converts row-oriented base data
//! into *any* requested column-group layout on the fly (paper §II, §IV-A).
//! The CPU accesses the transformed data through **ephemeral variables**:
//! handles that behave as if the packed column group already existed in
//! memory, although it is never materialized there.
//!
//! This crate is the software model of that hardware:
//!
//! * [`RmConfig`] captures the prototype's parameters (100 MHz engine clock,
//!   2 MB staging buffer, AXI-side transfer cost);
//! * [`device`] implements the four key operations of §IV-A — receive the
//!   access geometry, issue parallel DRAM requests (through its own
//!   [`fabric_sim::DramModel`] port, bank parallelism included), pack
//!   entries into dense cache lines, and deliver them to the CPU with
//!   producer/consumer flow control bounded by the staging buffer;
//! * [`ephemeral`] is the user-facing API: configure a
//!   [`fabric_types::Geometry`], then stream [`ephemeral::PackedBatch`]es
//!   or run a device-side aggregate;
//! * [`packer`] holds the pure byte-shuffling logic (what the FPGA datapath
//!   does), usable and testable without any simulated timing;
//! * [`aggregate`] implements the device-side aggregation units (§IV-B).
//!
//! Selection push-down (§IV-B) and MVCC visibility filtering (§III-C) are
//! expressed through the geometry: a predicate and/or
//! [`fabric_types::TsFilter`] make the device skip non-qualifying rows while
//! gathering.

pub mod aggregate;
pub mod config;
pub mod device;
pub mod ephemeral;
pub mod packer;
pub mod stats;
pub mod verify;

pub use config::RmConfig;
pub use ephemeral::{EphemeralColumns, PackedBatch};
pub use stats::RmStats;
pub use verify::VerifiedGeometry;
