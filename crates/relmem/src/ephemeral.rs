//! Ephemeral variables — the CPU-facing API of Relational Memory.
//!
//! Paper §II: *"these transient variables are never instantiated in main
//! memory. Instead, upon accessing such a variable, the underlying machinery
//! is set in motion and generates an on-the-fly projection of the requested
//! columns."* Accordingly, [`PackedBatch`] data lives in plain host buffers
//! handed over by the device model — never in the simulated [`fabric_sim::MemArena`] —
//! and consuming it charges bus-transfer time plus producer-readiness
//! stalls instead of cache/DRAM accesses.
//!
//! ```
//! use fabric_sim::{MemoryHierarchy, SimConfig};
//! use fabric_types::{ColumnType, Geometry, RowLayout, Schema};
//! use relmem::{EphemeralColumns, RmConfig};
//!
//! // A 16-column row-oriented table (the paper's microbenchmark shape).
//! let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
//! let schema = Schema::uniform(16, ColumnType::I32);
//! let layout = RowLayout::packed(&schema);
//! let rows = 1024;
//! let base = mem.alloc(rows * layout.row_width(), 64).unwrap();
//!
//! // `configure` = line 25 of paper Fig. 3.
//! let fields = layout.fields(&[0, 5, 9]).unwrap();
//! let geometry = Geometry::packed(base, layout.row_width(), rows, fields);
//! let mut eph = EphemeralColumns::configure(&mut mem, RmConfig::prototype(), geometry).unwrap();
//!
//! // Reading the ephemeral variable sets the machinery in motion.
//! let mut total_rows = 0;
//! while let Some(batch) = eph.next_batch(&mut mem) {
//!     total_rows += batch.len();
//! }
//! assert_eq!(total_rows, 1024);
//! ```

use crate::config::RmConfig;
use crate::device::DeviceRun;
use crate::packer;
use crate::stats::RmStats;
use fabric_sim::{Category, Cycles, FaultPlan, MemoryHierarchy, RecoveryPolicy};
use fabric_types::{crc32, le_array, ColumnType, FabricError, Geometry, OutputMode, Result, Value};
use std::collections::VecDeque;

/// Device name reported in fault errors raised by this module.
const DEVICE_NAME: &str = "rm-engine";

/// One delivery batch of packed column-group rows.
///
/// The payload layout is row-major packed structs, exactly the
/// `ephemeral struct column_group` of paper Fig. 3: for each qualifying base
/// row, the requested fields concatenated in request order.
#[derive(Debug, Clone)]
pub struct PackedBatch {
    data: Vec<u8>,
    rows: usize,
    row_width: usize,
    field_offsets: Vec<usize>,
    field_types: Vec<ColumnType>,
    /// Number of qualifying rows in this batch.
    pub(crate) _private: (),
}

impl PackedBatch {
    /// Number of packed rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of packed rows (field alias used widely in engine code).
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Width of one packed row in bytes.
    pub fn row_width(&self) -> usize {
        self.row_width
    }

    /// The raw packed payload.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Raw bytes of packed row `row`.
    #[inline]
    pub fn row_bytes(&self, row: usize) -> &[u8] {
        let off = row * self.row_width;
        &self.data[off..off + self.row_width]
    }

    /// Raw bytes of field `field` (index into the geometry's request list)
    /// of packed row `row`.
    #[inline]
    pub fn field_bytes(&self, row: usize, field: usize) -> &[u8] {
        let off = row * self.row_width + self.field_offsets[field];
        &self.data[off..off + self.field_types[field].width()]
    }

    /// Decode field `field` of row `row`.
    pub fn value(&self, row: usize, field: usize) -> Value {
        Value::decode(self.field_types[field], self.field_bytes(row, field))
    }

    /// Fast path: little-endian `i32` field.
    #[inline]
    pub fn i32_at(&self, row: usize, field: usize) -> i32 {
        i32::from_le_bytes(le_array(self.field_bytes(row, field)))
    }

    /// Fast path: little-endian `i64` field.
    #[inline]
    pub fn i64_at(&self, row: usize, field: usize) -> i64 {
        i64::from_le_bytes(le_array(self.field_bytes(row, field)))
    }

    /// Fast path: little-endian `f64` field.
    #[inline]
    pub fn f64_at(&self, row: usize, field: usize) -> f64 {
        f64::from_le_bytes(le_array(self.field_bytes(row, field)))
    }

    /// Fast path: little-endian `u32` field (dates).
    #[inline]
    pub fn u32_at(&self, row: usize, field: usize) -> u32 {
        u32::from_le_bytes(le_array(self.field_bytes(row, field)))
    }

    /// Fast path: first byte of a field (one-character flags).
    #[inline]
    pub fn byte_at(&self, row: usize, field: usize) -> u8 {
        self.field_bytes(row, field)[0]
    }
}

/// A configured ephemeral variable: the handle through which the CPU streams
/// an arbitrary data geometry out of row-oriented base data.
pub struct EphemeralColumns {
    geometry: Geometry,
    cfg: RmConfig,
    run: DeviceRun,
    bus_cycles_per_line: Cycles,
    batch_bytes: usize,
    field_offsets: Vec<usize>,
    field_types: Vec<ColumnType>,
    pending: Option<crate::device::ProducedBatch>,
    /// Times at which recent batches were taken by the CPU; bounds the
    /// device's production lookahead to the staging-buffer window.
    taken_at: VecDeque<Cycles>,
    line_size: usize,
}

impl EphemeralColumns {
    /// Configure the device for `geometry` (paper Fig. 3 line 25).
    ///
    /// Convenience wrapper: verifies the geometry against `cfg` (see
    /// [`crate::verify::VerifiedGeometry`]) and then delegates to
    /// [`Self::configure_verified`].
    pub fn configure(mem: &mut MemoryHierarchy, cfg: RmConfig, geometry: Geometry) -> Result<Self> {
        let verified = crate::verify::VerifiedGeometry::new(&cfg, geometry)?;
        Ok(Self::configure_verified(mem, cfg, verified))
    }

    /// Configure the device for an already-verified geometry. Charges the
    /// configuration cost and immediately starts production of the first
    /// batch. Infallible: every admission check ran at verification time.
    pub fn configure_verified(
        mem: &mut MemoryHierarchy,
        cfg: RmConfig,
        verified: crate::verify::VerifiedGeometry,
    ) -> Self {
        let geometry = verified.into_inner();
        let sim = mem.config().clone();
        mem.trace_begin("rm.configure", Category::Rm);
        mem.cpu(sim.ns_to_cycles(cfg.configure_ns));
        mem.trace_end(
            "rm.configure",
            Category::Rm,
            &[("fields", verified_field_count(&geometry))],
        );

        let out_width = geometry.output_row_width();
        let batch_bytes = cfg.batch_bytes.max(out_width.max(1));
        let mut run = DeviceRun::new(&sim, &cfg, &geometry);
        run.note_configure();
        // Field locations within one delivered row: packed prefix sums for
        // column groups; the *original* row offsets when whole rows are
        // delivered.
        let field_offsets = match geometry.mode {
            OutputMode::FilteredRows => geometry.fields.iter().map(|f| f.offset).collect(),
            _ => packer::packed_offsets(&geometry),
        };
        let field_types = geometry.fields.iter().map(|f| f.ty).collect();

        let mut this = EphemeralColumns {
            geometry,
            cfg,
            run,
            bus_cycles_per_line: sim.ns_to_cycles(cfg.bus_ns_per_line),
            batch_bytes,
            field_offsets,
            field_types,
            pending: None,
            taken_at: VecDeque::new(),
            line_size: sim.line_size,
        };
        if !matches!(this.geometry.mode, OutputMode::Aggregate(_)) {
            this.start_next_production(mem, mem.now(), None);
        }
        this
    }

    /// The geometry this variable serves.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Device statistics so far.
    pub fn stats(&self) -> RmStats {
        self.run.stats()
    }

    fn start_next_production(
        &mut self,
        mem: &MemoryHierarchy,
        cpu_now: Cycles,
        faults: Option<&mut FaultPlan>,
    ) {
        // The device may only run `window` batches ahead of consumption:
        // the batch about to be produced reuses the buffer slot of the
        // batch taken `window` deliveries ago.
        let window = self.cfg.window_batches();
        let slot_free_at = if self.taken_at.len() >= window {
            self.taken_at[self.taken_at.len() - window]
        } else {
            0
        };
        let start_at = slot_free_at.max(if self.taken_at.is_empty() { cpu_now } else { 0 });
        self.pending = self.run.produce(
            mem.arena(),
            &self.geometry,
            start_at,
            self.batch_bytes,
            faults,
        );
    }

    /// Pull the next batch of packed rows (paper Fig. 3 line 31: touching
    /// the ephemeral variable makes the machinery deliver the data).
    ///
    /// Charges: a stall until the device has the batch ready, plus the bus
    /// transfer of its output lines. Returns `None` when the geometry is
    /// exhausted.
    pub fn next_batch(&mut self, mem: &mut MemoryHierarchy) -> Option<PackedBatch> {
        let produced = self.pending.take()?;
        trace_device_phases(mem, &produced);
        // Wait for the producer, then pull the lines across the bus.
        mem.trace_begin("rm.deliver", Category::Rm);
        mem.stall_until(produced.ready_at);
        let lines = produced.data.len().div_ceil(self.line_size) as u64;
        mem.stall_until(mem.now() + lines * self.bus_cycles_per_line);
        mem.trace_end(
            "rm.deliver",
            Category::Rm,
            &[
                ("rows", produced.rows as u64),
                ("bytes", produced.data.len() as u64),
                ("lines", lines),
            ],
        );

        self.taken_at.push_back(mem.now());
        if self.taken_at.len() > self.cfg.window_batches() + 1 {
            self.taken_at.pop_front();
        }
        self.start_next_production(mem, mem.now(), None);

        Some(PackedBatch {
            data: produced.data,
            rows: produced.rows,
            row_width: self.geometry.output_row_width(),
            field_offsets: self.field_offsets.clone(),
            field_types: self.field_types.clone(),
            _private: (),
        })
    }

    /// Fault-aware variant of [`Self::next_batch`]: delivery runs under a
    /// seeded [`FaultPlan`] and recovers per `policy` (DESIGN.md §9).
    ///
    /// Each delivery attempt may time out (the device produced the batch
    /// but delivery elapses with no data) or arrive with flipped bits; the
    /// consumer verifies the batch's CRC-32 frame and requests redelivery,
    /// charging an exponential backoff to the simulated clock per retry.
    /// Past `policy.max_retries` redeliveries the fault is surfaced as
    /// [`FabricError::DeviceTimeout`] or [`FabricError::CorruptBatch`] so a
    /// higher layer (e.g. `query::exec`) can degrade onto a software path.
    ///
    /// With a quiet plan this is byte- and time-identical to
    /// [`Self::next_batch`] except for the per-batch CRC-check charge.
    pub fn next_batch_resilient(
        &mut self,
        mem: &mut MemoryHierarchy,
        plan: &mut FaultPlan,
        policy: &RecoveryPolicy,
    ) -> Result<Option<PackedBatch>> {
        let Some(produced) = self.pending.take() else {
            return Ok(None);
        };
        trace_device_phases(mem, &produced);
        mem.trace_begin("rm.deliver", Category::Rm);
        mem.stall_until(produced.ready_at);
        let lines = (produced.data.len().div_ceil(self.line_size) as u64).max(1);
        let cpu_ghz = mem.config().cpu_ghz;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            if plan.rm_timeout() {
                // The delivery window elapsed with no data on the bus.
                let s = self.run.stats_mut();
                s.injected_faults += 1;
                s.delivery_timeouts += 1;
                mem.trace_instant(
                    "rm.fault.timeout",
                    Category::Fault,
                    &[("attempt", attempts as u64)],
                );
                if attempts > policy.max_retries {
                    mem.trace_end("rm.deliver", Category::Rm, &[("failed", 1)]);
                    return Err(FabricError::DeviceTimeout {
                        device: DEVICE_NAME.into(),
                        attempts,
                    });
                }
                self.run.stats_mut().retries += 1;
                mem.trace_instant("rm.retry", Category::Fault, &[("attempt", attempts as u64)]);
                mem.stall_retry_until(mem.now() + policy.backoff_cycles(attempts, cpu_ghz));
                continue;
            }

            // Pull the lines across the bus; the wire may flip a bit.
            mem.stall_until(mem.now() + lines * self.bus_cycles_per_line);
            let mut data = produced.data.clone();
            if let Some((byte, mask)) = plan.rm_corrupt(data.len()) {
                data[byte] ^= mask;
                self.run.stats_mut().injected_faults += 1;
            }

            // CPU-side frame check, charged per delivered line.
            mem.cpu(lines * mem.costs().value_op);
            if crc32(&data) == produced.crc {
                mem.trace_end(
                    "rm.deliver",
                    Category::Rm,
                    &[
                        ("rows", produced.rows as u64),
                        ("bytes", data.len() as u64),
                        ("lines", lines),
                        ("attempts", attempts as u64),
                    ],
                );
                self.taken_at.push_back(mem.now());
                if self.taken_at.len() > self.cfg.window_batches() + 1 {
                    self.taken_at.pop_front();
                }
                self.start_next_production(mem, mem.now(), Some(plan));
                return Ok(Some(PackedBatch {
                    data,
                    rows: produced.rows,
                    row_width: self.geometry.output_row_width(),
                    field_offsets: self.field_offsets.clone(),
                    field_types: self.field_types.clone(),
                    _private: (),
                }));
            }

            self.run.stats_mut().crc_failures += 1;
            mem.trace_instant(
                "rm.fault.crc",
                Category::Fault,
                &[("attempt", attempts as u64)],
            );
            // Data corruption is a flight-recorder trigger: capture the
            // events leading up to the bad CRC while they are still in
            // the ring.
            mem.flight_dump("crc-failure");
            if attempts > policy.max_retries {
                mem.trace_end("rm.deliver", Category::Rm, &[("failed", 1)]);
                return Err(FabricError::CorruptBatch {
                    device: DEVICE_NAME.into(),
                    attempts,
                });
            }
            self.run.stats_mut().retries += 1;
            mem.trace_instant("rm.retry", Category::Fault, &[("attempt", attempts as u64)]);
            mem.stall_retry_until(mem.now() + policy.backoff_cycles(attempts, cpu_ghz));
        }
    }

    /// Run a device-side aggregation to completion (paper §IV-B). Only
    /// valid for [`OutputMode::Aggregate`] geometries; returns one value per
    /// requested aggregate.
    pub fn run_aggregate(&mut self, mem: &mut MemoryHierarchy) -> Result<Vec<Value>> {
        if !matches!(self.geometry.mode, OutputMode::Aggregate(_)) {
            return Err(FabricError::InvalidGeometry(
                "run_aggregate requires an Aggregate geometry".into(),
            ));
        }
        mem.trace_begin("rm.aggregate", Category::Rm);
        let (values, ready) = self
            .run
            .run_aggregate(mem.arena(), &self.geometry, mem.now())?;
        mem.stall_until(ready);
        // The result is a single line's worth of scalars.
        mem.stall_until(mem.now() + self.bus_cycles_per_line);
        mem.trace_end(
            "rm.aggregate",
            Category::Rm,
            &[("values", values.len() as u64)],
        );
        Ok(values)
    }
}

/// Arg helper for the `rm.configure` span.
fn verified_field_count(geometry: &Geometry) -> u64 {
    geometry.fields.len() as u64
}

/// Retro-report the device-side timeline of a produced batch as
/// `rm.gather` (source-line fetches into the device DRAM port) and
/// `rm.pack` (engine packing until the batch is ready) spans. The phases
/// ran in the simulated past, concurrently with whatever the CPU was
/// doing, which is exactly what the explicit-timestamp span API is for.
fn trace_device_phases(mem: &mut MemoryHierarchy, produced: &crate::device::ProducedBatch) {
    if !mem.tracing() {
        return;
    }
    mem.trace_begin_at(produced.started_at, "rm.gather", Category::Rm);
    mem.trace_end_at(
        produced.gather_done,
        "rm.gather",
        Category::Rm,
        &[("source_lines", produced.source_lines)],
    );
    mem.trace_begin_at(produced.gather_done, "rm.pack", Category::Rm);
    mem.trace_end_at(
        produced.ready_at,
        "rm.pack",
        Category::Rm,
        &[
            ("rows", produced.rows as u64),
            ("bytes", produced.data.len() as u64),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::SimConfig;
    use fabric_types::{
        AggFunc, AggSpec, CmpOp, ColumnPredicate, FieldSlice, Predicate, RowLayout, Schema,
    };

    /// Standard fixture: `rows` rows of 16 i32 columns, c_j(i) = i*16+j.
    fn fixture(rows: usize) -> (MemoryHierarchy, Geometry, RowLayout) {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::uniform(16, ColumnType::I32);
        let layout = RowLayout::packed(&schema);
        let base = mem.alloc(rows * 64, 64).unwrap();
        for i in 0..rows {
            for j in 0..16usize {
                let v = (i * 16 + j) as i32;
                mem.write_untimed(base + (i * 64 + j * 4) as u64, &v.to_le_bytes());
            }
        }
        let fields = layout.fields(&[0, 5]).unwrap();
        let g = Geometry::packed(base, 64, rows, fields);
        (mem, g, layout)
    }

    #[test]
    fn streams_all_rows_with_correct_values() {
        let (mut mem, g, _) = fixture(5000);
        let mut eph = EphemeralColumns::configure(&mut mem, RmConfig::prototype(), g).unwrap();
        let mut seen = 0usize;
        while let Some(b) = eph.next_batch(&mut mem) {
            for r in 0..b.len() {
                let i = seen + r;
                assert_eq!(b.i32_at(r, 0), (i * 16) as i32);
                assert_eq!(b.i32_at(r, 1), (i * 16 + 5) as i32);
            }
            seen += b.len();
        }
        assert_eq!(seen, 5000);
        assert_eq!(eph.stats().rows_scanned, 5000);
    }

    #[test]
    fn consuming_advances_simulated_time() {
        let (mut mem, g, _) = fixture(2000);
        let t0 = mem.now();
        let mut eph = EphemeralColumns::configure(&mut mem, RmConfig::prototype(), g).unwrap();
        while eph.next_batch(&mut mem).is_some() {}
        assert!(mem.now() > t0);
        // Configuration cost alone does not explain the elapsed time.
        let cfg_cycles = mem
            .config()
            .ns_to_cycles(RmConfig::prototype().configure_ns);
        assert!(mem.now() - t0 > cfg_cycles * 2);
    }

    #[test]
    fn predicate_filters_on_device() {
        let (mut mem, g, layout) = fixture(1000);
        let pred = Predicate::always_true().and(ColumnPredicate::new(
            layout.field(0).unwrap(),
            CmpOp::Lt,
            Value::I32((100 * 16) as i32),
        ));
        let g = g.with_predicate(pred);
        let mut eph = EphemeralColumns::configure(&mut mem, RmConfig::prototype(), g).unwrap();
        let mut rows = 0;
        while let Some(b) = eph.next_batch(&mut mem) {
            rows += b.len();
        }
        assert_eq!(rows, 100);
        assert_eq!(eph.stats().rows_scanned, 1000);
        assert_eq!(eph.stats().rows_emitted, 100);
    }

    #[test]
    fn aggregate_roundtrip_through_api() {
        let (mut mem, g, layout) = fixture(1000);
        let f0 = layout.field(0).unwrap();
        let g = g.with_mode(OutputMode::Aggregate(vec![
            AggSpec::count(),
            AggSpec::over(AggFunc::Sum, f0),
        ]));
        let mut eph = EphemeralColumns::configure(&mut mem, RmConfig::prototype(), g).unwrap();
        let vals = eph.run_aggregate(&mut mem).unwrap();
        assert_eq!(vals[0], Value::I64(1000));
        let expect: i64 = (0..1000i64).map(|i| i * 16).sum();
        assert_eq!(vals[1], Value::I64(expect));
    }

    #[test]
    fn aggregate_api_rejects_packed_geometry_and_vice_versa() {
        let (mut mem, g, _) = fixture(10);
        let mut eph =
            EphemeralColumns::configure(&mut mem, RmConfig::prototype(), g.clone()).unwrap();
        assert!(eph.run_aggregate(&mut mem).is_err());
    }

    #[test]
    fn invalid_geometry_rejected_at_configure() {
        let (mut mem, mut g, _) = fixture(10);
        g.fields[0] = FieldSlice::new(0, 62, ColumnType::I32); // out of row
        assert!(EphemeralColumns::configure(&mut mem, RmConfig::prototype(), g).is_err());
    }

    #[test]
    fn filtered_rows_mode_delivers_full_rows() {
        let (mut mem, g, layout) = fixture(100);
        let pred = Predicate::always_true().and(ColumnPredicate::new(
            layout.field(0).unwrap(),
            CmpOp::Ge,
            Value::I32((90 * 16) as i32),
        ));
        let g = g.with_predicate(pred).with_mode(OutputMode::FilteredRows);
        let mut eph = EphemeralColumns::configure(&mut mem, RmConfig::prototype(), g).unwrap();
        let mut rows = 0;
        while let Some(b) = eph.next_batch(&mut mem) {
            assert_eq!(b.row_width(), 64);
            for r in 0..b.len() {
                // Field accessors must use the ORIGINAL row offsets when
                // whole rows are delivered: field 1 is column 5.
                let i = 90 + rows + r;
                assert_eq!(b.i32_at(r, 0), (i * 16) as i32);
                assert_eq!(b.i32_at(r, 1), (i * 16 + 5) as i32);
                assert_eq!(b.value(r, 1), Value::I32((i * 16 + 5) as i32));
            }
            rows += b.len();
        }
        assert_eq!(rows, 10);
    }

    #[test]
    fn smaller_buffer_is_never_faster() {
        // Identical batch size; only the staging-buffer lookahead varies.
        let run = |buffer_bytes: usize| {
            let (mut mem, g, _) = fixture(20_000);
            let cfg = RmConfig {
                buffer_bytes,
                batch_bytes: 4096,
                ..RmConfig::prototype()
            };
            let t0 = mem.now();
            let mut eph = EphemeralColumns::configure(&mut mem, cfg, g).unwrap();
            let mut acc = 0i64;
            while let Some(b) = eph.next_batch(&mut mem) {
                for r in 0..b.len() {
                    acc = acc.wrapping_add(b.i32_at(r, 0) as i64);
                }
                mem.cpu(b.len() as u64 * 2);
            }
            std::hint::black_box(acc);
            mem.now() - t0
        };
        let small = run(8 * 1024);
        let large = run(2 * 1024 * 1024);
        assert!(
            large <= small,
            "large buffer {large} should be <= small buffer {small}"
        );
    }

    #[test]
    fn resilient_quiet_plan_delivers_identical_bytes() {
        use fabric_sim::{FaultPlan, RecoveryPolicy};
        let (mut mem, g, _) = fixture(3000);
        let mut eph =
            EphemeralColumns::configure(&mut mem, RmConfig::prototype(), g.clone()).unwrap();
        let mut plain = Vec::new();
        while let Some(b) = eph.next_batch(&mut mem) {
            plain.extend_from_slice(b.data());
        }

        let (mut mem2, g2, _) = fixture(3000);
        let mut eph2 = EphemeralColumns::configure(&mut mem2, RmConfig::prototype(), g2).unwrap();
        let mut plan = FaultPlan::quiet();
        let policy = RecoveryPolicy::default();
        let mut resilient = Vec::new();
        while let Some(b) = eph2
            .next_batch_resilient(&mut mem2, &mut plan, &policy)
            .unwrap()
        {
            resilient.extend_from_slice(b.data());
        }
        assert_eq!(plain, resilient);
        assert_eq!(plan.stats().total(), 0);
        assert_eq!(eph2.stats().retries, 0);
    }

    #[test]
    fn resilient_recovers_from_sporadic_corruption() {
        use fabric_sim::{FaultConfig, FaultPlan, RecoveryPolicy};
        let (mut mem, g, _) = fixture(3000);
        let cfg = FaultConfig {
            rm_corrupt_prob: 0.25,
            ..FaultConfig::quiet(1234)
        };
        let mut plan = FaultPlan::new(cfg);
        let policy = RecoveryPolicy::default();
        // Small batches so the run makes many deliveries (= many draws).
        let rm_cfg = RmConfig {
            batch_bytes: 1024,
            ..RmConfig::prototype()
        };
        let mut eph = EphemeralColumns::configure(&mut mem, rm_cfg, g).unwrap();
        let mut seen = 0usize;
        while let Some(b) = eph
            .next_batch_resilient(&mut mem, &mut plan, &policy)
            .expect("p=0.25 per attempt cannot exhaust 4 attempts at this seed")
        {
            for r in 0..b.len() {
                let i = seen + r;
                assert_eq!(b.i32_at(r, 0), (i * 16) as i32, "corruption leaked");
            }
            seen += b.len();
        }
        assert_eq!(seen, 3000);
        let s = eph.stats();
        assert!(s.crc_failures > 0, "expected some injected corruption");
        assert_eq!(s.retries, s.crc_failures + s.delivery_timeouts);
        assert!(s.injected_faults >= s.crc_failures);
    }

    #[test]
    fn resilient_surfaces_timeout_past_retry_budget() {
        use fabric_sim::{FaultConfig, FaultPlan, RecoveryPolicy};
        let (mut mem, g, _) = fixture(100);
        let cfg = FaultConfig {
            rm_timeout_prob: 1.0,
            ..FaultConfig::quiet(5)
        };
        let mut plan = FaultPlan::new(cfg);
        let policy = RecoveryPolicy::default();
        let mut eph = EphemeralColumns::configure(&mut mem, RmConfig::prototype(), g).unwrap();
        let t0 = mem.now();
        let err = eph
            .next_batch_resilient(&mut mem, &mut plan, &policy)
            .unwrap_err();
        assert_eq!(
            err,
            FabricError::DeviceTimeout {
                device: "rm-engine".into(),
                attempts: policy.max_retries + 1,
            }
        );
        assert!(mem.now() > t0, "retries must charge simulated time");
        assert_eq!(eph.stats().delivery_timeouts as u32, policy.max_retries + 1);
    }

    #[test]
    fn resilient_surfaces_corruption_past_retry_budget() {
        use fabric_sim::{FaultConfig, FaultPlan, RecoveryPolicy};
        let (mut mem, g, _) = fixture(100);
        let cfg = FaultConfig {
            rm_corrupt_prob: 1.0,
            ..FaultConfig::quiet(5)
        };
        let mut plan = FaultPlan::new(cfg);
        let policy = RecoveryPolicy::default();
        let mut eph = EphemeralColumns::configure(&mut mem, RmConfig::prototype(), g).unwrap();
        let err = eph
            .next_batch_resilient(&mut mem, &mut plan, &policy)
            .unwrap_err();
        assert_eq!(
            err,
            FabricError::CorruptBatch {
                device: "rm-engine".into(),
                attempts: policy.max_retries + 1,
            }
        );
        assert_eq!(eph.stats().crc_failures as u32, policy.max_retries + 1);
    }

    #[test]
    fn batch_value_accessors_agree() {
        let (mut mem, g, _) = fixture(64);
        let mut eph = EphemeralColumns::configure(&mut mem, RmConfig::prototype(), g).unwrap();
        let b = eph.next_batch(&mut mem).unwrap();
        assert_eq!(b.value(3, 1), Value::I32(b.i32_at(3, 1)));
        assert_eq!(b.row_bytes(0).len(), 8);
        assert!(!b.is_empty());
        assert_eq!(b.row_count(), b.len());
    }
}
