//! The timed RM device model.
//!
//! Implements the four key operations of paper §IV-A on top of the pure
//! data path in [`crate::packer`]:
//!
//! 1. *"receives the intended access stride of the query … and issues
//!    parallel main memory requests for the target data"* — the gather
//!    loop streams the touched source lines of every base row into the
//!    device's own [`DramModel`] port, where bank-level parallelism
//!    determines completion times;
//! 2. *"assembles multiple entries into a single packed cache line"* —
//!    packing via [`crate::packer::pack_row`], with the engine emitting one
//!    64-byte output line per engine clock (100 MHz in the prototype);
//! 3. + 4. capture of CPU requests and delivery happen in
//!    [`crate::ephemeral`], which imposes the staging-buffer flow control.

use crate::aggregate::AggBank;
use crate::config::RmConfig;
use crate::packer;
use crate::stats::RmStats;
use fabric_sim::{Cycles, DramModel, FaultPlan, MemArena, SimConfig};
use fabric_types::{crc32, FabricError, Geometry, OutputMode, Result, Value};

/// One batch of packed output as produced by the device, with the simulated
/// time at which its last line left the engine.
#[derive(Debug, Clone)]
pub struct ProducedBatch {
    pub data: Vec<u8>,
    pub rows: usize,
    pub ready_at: Cycles,
    /// CRC-32 frame computed over the pristine payload as it left the
    /// engine; consumers verify it after the bus transfer to detect
    /// in-flight corruption (DESIGN.md §9).
    pub crc: u32,
    /// When the engine started on this batch (observability: the consumer
    /// retro-reports the device timeline as `rm.gather`/`rm.pack` spans).
    pub started_at: Cycles,
    /// When the last source line of this batch arrived from DRAM.
    pub gather_done: Cycles,
    /// Source cache lines this batch fetched from DRAM.
    pub source_lines: u64,
}

/// Device-side execution state for one configured geometry.
pub struct DeviceRun {
    dram: DramModel,
    line_size: u64,
    engine_cycles: Cycles,
    row_beat_cycles: Cycles,
    /// When the engine finished its previous batch (it cannot start the
    /// next one earlier).
    device_free: Cycles,
    /// Next base row to examine.
    cursor: usize,
    /// Merged byte spans of the touched fields within one row.
    spans: Vec<(usize, usize)>,
    /// Last source line fetched (dedup across adjacent rows).
    last_line: u64,
    /// Core cycles per nanosecond, for charging injected stall time.
    cpu_ghz: f64,
    stats: RmStats,
}

impl DeviceRun {
    /// Prepare a run for `geometry`. `sim` supplies the platform clock and
    /// DRAM geometry; `cfg` the device parameters.
    pub fn new(sim: &SimConfig, cfg: &RmConfig, geometry: &Geometry) -> Self {
        let engine_cycles = sim.ns_to_cycles(cfg.engine_ns_per_line);
        let row_beat_cycles = if cfg.engine_ns_per_row > 0.0 {
            sim.ns_to_cycles(cfg.engine_ns_per_row)
        } else {
            0
        };
        // Bridging sub-line gaps costs nothing extra: fetching is per line.
        let spans = packer::touched_spans(geometry, sim.line_size - 1);
        DeviceRun {
            dram: DramModel::new(sim),
            line_size: sim.line_size as u64,
            engine_cycles,
            row_beat_cycles,
            device_free: 0,
            cursor: 0,
            spans,
            last_line: u64::MAX,
            cpu_ghz: sim.cpu_ghz,
            stats: RmStats::default(),
        }
    }

    /// Rows examined so far (the scan cursor).
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    pub fn stats(&self) -> RmStats {
        self.stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut RmStats {
        &mut self.stats
    }

    pub(crate) fn note_configure(&mut self) {
        self.stats.configures += 1;
    }

    /// Produce the next delivery batch of at most `max_bytes` of packed
    /// output, starting no earlier than `start_at` (buffer-slot
    /// availability). Returns `None` when the base data is exhausted and
    /// nothing was packed.
    ///
    /// `faults`, when present, may inject an engine-side stall: the batch
    /// is produced correctly but becomes ready late (recoverable slowness,
    /// not an error).
    pub fn produce(
        &mut self,
        arena: &MemArena,
        g: &Geometry,
        start_at: Cycles,
        max_bytes: usize,
        faults: Option<&mut FaultPlan>,
    ) -> Option<ProducedBatch> {
        if self.cursor >= g.rows {
            return None;
        }
        let start = start_at.max(self.device_free);
        let out_width = g.output_row_width();
        debug_assert!(out_width > 0, "produce() called on an aggregate geometry");
        assert!(
            max_bytes >= out_width,
            "delivery batch ({max_bytes} B) smaller than one packed row ({out_width} B)"
        );

        let mut data = Vec::with_capacity(max_bytes.min(1 << 20));
        let mut rows_emitted = 0usize;
        let mut issue_t = start;
        let mut gather_done = start;
        let source_lines_before = self.stats.source_lines;
        let mut line_buf: Vec<u64> = Vec::with_capacity(8);

        while self.cursor < g.rows && data.len() + out_width <= max_bytes {
            let row_addr = g.base + (self.cursor as u64) * g.row_width as u64;
            // Gather the source lines this row needs.
            line_buf.clear();
            packer::row_source_lines(
                row_addr,
                &self.spans,
                self.line_size,
                &mut self.last_line,
                &mut line_buf,
            );
            for &la in &line_buf {
                let done = self.dram.access(la, issue_t);
                gather_done = gather_done.max(done);
                self.stats.source_lines += 1;
            }
            issue_t += self.row_beat_cycles;
            self.stats.rows_scanned += 1;

            let row = arena.slice(row_addr, g.row_width);
            if packer::row_qualifies(g, row).unwrap_or(false) {
                packer::pack_row(g, row, &mut data);
                rows_emitted += 1;
            }
            self.cursor += 1;
        }

        if data.is_empty() && self.cursor >= g.rows && rows_emitted == 0 && self.stats.batches > 0 {
            // Trailing empty scan (e.g. last rows all filtered out) still
            // consumed device time; fold it into device_free and stop.
            self.device_free = gather_done.max(self.device_free);
            return None;
        }

        let out_lines = (data.len() as u64).div_ceil(self.line_size);
        // Pipelined engine: limited by the last gathered line plus a drain
        // beat, by output-line throughput, or by row-ingest throughput.
        let mut ready = (gather_done + self.engine_cycles)
            .max(start + out_lines * self.engine_cycles)
            .max(issue_t);
        if let Some(plan) = faults {
            if let Some(stall_ns) = plan.rm_engine_stall() {
                ready += (stall_ns * self.cpu_ghz).round().max(1.0) as Cycles;
                self.stats.injected_faults += 1;
            }
        }
        self.device_free = ready;
        self.stats.output_lines += out_lines;
        self.stats.rows_emitted += rows_emitted as u64;
        self.stats.batches += 1;

        let crc = crc32(&data);
        Some(ProducedBatch {
            data,
            rows: rows_emitted,
            ready_at: ready,
            crc,
            started_at: start,
            gather_done,
            source_lines: self.stats.source_lines - source_lines_before,
        })
    }

    /// Run the whole geometry as a device-side aggregation (paper §IV-B):
    /// only the aggregate results leave the device. Returns the values and
    /// the simulated time they are ready.
    pub fn run_aggregate(
        &mut self,
        arena: &MemArena,
        g: &Geometry,
        start_at: Cycles,
    ) -> Result<(Vec<Value>, Cycles)> {
        let OutputMode::Aggregate(specs) = &g.mode else {
            return Err(FabricError::InvalidGeometry(
                "run_aggregate on a non-aggregate geometry".into(),
            ));
        };
        let start = start_at.max(self.device_free);
        let mut bank = AggBank::new(specs);
        let mut issue_t = start;
        let mut gather_done = start;
        let mut line_buf: Vec<u64> = Vec::with_capacity(8);

        while self.cursor < g.rows {
            let row_addr = g.base + (self.cursor as u64) * g.row_width as u64;
            line_buf.clear();
            packer::row_source_lines(
                row_addr,
                &self.spans,
                self.line_size,
                &mut self.last_line,
                &mut line_buf,
            );
            for &la in &line_buf {
                let done = self.dram.access(la, issue_t);
                gather_done = gather_done.max(done);
                self.stats.source_lines += 1;
            }
            issue_t += self.row_beat_cycles;
            self.stats.rows_scanned += 1;

            let row = arena.slice(row_addr, g.row_width);
            if packer::row_qualifies(g, row)? {
                bank.update_raw(row)?;
                self.stats.rows_emitted += 1;
            }
            self.cursor += 1;
        }

        let ready = (gather_done + self.engine_cycles).max(issue_t);
        self.device_free = ready;
        self.stats.output_lines += 1;
        self.stats.batches += 1;
        Ok((bank.finish()?, ready))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_types::{
        AggFunc, AggSpec, CmpOp, ColumnPredicate, ColumnType, FieldSlice, Predicate,
    };

    /// 1000 rows of 16 i32 columns; c_j of row i = (i * 16 + j) as i32.
    fn setup() -> (MemArena, Geometry) {
        let mut arena = MemArena::new();
        let rows = 1000usize;
        let base = arena.alloc(rows * 64, 64).unwrap();
        for i in 0..rows {
            for j in 0..16usize {
                let v = (i * 16 + j) as i32;
                arena.write(base + (i * 64 + j * 4) as u64, &v.to_le_bytes());
            }
        }
        let fields = vec![
            FieldSlice::new(0, 0, ColumnType::I32),
            FieldSlice::new(5, 20, ColumnType::I32),
        ];
        (arena, Geometry::packed(base, 64, rows, fields))
    }

    fn run(cfg: &RmConfig, arena: &MemArena, g: &Geometry) -> (Vec<u8>, usize, Cycles) {
        let sim = SimConfig::zynq_a53();
        let mut dev = DeviceRun::new(&sim, cfg, g);
        let mut all = Vec::new();
        let mut rows = 0;
        let mut last_ready = 0;
        while let Some(b) = dev.produce(arena, g, 0, cfg.batch_bytes, None) {
            all.extend_from_slice(&b.data);
            rows += b.rows;
            last_ready = b.ready_at;
        }
        (all, rows, last_ready)
    }

    #[test]
    fn produces_correct_packed_data() {
        let (arena, g) = setup();
        let (data, rows, ready) = run(&RmConfig::prototype(), &arena, &g);
        assert_eq!(rows, 1000);
        assert_eq!(data.len(), 1000 * 8);
        assert!(ready > 0);
        // Row 7: c0 = 112, c5 = 117.
        let off = 7 * 8;
        assert_eq!(
            i32::from_le_bytes(data[off..off + 4].try_into().unwrap()),
            112
        );
        assert_eq!(
            i32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap()),
            117
        );
    }

    #[test]
    fn batches_respect_max_bytes() {
        let (arena, g) = setup();
        let sim = SimConfig::zynq_a53();
        let cfg = RmConfig::prototype();
        let mut dev = DeviceRun::new(&sim, &cfg, &g);
        let b = dev.produce(&arena, &g, 0, 256, None).unwrap();
        assert!(b.data.len() <= 256);
        assert_eq!(b.rows, 32); // 256 / 8 bytes per packed row
        assert_eq!(dev.cursor(), 32);
    }

    #[test]
    fn device_predicate_filters_rows() {
        let (arena, mut g) = setup();
        // c0 = i * 16, keep rows with c0 < 160 (first 10 rows).
        g = g.with_predicate(Predicate::always_true().and(ColumnPredicate::new(
            FieldSlice::new(0, 0, ColumnType::I32),
            CmpOp::Lt,
            fabric_types::Value::I32(160),
        )));
        let (data, rows, _) = run(&RmConfig::prototype(), &arena, &g);
        assert_eq!(rows, 10);
        assert_eq!(data.len(), 80);
    }

    #[test]
    fn ready_time_respects_engine_throughput() {
        let (arena, g) = setup();
        let sim = SimConfig::zynq_a53();
        // Pathologically slow engine: 1000 ns per output line.
        let slow = RmConfig {
            engine_ns_per_line: 1000.0,
            ..RmConfig::prototype()
        };
        let fast = RmConfig::prototype();
        let (_, _, t_slow) = run(&slow, &arena, &g);
        let (_, _, t_fast) = run(&fast, &arena, &g);
        assert!(
            t_slow > t_fast * 10,
            "slow engine {t_slow} vs fast {t_fast}"
        );
        // Slow engine is throughput-bound: 125 output lines * 1000 ns.
        let expect = sim.ns_to_cycles(1000.0) * 125;
        assert!(t_slow >= expect, "t_slow={t_slow} expect>={expect}");
    }

    #[test]
    fn narrow_projection_fetches_fewer_lines_when_rows_share_lines() {
        // 16-byte rows: 4 rows per line; projecting one column should fetch
        // each line once, not once per row.
        let mut arena = MemArena::new();
        let rows = 400usize;
        let base = arena.alloc(rows * 16, 64).unwrap();
        let g = Geometry::packed(base, 16, rows, vec![FieldSlice::new(0, 0, ColumnType::I32)]);
        let sim = SimConfig::zynq_a53();
        let cfg = RmConfig::prototype();
        let mut dev = DeviceRun::new(&sim, &cfg, &g);
        while dev.produce(&arena, &g, 0, cfg.batch_bytes, None).is_some() {}
        assert_eq!(dev.stats().source_lines, 100); // 400 rows / 4 per line
        assert_eq!(dev.stats().rows_scanned, 400);
    }

    #[test]
    fn aggregate_mode_returns_results_not_data() {
        let (arena, g) = setup();
        let field = FieldSlice::new(0, 0, ColumnType::I32);
        let g = g.with_mode(OutputMode::Aggregate(vec![
            AggSpec::count(),
            AggSpec::over(AggFunc::Sum, field),
        ]));
        let sim = SimConfig::zynq_a53();
        let cfg = RmConfig::prototype();
        let mut dev = DeviceRun::new(&sim, &cfg, &g);
        let (vals, ready) = dev.run_aggregate(&arena, &g, 0).unwrap();
        assert_eq!(vals[0], Value::I64(1000));
        // sum of c0 = sum of i*16 for i in 0..1000
        let expect: i64 = (0..1000i64).map(|i| i * 16).sum();
        assert_eq!(vals[1], Value::I64(expect));
        assert!(ready > 0);
        assert_eq!(dev.stats().output_lines, 1);
    }

    #[test]
    fn run_aggregate_rejects_wrong_mode() {
        let (arena, g) = setup();
        let sim = SimConfig::zynq_a53();
        let cfg = RmConfig::prototype();
        let mut dev = DeviceRun::new(&sim, &cfg, &g);
        assert!(dev.run_aggregate(&arena, &g, 0).is_err());
    }

    #[test]
    fn exhausted_run_returns_none() {
        let (arena, g) = setup();
        let sim = SimConfig::zynq_a53();
        let cfg = RmConfig::prototype();
        let mut dev = DeviceRun::new(&sim, &cfg, &g);
        while dev.produce(&arena, &g, 0, cfg.batch_bytes, None).is_some() {}
        assert!(dev.produce(&arena, &g, 0, cfg.batch_bytes, None).is_none());
        assert_eq!(dev.cursor(), 1000);
    }

    #[test]
    fn produced_batch_crc_frames_the_payload() {
        let (arena, g) = setup();
        let sim = SimConfig::zynq_a53();
        let cfg = RmConfig::prototype();
        let mut dev = DeviceRun::new(&sim, &cfg, &g);
        let b = dev.produce(&arena, &g, 0, cfg.batch_bytes, None).unwrap();
        assert_eq!(b.crc, crc32(&b.data));
        let mut flipped = b.data.clone();
        flipped[3] ^= 0x40;
        assert_ne!(crc32(&flipped), b.crc);
    }

    #[test]
    fn injected_engine_stall_delays_ready_but_not_data() {
        use fabric_sim::{FaultConfig, FaultPlan};
        let (arena, g) = setup();
        let sim = SimConfig::zynq_a53();
        let cfg = RmConfig::prototype();
        // Stall every batch by 10 µs.
        let mut plan = FaultPlan::new(FaultConfig {
            rm_stall_prob: 1.0,
            rm_stall_ns: 10_000.0,
            ..FaultConfig::quiet(7)
        });
        let mut clean = DeviceRun::new(&sim, &cfg, &g);
        let mut faulty = DeviceRun::new(&sim, &cfg, &g);
        let c = clean.produce(&arena, &g, 0, cfg.batch_bytes, None).unwrap();
        let f = faulty
            .produce(&arena, &g, 0, cfg.batch_bytes, Some(&mut plan))
            .unwrap();
        assert_eq!(c.data, f.data, "a stall must not change the payload");
        assert_eq!(c.crc, f.crc);
        assert!(f.ready_at >= c.ready_at + sim.ns_to_cycles(10_000.0));
        assert_eq!(faulty.stats().injected_faults, 1);
        assert_eq!(plan.stats().rm_stalls, 1);
        assert_eq!(clean.stats().injected_faults, 0);
    }

    #[test]
    fn later_start_at_delays_ready() {
        let (arena, g) = setup();
        let sim = SimConfig::zynq_a53();
        let cfg = RmConfig::prototype();
        let mut d1 = DeviceRun::new(&sim, &cfg, &g);
        let r1 = d1.produce(&arena, &g, 0, cfg.batch_bytes, None).unwrap();
        let mut d2 = DeviceRun::new(&sim, &cfg, &g);
        let r2 = d2
            .produce(&arena, &g, 1_000_000, cfg.batch_bytes, None)
            .unwrap();
        assert_eq!(r2.ready_at - 1_000_000, r1.ready_at);
    }
}
