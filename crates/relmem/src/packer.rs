//! The pure data path of the RM engine: extracting requested fields from raw
//! rows and packing them densely, plus qualification (predicate + MVCC
//! visibility).
//!
//! These functions are deliberately free of any timing so they can be tested
//! and reused (the SSD controller in `relstore` packs with the same logic).

use fabric_types::{Geometry, OutputMode, Result};

/// Does `row` qualify under the geometry's visibility and predicate filters?
///
/// This is the comparator chain the paper wants in hardware: the MVCC
/// timestamp check of §III-C followed by the selection predicate of §IV-B.
#[inline]
pub fn row_qualifies(g: &Geometry, row: &[u8]) -> Result<bool> {
    if let Some(vis) = &g.visibility {
        if !vis.visible_raw(row) {
            return Ok(false);
        }
    }
    g.predicate.eval_raw(row)
}

/// Append the geometry's output payload for one qualifying `row` to `out`.
///
/// * `PackedColumns`: the requested fields, concatenated in request order
///   (the `ephemeral struct` of paper Fig. 3).
/// * `FilteredRows`: the whole row.
/// * `Aggregate`: nothing is packed (aggregation happens in
///   [`crate::aggregate`]).
#[inline]
pub fn pack_row(g: &Geometry, row: &[u8], out: &mut Vec<u8>) {
    match &g.mode {
        OutputMode::PackedColumns => {
            for f in &g.fields {
                out.extend_from_slice(&row[f.range()]);
            }
        }
        OutputMode::FilteredRows => out.extend_from_slice(row),
        OutputMode::Aggregate(_) => {}
    }
}

/// Byte offsets of each requested field *within one packed output row*
/// (prefix sums of the field widths).
pub fn packed_offsets(g: &Geometry) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(g.fields.len());
    let mut off = 0;
    for f in &g.fields {
        offsets.push(off);
        off += f.width();
    }
    offsets
}

/// The distinct cache lines (line-aligned addresses) the device must fetch
/// to see the touched fields of the row starting at `row_addr`, appended to
/// `lines`. `spans` must be the merged byte spans from [`touched_spans`].
/// `last_line` deduplicates against the previous row (adjacent rows often
/// share a line); it is updated in place.
#[inline]
pub fn row_source_lines(
    row_addr: u64,
    spans: &[(usize, usize)],
    line_size: u64,
    last_line: &mut u64,
    lines: &mut Vec<u64>,
) {
    for &(off, len) in spans {
        let start = (row_addr + off as u64) & !(line_size - 1);
        let end = (row_addr + (off + len) as u64 - 1) & !(line_size - 1);
        let mut la = start;
        loop {
            if la > *last_line || *last_line == u64::MAX {
                lines.push(la);
                *last_line = la;
            }
            if la >= end {
                break;
            }
            la += line_size;
        }
    }
}

/// Merge the geometry's touched fields into maximal disjoint `(offset, len)`
/// byte spans within a row, sorted by offset. Gaps smaller than
/// `merge_slack` bytes are bridged (fetching one line anyway costs the same).
pub fn touched_spans(g: &Geometry, merge_slack: usize) -> Vec<(usize, usize)> {
    fabric_types::geometry::merge_field_spans(&g.touched_fields(), merge_slack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_types::{
        CmpOp, ColumnPredicate, ColumnType, FieldSlice, Predicate, TsFilter, Value,
    };

    fn f32field(col: usize, offset: usize) -> FieldSlice {
        FieldSlice::new(col, offset, ColumnType::I32)
    }

    fn sample_row() -> Vec<u8> {
        // 16 i32 columns, c_i = 100 + i.
        let mut row = Vec::with_capacity(64);
        for i in 0..16i32 {
            row.extend_from_slice(&(100 + i).to_le_bytes());
        }
        row
    }

    #[test]
    fn pack_row_extracts_fields_in_request_order() {
        let g = Geometry::packed(0, 64, 1, vec![f32field(9, 36), f32field(2, 8)]);
        let row = sample_row();
        let mut out = Vec::new();
        pack_row(&g, &row, &mut out);
        assert_eq!(out.len(), 8);
        assert_eq!(i32::from_le_bytes(out[0..4].try_into().unwrap()), 109);
        assert_eq!(i32::from_le_bytes(out[4..8].try_into().unwrap()), 102);
    }

    #[test]
    fn filtered_rows_mode_packs_whole_row() {
        let g =
            Geometry::packed(0, 64, 1, vec![f32field(0, 0)]).with_mode(OutputMode::FilteredRows);
        let row = sample_row();
        let mut out = Vec::new();
        pack_row(&g, &row, &mut out);
        assert_eq!(out, row);
    }

    #[test]
    fn qualification_applies_visibility_then_predicate() {
        // Row layout: [begin u64][end u64][val i32].
        let mut row = vec![0u8; 20];
        row[..8].copy_from_slice(&5u64.to_le_bytes());
        row[8..16].copy_from_slice(&0u64.to_le_bytes());
        row[16..].copy_from_slice(&50i32.to_le_bytes());

        let val = FieldSlice::new(2, 16, ColumnType::I32);
        let pred =
            Predicate::always_true().and(ColumnPredicate::new(val, CmpOp::Gt, Value::I32(10)));
        let vis = TsFilter {
            begin: FieldSlice::new(0, 0, ColumnType::I64),
            end: FieldSlice::new(1, 8, ColumnType::I64),
            snapshot_ts: 7,
        };
        let g = Geometry::packed(0, 20, 1, vec![val])
            .with_predicate(pred)
            .with_visibility(vis);
        assert!(row_qualifies(&g, &row).unwrap());

        // Snapshot before the row existed: invisible even though the
        // predicate matches.
        let mut g2 = g.clone();
        g2.visibility.as_mut().unwrap().snapshot_ts = 4;
        assert!(!row_qualifies(&g2, &row).unwrap());

        // Predicate fails.
        row[16..].copy_from_slice(&3i32.to_le_bytes());
        assert!(!row_qualifies(&g, &row).unwrap());
    }

    #[test]
    fn packed_offsets_are_prefix_sums() {
        let g = Geometry::packed(
            0,
            64,
            1,
            vec![
                FieldSlice::new(0, 0, ColumnType::I64),
                FieldSlice::new(1, 8, ColumnType::I32),
                FieldSlice::new(2, 12, ColumnType::F64),
            ],
        );
        assert_eq!(packed_offsets(&g), vec![0, 8, 12]);
        assert_eq!(g.output_row_width(), 20);
    }

    #[test]
    fn touched_spans_merge_adjacent_and_slack() {
        let g = Geometry::packed(
            0,
            64,
            1,
            vec![f32field(0, 0), f32field(1, 4), f32field(10, 40)],
        );
        // Adjacent fields merge; distant one stays separate with no slack.
        assert_eq!(touched_spans(&g, 0), vec![(0, 8), (40, 4)]);
        // With 64 bytes of slack everything merges.
        assert_eq!(touched_spans(&g, 64), vec![(0, 44)]);
    }

    #[test]
    fn row_source_lines_dedup_across_rows() {
        let spans = vec![(0usize, 4usize)];
        let mut last = u64::MAX;
        let mut lines = Vec::new();
        // Two 16-byte rows inside the same 64-byte line.
        row_source_lines(0, &spans, 64, &mut last, &mut lines);
        row_source_lines(16, &spans, 64, &mut last, &mut lines);
        assert_eq!(lines, vec![0]);
        // A row in the next line appends exactly one more.
        row_source_lines(64, &spans, 64, &mut last, &mut lines);
        assert_eq!(lines, vec![0, 64]);
    }

    #[test]
    fn row_source_lines_field_straddling_lines() {
        // An 8-byte field at offset 60 straddles two lines.
        let spans = vec![(60usize, 8usize)];
        let mut last = u64::MAX;
        let mut lines = Vec::new();
        row_source_lines(0, &spans, 64, &mut last, &mut lines);
        assert_eq!(lines, vec![0, 64]);
    }
}
