//! Pre-configuration geometry verification.
//!
//! The hardware analogue: the RM engine's control registers only accept a
//! geometry the datapath can actually serve. [`VerifiedGeometry`] is the
//! software encoding of that contract — the only way to obtain one is
//! [`VerifiedGeometry::new`], which checks the geometry against the device
//! configuration and returns structured [`FabricError`]s instead of letting
//! a malformed descriptor reach the packer (where it would surface as an
//! arena panic or silently corrupt output).
//!
//! Checks layered on top of [`Geometry::validate`] (field bounds, mode
//! sanity, aggregate typing):
//!
//! * **destination overlap** — in [`fabric_types::OutputMode::FilteredRows`]
//!   the delivered row reuses the *source* field offsets as destination
//!   offsets, so two requested fields whose byte ranges overlap would alias
//!   in the output; in packed-columns mode destinations are prefix sums and a
//!   duplicated source range means the same bytes are packed twice — both
//!   indicate a malformed request and are rejected;
//! * **buffer geometry** — one packed output row must fit inside a single
//!   delivery batch, and the batch must fit inside the staging buffer with
//!   room for double buffering (the prototype's 2 MB on-device memory,
//!   paper §V).

use crate::config::RmConfig;
use fabric_types::{FabricError, Geometry, Result};

/// A geometry that has passed every device-side admission check for a given
/// [`RmConfig`]. Construction is the verification.
#[derive(Debug, Clone)]
pub struct VerifiedGeometry {
    geometry: Geometry,
}

impl VerifiedGeometry {
    /// Verify `geometry` against `cfg`. Every rejection is a structured
    /// [`FabricError`]; nothing here panics.
    pub fn new(cfg: &RmConfig, geometry: Geometry) -> Result<Self> {
        geometry.validate()?;
        check_buffer_geometry(cfg, &geometry)?;
        check_destination_overlap(&geometry)?;
        Ok(VerifiedGeometry { geometry })
    }

    /// The verified geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Unwrap back into the raw descriptor.
    pub fn into_inner(self) -> Geometry {
        self.geometry
    }
}

/// The staging buffer must hold at least two delivery batches (double
/// buffering), and one output row must fit inside a single batch — a wider
/// row could never be delivered whole.
fn check_buffer_geometry(cfg: &RmConfig, g: &Geometry) -> Result<()> {
    if cfg.batch_bytes == 0 {
        return Err(FabricError::InvalidGeometry(
            "device batch size is zero".into(),
        ));
    }
    if cfg.buffer_bytes < cfg.batch_bytes {
        return Err(FabricError::InvalidGeometry(format!(
            "staging buffer ({} B) smaller than one delivery batch ({} B)",
            cfg.buffer_bytes, cfg.batch_bytes
        )));
    }
    let out = g.output_row_width();
    if out > cfg.buffer_bytes / 2 {
        return Err(FabricError::InvalidGeometry(format!(
            "output row of {out} B cannot be double buffered in a {} B staging buffer",
            cfg.buffer_bytes
        )));
    }
    Ok(())
}

/// Reject geometries whose requested fields would collide in the delivered
/// row (see module docs for the per-mode rationale).
fn check_destination_overlap(g: &Geometry) -> Result<()> {
    let mut ranges: Vec<(usize, usize, usize)> = g
        .fields
        .iter()
        .map(|f| (f.offset, f.offset + f.width(), f.column))
        .collect();
    ranges.sort_unstable();
    for pair in ranges.windows(2) {
        let (a_start, a_end, a_col) = pair[0];
        let (b_start, _, b_col) = pair[1];
        if b_start < a_end {
            return Err(FabricError::InvalidGeometry(format!(
                "fields for columns {a_col} and {b_col} overlap in the output row \
                 (byte {b_start} < end of range starting at {a_start})",
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_types::{ColumnType, FieldSlice};

    fn packed(fields: Vec<FieldSlice>) -> Geometry {
        Geometry::packed(0, 64, 100, fields)
    }

    fn f(col: usize, offset: usize, ty: ColumnType) -> FieldSlice {
        FieldSlice::new(col, offset, ty)
    }

    #[test]
    fn accepts_disjoint_fields() {
        let g = packed(vec![f(0, 0, ColumnType::I32), f(1, 4, ColumnType::I64)]);
        assert!(VerifiedGeometry::new(&RmConfig::prototype(), g).is_ok());
    }

    #[test]
    fn rejects_overlapping_fields() {
        let g = packed(vec![f(0, 0, ColumnType::I64), f(1, 4, ColumnType::I32)]);
        let err = VerifiedGeometry::new(&RmConfig::prototype(), g).unwrap_err();
        assert!(
            matches!(err, FabricError::InvalidGeometry(_)),
            "got {err:?}"
        );
    }

    #[test]
    fn rejects_duplicate_fields() {
        let g = packed(vec![f(0, 0, ColumnType::I32), f(0, 0, ColumnType::I32)]);
        assert!(VerifiedGeometry::new(&RmConfig::prototype(), g).is_err());
    }

    #[test]
    fn rejects_out_of_row_fields_via_validate() {
        let g = packed(vec![f(0, 61, ColumnType::I32)]);
        let err = VerifiedGeometry::new(&RmConfig::prototype(), g).unwrap_err();
        assert!(matches!(err, FabricError::GeometryOutOfBounds { .. }));
    }

    #[test]
    fn rejects_degenerate_buffer_geometry() {
        let g = packed(vec![f(0, 0, ColumnType::I32)]);
        let cfg = RmConfig {
            batch_bytes: 0,
            ..RmConfig::prototype()
        };
        assert!(VerifiedGeometry::new(&cfg, g.clone()).is_err());
        let cfg = RmConfig {
            buffer_bytes: 1024,
            batch_bytes: 4096,
            ..RmConfig::prototype()
        };
        assert!(VerifiedGeometry::new(&cfg, g).is_err());
    }

    #[test]
    fn rejects_output_row_wider_than_half_the_buffer() {
        // A filtered-rows geometry delivers whole base rows; make the base
        // row wider than half the staging buffer.
        let g = Geometry::packed(0, 4096, 10, vec![f(0, 0, ColumnType::I32)])
            .with_mode(fabric_types::OutputMode::FilteredRows);
        let cfg = RmConfig {
            buffer_bytes: 4096,
            batch_bytes: 1024,
            ..RmConfig::prototype()
        };
        assert!(VerifiedGeometry::new(&cfg, g).is_err());
    }

    #[test]
    fn verified_geometry_round_trips() {
        let g = packed(vec![f(0, 0, ColumnType::I32)]);
        let vg = VerifiedGeometry::new(&RmConfig::prototype(), g.clone()).unwrap();
        assert_eq!(vg.geometry(), &g);
        assert_eq!(vg.into_inner(), g);
    }
}
