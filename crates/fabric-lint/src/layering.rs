//! The architecture DAG, machine-checked (rule `layering-violation`).
//!
//! The fabric's layer cake, bottom to top:
//!
//! ```text
//!   0  fabric-types
//!   1  fabric-obs
//!   2  fabric-sim
//!   3  relmem  relstore  rowstore  colstore  compress  mvcc
//!   4  query
//!   5  workload  bench
//! ```
//!
//! A crate may depend on any strictly lower layer; the only sanctioned
//! intra-layer edges are `relstore → {compress, relmem}` and
//! `mvcc → {rowstore, relmem}` (composite stores wrapping primitive
//! ones). Two crates sit outside the cake: `fabric-lint` is std-only by
//! charter (it must lint the workspace without depending on it), and the
//! `relational-fabric` facade re-exports everything, so every edge out
//! of it is legal.
//!
//! The pass checks both places an edge can be introduced: `use`
//! declarations in source files (via [`check_use`], fed from the
//! [`FileModel`](crate::model::FileModel)'s use list) and `Cargo.toml`
//! dependency tables (via [`scan_cargo_manifest`]). Manifests are also
//! where the offline-build policy bites: a dependency naming anything
//! that is not a workspace crate is flagged, because the registry is
//! unreachable in this build environment and a phantom dep would break
//! `cargo build` for everyone.

use crate::{excerpt_of, Diagnostic, Rule};

/// `(crate, layer)` for every workspace crate inside the layer cake.
pub const LAYERS: &[(&str, u8)] = &[
    ("fabric-types", 0),
    ("fabric-obs", 1),
    ("fabric-sim", 2),
    ("relmem", 3),
    ("relstore", 3),
    ("rowstore", 3),
    ("colstore", 3),
    ("compress", 3),
    ("mvcc", 3),
    ("durability", 3),
    ("query", 4),
    ("workload", 5),
    ("bench", 5),
];

/// Sanctioned same-layer edges `(from, to)`: composite stores wrapping
/// primitive ones, and the bench driver running the workload suites.
pub const INTRA_LAYER_EDGES: &[(&str, &str)] = &[
    ("relstore", "compress"),
    ("relstore", "relmem"),
    ("mvcc", "rowstore"),
    ("mvcc", "relmem"),
    ("mvcc", "durability"),
    ("bench", "workload"),
];

/// Layer number, if the crate is in the cake.
pub fn crate_layer(name: &str) -> Option<u8> {
    LAYERS.iter().find(|(n, _)| *n == name).map(|&(_, l)| l)
}

/// Is `name` any workspace crate (cake, lint, or facade)?
pub fn is_workspace_crate(name: &str) -> bool {
    crate_layer(name).is_some() || name == "fabric-lint" || name == "relational-fabric"
}

/// May `from` depend on `to`? `None` means "not a question for this pass"
/// (either endpoint unknown, or a self-edge); `Some(msg)` is a violation.
pub fn edge_violation(from: &str, to: &str) -> Option<String> {
    if from == to || !is_workspace_crate(to) {
        return None;
    }
    if from == "relational-fabric" {
        return None; // the facade re-exports the world
    }
    if from == "fabric-lint" {
        return Some(format!(
            "fabric-lint is std-only by charter and must not depend on workspace crate `{to}`"
        ));
    }
    if to == "relational-fabric" || to == "fabric-lint" {
        return Some(format!(
            "no crate may depend on `{to}` (facade and linter sit outside the layer cake)"
        ));
    }
    let (Some(fl), Some(tl)) = (crate_layer(from), crate_layer(to)) else {
        return None;
    };
    if tl < fl || INTRA_LAYER_EDGES.contains(&(from, to)) {
        return None;
    }
    Some(format!(
        "`{from}` (layer {fl}) must not depend on `{to}` (layer {tl}): \
         the DAG flows fabric-types → fabric-obs → fabric-sim → stores → query → workload/bench"
    ))
}

/// Check one `use` root seen in `from_crate`'s source. The root arrives
/// as an identifier (`fabric_types`), so it is de-snaked before lookup;
/// roots that are not workspace crates (std, core, crate, local modules)
/// are ignored — manifests are where external deps are policed.
pub fn check_use(from_crate: &str, root: &str) -> Option<String> {
    let dep = root.replace('_', "-");
    if !is_workspace_crate(&dep) {
        return None;
    }
    edge_violation(from_crate, &dep)
}

/// Which crate owns a workspace-relative `Cargo.toml` path.
pub fn manifest_crate(rel: &str) -> Option<String> {
    if rel == "Cargo.toml" {
        return Some("relational-fabric".to_string());
    }
    let rest = rel.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    (tail == "Cargo.toml").then(|| name.to_string())
}

/// Scan one `Cargo.toml` for layering and offline-policy violations.
///
/// A real TOML parser is overkill for the two things this needs: which
/// `[…dependencies]` table a line is in, and the dependency name on the
/// left of `=` / `.`. Comments are stripped at `#` (workspace manifests
/// keep `#` out of quoted strings), and `[package]`-style tables are
/// skipped wholesale.
pub fn scan_cargo_manifest(rel: &str, text: &str) -> Vec<Diagnostic> {
    let Some(owner) = manifest_crate(rel) else {
        return Vec::new();
    };
    let mut diags = Vec::new();
    let mut in_deps = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            // `[dependencies]`, `[dev-dependencies]`,
            // `[workspace.dependencies]`, `[target.….dependencies]` — any
            // table whose name ends in "dependencies" declares edges.
            let table = line.trim_matches(['[', ']']);
            in_deps = table.ends_with("dependencies");
            continue;
        }
        if !in_deps {
            continue;
        }
        let name = line
            .split(['=', '.'])
            .next()
            .map(str::trim)
            .unwrap_or("")
            .trim_matches('"');
        if name.is_empty() {
            continue;
        }
        let problem = if !is_workspace_crate(name) {
            Some(format!(
                "external dependency `{name}` (offline workspace: std and workspace crates only)"
            ))
        } else {
            edge_violation(&owner, name)
        };
        if let Some(message) = problem {
            diags.push(Diagnostic {
                file: rel.to_string(),
                line: idx + 1,
                rule: Rule::LayeringViolation,
                message,
                excerpt: excerpt_of(raw),
            });
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downward_edges_are_legal() {
        assert!(edge_violation("query", "relmem").is_none());
        assert!(edge_violation("query", "fabric-types").is_none());
        assert!(edge_violation("workload", "mvcc").is_none());
        assert!(edge_violation("fabric-sim", "fabric-obs").is_none());
        assert!(edge_violation("bench", "query").is_none());
    }

    #[test]
    fn inversions_and_sideways_edges_are_caught() {
        // The acceptance-criterion inversion: fabric-obs reaching up to query.
        assert!(edge_violation("fabric-obs", "query").is_some());
        assert!(edge_violation("fabric-types", "fabric-obs").is_some());
        assert!(edge_violation("relmem", "query").is_some());
        // Unsanctioned intra-layer edge.
        assert!(edge_violation("rowstore", "colstore").is_some());
        // Sanctioned intra-layer edges.
        assert!(edge_violation("relstore", "compress").is_none());
        assert!(edge_violation("mvcc", "rowstore").is_none());
        assert!(edge_violation("mvcc", "relmem").is_none());
        assert!(edge_violation("bench", "workload").is_none());
        assert!(edge_violation("workload", "bench").is_some());
    }

    #[test]
    fn lint_and_facade_are_special_cased() {
        assert!(edge_violation("fabric-lint", "fabric-types").is_some());
        assert!(edge_violation("relational-fabric", "workload").is_none());
        assert!(edge_violation("query", "relational-fabric").is_some());
        assert!(edge_violation("query", "fabric-lint").is_some());
    }

    #[test]
    fn use_roots_are_de_snaked_and_non_crates_ignored() {
        assert!(check_use("fabric-obs", "query").is_some());
        assert!(check_use("query", "fabric_types").is_none());
        assert!(check_use("query", "std").is_none());
        assert!(check_use("query", "crate").is_none());
        assert!(check_use("query", "my_helpers").is_none());
        assert!(check_use("fabric-types", "fabric_obs").is_some());
    }

    #[test]
    fn manifest_paths_map_to_owning_crates() {
        assert_eq!(
            manifest_crate("Cargo.toml").as_deref(),
            Some("relational-fabric")
        );
        assert_eq!(
            manifest_crate("crates/query/Cargo.toml").as_deref(),
            Some("query")
        );
        assert!(manifest_crate("crates/query/src/Cargo.toml").is_none());
        assert!(manifest_crate("tools/Cargo.toml").is_none());
    }

    #[test]
    fn manifest_scan_flags_inversions_and_externals() {
        let bad = "[package]\nname = \"fabric-obs\"\n\n[dependencies]\n\
                   query.workspace = true\nserde = \"1\"\nfabric-types = { path = \"x\" }\n";
        let d = scan_cargo_manifest("crates/fabric-obs/Cargo.toml", bad);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("query"));
        assert!(d[1].message.contains("external dependency `serde`"));
        assert_eq!(d[0].line, 5);
    }

    #[test]
    fn root_manifest_workspace_deps_are_legal() {
        let ok = "[workspace.dependencies]\nquery = { path = \"crates/query\" }\n\
                  [dependencies]\nworkload.workspace = true\n";
        assert!(scan_cargo_manifest("Cargo.toml", ok).is_empty());
    }

    #[test]
    fn dev_dependency_tables_are_checked_too() {
        let bad = "[dev-dependencies]\nworkload.workspace = true\n";
        let d = scan_cargo_manifest("crates/relmem/Cargo.toml", bad);
        assert_eq!(d.len(), 1, "{d:?}");
    }
}
