//! A real (if small) Rust lexer: the token stream every rule matches on.
//!
//! Replaces the old line-oriented sanitizer. Still std-only — no `syn`,
//! no `proc-macro2`, nothing off the network — but now a faithful
//! tokenizer rather than a blanking pass: it understands line and nested
//! block comments, plain / byte / raw / raw-byte strings (any number of
//! `#` guards), char and byte-char literals vs. lifetimes, raw
//! identifiers (`r#match`), numeric literals with exponents and
//! suffixes, and maximal-munch multi-character operators (`::`, `+=`,
//! `..=`, `<<=`, …). Every token carries the 1-based source line it
//! starts on, so diagnostics stay `file:line` anchored and comment text
//! keeps its position for `// SAFETY:` proximity checks and the fixture
//! corpus' `//~` expectation markers.
//!
//! Rules match on tokens, never on raw text, which is what removes the
//! string/comment false-positive class wholesale: `"call .unwrap()"` is
//! one `Str` token, `/* panic! */` is one `Comment` token, and neither
//! can ever look like code again.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `fn`, `as`, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`, `'_`) — *not* a char literal.
    Lifetime,
    /// Char or byte-char literal (`'x'`, `'\n'`, `b'0'`).
    Char,
    /// String or byte-string literal; `text` holds the *content* between
    /// the quotes (escapes unprocessed).
    Str,
    /// Raw (byte) string literal `r"…"` / `r#"…"#` / `br##"…"##`;
    /// `text` holds the content.
    RawStr,
    /// Numeric literal (`42`, `0x7F`, `1.5e-3`, `4096usize`).
    Num,
    /// Operator or delimiter, maximal-munched (`::`, `+=`, `{`, `..=`).
    Punct,
    /// `// …` line comment (doc comments included); `text` is the body.
    LineComment,
    /// `/* … */` block comment, possibly nested and multi-line; `text`
    /// is the body with newlines preserved.
    BlockComment,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    /// Ident name, literal content, comment body, or operator spelling.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// Is this an identifier spelled exactly `name`?
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Is this a punct spelled exactly `op`?
    pub fn is_punct(&self, op: &str) -> bool {
        self.kind == TokKind::Punct && self.text == op
    }

    /// Comments carry no code.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Multi-character operators, longest first (maximal munch).
const OPS3: &[&str] = &["..=", "<<=", ">>=", "..."];
const OPS2: &[&str] = &[
    "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=", "-=", "*=", "/=", "%=", "^=",
    "|=", "&=", "<<", ">>",
];

/// Detect a raw-string opener at `c[i]` (`r"`, `r#"`, `br##"`, …).
/// Returns `(hashes, index of first content char)`.
fn raw_string_at(c: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if c.get(j) == Some(&'b') {
        j += 1;
    }
    if c.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while c.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if c.get(j) == Some(&'"') {
        Some((hashes, j + 1))
    } else {
        None
    }
}

/// Lex `src` into tokens (comments included — callers filter).
pub fn lex(src: &str) -> Vec<Token> {
    let c: Vec<char> = src.chars().collect();
    let n = c.len();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1usize;

    while i < n {
        let ch = c[i];
        match ch {
            '\n' => {
                line += 1;
                i += 1;
            }
            _ if ch.is_whitespace() => i += 1,
            '/' if c.get(i + 1) == Some(&'/') => {
                let start = line;
                i += 2;
                let mut text = String::new();
                while i < n && c[i] != '\n' {
                    text.push(c[i]);
                    i += 1;
                }
                out.push(Token {
                    kind: TokKind::LineComment,
                    text,
                    line: start,
                });
            }
            '/' if c.get(i + 1) == Some(&'*') => {
                let start = line;
                let mut depth = 1usize;
                i += 2;
                let mut text = String::new();
                while i < n && depth > 0 {
                    if c[i] == '/' && c.get(i + 1) == Some(&'*') {
                        depth += 1;
                        text.push_str("/*");
                        i += 2;
                    } else if c[i] == '*' && c.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        if depth > 0 {
                            text.push_str("*/");
                        }
                        i += 2;
                    } else {
                        if c[i] == '\n' {
                            line += 1;
                        }
                        text.push(c[i]);
                        i += 1;
                    }
                }
                out.push(Token {
                    kind: TokKind::BlockComment,
                    text,
                    line: start,
                });
            }
            '"' => {
                let start = line;
                i += 1;
                let mut text = String::new();
                while i < n {
                    match c[i] {
                        '\\' => {
                            text.push('\\');
                            if let Some(&esc) = c.get(i + 1) {
                                if esc == '\n' {
                                    line += 1;
                                }
                                text.push(esc);
                            }
                            i += 2;
                        }
                        '"' => {
                            i += 1;
                            break;
                        }
                        other => {
                            if other == '\n' {
                                line += 1;
                            }
                            text.push(other);
                            i += 1;
                        }
                    }
                }
                out.push(Token {
                    kind: TokKind::Str,
                    text,
                    line: start,
                });
            }
            '\'' => {
                // Lifetime vs. (byte-)char literal.
                let next = c.get(i + 1).copied();
                if next == Some('\\') {
                    // Escaped char literal: '\n', '\'', '\u{1f}'.
                    let start = line;
                    let mut text = String::from("\\");
                    i += 2;
                    while i < n && c[i] != '\'' && c[i] != '\n' {
                        text.push(c[i]);
                        i += 1;
                    }
                    i += 1; // closing quote
                    out.push(Token {
                        kind: TokKind::Char,
                        text,
                        line: start,
                    });
                } else if next.is_some_and(is_ident_start) && c.get(i + 2) != Some(&'\'') {
                    // Lifetime: 'a, 'static, '_ (next char is not a
                    // closing quote).
                    let start = line;
                    let mut text = String::new();
                    i += 1;
                    while i < n && is_ident_continue(c[i]) {
                        text.push(c[i]);
                        i += 1;
                    }
                    out.push(Token {
                        kind: TokKind::Lifetime,
                        text,
                        line: start,
                    });
                } else if c.get(i + 2) == Some(&'\'') && next.is_some() {
                    // Plain one-char literal: 'x', ' ', '('.
                    out.push(Token {
                        kind: TokKind::Char,
                        text: next.into_iter().collect(),
                        line,
                    });
                    i += 3;
                } else {
                    // Lone quote (malformed source): emit as punct and
                    // keep going — the linter must never panic on input.
                    out.push(Token {
                        kind: TokKind::Punct,
                        text: "'".into(),
                        line,
                    });
                    i += 1;
                }
            }
            _ if ch.is_ascii_digit() => {
                let start = line;
                let mut text = String::new();
                while i < n {
                    let d = c[i];
                    if is_ident_continue(d) {
                        text.push(d);
                        i += 1;
                        // Exponent sign: 1e-3, 2.5E+7.
                        if (d == 'e' || d == 'E')
                            && !text.starts_with("0x")
                            && matches!(c.get(i), Some('+') | Some('-'))
                            && c.get(i + 1).is_some_and(|x| x.is_ascii_digit())
                        {
                            text.push(c[i]);
                            i += 1;
                        }
                    } else if d == '.'
                        && c.get(i + 1).is_some_and(|x| x.is_ascii_digit())
                        && !text.contains('.')
                    {
                        // Fractional part — but never eat `..` ranges.
                        text.push('.');
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokKind::Num,
                    text,
                    line: start,
                });
            }
            _ if is_ident_start(ch) => {
                // String prefixes first: r"…", b"…", br#"…"#, b'…'.
                if let Some((hashes, content_start)) = raw_string_at(&c, i) {
                    let start = line;
                    i = content_start;
                    let mut text = String::new();
                    while i < n {
                        if c[i] == '"'
                            && c[i + 1..]
                                .iter()
                                .take(hashes)
                                .filter(|&&h| h == '#')
                                .count()
                                == hashes
                        {
                            i += 1 + hashes;
                            break;
                        }
                        if c[i] == '\n' {
                            line += 1;
                        }
                        text.push(c[i]);
                        i += 1;
                    }
                    out.push(Token {
                        kind: TokKind::RawStr,
                        text,
                        line: start,
                    });
                    continue;
                }
                if ch == 'b' && c.get(i + 1) == Some(&'"') {
                    // Byte string: re-enter at the quote after noting the
                    // prefix; content rules match plain strings.
                    i += 1;
                    continue;
                }
                if ch == 'b' && c.get(i + 1) == Some(&'\'') {
                    // Byte-char literal: b'0', b'\n'.
                    i += 1;
                    continue;
                }
                if ch == 'r'
                    && c.get(i + 1) == Some(&'#')
                    && c.get(i + 2).is_some_and(|&x| is_ident_start(x))
                {
                    // Raw identifier r#match: lex as the bare ident.
                    let start = line;
                    let mut text = String::new();
                    i += 2;
                    while i < n && is_ident_continue(c[i]) {
                        text.push(c[i]);
                        i += 1;
                    }
                    out.push(Token {
                        kind: TokKind::Ident,
                        text,
                        line: start,
                    });
                    continue;
                }
                let start = line;
                let mut text = String::new();
                while i < n && is_ident_continue(c[i]) {
                    text.push(c[i]);
                    i += 1;
                }
                out.push(Token {
                    kind: TokKind::Ident,
                    text,
                    line: start,
                });
            }
            _ => {
                // Operator: maximal munch against the known tables.
                let rest: String = c[i..n.min(i + 3)].iter().collect();
                let munched = OPS3
                    .iter()
                    .chain(OPS2.iter())
                    .find(|op| rest.starts_with(**op));
                let text = match munched {
                    Some(op) => (*op).to_string(),
                    None => ch.to_string(),
                };
                i += text.chars().count();
                out.push(Token {
                    kind: TokKind::Punct,
                    text,
                    line,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_calls() {
        let t = lex("let x = foo.unwrap();");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["let", "x", "=", "foo", ".", "unwrap", "(", ")", ";"]
        );
        assert_eq!(t[2].kind, TokKind::Punct);
        assert_eq!(t[5].kind, TokKind::Ident);
    }

    #[test]
    fn strings_are_single_tokens_with_content() {
        let t = kinds(r#"let m = "call .unwrap() now";"#);
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokKind::Str && s == "call .unwrap() now"));
        assert!(!t.iter().any(|(k, s)| *k == TokKind::Ident && s == "unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes_and_byte_strings() {
        let t = kinds(r##"let a = r#"todo!() "quoted""#; let b = b"panic!";"##);
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokKind::RawStr && s.contains("todo!()")));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Str && s == "panic!"));
        assert!(!t
            .iter()
            .any(|(k, s)| *k == TokKind::Ident && (s == "todo" || s == "panic")));
    }

    #[test]
    fn nested_block_comments_and_line_tracking() {
        let t = lex("a /* one /* two */ still */ b\nnext");
        assert_eq!(t[0].text, "a");
        assert_eq!(t[1].kind, TokKind::BlockComment);
        assert!(t[1].text.contains("two"));
        assert_eq!(t[2].text, "b");
        assert_eq!(t[3].text, "next");
        assert_eq!(t[3].line, 2);
    }

    #[test]
    fn multiline_strings_keep_line_numbers() {
        let t = lex("let s = \"line one\nline two\";\nafter();");
        let after = t.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 3);
        // Continuation backslash also counts its newline.
        let t = lex("let s = \"one \\\n two\";\nafter();");
        let after = t.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 3);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t =
            kinds("fn f<'a>(x: &'a str, c: char) { let y = 'u'; let z = '\\n'; let w = b'0'; }");
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(), 2);
        assert!(t.iter().any(|(k, s)| *k == TokKind::Char && s == "u"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Char && s == "\\n"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Char && s == "0"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Lifetime && s == "a"));
    }

    #[test]
    fn maximal_munch_operators() {
        let t = kinds("x += 1; y..=2; a == b; c <<= 3; p.q::<u8>()");
        let ops: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, s)| s.as_str())
            .collect();
        assert!(ops.contains(&"+="));
        assert!(ops.contains(&"..="));
        assert!(ops.contains(&"=="));
        assert!(ops.contains(&"<<="));
        assert!(ops.contains(&"::"));
    }

    #[test]
    fn numbers_with_suffixes_exponents_and_ranges() {
        let t = kinds("let a = 0x7F; let b = 1.5e-3; let c = 4096usize; for i in 0..10 {}");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Num && s == "0x7F"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Num && s == "1.5e-3"));
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokKind::Num && s == "4096usize"));
        // `0..10` must lex as Num, .., Num — not a malformed float.
        assert!(t.iter().any(|(k, s)| *k == TokKind::Punct && s == ".."));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let t = kinds("let r#match = 1; r#try();");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Ident && s == "match"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Ident && s == "try"));
    }

    #[test]
    fn comments_keep_text_for_safety_and_markers() {
        let t = lex("// SAFETY: aligned by construction\nunsafe { }\n/* SAFETY:\nblock */");
        assert_eq!(t[0].kind, TokKind::LineComment);
        assert!(t[0].text.contains("SAFETY:"));
        let block = t.iter().find(|t| t.kind == TokKind::BlockComment).unwrap();
        assert!(block.text.contains("SAFETY:"));
        assert!(block.text.contains('\n'));
    }

    #[test]
    fn lexer_never_panics_on_malformed_input() {
        for src in ["'", "\"unterminated", "r#\"open", "/* open", "b'", "1.2.3"] {
            let _ = lex(src);
        }
    }
}
