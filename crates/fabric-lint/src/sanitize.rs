//! A lossy, line-preserving tokenizer pass: blanks out comments, string
//! literals and char literals so the rule matchers never fire on text
//! inside them, while keeping the line structure intact so diagnostics
//! carry real line numbers.
//!
//! This is deliberately NOT a full Rust lexer (no `syn`, no external
//! crates — the workspace must build offline). It understands exactly as
//! much syntax as the rules need: line comments, nested block comments,
//! plain / byte / raw strings, char literals vs. lifetimes.

/// The sanitized view of one source file.
pub struct Sanitized {
    /// Source lines with comment/string/char-literal content removed
    /// (each removed region collapses to a single space).
    pub lines: Vec<String>,
    /// Per line: did the *comment text* on this line contain `SAFETY:`?
    /// (Checked against comments only, so a string literal mentioning
    /// SAFETY does not satisfy the `unsafe` rule.)
    pub safety: Vec<bool>,
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Detect a raw-string opener at `c[i]` (`r"`, `r#"`, `br##"`, ...).
/// Returns `(hashes, index_of_first_content_char)`.
fn raw_string_at(c: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if c.get(j) == Some(&'b') {
        j += 1;
    }
    if c.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while c.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if c.get(j) == Some(&'"') {
        Some((hashes, j + 1))
    } else {
        None
    }
}

pub fn sanitize(src: &str) -> Sanitized {
    let c: Vec<char> = src.chars().collect();
    let n = c.len();
    let mut lines = Vec::new();
    let mut safety = Vec::new();
    let mut cur = String::new();
    let mut com = String::new();
    let mut i = 0;

    macro_rules! flush_line {
        () => {{
            lines.push(std::mem::take(&mut cur));
            safety.push(com.contains("SAFETY:"));
            com.clear();
        }};
    }

    while i < n {
        let ch = c[i];
        match ch {
            '\n' => {
                flush_line!();
                i += 1;
            }
            '/' if c.get(i + 1) == Some(&'/') => {
                i += 2;
                while i < n && c[i] != '\n' {
                    com.push(c[i]);
                    i += 1;
                }
                cur.push(' ');
            }
            '/' if c.get(i + 1) == Some(&'*') => {
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if c[i] == '\n' {
                        flush_line!();
                        i += 1;
                    } else if c[i] == '/' && c.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if c[i] == '*' && c.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        com.push(c[i]);
                        i += 1;
                    }
                }
                cur.push(' ');
            }
            'r' | 'b'
                if (i == 0 || !is_ident(c[i - 1]) || (c[i - 1] == 'b' && ch == 'r'))
                    && raw_string_at(&c, i).is_some() =>
            {
                let (hashes, start) = raw_string_at(&c, i).unwrap_or((0, i + 1));
                i = start;
                // Consume until `"` followed by `hashes` hash marks.
                loop {
                    if i >= n {
                        break;
                    }
                    if c[i] == '\n' {
                        flush_line!();
                        i += 1;
                        continue;
                    }
                    if c[i] == '"'
                        && c[i + 1..]
                            .iter()
                            .take(hashes)
                            .filter(|&&h| h == '#')
                            .count()
                            == hashes
                    {
                        i += 1 + hashes;
                        break;
                    }
                    i += 1;
                }
                cur.push(' ');
            }
            '"' => {
                i += 1;
                while i < n {
                    match c[i] {
                        // An escape skips the next char — unless that
                        // char is a newline (the string-continuation
                        // `\` at end of line), which must still flush
                        // so sanitized and raw line numbers stay in
                        // lockstep for the raw-view rules.
                        '\\' => {
                            if c.get(i + 1) == Some(&'\n') {
                                flush_line!();
                            }
                            i += 2;
                        }
                        '\n' => {
                            flush_line!();
                            i += 1;
                        }
                        '"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                cur.push(' ');
            }
            '\'' => {
                // Char literal vs lifetime. `'\x'`-style escapes and
                // `'a'` are literals; anything else (`'a>`, `'static`)
                // is a lifetime and stays put.
                if c.get(i + 1) == Some(&'\\') {
                    i += 2; // skip quote + backslash
                    while i < n && c[i] != '\'' && c[i] != '\n' {
                        i += 1;
                    }
                    i += 1; // closing quote
                    cur.push(' ');
                } else if c.get(i + 2) == Some(&'\'') && c.get(i + 1) != Some(&'\'') {
                    i += 3;
                    cur.push(' ');
                } else {
                    cur.push('\'');
                    i += 1;
                }
            }
            _ => {
                cur.push(ch);
                i += 1;
            }
        }
    }
    if !cur.is_empty() || !com.is_empty() {
        flush_line!();
    }
    Sanitized { lines, safety }
}

#[cfg(test)]
mod tests {
    use super::sanitize;

    #[test]
    fn strips_line_comments_but_keeps_code() {
        let s = sanitize("let x = 1; // x.unwrap()\nlet y = 2;\n");
        assert_eq!(s.lines.len(), 2);
        assert!(!s.lines[0].contains("unwrap"));
        assert!(s.lines[0].contains("let x = 1;"));
        assert_eq!(s.lines[1], "let y = 2;");
    }

    #[test]
    fn strips_strings_and_char_literals() {
        let s =
            sanitize("let m = \"call .unwrap() now\"; let c = 'u'; let l: &'static str = \"x\";");
        assert!(!s.lines[0].contains("unwrap"));
        assert!(s.lines[0].contains("let m ="));
        assert!(s.lines[0].contains("&'static str"));
    }

    #[test]
    fn strips_escaped_quotes_and_raw_strings() {
        let s = sanitize("let a = \"he said \\\"panic!\\\"\"; let b = r#\"todo!()\"#;");
        assert!(!s.lines[0].contains("panic"));
        assert!(!s.lines[0].contains("todo"));
    }

    #[test]
    fn nested_block_comment_spanning_lines() {
        let s = sanitize("a /* one /* two */ still */ b\nnext // tail\n");
        assert_eq!(s.lines.len(), 2);
        assert!(s.lines[0].contains('a') && s.lines[0].contains('b'));
        assert!(!s.lines[0].contains("still"));
        let s = sanitize("x /* spans\nmore\n*/ y\n");
        assert_eq!(s.lines.len(), 3);
        assert!(s.lines[2].contains('y'));
        assert!(!s.lines[1].contains("more"));
    }

    #[test]
    fn safety_marker_only_counts_in_comments() {
        let s =
            sanitize("// SAFETY: fine\nlet x = \"SAFETY: not a comment\";\n/* SAFETY: block */\n");
        assert_eq!(s.safety, vec![true, false, true]);
    }

    #[test]
    fn multiline_string_keeps_line_count() {
        let src = "let s = \"line one\nline two\";\nafter();\n";
        let s = sanitize(src);
        assert_eq!(s.lines.len(), src.lines().count());
        assert!(s.lines[2].contains("after"));
    }

    #[test]
    fn string_continuation_backslash_keeps_line_count() {
        // `"... \` at end of line continues the literal on the next
        // line; the escaped newline must still flush a sanitized line
        // or every later line number drifts by one.
        let src = "println!(\n    \"part one \\\n     part two\"\n);\nafter();\n";
        let s = sanitize(src);
        assert_eq!(s.lines.len(), src.lines().count());
        assert!(s.lines[4].contains("after"));
    }
}
