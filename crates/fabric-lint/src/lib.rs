//! `fabric-lint`: repo-specific static analysis for the Relational Fabric
//! workspace (source-layer companion of the pre-execution plan verifier
//! in `query::analyze` — see DESIGN.md §13, "Token-level static
//! analysis").
//!
//! Built on std only so it resolves offline like the rest of the
//! workspace — but since the v2 rewrite no longer a line scanner: a real
//! lexer ([`lexer`]) tokenizes each file (raw/byte strings, nested block
//! comments, lifetimes vs. char literals), a per-file model ([`model`])
//! layers test-region tracking, `SAFETY:` proximity, the `use` graph and
//! item index on top, and every rule ([`rules`]) matches token shapes,
//! never text. Eleven rule families:
//!
//! * **no-unwrap** — `.unwrap()` / `.expect(` / `panic!` / `todo!` /
//!   `unimplemented!` are forbidden in non-test *library* code of the
//!   core crates ([`CORE_CRATES`]): engine code must surface
//!   `FabricError`, not abort the process.
//! * **undocumented-unsafe** — every `unsafe` token must carry a
//!   `// SAFETY:` comment on the same line or within the three lines
//!   above it. Applies everywhere, tests included.
//! * **narrowing-cast** — narrowing `as` casts (`as u8|i8|u16|i16|u32|i32`)
//!   are forbidden in the hot-path modules ([`HOT_PATH_FILES`] /
//!   [`HOT_PATH_DIRS`]) where silent truncation corrupts packed batches;
//!   use the checked/masked helpers in `fabric_types::cast` and surface
//!   the error.
//! * **no-exit** — `process::exit` never belongs in library code.
//! * **ignored-result** — silently discarding a `Result` (`let _ = …`
//!   with the bare `_` pattern, or a statement-level `….ok();`) is
//!   forbidden in non-test library code of the core crates.
//! * **raw-stats-print** — `println!`/`format!`-family macros over stats
//!   counter structs are forbidden in non-test library code of the core
//!   crates: statistics flow through the `fabric-obs` metrics registry.
//! * **exec-internals** — the staged executor's internals
//!   (`QueryExecutor` / `OpNode` / `Consumer` / `CacheSlot` / `OpCache` /
//!   `Scratchpad`) are constructed only inside `crates/query`: the
//!   engine owns operator lifetimes, scratch buffers, and cache
//!   invalidation. Out-of-crate construction is flagged everywhere,
//!   tests included — hosts drive execution through `Session`.
//! * **adhoc-bench-output** — a string literal naming the `results/`
//!   artifact directory is forbidden outside [`BENCH_HARNESS_FILE`]:
//!   artifact I/O goes through `bench::harness`, which honors the
//!   `FABRIC_RESULTS_DIR` redirect `tools/perf_gate.sh` relies on.
//! * **layering-violation** — `use` declarations and `Cargo.toml`
//!   dependency tables must respect the architecture DAG (see
//!   [`layering`]); external (non-workspace) manifest deps are flagged
//!   too, because the build environment resolves offline.
//! * **nondeterministic-core** — result-affecting library code (every
//!   crate except `bench` and `fabric-lint`) must not introduce
//!   `HashMap`/`HashSet`, wall-clock reads (`std::time`, `Instant::now`,
//!   `SystemTime::now`), or `env::var` reads outside the
//!   [`rules::ALLOWED_ENV_VARS`] allowlist: the exact hazards that break
//!   bit-identical chaos replay and the exact-cycle perf gate.
//! * **unattributed-charge** — `MemStats` counter fields mutate only at
//!   the fabric-sim charge sites ([`rules::CHARGE_SITE_FILES`]), so the
//!   buckets-sum==elapsed invariant is protected at the source level.
//!
//! Diagnostics are `file:line` anchored. Pre-existing debt lives in the
//! checked-in `lint-baseline.txt`, counted per `(rule, file)`: a normal
//! run fails only when a count **exceeds** its baseline entry; the CI
//! `--self-check` mode additionally fails on *stale* entries (count above
//! actual) and replays the fixture corpus under
//! `crates/fabric-lint/fixtures/` against its `//~ rule` expectation
//! markers (see [`selfcheck`]), so the analyzer itself is regression-gated.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod baseline;
pub mod layering;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod selfcheck;

/// Crates whose library code must be panic-free (rule `no-unwrap`).
pub const CORE_CRATES: &[&str] = &[
    "fabric-types",
    "relmem",
    "query",
    "mvcc",
    "relstore",
    "durability",
];

/// Crates whose code never affects query results, cycle counts, or
/// artifacts compared across runs — everything else is in scope for
/// `nondeterministic-core`.
pub const NON_RESULT_AFFECTING_CRATES: &[&str] = &["bench", "fabric-lint"];

/// Individual hot-path files where narrowing `as` casts are forbidden.
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/relmem/src/packer.rs",
    "crates/fabric-sim/src/cache.rs",
];

/// Hot-path directory prefixes (every `.rs` file below them).
pub const HOT_PATH_DIRS: &[&str] = &["crates/compress/src/"];

/// The one file allowed to name the bench results directory (rule
/// `adhoc-bench-output`): everything else routes artifact I/O through its
/// `results_dir` / `write_artifact` API.
pub const BENCH_HARNESS_FILE: &str = "crates/bench/src/harness.rs";

/// The eleven rule families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    NoUnwrap,
    UndocumentedUnsafe,
    NarrowingCast,
    NoExit,
    IgnoredResult,
    RawStatsPrint,
    ExecInternals,
    AdhocBenchOutput,
    LayeringViolation,
    NondeterministicCore,
    UnattributedCharge,
}

/// Every rule, for coverage checks and docs.
pub const ALL_RULES: &[Rule] = &[
    Rule::NoUnwrap,
    Rule::UndocumentedUnsafe,
    Rule::NarrowingCast,
    Rule::NoExit,
    Rule::IgnoredResult,
    Rule::RawStatsPrint,
    Rule::ExecInternals,
    Rule::AdhocBenchOutput,
    Rule::LayeringViolation,
    Rule::NondeterministicCore,
    Rule::UnattributedCharge,
];

impl Rule {
    /// Stable name used in output and in `lint-baseline.txt`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::UndocumentedUnsafe => "undocumented-unsafe",
            Rule::NarrowingCast => "narrowing-cast",
            Rule::NoExit => "no-exit",
            Rule::IgnoredResult => "ignored-result",
            Rule::RawStatsPrint => "raw-stats-print",
            Rule::ExecInternals => "exec-internals",
            Rule::AdhocBenchOutput => "adhoc-bench-output",
            Rule::LayeringViolation => "layering-violation",
            Rule::NondeterministicCore => "nondeterministic-core",
            Rule::UnattributedCharge => "unattributed-charge",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }
}

/// One violation, anchored to `file:line`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: Rule,
    /// Human-readable description including the offending token.
    pub message: String,
    /// The trimmed source line (truncated).
    pub excerpt: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}: `{}`",
            self.file,
            self.line,
            self.rule.name(),
            self.message,
            self.excerpt
        )
    }
}

/// What the walker decided about a file before scanning it.
#[derive(Debug, Clone)]
pub struct FileClass {
    pub crate_name: String,
    /// Library code: under `src/`, excluding `src/bin/` and `src/main.rs`.
    pub is_lib: bool,
    /// Member of [`CORE_CRATES`].
    pub is_core: bool,
    /// Hot-path module for the narrowing-cast rule.
    pub is_hot: bool,
    /// In scope for `nondeterministic-core` (everything but bench and the
    /// linter itself).
    pub is_result_affecting: bool,
}

/// Classify a workspace-relative path; `None` means "do not scan"
/// (non-Rust, lint fixtures, build output).
pub fn classify(rel: &str) -> Option<FileClass> {
    if !rel.ends_with(".rs") {
        return None;
    }
    if rel
        .split('/')
        .any(|part| part == "fixtures" || part == "target" || part.starts_with('.'))
    {
        return None;
    }
    let (crate_name, inner) = if let Some(rest) = rel.strip_prefix("crates/") {
        let (name, inner) = rest.split_once('/')?;
        (name.to_string(), inner.to_string())
    } else if rel.starts_with("src/") {
        // The workspace-root `relational-fabric` facade crate.
        ("relational-fabric".to_string(), rel.to_string())
    } else if rel.starts_with("tests/") || rel.starts_with("examples/") {
        // The facade crate's integration tests and examples: never
        // library code, but in scope for the rules that cover test
        // targets (undocumented-unsafe, exec-internals).
        ("relational-fabric".to_string(), rel.to_string())
    } else {
        return None;
    };
    let is_lib =
        inner.starts_with("src/") && !inner.starts_with("src/bin/") && inner != "src/main.rs";
    let is_core = CORE_CRATES.contains(&crate_name.as_str());
    let is_hot = HOT_PATH_FILES.contains(&rel) || HOT_PATH_DIRS.iter().any(|d| rel.starts_with(d));
    let is_result_affecting = !NON_RESULT_AFFECTING_CRATES.contains(&crate_name.as_str());
    Some(FileClass {
        crate_name,
        is_lib,
        is_core,
        is_hot,
        is_result_affecting,
    })
}

pub(crate) fn excerpt_of(raw: &str) -> String {
    let t = raw.trim();
    if t.len() > 90 {
        let mut cut = 90;
        while !t.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &t[..cut])
    } else {
        t.to_string()
    }
}

/// Scan one file's source. Pure function of `(path, source, class)` so
/// the fixture corpus can drive it directly.
pub fn scan_source(rel: &str, src: &str, class: &FileClass) -> Vec<Diagnostic> {
    let model = model::FileModel::build(src);
    let raw_lines: Vec<&str> = src.lines().collect();
    rules::scan(rel, &model, &raw_lines, class)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries = fs::read_dir(dir)?.collect::<io::Result<Vec<_>>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with('.') || name == "target" || name == "fixtures" {
            continue;
        }
        if path.is_dir() {
            walk(&path, out)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan every classified `.rs` file under `<root>/crates`, `<root>/src`,
/// `<root>/tests`, and `<root>/examples`, plus every crate manifest and
/// the workspace manifest (layering pass), returning diagnostics sorted
/// by `(file, line, rule)`.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        files.push(root_manifest);
    }
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut diags = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if rel.ends_with("Cargo.toml") {
            let text = fs::read_to_string(&path)?;
            diags.extend(layering::scan_cargo_manifest(&rel, &text));
            continue;
        }
        let Some(class) = classify(&rel) else {
            continue;
        };
        let src = fs::read_to_string(&path)?;
        diags.extend(scan_source(&rel, &src, &class));
    }
    diags.sort();
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core_lib() -> FileClass {
        classify("crates/relmem/src/x.rs").unwrap()
    }

    #[test]
    fn classify_maps_paths_to_rule_scopes() {
        let c = classify("crates/relmem/src/packer.rs").unwrap();
        assert!(c.is_lib && c.is_core && c.is_hot && c.is_result_affecting);
        let c = classify("crates/compress/src/lz.rs").unwrap();
        assert!(c.is_lib && !c.is_core && c.is_hot);
        let c = classify("crates/query/tests/roundtrip.rs").unwrap();
        assert!(!c.is_lib && c.is_core);
        let c = classify("crates/bench/src/main.rs").unwrap();
        assert!(!c.is_lib && !c.is_result_affecting);
        let c = classify("crates/fabric-lint/src/lib.rs").unwrap();
        assert!(!c.is_result_affecting);
        let c = classify("src/lib.rs").unwrap();
        assert!(c.is_lib && !c.is_core && c.is_result_affecting);
        assert!(classify("crates/fabric-lint/fixtures/bad_unwrap.rs").is_none());
        assert!(classify("crates/relmem/src/notes.md").is_none());
    }

    #[test]
    fn classify_covers_facade_tests_and_examples() {
        let c = classify("tests/parallel_equivalence.rs").unwrap();
        assert_eq!(c.crate_name, "relational-fabric");
        assert!(!c.is_lib && !c.is_core && !c.is_hot);
        let c = classify("examples/sql_frontend.rs").unwrap();
        assert_eq!(c.crate_name, "relational-fabric");
        assert!(!c.is_lib);
    }

    #[test]
    fn rule_names_roundtrip() {
        for &r in ALL_RULES {
            assert_eq!(Rule::from_name(r.name()), Some(r));
        }
        assert_eq!(ALL_RULES.len(), 11);
        assert!(Rule::from_name("made-up").is_none());
    }

    #[test]
    fn cfg_test_region_is_exempt_from_no_unwrap() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                   Some(1).unwrap();\n    }\n}\n";
        let d = scan_source("crates/relmem/src/x.rs", src, &core_lib());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 2);
        assert_eq!(d[0].rule, Rule::NoUnwrap);
    }

    #[test]
    fn code_after_test_module_is_checked_again() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n\
                   pub fn g() { panic!(\"boom\"); }\n";
        let d = scan_source("crates/relmem/src/x.rs", src, &core_lib());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 6);
    }

    #[test]
    fn tokens_in_comments_and_strings_do_not_count() {
        let src = "// call .unwrap() responsibly\npub fn f() -> &'static str {\n    \
                   \"never panic!()\"\n}\n";
        let d = scan_source("crates/relmem/src/x.rs", src, &core_lib());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).min(x.unwrap_or_default()) }\n";
        let d = scan_source("crates/relmem/src/x.rs", src, &core_lib());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn ignored_result_shapes() {
        let run = |src: &str| scan_source("crates/relmem/src/x.rs", src, &core_lib());
        assert_eq!(run("fn f() { let _ = run(); }").len(), 1);
        assert_eq!(run("fn f() { retry().ok(); }").len(), 1);
        assert!(run("fn f() { let _ignored = run(); }").is_empty());
        assert!(run("fn f() { let (_, x) = pair(); x; }").is_empty());
        assert!(run("fn f() { let x = run().ok(); x; }").is_empty());
        assert!(run("fn f(x: u8, y: u8) { if x == y { run(); } }").is_empty());
    }
}
