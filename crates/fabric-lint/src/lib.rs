//! `fabric-lint`: repo-specific static analysis for the Relational Fabric
//! workspace (source-layer companion of the pre-execution plan verifier
//! in `query::analyze` — see DESIGN.md, "Static analysis & plan
//! verification").
//!
//! Built on std only so it resolves offline like the rest of the
//! workspace: a line/token scanner over sanitized source (comments and
//! string literals blanked out, `#[cfg(test)]` regions tracked by brace
//! depth), not a full parser. Eight rule families:
//!
//! * **no-unwrap** — `.unwrap()` / `.expect(` / `panic!` / `todo!` are
//!   forbidden in non-test *library* code of the core crates
//!   ([`CORE_CRATES`]): engine code must surface `FabricError`, not
//!   abort the process.
//! * **undocumented-unsafe** — every `unsafe` token must carry a
//!   `// SAFETY:` comment on the same line or within the three lines
//!   above it. Applies everywhere, tests included.
//! * **narrowing-cast** — narrowing `as` casts (`as u8|i8|u16|i16|u32|i32`)
//!   are forbidden in the hot-path modules ([`HOT_PATH_FILES`] /
//!   [`HOT_PATH_DIRS`]) where silent truncation corrupts packed batches;
//!   use `try_from` and surface the error.
//! * **no-exit** — `process::exit` never belongs in library code.
//! * **ignored-result** — silently discarding a `Result` (`let _ = …`
//!   with the bare `_` pattern, or a statement-level `….ok();`) is
//!   forbidden in non-test library code of the core crates: a fault that
//!   recovery machinery surfaced must be handled or named, never dropped
//!   on the floor.
//! * **raw-stats-print** — `println!`/`format!`-family macros over stats
//!   counter structs (`MemStats`, `RmStats`, a `stats` binding, …) are
//!   forbidden in non-test library code of the core crates: statistics
//!   flow through the `fabric-obs` metrics registry (`record_into` + the
//!   snapshot JSON serializer), the workspace's single serialization
//!   path, never through hand-rolled formatters.
//! * **deprecated-entry-point** — the free-function executors
//!   (`query::execute` / `execute_on` / `execute_resilient` / `query::run`)
//!   are deprecated shims kept only for API stability: new code goes
//!   through `query::Engine` and its `Session`. Flagged everywhere outside
//!   `crates/query` itself — tests included, since test code migrates
//!   too — unless the file opts out with a file-level
//!   `#![allow(deprecated)]`, the same attribute rustc already requires
//!   to compile such a caller warning-free (one visible, greppable
//!   waiver instead of two).
//! * **adhoc-bench-output** — a string literal naming the `results/`
//!   artifact directory is forbidden outside [`BENCH_HARNESS_FILE`]:
//!   artifact I/O goes through `bench::harness` (`results_dir` /
//!   `write_artifact` / `emit_bench_json`), the one place that honors the
//!   `FABRIC_RESULTS_DIR` scratch redirect `tools/perf_gate.sh` relies on
//!   for apples-to-apples baseline reruns. Applies everywhere, tests
//!   included — an artifact written from a test dodges the redirect too.
//!   Only the harness and `fabric-lint` itself (whose matcher must spell
//!   the needle) are exempt.
//!
//! Diagnostics are `file:line` anchored. Pre-existing debt lives in the
//! checked-in `lint-baseline.txt`, counted per `(rule, file)`: the linter
//! fails only when a count **exceeds** its baseline entry, so new
//! violations are rejected while old ones burn down monotonically.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod baseline;
mod sanitize;

/// Crates whose library code must be panic-free (rule `no-unwrap`).
pub const CORE_CRATES: &[&str] = &["fabric-types", "relmem", "query", "mvcc", "relstore"];

/// Individual hot-path files where narrowing `as` casts are forbidden.
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/relmem/src/packer.rs",
    "crates/fabric-sim/src/cache.rs",
];

/// Hot-path directory prefixes (every `.rs` file below them).
pub const HOT_PATH_DIRS: &[&str] = &["crates/compress/src/"];

/// The one file allowed to name the bench results directory (rule
/// `adhoc-bench-output`): everything else routes artifact I/O through its
/// `results_dir` / `write_artifact` API.
pub const BENCH_HARNESS_FILE: &str = "crates/bench/src/harness.rs";

/// The eight rule families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    NoUnwrap,
    UndocumentedUnsafe,
    NarrowingCast,
    NoExit,
    IgnoredResult,
    RawStatsPrint,
    DeprecatedEntryPoint,
    AdhocBenchOutput,
}

impl Rule {
    /// Stable name used in output and in `lint-baseline.txt`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::UndocumentedUnsafe => "undocumented-unsafe",
            Rule::NarrowingCast => "narrowing-cast",
            Rule::NoExit => "no-exit",
            Rule::IgnoredResult => "ignored-result",
            Rule::RawStatsPrint => "raw-stats-print",
            Rule::DeprecatedEntryPoint => "deprecated-entry-point",
            Rule::AdhocBenchOutput => "adhoc-bench-output",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "no-unwrap" => Some(Rule::NoUnwrap),
            "undocumented-unsafe" => Some(Rule::UndocumentedUnsafe),
            "narrowing-cast" => Some(Rule::NarrowingCast),
            "no-exit" => Some(Rule::NoExit),
            "ignored-result" => Some(Rule::IgnoredResult),
            "raw-stats-print" => Some(Rule::RawStatsPrint),
            "deprecated-entry-point" => Some(Rule::DeprecatedEntryPoint),
            "adhoc-bench-output" => Some(Rule::AdhocBenchOutput),
            _ => None,
        }
    }
}

/// One violation, anchored to `file:line`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: Rule,
    /// Human-readable description including the offending token.
    pub message: String,
    /// The trimmed source line (truncated).
    pub excerpt: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}: `{}`",
            self.file,
            self.line,
            self.rule.name(),
            self.message,
            self.excerpt
        )
    }
}

/// What the walker decided about a file before scanning it.
#[derive(Debug, Clone)]
pub struct FileClass {
    pub crate_name: String,
    /// Library code: under `src/`, excluding `src/bin/` and `src/main.rs`.
    pub is_lib: bool,
    /// Member of [`CORE_CRATES`].
    pub is_core: bool,
    /// Hot-path module for the narrowing-cast rule.
    pub is_hot: bool,
}

/// Classify a workspace-relative path; `None` means "do not scan"
/// (non-Rust, lint fixtures, build output).
pub fn classify(rel: &str) -> Option<FileClass> {
    if !rel.ends_with(".rs") {
        return None;
    }
    if rel
        .split('/')
        .any(|part| part == "fixtures" || part == "target" || part.starts_with('.'))
    {
        return None;
    }
    let (crate_name, inner) = if let Some(rest) = rel.strip_prefix("crates/") {
        let (name, inner) = rest.split_once('/')?;
        (name.to_string(), inner.to_string())
    } else if rel.starts_with("src/") {
        // The workspace-root `relational-fabric` facade crate.
        ("relational-fabric".to_string(), rel.to_string())
    } else if rel.starts_with("tests/") || rel.starts_with("examples/") {
        // The facade crate's integration tests and examples: never
        // library code, but in scope for the rules that cover test
        // targets (undocumented-unsafe, deprecated-entry-point).
        ("relational-fabric".to_string(), rel.to_string())
    } else {
        return None;
    };
    let is_lib =
        inner.starts_with("src/") && !inner.starts_with("src/bin/") && inner != "src/main.rs";
    let is_core = CORE_CRATES.contains(&crate_name.as_str());
    let is_hot = HOT_PATH_FILES.contains(&rel) || HOT_PATH_DIRS.iter().any(|d| rel.starts_with(d));
    Some(FileClass {
        crate_name,
        is_lib,
        is_core,
        is_hot,
    })
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets of every occurrence of `needle` in `hay` that is
/// word-bounded on the requested sides.
fn find_bounded(hay: &str, needle: &str, left: bool, right: bool) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(p) = hay[from..].find(needle) {
        let at = from + p;
        let ok_left = !left || at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + needle.len();
        let ok_right = !right || end >= bytes.len() || !is_ident_byte(bytes[end]);
        if ok_left && ok_right {
            out.push(at);
        }
        from = at + needle.len().max(1);
    }
    out
}

/// Narrow integer targets for the narrowing-cast rule. `usize`/`u64`
/// stay legal: the hot paths widen indices, they must never truncate.
const NARROW_TYPES: &[&str] = &["u8", "i8", "u16", "i16", "u32", "i32"];

/// `as <narrow-int>` occurrences on a sanitized line, as the target type.
fn narrowing_casts(line: &str) -> Vec<&'static str> {
    let mut hits = Vec::new();
    for at in find_bounded(line, "as", true, true) {
        let rest = line[at + 2..].trim_start();
        for ty in NARROW_TYPES {
            let bounded = rest.starts_with(ty)
                && !rest[ty.len()..].starts_with(|c: char| c.is_ascii_alphanumeric() || c == '_');
            if bounded {
                hits.push(*ty);
                break;
            }
        }
    }
    hits
}

/// Silent `Result` discards on a sanitized line (rule `ignored-result`):
/// the bare-`_` binding (`let _ = …`, never `let _name = …` or a tuple
/// pattern), and a statement that ends by dropping an `….ok();` Option
/// without binding it.
fn ignored_result_discards(line: &str) -> Vec<&'static str> {
    let mut hits = Vec::new();
    for at in find_bounded(line, "let", true, true) {
        let rest = line[at + 3..].trim_start();
        let Some(after) = rest.strip_prefix('_') else {
            continue;
        };
        if after.starts_with(|c: char| c.is_ascii_alphanumeric() || c == '_') {
            continue; // named placeholder like `_ignored`: visible at review
        }
        let after = after.trim_start();
        if after.starts_with('=') && !after.starts_with("==") {
            hits.push("`let _ = …` discards the value");
        }
    }
    let t = line.trim_end();
    if t.ends_with(".ok();") && !t.contains('=') {
        hits.push("statement-level `.ok()` drops the error unseen");
    }
    hits
}

/// Print/format macros the `raw-stats-print` rule watches. `write!` /
/// `writeln!` stay legal: rendering *into a caller-supplied writer* (plan
/// text, reports) is fine — it is ad-hoc stringification of counter
/// structs that must go through the metrics registry.
const PRINT_MACROS: &[&str] = &["println!", "eprintln!", "print!", "eprint!", "format!"];

/// Does this identifier look like a stats counter struct or binding?
fn is_stats_ident(tok: &str) -> bool {
    tok == "stats" || tok.ends_with("_stats") || tok.ends_with("Stats")
}

/// Does a raw (unsanitized) line hold a format-string inline capture of a
/// stats binding, like `"{stats:?}"` or `"{rm_stats}"`? The sanitizer
/// blanks string literals, so these must be sought in the raw text.
fn inline_stats_capture(raw: &str) -> bool {
    let mut rest = raw;
    while let Some(p) = rest.find('{') {
        let after = &rest[p + 1..];
        let end = after
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(after.len());
        let tail = &after[end..];
        if (tail.starts_with('}') || tail.starts_with(':')) && is_stats_ident(&after[..end]) {
            return true;
        }
        rest = after;
    }
    false
}

/// Hand-rolled stats formatting on a line (rule `raw-stats-print`): a
/// print/format macro whose line also references a stats struct — either
/// as a code identifier (sanitized view) or as an inline format capture
/// (raw view).
fn raw_stats_prints(san_line: &str, raw_line: &str) -> Vec<&'static str> {
    let mut hits = Vec::new();
    for mac in PRINT_MACROS {
        for _ in find_bounded(san_line, mac, true, false) {
            let ident_hit = san_line
                .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .any(is_stats_ident);
            if ident_hit || inline_stats_capture(raw_line) {
                hits.push(*mac);
            }
        }
    }
    hits
}

/// Deprecated free-function executors (rule `deprecated-entry-point`).
/// Qualified uses are matched under both path aliases the workspace
/// exposes (`query::` and the facade's `sql::`); the two distinctively
/// named ones are also matched bare, unless preceded by `.` (a method
/// call — `session.execute_on(…)` is the replacement, not a violation)
/// or `:` (already counted as a qualified use).
const DEPRECATED_ENTRY_PREFIXES: &[&str] = &["query::", "sql::"];
const DEPRECATED_ENTRY_FNS: &[&str] = &["execute", "execute_on", "execute_resilient", "run"];
const DEPRECATED_ENTRY_BARE: &[&str] = &["execute_on", "execute_resilient"];

/// Deprecated entry-point calls on a sanitized line, as the matched path.
fn deprecated_entry_points(line: &str) -> Vec<String> {
    let mut hits = Vec::new();
    let bytes = line.as_bytes();
    for prefix in DEPRECATED_ENTRY_PREFIXES {
        for f in DEPRECATED_ENTRY_FNS {
            let needle = format!("{prefix}{f}(");
            for _ in find_bounded(line, &needle, true, false) {
                hits.push(format!("{prefix}{f}"));
            }
        }
    }
    for f in DEPRECATED_ENTRY_BARE {
        let needle = format!("{f}(");
        for at in find_bounded(line, &needle, true, false) {
            if at > 0 && matches!(bytes[at - 1], b'.' | b':') {
                continue;
            }
            hits.push((*f).to_string());
        }
    }
    hits
}

/// Does a raw (unsanitized) line open a string literal naming the bench
/// results directory (`"results"` or `"results/…"`)? The sanitizer blanks
/// string literals, so the needle must be sought in the raw text; the
/// sanitized line gates out comment-only lines (they sanitize to blank),
/// so doc comments may still *mention* `"results/…"` paths freely.
fn adhoc_results_literal(san_line: &str, raw_line: &str) -> bool {
    if san_line.trim().is_empty() {
        return false;
    }
    raw_line.contains("\"results\"") || raw_line.contains("\"results/")
}

fn excerpt_of(raw: &str) -> String {
    let t = raw.trim();
    if t.len() > 90 {
        let mut cut = 90;
        while !t.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &t[..cut])
    } else {
        t.to_string()
    }
}

/// Scan one file's source. Pure function of `(path, source, class)` so
/// the fixture tests can drive it directly.
pub fn scan_source(rel: &str, src: &str, class: &FileClass) -> Vec<Diagnostic> {
    let san = sanitize::sanitize(src);
    let raw_lines: Vec<&str> = src.lines().collect();
    let mut diags = Vec::new();

    // File-level waiver for deprecated-entry-point: the same attribute
    // rustc requires to compile a deliberate shim caller warning-free.
    let allows_deprecated = src.contains("#![allow(deprecated)]");

    // `#[cfg(test)]` / `#[test]` region tracking by brace depth: the
    // attribute arms `pending`, the next `{` opens a region that closes
    // when depth returns to its pre-brace value.
    let mut depth: i64 = 0;
    let mut pending_test = false;
    let mut test_exit: Option<i64> = None;

    for (idx, line) in san.lines.iter().enumerate() {
        let lineno = idx + 1;
        let mut in_test = test_exit.is_some();
        if line.contains("#[cfg(test)")
            || line.contains("#[cfg(all(test")
            || line.contains("#[cfg(any(test")
            || line.contains("#[test]")
        {
            pending_test = true;
            in_test = true; // the attribute line itself is test scaffolding
        }
        for ch in line.chars() {
            match ch {
                '{' => {
                    if pending_test {
                        if test_exit.is_none() {
                            test_exit = Some(depth);
                            in_test = true;
                        }
                        pending_test = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(d) = test_exit {
                        if depth <= d {
                            test_exit = None;
                        }
                    }
                }
                _ => {}
            }
        }

        let raw = raw_lines.get(idx).copied().unwrap_or("");

        // undocumented-unsafe: applies everywhere, tests included.
        for _ in find_bounded(line, "unsafe", true, true) {
            let documented =
                (idx.saturating_sub(3)..=idx).any(|j| san.safety.get(j) == Some(&true));
            if !documented {
                diags.push(Diagnostic {
                    file: rel.to_string(),
                    line: lineno,
                    rule: Rule::UndocumentedUnsafe,
                    message: "`unsafe` without a `// SAFETY:` comment on or just above it"
                        .to_string(),
                    excerpt: excerpt_of(raw),
                });
            }
        }

        // deprecated-entry-point: everywhere outside `crates/query` (the
        // shims' home), tests included — migrating test drivers is the
        // point — unless the file carries the `#![allow(deprecated)]`
        // waiver.
        if class.crate_name != "query" && !allows_deprecated {
            for path in deprecated_entry_points(line) {
                diags.push(Diagnostic {
                    file: rel.to_string(),
                    line: lineno,
                    rule: Rule::DeprecatedEntryPoint,
                    message: format!(
                        "deprecated free-function executor `{path}` (use `query::Engine` \
                         and `Session::run`/`run_on`/`execute`)"
                    ),
                    excerpt: excerpt_of(raw),
                });
            }
        }

        // adhoc-bench-output: the results directory is named in exactly
        // one place (`bench::harness`), so the FABRIC_RESULTS_DIR scratch
        // redirect the perf gate reruns under sees every artifact. Tests
        // included — a test writing `results/` dodges the redirect too.
        // fabric-lint itself is exempt: the matcher and its tests must
        // spell the needle they hunt for.
        if class.crate_name != "fabric-lint"
            && rel != BENCH_HARNESS_FILE
            && adhoc_results_literal(line, raw)
        {
            diags.push(Diagnostic {
                file: rel.to_string(),
                line: lineno,
                rule: Rule::AdhocBenchOutput,
                message: "hardcoded `results/` path (route artifact I/O through \
                          `bench::harness`, which honors the `FABRIC_RESULTS_DIR` redirect)"
                    .to_string(),
                excerpt: excerpt_of(raw),
            });
        }

        if in_test {
            continue;
        }

        // no-unwrap: panicking calls in core-crate library code.
        if class.is_core && class.is_lib {
            let tokens: [(&str, bool); 5] = [
                (".unwrap()", false),
                (".expect(", false),
                ("panic!", true),
                ("todo!", true),
                ("unimplemented!", true),
            ];
            for (tok, bounded_left) in tokens {
                for _ in find_bounded(line, tok, bounded_left, false) {
                    diags.push(Diagnostic {
                        file: rel.to_string(),
                        line: lineno,
                        rule: Rule::NoUnwrap,
                        message: format!(
                            "`{tok}` in core-crate library code (surface a `FabricError` instead)"
                        ),
                        excerpt: excerpt_of(raw),
                    });
                }
            }
        }

        // ignored-result: core-crate library code must not silently
        // discard fallible outcomes.
        if class.is_core && class.is_lib {
            for why in ignored_result_discards(line) {
                diags.push(Diagnostic {
                    file: rel.to_string(),
                    line: lineno,
                    rule: Rule::IgnoredResult,
                    message: format!("{why} in core-crate library code (handle or name it)"),
                    excerpt: excerpt_of(raw),
                });
            }
        }

        // raw-stats-print: core-crate library code must route stats
        // through the metrics registry, not hand-rolled formatters.
        if class.is_core && class.is_lib {
            for mac in raw_stats_prints(line, raw) {
                diags.push(Diagnostic {
                    file: rel.to_string(),
                    line: lineno,
                    rule: Rule::RawStatsPrint,
                    message: format!(
                        "`{mac}` over a stats counter struct in core-crate library code \
                         (use `record_into` + the metrics snapshot serializer)"
                    ),
                    excerpt: excerpt_of(raw),
                });
            }
        }

        // narrowing-cast: hot-path modules must use try_from.
        if class.is_hot {
            for ty in narrowing_casts(line) {
                diags.push(Diagnostic {
                    file: rel.to_string(),
                    line: lineno,
                    rule: Rule::NarrowingCast,
                    message: format!(
                        "narrowing `as {ty}` cast in a hot-path module (use `{ty}::try_from`)"
                    ),
                    excerpt: excerpt_of(raw),
                });
            }
        }

        // no-exit: library code never terminates the process.
        if class.is_lib && line.contains("process::exit") {
            diags.push(Diagnostic {
                file: rel.to_string(),
                line: lineno,
                rule: Rule::NoExit,
                message: "`process::exit` in library code (return an error to the caller)"
                    .to_string(),
                excerpt: excerpt_of(raw),
            });
        }
    }
    diags
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries = fs::read_dir(dir)?.collect::<io::Result<Vec<_>>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with('.') || name == "target" || name == "fixtures" {
            continue;
        }
        if path.is_dir() {
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan every classified `.rs` file under `<root>/crates`, `<root>/src`,
/// `<root>/tests`, and `<root>/examples`, returning diagnostics sorted by
/// `(file, line, rule)`.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut diags = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(class) = classify(&rel) else {
            continue;
        };
        let src = fs::read_to_string(&path)?;
        diags.extend(scan_source(&rel, &src, &class));
    }
    diags.sort();
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core_lib() -> FileClass {
        FileClass {
            crate_name: "relmem".into(),
            is_lib: true,
            is_core: true,
            is_hot: false,
        }
    }

    #[test]
    fn classify_maps_paths_to_rule_scopes() {
        let c = classify("crates/relmem/src/packer.rs").unwrap();
        assert!(c.is_lib && c.is_core && c.is_hot);
        let c = classify("crates/compress/src/lz.rs").unwrap();
        assert!(c.is_lib && !c.is_core && c.is_hot);
        let c = classify("crates/query/tests/roundtrip.rs").unwrap();
        assert!(!c.is_lib && c.is_core);
        let c = classify("crates/bench/src/main.rs").unwrap();
        assert!(!c.is_lib);
        let c = classify("src/lib.rs").unwrap();
        assert!(c.is_lib && !c.is_core);
        assert!(classify("crates/fabric-lint/tests/fixtures/bad_unwrap.rs").is_none());
        assert!(classify("crates/relmem/src/notes.md").is_none());
    }

    #[test]
    fn cfg_test_region_is_exempt_from_no_unwrap() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                   Some(1).unwrap();\n    }\n}\n";
        let d = scan_source("crates/relmem/src/x.rs", src, &core_lib());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 2);
        assert_eq!(d[0].rule, Rule::NoUnwrap);
    }

    #[test]
    fn code_after_test_module_is_checked_again() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n\
                   pub fn g() { panic!(\"boom\"); }\n";
        let d = scan_source("crates/relmem/src/x.rs", src, &core_lib());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 6);
    }

    #[test]
    fn tokens_in_comments_and_strings_do_not_count() {
        let src = "// call .unwrap() responsibly\npub fn f() -> &'static str {\n    \
                   \"never panic!()\"\n}\n";
        let d = scan_source("crates/relmem/src/x.rs", src, &core_lib());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).min(x.unwrap_or_default()) }\n";
        let d = scan_source("crates/relmem/src/x.rs", src, &core_lib());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn ignored_result_detection() {
        assert_eq!(ignored_result_discards("let _ = run();").len(), 1);
        assert_eq!(ignored_result_discards("    let _ =writeln!(f);").len(), 1);
        assert_eq!(ignored_result_discards("retry().ok();").len(), 1);
        assert!(ignored_result_discards("let _ignored = run();").is_empty());
        assert!(ignored_result_discards("let (_, x) = pair();").is_empty());
        assert!(ignored_result_discards("let x = run().ok();").is_empty());
        assert!(ignored_result_discards("if x == y { run()?; }").is_empty());
        assert!(ignored_result_discards("violet = 3;").is_empty());
    }

    #[test]
    fn raw_stats_print_detection() {
        // Code-identifier mentions (sanitized view).
        assert_eq!(
            raw_stats_prints(
                "println!( , stats.l1_hits);",
                "println!(\"hits={}\", stats.l1_hits);"
            )
            .len(),
            1
        );
        assert_eq!(
            raw_stats_prints(
                "let s = format!( , rm_stats);",
                "let s = format!(\"{:?}\", rm_stats);"
            )
            .len(),
            1
        );
        // Inline capture lives only in the raw string.
        assert_eq!(
            raw_stats_prints("eprintln!( );", "eprintln!(\"{stats:?}\");").len(),
            1
        );
        // A print without stats context is fine, as is stats without a print.
        assert!(raw_stats_prints("println!( , rows);", "println!(\"{}\", rows);").is_empty());
        assert!(raw_stats_prints("let x = stats.l1_hits;", "let x = stats.l1_hits;").is_empty());
        // `write!`/`writeln!` stay legal (caller-supplied writer).
        assert!(raw_stats_prints(
            "writeln!(out, , stats.retries)?;",
            "writeln!(out, \"{}\", stats.retries)?;"
        )
        .is_empty());
    }

    #[test]
    fn deprecated_entry_point_detection() {
        // Qualified uses under both path aliases.
        assert_eq!(
            deprecated_entry_points("let out = query::execute(&mut mem, &c, &b)?;"),
            vec!["query::execute"]
        );
        assert_eq!(
            deprecated_entry_points("sql::execute_on(&mut mem, &c, &b, path)?;"),
            vec!["sql::execute_on"]
        );
        assert_eq!(
            deprecated_entry_points("query::run(&mut mem, &c, text)?;"),
            vec!["query::run"]
        );
        // Distinctive names match bare, but not as method calls.
        assert_eq!(
            deprecated_entry_points("execute_resilient(&mut mem, &c, &b, &mut ctx)?;"),
            vec!["execute_resilient"]
        );
        assert!(deprecated_entry_points("session.execute_on(&prepared, path)?;").is_empty());
        // A qualified use is counted once, not again as a bare hit.
        assert_eq!(
            deprecated_entry_points("query::execute_on(&mut m, &c, &b, p)").len(),
            1
        );
        // Unrelated identifiers stay clean.
        assert!(deprecated_entry_points("let x = executor(1); run_row(&mut m);").is_empty());
        assert!(deprecated_entry_points("my_query::execute(x)").is_empty());
        assert!(deprecated_entry_points("execute_on_impl(&mut m, &c, &b, p)").is_empty());
    }

    #[test]
    fn deprecated_entry_point_scope_and_waiver() {
        let bad = "fn t() {\n    query::execute(&mut mem, &c, &b).unwrap();\n}\n";
        // Applies to test targets outside crates/query...
        let class = classify("tests/fixture.rs").unwrap();
        let d = scan_source("tests/fixture.rs", bad, &class);
        assert_eq!(
            d.iter()
                .filter(|x| x.rule == Rule::DeprecatedEntryPoint)
                .count(),
            1,
            "{d:?}"
        );
        // ...including inside #[cfg(test)] regions...
        let in_test = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                       query::execute(&mut mem, &c, &b).unwrap();\n    }\n}\n";
        let class = classify("crates/workload/src/x.rs").unwrap();
        let d = scan_source("crates/workload/src/x.rs", in_test, &class);
        assert_eq!(
            d.iter()
                .filter(|x| x.rule == Rule::DeprecatedEntryPoint)
                .count(),
            1,
            "{d:?}"
        );
        // ...but not inside crates/query (the shims live there)...
        let class = classify("crates/query/src/explain.rs").unwrap();
        let d = scan_source("crates/query/src/explain.rs", bad, &class);
        assert!(
            d.iter().all(|x| x.rule != Rule::DeprecatedEntryPoint),
            "{d:?}"
        );
        // ...and the file-level rustc waiver is honored.
        let waived = format!("#![allow(deprecated)]\n{bad}");
        let class = classify("tests/fixture.rs").unwrap();
        let d = scan_source("tests/fixture.rs", &waived, &class);
        assert!(
            d.iter().all(|x| x.rule != Rule::DeprecatedEntryPoint),
            "{d:?}"
        );
    }

    #[test]
    fn classify_covers_facade_tests_and_examples() {
        let c = classify("tests/parallel_equivalence.rs").unwrap();
        assert_eq!(c.crate_name, "relational-fabric");
        assert!(!c.is_lib && !c.is_core && !c.is_hot);
        let c = classify("examples/sql_frontend.rs").unwrap();
        assert_eq!(c.crate_name, "relational-fabric");
        assert!(!c.is_lib);
    }

    #[test]
    fn adhoc_results_literal_detection() {
        // String literals live only in the raw view.
        assert!(adhoc_results_literal(
            "fs::write( , t).ok();",
            "fs::write(\"results/TRACE_x.json\", t).ok();"
        ));
        assert!(adhoc_results_literal(
            "let d = Path::new( );",
            "let d = Path::new(\"results\");"
        ));
        // Comment-only lines sanitize to blank and stay clean.
        assert!(!adhoc_results_literal(
            " ",
            "// artifacts land in \"results/BENCH_x.json\""
        ));
        // Identifiers and unrelated literals are fine.
        assert!(!adhoc_results_literal(
            "let results = x.len();",
            "let results = x.len();"
        ));
        assert!(!adhoc_results_literal(
            "let p = ;",
            "let p = \"my_results/x\";"
        ));
    }

    #[test]
    fn narrowing_cast_detection() {
        assert_eq!(narrowing_casts("let x = y as u8;"), vec!["u8"]);
        assert_eq!(
            narrowing_casts("let x = (a + b) as i32 as u16;"),
            vec!["i32", "u16"]
        );
        assert!(narrowing_casts("let x = y as u64;").is_empty());
        assert!(narrowing_casts("let x = y as usize;").is_empty());
        assert!(narrowing_casts("let basil = herbs;").is_empty());
    }
}
