//! Per-file model built over the token stream: the shared substrate the
//! rule passes match against.
//!
//! One pass over the lexer output produces:
//!   * `code` — the comment-free token stream (what most rules walk);
//!   * `in_test` — a parallel flag per code token marking `#[test]` /
//!     `#[cfg(test)]` regions by brace depth, so lib-only rules skip
//!     inline test modules without a parser;
//!   * `safety` — per-line flags for `SAFETY:` comments, feeding the
//!     undocumented-unsafe proximity check;
//!   * `uses` — every `use` declaration's root path segment, for the
//!     layering pass;
//!   * `fns` — named `fn` items (name + line), a coarse item index;
//!   * `allows_deprecated` — whether the file opts out via an inner
//!     `#![allow(deprecated)]`.
//!
//! The test-region tracker is an approximation, not an expander: an
//! attribute arms a pending region when its tokens contain the ident
//! `test` but not `not` (so `#[cfg(test)]` and `#[test]` arm it while
//! `#[cfg(not(test))]` does not); the region opens at the next `{` and
//! closes when the depth returns. A `;` before any `{` cancels the
//! pending arm, so `#[cfg(test)] use foo;` does not leak test status
//! onto the rest of the file.

use crate::lexer::{lex, TokKind, Token};

/// A `use` declaration, reduced to what layering needs.
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// First path segment (`fabric_types`, `std`, `crate`, `super`, …).
    pub root: String,
    /// 1-based line of the `use` keyword.
    pub line: usize,
    /// Declared inside a test region?
    pub in_test: bool,
}

/// A named `fn` item (coarse: any `fn name` pair outside strings).
#[derive(Debug, Clone)]
pub struct ItemFn {
    pub name: String,
    pub line: usize,
}

/// The per-file model all rule passes share.
#[derive(Debug)]
pub struct FileModel {
    /// Comment-free token stream.
    pub code: Vec<Token>,
    /// Parallel to `code`: token sits inside a test region.
    pub in_test: Vec<bool>,
    /// 1-based per-line flag: line carries a `SAFETY:` comment (for a
    /// multi-line block comment, every spanned line is flagged).
    pub safety: Vec<bool>,
    /// All `use` declarations.
    pub uses: Vec<UseDecl>,
    /// All named `fn` items.
    pub fns: Vec<ItemFn>,
    /// File has an inner `#![allow(deprecated)]`.
    pub allows_deprecated: bool,
    /// Total line count (for bounds on per-line arrays).
    pub num_lines: usize,
}

impl FileModel {
    pub fn build(src: &str) -> FileModel {
        let all = lex(src);
        let num_lines = src.lines().count().max(1);

        // Per-line SAFETY flags from comments.
        let mut safety = vec![false; num_lines + 2];
        for t in &all {
            if t.is_comment() && t.text.contains("SAFETY:") {
                let span = if t.kind == TokKind::BlockComment {
                    t.text.matches('\n').count() + 1
                } else {
                    1
                };
                for l in t.line..t.line + span {
                    if l < safety.len() {
                        safety[l] = true;
                    }
                }
            }
        }

        let code: Vec<Token> = all.into_iter().filter(|t| !t.is_comment()).collect();

        // Test-region tracking over the code stream.
        let mut in_test = vec![false; code.len()];
        let mut depth: i64 = 0;
        // Stack of depths at which a test region opened.
        let mut test_depths: Vec<i64> = Vec::new();
        // An attribute armed a test region; waiting for its `{`.
        let mut pending_test = false;
        let mut i = 0;
        while i < code.len() {
            let t = &code[i];
            // Attribute: `#[...]` or `#![...]` — scan its bracket group.
            if t.is_punct("#")
                && matches!(code.get(i + 1), Some(n) if n.is_punct("[") || n.is_punct("!"))
            {
                let mut j = i + 1;
                if code[j].is_punct("!") {
                    j += 1;
                }
                if code.get(j).is_some_and(|t| t.is_punct("[")) {
                    let mut bd = 0i64;
                    let start = j;
                    let mut has_test = false;
                    let mut has_not = false;
                    let mut words: Vec<&str> = Vec::new();
                    while j < code.len() {
                        let a = &code[j];
                        if a.is_punct("[") {
                            bd += 1;
                        } else if a.is_punct("]") {
                            bd -= 1;
                            if bd == 0 {
                                break;
                            }
                        } else if a.kind == TokKind::Ident {
                            if a.text == "test" {
                                has_test = true;
                            }
                            if a.text == "not" {
                                has_not = true;
                            }
                            words.push(&a.text);
                        }
                        j += 1;
                    }
                    let inner = code[i + 1].is_punct("!");
                    if inner && words.first() == Some(&"allow") && words.contains(&"deprecated") {
                        // recorded below via allows_deprecated scan
                    }
                    if has_test && !has_not {
                        pending_test = true;
                    }
                    // Attribute tokens inherit the *current* region (an
                    // attr inside a test mod is test code), plus the
                    // pending arm so `#[test]` itself is flagged.
                    for k in i..=j.min(code.len().saturating_sub(1)) {
                        in_test[k] = !test_depths.is_empty() || (has_test && !has_not);
                    }
                    let _ = start;
                    i = j + 1;
                    continue;
                }
            }
            match t.text.as_str() {
                "{" if t.kind == TokKind::Punct => {
                    depth += 1;
                    if pending_test {
                        test_depths.push(depth);
                        pending_test = false;
                    }
                }
                "}" if t.kind == TokKind::Punct => {
                    if test_depths.last() == Some(&depth) {
                        test_depths.pop();
                    }
                    depth -= 1;
                    // The closing brace itself still belongs to the region.
                    in_test[i] =
                        !test_depths.is_empty() || test_depths.last() == Some(&(depth + 1));
                    i += 1;
                    continue;
                }
                ";" if t.kind == TokKind::Punct => {
                    // `#[cfg(test)] use foo;` — no braces ever came.
                    pending_test = false;
                }
                _ => {}
            }
            in_test[i] = !test_depths.is_empty() || pending_test;
            i += 1;
        }

        // use declarations: `use <root>...;` — root is the first ident
        // after `use` (skipping a leading `::`).
        let mut uses = Vec::new();
        for (i, t) in code.iter().enumerate() {
            if t.is_ident("use") {
                let mut j = i + 1;
                if code.get(j).is_some_and(|t| t.is_punct("::")) {
                    j += 1;
                }
                if let Some(root) = code.get(j) {
                    if root.kind == TokKind::Ident {
                        uses.push(UseDecl {
                            root: root.text.clone(),
                            line: t.line,
                            in_test: in_test[i],
                        });
                    }
                }
            }
        }

        // fn items.
        let mut fns = Vec::new();
        for (i, t) in code.iter().enumerate() {
            if t.is_ident("fn") {
                if let Some(name) = code.get(i + 1) {
                    if name.kind == TokKind::Ident {
                        fns.push(ItemFn {
                            name: name.text.clone(),
                            line: name.line,
                        });
                    }
                }
            }
        }

        // Inner allow(deprecated): `#![allow(deprecated)]` token pattern.
        let mut allows_deprecated = false;
        for w in code.windows(6) {
            if w[0].is_punct("#")
                && w[1].is_punct("!")
                && w[2].is_punct("[")
                && w[3].is_ident("allow")
                && w[4].is_punct("(")
                && w[5].is_ident("deprecated")
            {
                allows_deprecated = true;
            }
        }

        FileModel {
            code,
            in_test,
            safety,
            uses,
            fns,
            allows_deprecated,
            num_lines,
        }
    }

    /// Line `line` or one of the `window` lines above it carries a
    /// `SAFETY:` comment.
    pub fn safety_near(&self, line: usize, window: usize) -> bool {
        let lo = line.saturating_sub(window);
        (lo..=line).any(|l| self.safety.get(l).copied().unwrap_or(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_region_tracking_by_brace_depth() {
        let src = "fn live() { a(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { b(); }\n}\n\
                   fn live2() { c(); }\n";
        let m = FileModel::build(src);
        let flag = |name: &str| {
            let i = m.code.iter().position(|t| t.is_ident(name)).unwrap();
            m.in_test[i]
        };
        assert!(!flag("a"));
        assert!(flag("b"));
        assert!(!flag("c"));
    }

    #[test]
    fn cfg_not_test_does_not_arm() {
        let src = "#[cfg(not(test))]\nfn live() { a(); }\n";
        let m = FileModel::build(src);
        let i = m.code.iter().position(|t| t.is_ident("a")).unwrap();
        assert!(!m.in_test[i]);
    }

    #[test]
    fn braceless_test_attr_cancels_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() { a(); }\n";
        let m = FileModel::build(src);
        let i = m.code.iter().position(|t| t.is_ident("a")).unwrap();
        assert!(!m.in_test[i]);
        // …but the use decl itself is marked as test-only.
        assert!(m.uses[0].in_test);
    }

    #[test]
    fn test_fn_attr_arms_only_its_body() {
        let src = "#[test]\nfn t() { b(); }\nfn live() { a(); }\n";
        let m = FileModel::build(src);
        let b = m.code.iter().position(|t| t.is_ident("b")).unwrap();
        let a = m.code.iter().position(|t| t.is_ident("a")).unwrap();
        assert!(m.in_test[b]);
        assert!(!m.in_test[a]);
    }

    #[test]
    fn use_decls_capture_roots_and_lines() {
        let src = "use fabric_types::Value;\nuse ::std::fmt;\nuse crate::inner;\n";
        let m = FileModel::build(src);
        let roots: Vec<&str> = m.uses.iter().map(|u| u.root.as_str()).collect();
        assert_eq!(roots, vec!["fabric_types", "std", "crate"]);
        assert_eq!(m.uses[1].line, 2);
    }

    #[test]
    fn safety_flags_cover_block_comment_span() {
        let src = "/* SAFETY:\n   spans two lines */\nunsafe { x() }\n";
        let m = FileModel::build(src);
        assert!(m.safety[1]);
        assert!(m.safety[2]);
        assert!(!m.safety.get(3).copied().unwrap_or(false));
        assert!(m.safety_near(3, 3));
    }

    #[test]
    fn allow_deprecated_is_inner_attr_only() {
        let m = FileModel::build("#![allow(deprecated)]\nfn f() {}\n");
        assert!(m.allows_deprecated);
        let m = FileModel::build("#[allow(deprecated)]\nfn f() {}\n");
        assert!(!m.allows_deprecated);
        // In a string: never.
        let m = FileModel::build("const S: &str = \"#![allow(deprecated)]\";\n");
        assert!(!m.allows_deprecated);
    }

    #[test]
    fn fn_items_are_indexed() {
        let m = FileModel::build("fn alpha() {}\npub fn beta(x: u8) -> u8 { x }\n");
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta"]);
        assert_eq!(m.fns[1].line, 2);
    }
}
