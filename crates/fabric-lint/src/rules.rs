//! The eleven rule passes, all matching on the [`FileModel`] token
//! stream — never on raw text — so string literals, comments, and macro
//! bodies can no longer masquerade as code.
//!
//! Seven rules carry over from the line-scanner era (`no-unwrap`,
//! `undocumented-unsafe`, `narrowing-cast`, `no-exit`, `ignored-result`,
//! `raw-stats-print`, `adhoc-bench-output`) with their scopes and
//! messages intact, so `lint-baseline.txt` entries stay comparable
//! across the rewrite. Four are newer:
//!
//! * **`exec-internals`** — the staged executor's internals are
//!   constructed only inside `crates/query`; everyone else drives
//!   execution through `Session` (replaces `deprecated-entry-point`,
//!   retired with the free-function shims it policed).
//!
//! * **`layering-violation`** — `use` declarations (here) and
//!   `Cargo.toml` edges (in [`crate::layering`]) must respect the
//!   architecture DAG.
//! * **`nondeterministic-core`** — result-affecting library code must
//!   not introduce hash-order iteration (`HashMap`/`HashSet`),
//!   wall-clock reads (`std::time`, `Instant::now`, `SystemTime::now`),
//!   or un-allowlisted `env::var` reads: exactly the hazards that would
//!   break bit-identical chaos replay and the exact-cycle perf gate.
//! * **`unattributed-charge`** — `MemStats` counter fields are mutated
//!   only by the charge sites in `fabric-sim` (`hierarchy.rs`, plus
//!   `stats.rs`'s own accumulate/reconcile helpers), so the
//!   buckets-sum==elapsed invariant is protected at the source level.

use crate::lexer::{TokKind, Token};
use crate::model::FileModel;
use crate::{excerpt_of, layering, Diagnostic, FileClass, Rule, BENCH_HARNESS_FILE};

/// Narrow integer targets for the narrowing-cast rule. `usize`/`u64`
/// stay legal: the hot paths widen indices, they must never truncate.
const NARROW_TYPES: &[&str] = &["u8", "i8", "u16", "i16", "u32", "i32"];

/// Print/format macros the `raw-stats-print` rule watches. `write!` /
/// `writeln!` stay legal: rendering *into a caller-supplied writer* (plan
/// text, reports) is fine — it is ad-hoc stringification of counter
/// structs that must go through the metrics registry.
const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "format"];

/// Staged-executor internals (rule `exec-internals`): types whose
/// construction belongs to `crates/query` alone. The compiler already
/// enforces most of this (`pub(crate)` constructors); the lint keeps the
/// boundary visible in test code and future public-API drift.
const EXEC_INTERNAL_TYPES: &[&str] = &[
    "QueryExecutor",
    "OpNode",
    "Consumer",
    "CacheSlot",
    "OpCache",
    "Scratchpad",
];
const EXEC_INTERNAL_CTORS: &[&str] = &["new", "default"];

/// The sixteen `MemStats` counter fields (rule `unattributed-charge`).
/// Kept in lockstep with `fabric-sim/src/stats.rs`; the self-check
/// fixture corpus pins a representative subset.
pub const MEMSTATS_COUNTERS: &[&str] = &[
    "l1_hits",
    "l2_hits",
    "prefetch_hits",
    "demand_misses",
    "line_accesses",
    "bytes_read",
    "bytes_written",
    "cpu_cycles",
    "stall_cycles",
    "mem_lat_cycles",
    "stall_bw_cycles",
    "stall_dram_cycles",
    "stall_device_cycles",
    "stall_retry_cycles",
    "lat_l1_cycles",
    "lat_l2_cycles",
];

/// Files allowed to mutate `MemStats` counters: the charge sites proper,
/// and the stats module's own accumulate/reconcile arithmetic.
pub const CHARGE_SITE_FILES: &[&str] = &[
    "crates/fabric-sim/src/hierarchy.rs",
    "crates/fabric-sim/src/stats.rs",
];

/// Environment variables result-affecting code may read: the chaos/replay
/// and artifact-redirect knobs that are themselves part of the
/// deterministic contract (seeded, logged, or output-only).
pub const ALLOWED_ENV_VARS: &[&str] = &[
    "FABRIC_CHAOS_SEED",
    "FABRIC_CHAOS_PLANS",
    "FABRIC_PAR_CORES",
    "FABRIC_RESULTS_DIR",
];

/// Compound assignment operators (plus `=`): the token shapes that make
/// `.field <op>` a mutation. `==` munches as its own token, so
/// comparisons can never false-positive here.
const ASSIGN_OPS: &[&str] = &[
    "=", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "<<=", ">>=",
];

fn is_stats_ident(tok: &str) -> bool {
    tok == "stats" || tok.ends_with("_stats") || tok.ends_with("Stats")
}

/// Does a format-string literal hold an inline capture of a stats
/// binding, like `{stats:?}` or `{rm_stats}`?
fn inline_stats_capture(content: &str) -> bool {
    let mut rest = content;
    while let Some(p) = rest.find('{') {
        let after = &rest[p + 1..];
        let end = after
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(after.len());
        let tail = &after[end..];
        if (tail.starts_with('}') || tail.starts_with(':')) && is_stats_ident(&after[..end]) {
            return true;
        }
        rest = after;
    }
    false
}

/// Walk back from token `i` to the start of its statement; `true` if the
/// value is consumed there (`let`/`return`/`=`/`=>`/`?`), meaning a
/// trailing `.ok()` is bound or propagated, not dropped.
fn statement_consumes_value(code: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &code[j];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            return false;
        }
        if t.is_ident("let") || t.is_ident("return") {
            return true;
        }
        if t.is_punct("=") || t.is_punct("=>") || t.is_punct("?") {
            return true;
        }
    }
    false
}

/// Index of the token closing the group opened at `open` (which must be
/// `(`, `[`, or `{`); `code.len()` if unbalanced.
fn matching_close(code: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < code.len() {
        let t = &code[j];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    code.len()
}

/// Run every token-level rule over one file's model.
pub fn scan(
    rel: &str,
    model: &FileModel,
    raw_lines: &[&str],
    class: &FileClass,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let code = &model.code;
    let excerpt = |line: usize| excerpt_of(raw_lines.get(line.saturating_sub(1)).unwrap_or(&""));
    let mut push = |line: usize, rule: Rule, message: String| {
        diags.push(Diagnostic {
            file: rel.to_string(),
            line,
            rule,
            message,
            excerpt: excerpt(line),
        });
    };

    let core_lib = class.is_core && class.is_lib;
    let charge_scope = class.is_lib && !CHARGE_SITE_FILES.contains(&rel);
    let nondet_scope = class.is_result_affecting && class.is_lib;

    for i in 0..code.len() {
        let t = &code[i];
        let in_test = model.in_test[i];

        // ---- undocumented-unsafe: everywhere, tests included. --------
        if t.is_ident("unsafe") && !model.safety_near(t.line, 3) {
            push(
                t.line,
                Rule::UndocumentedUnsafe,
                "`unsafe` without a `// SAFETY:` comment on or just above it".to_string(),
            );
        }

        // ---- exec-internals: everywhere outside crates/query (the
        // executor's home), tests included — a test driver constructing
        // operators by hand dodges the engine's ownership rules just as
        // thoroughly as library code would. Matches a constructor call
        // `Type::new(` / `Type::default(` on the internal types; plain
        // type mentions (signatures, `&OpCache` stats references from
        // the prelude) stay legal. ------------------------------------
        if class.crate_name != "query"
            && t.kind == TokKind::Ident
            && EXEC_INTERNAL_TYPES.contains(&t.text.as_str())
            && code.get(i + 1).is_some_and(|n| n.is_punct("::"))
        {
            if let (Some(f), Some(p)) = (code.get(i + 2), code.get(i + 3)) {
                if f.kind == TokKind::Ident
                    && EXEC_INTERNAL_CTORS.contains(&f.text.as_str())
                    && p.is_punct("(")
                {
                    push(
                        t.line,
                        Rule::ExecInternals,
                        format!(
                            "executor internal `{}::{}` constructed outside `crates/query` \
                             (drive execution through `Session`; the engine owns operators, \
                             scratchpads, and the op cache)",
                            t.text, f.text
                        ),
                    );
                }
            }
        }

        // ---- adhoc-bench-output: a string literal naming the results
        // directory, anywhere but the harness (and fabric-lint itself,
        // whose matcher must spell the needle). Tests included — an
        // artifact written from a test dodges the redirect too. ---------
        if matches!(t.kind, TokKind::Str | TokKind::RawStr)
            && (t.text == "results" || t.text.starts_with("results/"))
            && class.crate_name != "fabric-lint"
            && rel != BENCH_HARNESS_FILE
        {
            push(
                t.line,
                Rule::AdhocBenchOutput,
                "hardcoded `results/` path (route artifact I/O through \
                 `bench::harness`, which honors the `FABRIC_RESULTS_DIR` redirect)"
                    .to_string(),
            );
        }

        // ---- layering-violation (source side): checked on the use list
        // below, outside the token loop. --------------------------------

        if in_test {
            continue;
        }

        // ---- no-unwrap: panicking calls in core-crate library code. ---
        if core_lib {
            if t.is_punct(".") {
                if let Some(n) = code.get(i + 1) {
                    if n.is_ident("unwrap")
                        && code.get(i + 2).is_some_and(|p| p.is_punct("("))
                        && code.get(i + 3).is_some_and(|p| p.is_punct(")"))
                    {
                        push(
                            t.line,
                            Rule::NoUnwrap,
                            "`.unwrap()` in core-crate library code (surface a `FabricError` \
                             instead)"
                                .to_string(),
                        );
                    }
                    if n.is_ident("expect") && code.get(i + 2).is_some_and(|p| p.is_punct("(")) {
                        push(
                            t.line,
                            Rule::NoUnwrap,
                            "`.expect(` in core-crate library code (surface a `FabricError` \
                             instead)"
                                .to_string(),
                        );
                    }
                }
            }
            if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "panic" | "todo" | "unimplemented")
                && code.get(i + 1).is_some_and(|n| n.is_punct("!"))
            {
                push(
                    t.line,
                    Rule::NoUnwrap,
                    format!(
                        "`{}!` in core-crate library code (surface a `FabricError` instead)",
                        t.text
                    ),
                );
            }
        }

        // ---- ignored-result: silent Result discards in core libs. -----
        if core_lib {
            if t.is_ident("let")
                && code.get(i + 1).is_some_and(|n| n.is_ident("_"))
                && code.get(i + 2).is_some_and(|n| n.is_punct("="))
            {
                push(
                    t.line,
                    Rule::IgnoredResult,
                    "`let _ = …` discards the value in core-crate library code \
                     (handle or name it)"
                        .to_string(),
                );
            }
            if t.is_punct(".")
                && code.get(i + 1).is_some_and(|n| n.is_ident("ok"))
                && code.get(i + 2).is_some_and(|n| n.is_punct("("))
                && code.get(i + 3).is_some_and(|n| n.is_punct(")"))
                && code.get(i + 4).is_some_and(|n| n.is_punct(";"))
                && !statement_consumes_value(code, i)
            {
                push(
                    t.line,
                    Rule::IgnoredResult,
                    "statement-level `.ok()` drops the error unseen in core-crate library \
                     code (handle or name it)"
                        .to_string(),
                );
            }
        }

        // ---- raw-stats-print: ad-hoc stats formatting in core libs. ---
        if core_lib
            && t.kind == TokKind::Ident
            && PRINT_MACROS.contains(&t.text.as_str())
            && code.get(i + 1).is_some_and(|n| n.is_punct("!"))
            && code
                .get(i + 2)
                .is_some_and(|n| n.is_punct("(") || n.is_punct("[") || n.is_punct("{"))
        {
            let close = matching_close(code, i + 2);
            let stats_arg = code[i + 2..close].iter().any(|a| match a.kind {
                TokKind::Ident => is_stats_ident(&a.text),
                TokKind::Str | TokKind::RawStr => inline_stats_capture(&a.text),
                _ => false,
            });
            if stats_arg {
                push(
                    t.line,
                    Rule::RawStatsPrint,
                    format!(
                        "`{}!` over a stats counter struct in core-crate library code \
                         (use `record_into` + the metrics snapshot serializer)",
                        t.text
                    ),
                );
            }
        }

        // ---- narrowing-cast: hot-path modules must use try_from. ------
        if class.is_hot && t.is_ident("as") {
            if let Some(ty) = code.get(i + 1) {
                if ty.kind == TokKind::Ident && NARROW_TYPES.contains(&ty.text.as_str()) {
                    push(
                        t.line,
                        Rule::NarrowingCast,
                        format!(
                            "narrowing `as {ty}` cast in a hot-path module (use \
                             `{ty}::try_from`)",
                            ty = ty.text
                        ),
                    );
                }
            }
        }

        // ---- no-exit: library code never terminates the process. ------
        if class.is_lib
            && t.is_ident("process")
            && code.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && code.get(i + 2).is_some_and(|n| n.is_ident("exit"))
        {
            push(
                t.line,
                Rule::NoExit,
                "`process::exit` in library code (return an error to the caller)".to_string(),
            );
        }

        // ---- nondeterministic-core: hash order, wall clocks, env. -----
        if nondet_scope && t.kind == TokKind::Ident {
            match t.text.as_str() {
                "HashMap" | "HashSet" => push(
                    t.line,
                    Rule::NondeterministicCore,
                    format!(
                        "`{}` in result-affecting library code (iteration order varies per \
                         process; use `BTreeMap`/sorted iteration so replay stays bit-identical)",
                        t.text
                    ),
                ),
                "std"
                    if code.get(i + 1).is_some_and(|n| n.is_punct("::"))
                        && code.get(i + 2).is_some_and(|n| n.is_ident("time")) =>
                {
                    push(
                        t.line,
                        Rule::NondeterministicCore,
                        "`std::time` in result-affecting library code (wall-clock reads \
                         desync chaos replay; charge cycles via fabric-sim instead)"
                            .to_string(),
                    );
                }
                "Instant" | "SystemTime"
                    if code.get(i + 1).is_some_and(|n| n.is_punct("::"))
                        && code.get(i + 2).is_some_and(|n| n.is_ident("now"))
                        && !(i > 0 && code[i - 1].is_punct("::")) =>
                {
                    push(
                        t.line,
                        Rule::NondeterministicCore,
                        format!(
                            "`{}::now()` in result-affecting library code (wall-clock reads \
                             desync chaos replay; charge cycles via fabric-sim instead)",
                            t.text
                        ),
                    );
                }
                "env"
                    if code.get(i + 1).is_some_and(|n| n.is_punct("::"))
                        && code
                            .get(i + 2)
                            .is_some_and(|n| n.is_ident("var") || n.is_ident("var_os")) =>
                {
                    let allowed = code.get(i + 3).is_some_and(|p| p.is_punct("("))
                        && code.get(i + 4).is_some_and(|s| {
                            matches!(s.kind, TokKind::Str | TokKind::RawStr)
                                && ALLOWED_ENV_VARS.contains(&s.text.as_str())
                        });
                    if !allowed {
                        push(
                            t.line,
                            Rule::NondeterministicCore,
                            "un-allowlisted `env::var` read in result-affecting library code \
                             (only the FABRIC_* replay/redirect knobs may vary per run)"
                                .to_string(),
                        );
                    }
                }
                _ => {}
            }
        }

        // ---- unattributed-charge: MemStats counters mutate only at the
        // charge sites. -------------------------------------------------
        if charge_scope && t.is_punct(".") {
            if let (Some(f), Some(op)) = (code.get(i + 1), code.get(i + 2)) {
                if f.kind == TokKind::Ident
                    && MEMSTATS_COUNTERS.contains(&f.text.as_str())
                    && op.kind == TokKind::Punct
                    && ASSIGN_OPS.contains(&op.text.as_str())
                {
                    push(
                        t.line,
                        Rule::UnattributedCharge,
                        format!(
                            "direct mutation of `MemStats::{}` outside the fabric-sim charge \
                             sites (route the charge through `MemoryHierarchy` so \
                             buckets-reconcile holds)",
                            f.text
                        ),
                    );
                }
            }
        }
    }

    // ---- layering-violation (source side): every `use` edge must
    // respect the DAG. Test regions included — a test inside a crate
    // still compiles against that crate's dependency set. --------------
    for u in &model.uses {
        if let Some(message) = layering::check_use(&class.crate_name, &u.root) {
            diags.push(Diagnostic {
                file: rel.to_string(),
                line: u.line,
                rule: Rule::LayeringViolation,
                message,
                excerpt: excerpt_of(raw_lines.get(u.line.saturating_sub(1)).unwrap_or(&"")),
            });
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify;

    fn run(rel: &str, src: &str) -> Vec<Diagnostic> {
        let class = classify(rel).expect("classifiable");
        let model = FileModel::build(src);
        let raw: Vec<&str> = src.lines().collect();
        scan(rel, &model, &raw, &class)
    }

    fn rules_of(d: &[Diagnostic]) -> Vec<Rule> {
        d.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn statement_level_ok_walkback() {
        // Dropped: flagged.
        let d = run("crates/relmem/src/x.rs", "pub fn f() { retry().ok(); }");
        assert_eq!(rules_of(&d), vec![Rule::IgnoredResult]);
        // Bound, returned, propagated, or matched: clean.
        for src in [
            "pub fn f() -> Option<()> { return retry().ok(); }",
            "pub fn f() { let x = retry().ok(); x; }",
            "pub fn f(y: Option<()>) { if y.is_some() { y = retry().ok(); } }",
        ] {
            let d = run("crates/relmem/src/x.rs", src);
            assert!(
                d.iter().all(|x| x.rule != Rule::IgnoredResult),
                "{src}: {d:?}"
            );
        }
    }

    #[test]
    fn nondeterministic_core_patterns() {
        let rel = "crates/query/src/x.rs";
        let d = run(
            rel,
            "use std::collections::HashMap;\npub fn f() { let m: HashMap<u8, u8>; }",
        );
        assert_eq!(
            d.iter()
                .filter(|x| x.rule == Rule::NondeterministicCore)
                .count(),
            2
        );
        let d = run(rel, "pub fn f() { let t = std::time::Instant::now(); }");
        assert_eq!(
            d.iter()
                .filter(|x| x.rule == Rule::NondeterministicCore)
                .count(),
            1,
            "qualified path counts once: {d:?}"
        );
        let d = run(rel, "pub fn f() { let t = Instant::now(); }");
        assert_eq!(rules_of(&d), vec![Rule::NondeterministicCore]);
        // fabric-obs's `Phase::Instant` enum variant must stay clean.
        let d = run(
            "crates/fabric-obs/src/x.rs",
            "pub fn f(p: Phase) { let x = Phase::Instant; }",
        );
        assert!(d.is_empty(), "{d:?}");
        // env allowlist.
        let d = run(
            rel,
            "pub fn f() { std::env::var(\"FABRIC_CHAOS_SEED\").ok(); }",
        );
        assert!(
            d.iter().all(|x| x.rule != Rule::NondeterministicCore),
            "{d:?}"
        );
        let d = run(rel, "pub fn f() { std::env::var(\"HOME\").ok(); }");
        assert!(
            d.iter().any(|x| x.rule == Rule::NondeterministicCore),
            "{d:?}"
        );
        // Out of scope: bench, tests, strings.
        let d = run(
            "crates/bench/src/report.rs",
            "pub fn f() { let m: HashMap<u8, u8>; }",
        );
        assert!(d.is_empty(), "{d:?}");
        let d = run(
            rel,
            "#[cfg(test)]\nmod t {\n fn g() { let m: HashMap<u8,u8>; }\n}",
        );
        assert!(d.is_empty(), "{d:?}");
        let d = run(rel, "pub const DOC: &str = \"uses HashMap internally\";");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unattributed_charge_patterns() {
        let bad = "pub fn f(s: &mut MemStats) { s.cpu_cycles += 4; }";
        let d = run("crates/relmem/src/x.rs", bad);
        assert_eq!(rules_of(&d), vec![Rule::UnattributedCharge]);
        // The charge sites themselves are exempt.
        let d = run("crates/fabric-sim/src/hierarchy.rs", bad);
        assert!(d.is_empty(), "{d:?}");
        let d = run("crates/fabric-sim/src/stats.rs", bad);
        assert!(d.is_empty(), "{d:?}");
        // Reads and comparisons are fine (`==` is its own token).
        let d = run(
            "crates/relmem/src/x.rs",
            "pub fn f(s: &MemStats) -> bool { s.cpu_cycles == 4 && s.l1_hits > 0 }",
        );
        assert!(d.is_empty(), "{d:?}");
        // Other assignments in fabric-sim's lib code are caught too.
        let d = run(
            "crates/fabric-sim/src/prefetch.rs",
            "fn f(s: &mut MemStats) { s.bytes_read = 0; }",
        );
        assert_eq!(rules_of(&d), vec![Rule::UnattributedCharge]);
    }

    #[test]
    fn layering_violation_via_use() {
        let d = run("crates/fabric-obs/src/x.rs", "use query::Engine;\n");
        assert_eq!(rules_of(&d), vec![Rule::LayeringViolation]);
        let d = run(
            "crates/query/src/x.rs",
            "use fabric_types::Value;\nuse relmem::RmConfig;\n",
        );
        assert!(d.is_empty(), "{d:?}");
        // Facade tests may use anything.
        let d = run("tests/x.rs", "use workload::Tpcc;\nuse query::Engine;\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn string_and_comment_immunity_token_level() {
        // The old scanner's nemesis cases: all clean now.
        let src = r##"
pub fn f() -> &'static str {
    // .unwrap() and panic! in a comment
    /* QueryExecutor::new(&v, path) */
    let s = r#"s.cpu_cycles += 4; HashMap::new(); "results/x.json""#;
    "as u8 in a string"
}
"##;
        let d = run("crates/relmem/src/packer_doc.rs", src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn adhoc_bench_output_on_string_tokens() {
        let d = run(
            "crates/workload/src/x.rs",
            "pub fn f() { fs::write(\"results/T.json\", b\"x\").ok(); }",
        );
        assert_eq!(rules_of(&d), vec![Rule::AdhocBenchOutput]);
        // Raw strings count too; comments and other literals do not.
        let d = run(
            "crates/workload/src/x.rs",
            "pub fn f() { let p = r\"results/T.json\"; }",
        );
        assert_eq!(rules_of(&d), vec![Rule::AdhocBenchOutput]);
        let d = run(
            "crates/workload/src/x.rs",
            "// artifacts land in \"results/BENCH_x.json\"\npub fn f() { let p = \"my_results/x\"; }",
        );
        assert!(d.is_empty(), "{d:?}");
        let d = run(BENCH_HARNESS_FILE, "pub fn f() { let p = \"results\"; }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn exec_internals_token_shapes() {
        let rel = "crates/workload/src/x.rs";
        let d = run(rel, "fn f() { let ex = QueryExecutor::new(&v, path); }");
        assert_eq!(rules_of(&d), vec![Rule::ExecInternals]);
        let d = run(rel, "fn f() { let c = OpCache::default(); }");
        assert_eq!(rules_of(&d), vec![Rule::ExecInternals]);
        let d = run(rel, "fn f() { let s = Scratchpad::new(); }");
        assert_eq!(rules_of(&d), vec![Rule::ExecInternals]);
        // Qualified paths still end at the type ident.
        let d = run(rel, "fn f() { query::exec::QueryExecutor::new(&v, p); }");
        assert_eq!(rules_of(&d), vec![Rule::ExecInternals]);
        // Mentions, stats reads, and lookalikes are clean.
        for src in [
            "fn f(ex: &QueryExecutor) -> (u64, u64) { engine.op_cache().stats() }",
            "fn f() { let (h, m) = engine.op_cache_stats(); }",
            "fn f() { let x = MyConsumer::new(); OpNodeish::default(); }",
            "fn f() { Scratchpad::epoch(&s); }",
        ] {
            let d = run(rel, src);
            assert!(d.is_empty(), "{src}: {d:?}");
        }
        // The executor's home crate builds its own internals freely.
        let d = run(
            "crates/query/src/exec/mod.rs",
            "fn f() { let ex = QueryExecutor::new(&v, path); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn raw_stats_print_token_scope() {
        let rel = "crates/relmem/src/x.rs";
        let d = run(
            rel,
            "fn f(stats: &MemStats) { println!(\"hits={}\", stats.l1_hits); }",
        );
        assert_eq!(rules_of(&d), vec![Rule::RawStatsPrint]);
        let d = run(
            rel,
            "fn f(rm_stats: &RmStats) { let s = format!(\"{rm_stats:?}\"); }",
        );
        assert_eq!(rules_of(&d), vec![Rule::RawStatsPrint]);
        // Print without stats, stats without print, writer macros: clean.
        for src in [
            "fn f(rows: usize) { println!(\"{}\", rows); }",
            "fn f(stats: &MemStats) -> u64 { stats.l1_hits }",
            "fn f(out: &mut String, stats: &MemStats) { writeln!(out, \"{}\", stats.l1_hits).ok(); }",
        ] {
            let d = run(rel, src);
            assert!(d.iter().all(|x| x.rule != Rule::RawStatsPrint), "{src}: {d:?}");
        }
    }

    #[test]
    fn narrowing_cast_and_no_exit_and_unsafe() {
        let d = run(
            "crates/compress/src/lz.rs",
            "pub fn f(x: u64) -> u8 { x as u8 }",
        );
        assert_eq!(rules_of(&d), vec![Rule::NarrowingCast]);
        let d = run(
            "crates/compress/src/lz.rs",
            "pub fn f(x: u32) -> u64 { x as u64 }",
        );
        assert!(d.is_empty(), "{d:?}");
        let d = run(
            "crates/colstore/src/x.rs",
            "pub fn f() { std::process::exit(1); }",
        );
        assert_eq!(rules_of(&d), vec![Rule::NoExit]);
        let d = run(
            "crates/colstore/src/x.rs",
            "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}",
        );
        assert!(d.is_empty(), "{d:?}");
        let d = run(
            "crates/colstore/src/x.rs",
            "pub fn f(p: *const u8) -> u8 { unsafe { *p } }",
        );
        assert_eq!(rules_of(&d), vec![Rule::UndocumentedUnsafe]);
    }
}
