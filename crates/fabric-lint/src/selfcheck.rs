//! `--self-check`: the analyzer regression-gates *itself* before it is
//! allowed to gate the workspace.
//!
//! Two halves, both fatal in CI:
//!
//! 1. **Fixture corpus replay.** Every file under
//!    `crates/fabric-lint/fixtures/` is a self-describing test case: its
//!    first line names the workspace-relative path to scan it *as*
//!    (`//@ scan-as: crates/relmem/src/bad.rs`, or `#@ scan-as:` in the
//!    two `Cargo.toml` fixtures), and every line that should produce a
//!    finding carries a `//~ rule-name` (or `#~ rule-name`) marker —
//!    several rule names on one marker mean several findings on that
//!    line. The corpus is diffed as a multiset of `(line, rule)` pairs,
//!    so a false positive (unexpected finding) and a false negative
//!    (missing finding) both fail with the exact location. A final
//!    completeness check requires every one of the eleven rules to be
//!    exercised by at least one expected finding, so a rule can never
//!    silently rot out of the corpus.
//!
//! 2. **Bidirectional baseline ratchet.** A normal run fails only on
//!    counts *above* `lint-baseline.txt` (new debt); self-check also
//!    fails on counts *below* it (stale entries), because a stale entry
//!    is head-room a future regression could hide in. Fixing debt must
//!    therefore land together with its `--update-baseline` ratchet.

use std::fs;
use std::path::Path;

use crate::baseline::{compare, Baseline};
use crate::{classify, layering, scan_source, Rule, ALL_RULES};

/// One `(line, rule)` expectation or finding inside a fixture.
type Finding = (usize, &'static str);

/// The outcome of a self-check run: human-readable failures (empty =
/// pass) plus counters for the success banner.
#[derive(Debug, Default)]
pub struct SelfCheckReport {
    pub failures: Vec<String>,
    pub fixtures: usize,
    pub expected_findings: usize,
}

impl SelfCheckReport {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Parse a fixture: `(scan-as path, expected findings)`.
fn parse_fixture(name: &str, text: &str) -> Result<(String, Vec<Finding>), String> {
    let first = text.lines().next().unwrap_or("");
    let scan_as = first
        .strip_prefix("//@ scan-as:")
        .or_else(|| first.strip_prefix("#@ scan-as:"))
        .map(str::trim)
        .ok_or_else(|| {
            format!("{name}: first line must be `//@ scan-as: <path>` (or `#@` in TOML)")
        })?;
    if scan_as.is_empty() {
        return Err(format!("{name}: empty scan-as path"));
    }
    let mut expected = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let marker = line.find("//~").or_else(|| line.find("#~"));
        let Some(at) = marker else { continue };
        let tail = line[at..].trim_start_matches(['/', '#', '~']);
        for rule_name in tail.split_whitespace() {
            let rule = Rule::from_name(rule_name).ok_or_else(|| {
                format!("{name}:{}: unknown rule `{rule_name}` in marker", idx + 1)
            })?;
            expected.push((idx + 1, rule.name()));
        }
    }
    Ok((scan_as.to_string(), expected))
}

/// Scan a fixture's text as the file its header names.
fn scan_fixture(name: &str, scan_as: &str, text: &str) -> Result<Vec<Finding>, String> {
    if scan_as.ends_with("Cargo.toml") {
        return Ok(layering::scan_cargo_manifest(scan_as, text)
            .into_iter()
            .map(|d| (d.line, d.rule.name()))
            .collect());
    }
    let class = classify(scan_as).ok_or_else(|| {
        format!("{name}: scan-as path `{scan_as}` is not classifiable (would never be scanned)")
    })?;
    Ok(scan_source(scan_as, text, &class)
        .into_iter()
        .map(|d| (d.line, d.rule.name()))
        .collect())
}

/// Diff expected vs. actual findings as multisets of `(line, rule)`.
fn diff_findings(name: &str, expected: &[Finding], actual: &[Finding], out: &mut Vec<String>) {
    let mut exp = expected.to_vec();
    let mut act = actual.to_vec();
    exp.sort_unstable();
    act.sort_unstable();
    let mut e = 0;
    let mut a = 0;
    while e < exp.len() || a < act.len() {
        match (exp.get(e), act.get(a)) {
            (Some(x), Some(y)) if x == y => {
                e += 1;
                a += 1;
            }
            (Some(x), Some(y)) if x < y => {
                out.push(format!(
                    "{name}:{}: expected [{}] but the analyzer did not report it (false negative)",
                    x.0, x.1
                ));
                e += 1;
            }
            (Some(_), Some(y)) => {
                out.push(format!(
                    "{name}:{}: analyzer reported [{}] with no `//~` marker (false positive)",
                    y.0, y.1
                ));
                a += 1;
            }
            (Some(x), None) => {
                out.push(format!(
                    "{name}:{}: expected [{}] but the analyzer did not report it (false negative)",
                    x.0, x.1
                ));
                e += 1;
            }
            (None, Some(y)) => {
                out.push(format!(
                    "{name}:{}: analyzer reported [{}] with no `//~` marker (false positive)",
                    y.0, y.1
                ));
                a += 1;
            }
            (None, None) => unreachable!(),
        }
    }
}

/// Replay the fixture corpus at `fixtures_dir`.
pub fn check_corpus(fixtures_dir: &Path) -> Result<SelfCheckReport, String> {
    let mut report = SelfCheckReport::default();
    let mut covered: Vec<&'static str> = Vec::new();

    let mut entries: Vec<_> = fs::read_dir(fixtures_dir)
        .map_err(|e| format!("cannot read fixture corpus {}: {e}", fixtures_dir.display()))?
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("cannot read fixture corpus: {e}"))?;
    entries.sort_by_key(|e| e.path());

    for entry in entries {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if !(name.ends_with(".rs") || name.ends_with(".toml")) {
            continue;
        }
        let text =
            fs::read_to_string(&path).map_err(|e| format!("cannot read fixture {name}: {e}"))?;
        report.fixtures += 1;
        let (scan_as, expected) = match parse_fixture(&name, &text) {
            Ok(p) => p,
            Err(e) => {
                report.failures.push(e);
                continue;
            }
        };
        let actual = match scan_fixture(&name, &scan_as, &text) {
            Ok(a) => a,
            Err(e) => {
                report.failures.push(e);
                continue;
            }
        };
        report.expected_findings += expected.len();
        covered.extend(expected.iter().map(|&(_, r)| r));
        diff_findings(&name, &expected, &actual, &mut report.failures);
    }

    if report.fixtures == 0 {
        report
            .failures
            .push(format!("no fixtures found in {}", fixtures_dir.display()));
    }
    for &rule in ALL_RULES {
        if !covered.contains(&rule.name()) {
            report.failures.push(format!(
                "rule [{}] has no expected finding anywhere in the corpus (coverage hole)",
                rule.name()
            ));
        }
    }
    Ok(report)
}

/// Full self-check: corpus replay plus the bidirectional baseline
/// ratchet over the live workspace.
pub fn self_check(root: &Path) -> Result<SelfCheckReport, String> {
    let mut report = check_corpus(&root.join("crates/fabric-lint/fixtures"))?;

    let diags = crate::scan_workspace(root).map_err(|e| format!("workspace scan failed: {e}"))?;
    let baseline_path = root.join("lint-baseline.txt");
    let base = if baseline_path.is_file() {
        let text = fs::read_to_string(&baseline_path)
            .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?;
        Baseline::parse(&text)?
    } else {
        Baseline::default()
    };
    let cmp = compare(&diags, &base);
    for d in &cmp.fresh {
        report.failures.push(format!("above baseline: {d}"));
    }
    for delta in &cmp.stale {
        report.failures.push(format!(
            "stale baseline entry ({delta}): ratchet with --update-baseline so fixed debt \
             cannot regress unnoticed"
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_parsing_extracts_header_and_markers() {
        let text = "//@ scan-as: crates/relmem/src/bad.rs\n\
                    pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap() //~ no-unwrap\n}\n";
        let (scan_as, exp) = parse_fixture("f.rs", text).unwrap();
        assert_eq!(scan_as, "crates/relmem/src/bad.rs");
        assert_eq!(exp, vec![(3, "no-unwrap")]);
    }

    #[test]
    fn fixture_marker_can_expect_multiple_findings() {
        let text = "//@ scan-as: crates/relmem/src/bad.rs\nlet _ = a.unwrap(); //~ no-unwrap ignored-result\n";
        let (_, exp) = parse_fixture("f.rs", text).unwrap();
        assert_eq!(exp.len(), 2);
    }

    #[test]
    fn fixture_without_header_or_with_bad_rule_is_rejected() {
        assert!(parse_fixture("f.rs", "fn main() {}\n").is_err());
        assert!(parse_fixture(
            "f.rs",
            "//@ scan-as: crates/relmem/src/b.rs\nx(); //~ no-such-rule\n"
        )
        .is_err());
    }

    #[test]
    fn diff_reports_both_directions() {
        let mut out = Vec::new();
        diff_findings(
            "f.rs",
            &[(3, "no-unwrap"), (5, "no-exit")],
            &[(3, "no-unwrap"), (9, "no-unwrap")],
            &mut out,
        );
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out
            .iter()
            .any(|m| m.contains("false negative") && m.contains("no-exit")));
        assert!(out
            .iter()
            .any(|m| m.contains("false positive") && m.contains(":9")));
    }

    #[test]
    fn matching_fixture_round_trips_through_scan() {
        let text = "//@ scan-as: crates/relmem/src/bad.rs\n\
                    pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap() //~ no-unwrap\n}\n";
        let (scan_as, expected) = parse_fixture("f.rs", text).unwrap();
        let actual = scan_fixture("f.rs", &scan_as, text).unwrap();
        let mut out = Vec::new();
        diff_findings("f.rs", &expected, &actual, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn toml_fixture_scans_through_the_manifest_path() {
        let text = "#@ scan-as: crates/fabric-obs/Cargo.toml\n\
                    [dependencies]\nquery.workspace = true #~ layering-violation\n";
        let (scan_as, expected) = parse_fixture("f.toml", text).unwrap();
        let actual = scan_fixture("f.toml", &scan_as, text).unwrap();
        let mut out = Vec::new();
        diff_findings("f.toml", &expected, &actual, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
