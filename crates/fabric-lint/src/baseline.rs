//! The checked-in violation baseline (`lint-baseline.txt`).
//!
//! Debt is counted per `(rule, file)`, not per line, so unrelated edits
//! that shift line numbers do not invalidate the baseline. The linter
//! fails only when a count **exceeds** its entry — new violations are
//! rejected, pre-existing ones burn down monotonically (a shrunk count
//! is reported as stale so `--update-baseline` can ratchet it down).

use std::collections::BTreeMap;
use std::fmt;

use crate::{Diagnostic, Rule};

const HEADER: &str = "\
# fabric-lint baseline: pre-existing violations, counted per (rule, file).
# A normal run fails only when a (rule, file) count EXCEEDS its entry here;
# `--self-check` (the CI mode) also fails on STALE entries, so the ratchet
# is tight in both directions: fix code, then regenerate with
#   cargo run -p fabric-lint -- --update-baseline
# Never regenerate to admit NEW violations.
# An empty baseline means the workspace is debt-free under all 11 rules.
# format: <rule> <count> <path>";

/// Baseline counts keyed by `(rule name, file)`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<(String, String), usize>,
}

impl Baseline {
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    pub fn entries(&self) -> usize {
        self.counts.len()
    }

    pub fn get(&self, rule: Rule, file: &str) -> usize {
        self.counts
            .get(&(rule.name().to_string(), file.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Parse the checked-in format; unknown rules and malformed lines are
    /// hard errors so a corrupted baseline cannot silently admit debt.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (rule, count, path) = match (parts.next(), parts.next(), parts.next()) {
                (Some(r), Some(c), Some(p)) => (r, c, p),
                _ => {
                    return Err(format!(
                        "baseline line {}: expected `<rule> <count> <path>`",
                        i + 1
                    ))
                }
            };
            if Rule::from_name(rule).is_none() {
                return Err(format!("baseline line {}: unknown rule `{rule}`", i + 1));
            }
            let count: usize = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{count}`", i + 1))?;
            if count == 0 {
                return Err(format!(
                    "baseline line {}: zero-count entry should be deleted",
                    i + 1
                ));
            }
            if counts
                .insert((rule.to_string(), path.to_string()), count)
                .is_some()
            {
                return Err(format!(
                    "baseline line {}: duplicate entry for {rule} {path}",
                    i + 1
                ));
            }
        }
        Ok(Baseline { counts })
    }

    pub fn from_diagnostics(diags: &[Diagnostic]) -> Baseline {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for d in diags {
            *counts
                .entry((d.rule.name().to_string(), d.file.clone()))
                .or_insert(0) += 1;
        }
        Baseline { counts }
    }

    pub fn render(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        for ((rule, file), count) in &self.counts {
            out.push_str(&format!("{rule} {count} {file}\n"));
        }
        out
    }
}

/// One `(rule, file)` bucket whose current count differs from baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    pub rule: String,
    pub file: String,
    pub current: usize,
    pub baselined: usize,
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {} now, {} baselined",
            self.file, self.rule, self.current, self.baselined
        )
    }
}

/// Result of checking current diagnostics against the baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Diagnostics in buckets whose count exceeds the baseline. These
    /// fail the run. (The whole bucket is listed — line numbers cannot
    /// distinguish old debt from new within one file.)
    pub fresh: Vec<Diagnostic>,
    /// The buckets behind `fresh`.
    pub grown: Vec<Delta>,
    /// Buckets whose count shrank below (or vanished from) the baseline;
    /// informational, prompts a `--update-baseline` ratchet.
    pub stale: Vec<Delta>,
    /// Diagnostics covered by the baseline.
    pub suppressed: usize,
}

pub fn compare(diags: &[Diagnostic], base: &Baseline) -> Comparison {
    let current = Baseline::from_diagnostics(diags);
    let mut cmp = Comparison::default();
    for ((rule, file), &count) in &current.counts {
        let allowed = base
            .counts
            .get(&(rule.clone(), file.clone()))
            .copied()
            .unwrap_or(0);
        if count > allowed {
            cmp.grown.push(Delta {
                rule: rule.clone(),
                file: file.clone(),
                current: count,
                baselined: allowed,
            });
            cmp.fresh.extend(
                diags
                    .iter()
                    .filter(|d| d.rule.name() == rule && &d.file == file)
                    .cloned(),
            );
            cmp.suppressed += allowed;
        } else {
            cmp.suppressed += count;
        }
    }
    for ((rule, file), &allowed) in &base.counts {
        let count = current
            .counts
            .get(&(rule.clone(), file.clone()))
            .copied()
            .unwrap_or(0);
        if count < allowed {
            cmp.stale.push(Delta {
                rule: rule.clone(),
                file: file.clone(),
                current: count,
                baselined: allowed,
            });
        }
    }
    cmp.fresh.sort();
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: Rule, file: &str, line: usize) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            line,
            rule,
            message: "m".into(),
            excerpt: "e".into(),
        }
    }

    #[test]
    fn parse_render_roundtrip() {
        let diags = vec![
            diag(Rule::NoUnwrap, "crates/relmem/src/a.rs", 3),
            diag(Rule::NoUnwrap, "crates/relmem/src/a.rs", 9),
            diag(Rule::NarrowingCast, "crates/compress/src/lz.rs", 55),
        ];
        let b = Baseline::from_diagnostics(&diags);
        let text = b.render();
        let back = Baseline::parse(&text).unwrap();
        assert_eq!(b, back);
        assert_eq!(back.get(Rule::NoUnwrap, "crates/relmem/src/a.rs"), 2);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("no-unwrap two crates/a.rs").is_err());
        assert!(Baseline::parse("made-up-rule 2 crates/a.rs").is_err());
        assert!(Baseline::parse("no-unwrap 0 crates/a.rs").is_err());
        assert!(Baseline::parse("no-unwrap 1 a.rs\nno-unwrap 2 a.rs").is_err());
        assert!(Baseline::parse("# comment\n\nno-unwrap 1 a.rs").is_ok());
    }

    #[test]
    fn equal_counts_pass_excess_fails() {
        let old = vec![diag(Rule::NoUnwrap, "a.rs", 3)];
        let base = Baseline::from_diagnostics(&old);
        let same = compare(&old, &base);
        assert!(same.fresh.is_empty() && same.stale.is_empty());
        assert_eq!(same.suppressed, 1);

        let grown = vec![
            diag(Rule::NoUnwrap, "a.rs", 3),
            diag(Rule::NoUnwrap, "a.rs", 7),
        ];
        let cmp = compare(&grown, &base);
        assert_eq!(cmp.fresh.len(), 2);
        assert_eq!(cmp.grown.len(), 1);
        assert_eq!(cmp.grown[0].current, 2);
        assert_eq!(cmp.grown[0].baselined, 1);
    }

    #[test]
    fn shrunk_debt_is_stale_not_fatal() {
        let base = Baseline::from_diagnostics(&[
            diag(Rule::NoUnwrap, "a.rs", 3),
            diag(Rule::NoUnwrap, "a.rs", 5),
        ]);
        let cmp = compare(&[diag(Rule::NoUnwrap, "a.rs", 3)], &base);
        assert!(cmp.fresh.is_empty());
        assert_eq!(cmp.stale.len(), 1);
        assert_eq!(cmp.stale[0].current, 1);
        let cmp = compare(&[], &base);
        assert_eq!(cmp.stale[0].baselined, 2);
    }

    #[test]
    fn unbaselined_file_fails_immediately() {
        let cmp = compare(&[diag(Rule::NoExit, "b.rs", 1)], &Baseline::default());
        assert_eq!(cmp.fresh.len(), 1);
        assert_eq!(cmp.suppressed, 0);
    }
}
