//! `cargo run -p fabric-lint` — walk the workspace, diff against
//! `lint-baseline.txt`, exit non-zero on any NEW violation. With
//! `--self-check` (the CI mode) the analyzer first replays its fixture
//! corpus and then applies the baseline ratchet in both directions.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use fabric_lint::baseline::{compare, Baseline};

const USAGE: &str = "\
usage: fabric-lint [--root DIR] [--baseline FILE] [--update-baseline] [--list] [--self-check]

  --root DIR         workspace root to scan (default: current directory)
  --baseline FILE    baseline file (default: <root>/lint-baseline.txt)
  --update-baseline  rewrite the baseline from the current scan and exit
  --list             print every diagnostic, baselined or not
  --self-check       CI mode: replay the fixture corpus (exact expected
                     findings, all 11 rules covered) and fail on stale
                     baseline entries as well as new violations";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("fabric-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut update = false;
    let mut list = false;
    let mut self_check = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(args.next().ok_or("--root needs a value")?),
            "--baseline" => {
                baseline_path = Some(PathBuf::from(
                    args.next().ok_or("--baseline needs a value")?,
                ))
            }
            "--update-baseline" => update = true,
            "--list" => list = true,
            "--self-check" => self_check = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}").into()),
        }
    }
    if !root.join("crates").is_dir() {
        return Err(format!(
            "`{}` has no crates/ directory — run from the workspace root or pass --root",
            root.display()
        )
        .into());
    }

    if self_check {
        let report = fabric_lint::selfcheck::self_check(&root)?;
        for f in &report.failures {
            eprintln!("fabric-lint: self-check: {f}");
        }
        return if report.ok() {
            println!(
                "fabric-lint: self-check passed ({} fixtures, {} expected findings, \
                 baseline ratchet tight in both directions)",
                report.fixtures, report.expected_findings
            );
            Ok(ExitCode::SUCCESS)
        } else {
            eprintln!(
                "fabric-lint: self-check FAILED — {} problem(s)",
                report.failures.len()
            );
            Ok(ExitCode::FAILURE)
        };
    }

    let diags = fabric_lint::scan_workspace(&root)?;
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));

    if update {
        let base = Baseline::from_diagnostics(&diags);
        fs::write(&baseline_path, base.render())?;
        println!(
            "fabric-lint: wrote {} baseline entries ({} violations) to {}",
            base.entries(),
            diags.len(),
            baseline_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    if list {
        for d in &diags {
            println!("{d}");
        }
    }

    let base = if baseline_path.is_file() {
        Baseline::parse(&fs::read_to_string(&baseline_path)?)?
    } else {
        Baseline::default()
    };
    let cmp = compare(&diags, &base);

    if !list {
        for d in &cmp.fresh {
            println!("{d}");
        }
    }
    for delta in &cmp.grown {
        eprintln!("fabric-lint: over baseline — {delta}");
    }
    for delta in &cmp.stale {
        eprintln!("fabric-lint: note: debt shrank — {delta}; ratchet with --update-baseline");
    }

    if cmp.fresh.is_empty() {
        println!(
            "fabric-lint: clean ({} baselined violation(s) across {} entr{}, 0 new)",
            cmp.suppressed,
            base.entries(),
            if base.entries() == 1 { "y" } else { "ies" }
        );
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "fabric-lint: FAILED — {} violation(s) above baseline ({} baselined)",
            cmp.fresh.len(),
            cmp.suppressed
        );
        Ok(ExitCode::FAILURE)
    }
}
