//! `cargo run -p fabric-lint` — walk the workspace, diff against
//! `lint-baseline.txt`, exit non-zero on any NEW violation.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use fabric_lint::baseline::{compare, Baseline};

const USAGE: &str = "\
usage: fabric-lint [--root DIR] [--baseline FILE] [--update-baseline] [--list]

  --root DIR         workspace root to scan (default: current directory)
  --baseline FILE    baseline file (default: <root>/lint-baseline.txt)
  --update-baseline  rewrite the baseline from the current scan and exit
  --list             print every diagnostic, baselined or not";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("fabric-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut update = false;
    let mut list = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(args.next().ok_or("--root needs a value")?),
            "--baseline" => {
                baseline_path = Some(PathBuf::from(
                    args.next().ok_or("--baseline needs a value")?,
                ))
            }
            "--update-baseline" => update = true,
            "--list" => list = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}").into()),
        }
    }
    if !root.join("crates").is_dir() {
        return Err(format!(
            "`{}` has no crates/ directory — run from the workspace root or pass --root",
            root.display()
        )
        .into());
    }

    let diags = fabric_lint::scan_workspace(&root)?;
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));

    if update {
        let base = Baseline::from_diagnostics(&diags);
        fs::write(&baseline_path, base.render())?;
        println!(
            "fabric-lint: wrote {} baseline entries ({} violations) to {}",
            base.entries(),
            diags.len(),
            baseline_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    if list {
        for d in &diags {
            println!("{d}");
        }
    }

    let base = if baseline_path.is_file() {
        Baseline::parse(&fs::read_to_string(&baseline_path)?)?
    } else {
        Baseline::default()
    };
    let cmp = compare(&diags, &base);

    if !list {
        for d in &cmp.fresh {
            println!("{d}");
        }
    }
    for delta in &cmp.grown {
        eprintln!("fabric-lint: over baseline — {delta}");
    }
    for delta in &cmp.stale {
        eprintln!("fabric-lint: note: debt shrank — {delta}; ratchet with --update-baseline");
    }

    if cmp.fresh.is_empty() {
        println!(
            "fabric-lint: clean ({} baselined violation(s) across {} entr{}, 0 new)",
            cmp.suppressed,
            base.entries(),
            if base.entries() == 1 { "y" } else { "ies" }
        );
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "fabric-lint: FAILED — {} violation(s) above baseline ({} baselined)",
            cmp.fresh.len(),
            cmp.suppressed
        );
        Ok(ExitCode::FAILURE)
    }
}
