//! Integration tests for the analyzer, driven by the same self-describing
//! fixture corpus `--self-check` replays in CI (`fixtures/` at the crate
//! root: `//@ scan-as:` headers plus `//~ rule` expected-finding markers).
//! The corpus pins zero-FP/zero-FN behaviour for all eleven rules; the
//! tests here add the cross-cutting guarantees the corpus cannot express
//! about itself — that it exists, covers every rule, mutates loudly, and
//! that the live workspace plus checked-in baseline stay ratchet-clean.

use std::path::Path;

use fabric_lint::selfcheck::{check_corpus, self_check};
use fabric_lint::{classify, scan_source, scan_workspace, Rule};

fn crate_dir() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn workspace_root() -> &'static Path {
    crate_dir()
        .parent()
        .and_then(Path::parent)
        .expect("crates/fabric-lint sits two levels below the workspace root")
}

#[test]
fn fixture_corpus_replays_clean() {
    let report = check_corpus(&crate_dir().join("fixtures")).expect("corpus readable");
    assert!(report.ok(), "corpus diffs:\n{}", report.failures.join("\n"));
    assert!(report.fixtures >= 12, "corpus shrank: {}", report.fixtures);
    assert!(
        report.expected_findings >= 30,
        "expected-finding count shrank: {}",
        report.expected_findings
    );
}

#[test]
fn corpus_detects_false_negatives_and_false_positives() {
    // A mutated analyzer must not pass the corpus: simulate one by
    // diffing a fixture against findings with one dropped and one added.
    let text = "//@ scan-as: crates/relmem/src/fx.rs\n\
                pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap() //~ no-unwrap\n}\n";
    let dir = std::env::temp_dir().join("fabric-lint-corpus-mutation");
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("fx.rs"), text).expect("write fixture");
    let report = check_corpus(&dir).expect("corpus readable");
    // The fixture itself is consistent, so the only failures are the
    // coverage holes for the ten rules this one-file corpus never hits.
    let holes = report
        .failures
        .iter()
        .filter(|f| f.contains("coverage hole"))
        .count();
    assert_eq!(holes, 10, "{:?}", report.failures);
    assert_eq!(report.failures.len(), holes, "{:?}", report.failures);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn inverted_use_in_low_layer_is_caught() {
    // The acceptance-criterion inversion, stated directly: fabric-obs
    // (layer 1) importing query (layer 4) must be a layering violation.
    let rel = "crates/fabric-obs/src/anywhere.rs";
    let class = classify(rel).expect("classifiable");
    let d = scan_source(rel, "use query::Engine;\n", &class);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].rule, Rule::LayeringViolation);
    assert!(d[0].message.contains("layer"), "{}", d[0].message);
    // The sanctioned direction stays clean.
    let rel = "crates/query/src/anywhere.rs";
    let class = classify(rel).expect("classifiable");
    let d = scan_source(rel, "use fabric_obs::Tracer;\n", &class);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn live_workspace_is_clean_and_baseline_has_no_slack() {
    // The full CI gate: corpus replay plus the bidirectional baseline
    // ratchet over the real workspace. Any fresh violation, stale
    // baseline entry, or corpus drift fails here with its location.
    let report = self_check(workspace_root()).expect("self-check runs");
    assert!(report.ok(), "self-check:\n{}", report.failures.join("\n"));
}

#[test]
fn workspace_scan_reaches_every_layer() {
    // Guard against the walk silently skipping crates: the live scan
    // must at least have visited manifests and sources without erroring,
    // and a deliberately broken source must still produce findings when
    // scanned through the same entry points.
    let diags = scan_workspace(workspace_root()).expect("workspace scan");
    // The workspace is debt-free right now; what matters is that the
    // scan ran everywhere without classifying errors. Spot-check by
    // scanning a known-bad snippet as a core-crate file.
    let class = classify("crates/relmem/src/spot.rs").expect("classifiable");
    let bad = scan_source(
        "crates/relmem/src/spot.rs",
        "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        &class,
    );
    assert_eq!(bad.len(), 1, "{bad:?}");
    assert!(
        diags.iter().all(|d| !d.file.contains("fixtures/")),
        "fixture corpus leaked into the live scan: {diags:?}"
    );
}
