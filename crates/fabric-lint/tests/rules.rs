//! Fixture-based tests: one good/bad pair per rule family, driven through
//! the same `scan_source` entry point the binary uses. The fixtures live
//! under `tests/fixtures/` (excluded from the workspace walk and never
//! compiled) so each rule's positive and negative space is pinned down by
//! real files, not inline strings.

use std::path::Path;

use fabric_lint::baseline::{compare, Baseline};
use fabric_lint::{classify, scan_source, scan_workspace, Diagnostic, FileClass, Rule};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Pretend the fixture sits at a given workspace path so the real
/// classification logic decides which rules apply.
fn scan_as(name: &str, rel: &str) -> Vec<Diagnostic> {
    let class = classify(rel).unwrap_or_else(|| panic!("{rel} should be scannable"));
    scan_source(rel, &fixture(name), &class)
}

fn lines_of(diags: &[Diagnostic], rule: Rule) -> Vec<usize> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn no_unwrap_flags_all_four_tokens() {
    let d = scan_as("bad_unwrap.rs", "crates/relmem/src/fixture.rs");
    assert_eq!(lines_of(&d, Rule::NoUnwrap), vec![5, 6, 8, 10], "{d:?}");
    assert!(d.iter().any(|x| x.message.contains(".unwrap()")));
    assert!(d.iter().any(|x| x.message.contains("todo!")));
}

#[test]
fn no_unwrap_ignores_comments_strings_variants_and_tests() {
    let d = scan_as("good_unwrap.rs", "crates/relmem/src/fixture.rs");
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn no_unwrap_only_applies_to_core_crate_library_code() {
    // Same bad source, non-core crate: clean.
    assert!(scan_as("bad_unwrap.rs", "crates/workload/src/fixture.rs").is_empty());
    // Same bad source, core crate but binary/test target: clean.
    assert!(scan_as("bad_unwrap.rs", "crates/relmem/src/main.rs").is_empty());
    assert!(scan_as("bad_unwrap.rs", "crates/relmem/tests/fixture.rs").is_empty());
}

#[test]
fn undocumented_unsafe_flags_lib_and_test_code() {
    let d = scan_as("bad_unsafe.rs", "crates/workload/src/fixture.rs");
    assert_eq!(lines_of(&d, Rule::UndocumentedUnsafe), vec![5, 13], "{d:?}");
}

#[test]
fn safety_comment_satisfies_unsafe_rule() {
    let d = scan_as("good_unsafe.rs", "crates/workload/src/fixture.rs");
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn narrowing_cast_flags_hot_path_modules_only() {
    let d = scan_as("bad_cast.rs", "crates/compress/src/fixture.rs");
    assert_eq!(lines_of(&d, Rule::NarrowingCast), vec![5, 6, 7, 8], "{d:?}");
    let d = scan_as("bad_cast.rs", "crates/relmem/src/packer.rs");
    assert_eq!(lines_of(&d, Rule::NarrowingCast).len(), 4);
    // The same casts outside a hot path are legal.
    assert!(scan_as("bad_cast.rs", "crates/relmem/src/device.rs").is_empty());
}

#[test]
fn widening_and_try_from_pass_the_cast_rule() {
    let d = scan_as("good_cast.rs", "crates/compress/src/fixture.rs");
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn no_exit_flags_library_code_only() {
    let d = scan_as("bad_exit.rs", "crates/workload/src/fixture.rs");
    assert_eq!(lines_of(&d, Rule::NoExit), vec![5, 10], "{d:?}");
    // A binary entry point may exit.
    assert!(scan_as("bad_exit.rs", "crates/workload/src/main.rs").is_empty());
    assert!(scan_as("good_exit.rs", "crates/workload/src/fixture.rs").is_empty());
}

#[test]
fn ignored_result_flags_bare_discards_in_core_lib_code() {
    let d = scan_as("bad_ignored.rs", "crates/query/src/fixture.rs");
    assert_eq!(lines_of(&d, Rule::IgnoredResult), vec![6, 7, 8], "{d:?}");
    assert!(d.iter().any(|x| x.message.contains("let _ =")));
    assert!(d.iter().any(|x| x.message.contains(".ok()")));
}

#[test]
fn ignored_result_scope_and_negative_space() {
    // Non-core crate: out of scope.
    assert!(scan_as("bad_ignored.rs", "crates/workload/src/fixture.rs").is_empty());
    // Core crate, test target: out of scope.
    assert!(scan_as("bad_ignored.rs", "crates/query/tests/fixture.rs").is_empty());
    // Named placeholders, bound Options, patterns, comments, strings,
    // and `#[cfg(test)]` regions are all clean.
    let d = scan_as("good_ignored.rs", "crates/query/src/fixture.rs");
    assert!(lines_of(&d, Rule::IgnoredResult).is_empty(), "{d:?}");
}

#[test]
fn raw_stats_print_flags_hand_rolled_formatters_in_core_lib_code() {
    let d = scan_as("bad_stats_print.rs", "crates/relmem/src/fixture.rs");
    assert_eq!(lines_of(&d, Rule::RawStatsPrint), vec![6, 7, 8], "{d:?}");
    assert!(d.iter().any(|x| x.message.contains("record_into")));
}

#[test]
fn raw_stats_print_scope_and_negative_space() {
    // Non-core crate: out of scope.
    assert!(scan_as("bad_stats_print.rs", "crates/workload/src/fixture.rs").is_empty());
    // Core crate, binary/test target: out of scope.
    assert!(scan_as("bad_stats_print.rs", "crates/relmem/src/main.rs").is_empty());
    assert!(scan_as("bad_stats_print.rs", "crates/relmem/tests/fixture.rs").is_empty());
    // Registry routing, stats-free prints, writer-based rendering,
    // comments, strings, and test dumps are all clean.
    let d = scan_as("good_stats_print.rs", "crates/relmem/src/fixture.rs");
    assert!(lines_of(&d, Rule::RawStatsPrint).is_empty(), "{d:?}");
}

#[test]
fn adhoc_bench_output_flags_direct_results_writes() {
    let d = scan_as("bad_bench_output.rs", "crates/bench/src/bin/fixture.rs");
    assert_eq!(lines_of(&d, Rule::AdhocBenchOutput), vec![7, 8, 9], "{d:?}");
    assert!(d.iter().any(|x| x.message.contains("bench::harness")));
    // Tests are not exempt: an artifact written from test code dodges the
    // FABRIC_RESULTS_DIR redirect just the same.
    let d = scan_as("bad_bench_output.rs", "crates/bench/tests/fixture.rs");
    assert_eq!(lines_of(&d, Rule::AdhocBenchOutput).len(), 3, "{d:?}");
}

#[test]
fn adhoc_bench_output_exempts_harness_and_benign_mentions() {
    // The harness is the one sanctioned writer.
    let d = scan_as("bad_bench_output.rs", "crates/bench/src/harness.rs");
    assert!(lines_of(&d, Rule::AdhocBenchOutput).is_empty(), "{d:?}");
    // Comments, identifiers, similar literals, and harness-routed writes
    // stay clean.
    let d = scan_as("good_bench_output.rs", "crates/bench/src/bin/fixture.rs");
    assert!(lines_of(&d, Rule::AdhocBenchOutput).is_empty(), "{d:?}");
}

#[test]
fn diagnostics_render_file_line_rule() {
    let d = scan_as("bad_exit.rs", "crates/workload/src/fixture.rs");
    let shown = d[0].to_string();
    assert!(
        shown.starts_with("crates/workload/src/fixture.rs:5: [no-exit]"),
        "{shown}"
    );
}

/// The acceptance gate, in-process: at HEAD the workspace scan must be
/// fully covered by `lint-baseline.txt`, and injecting one fresh unwrap
/// into a core crate must fail the comparison.
#[test]
fn workspace_is_clean_against_baseline_and_fresh_unwrap_fails() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = scan_workspace(&root).expect("walk workspace");
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.txt"))
        .expect("lint-baseline.txt is checked in");
    let base = Baseline::parse(&baseline_text).expect("baseline parses");

    let cmp = compare(&diags, &base);
    let fresh: Vec<String> = cmp.fresh.iter().map(|d| d.to_string()).collect();
    assert!(
        fresh.is_empty(),
        "violations above baseline:\n{}",
        fresh.join("\n")
    );

    // Simulate a fresh `.unwrap()` landing in relmem's device module.
    let mut with_new = diags;
    let class = classify("crates/relmem/src/device.rs").unwrap();
    assert!(class.is_core && class.is_lib);
    with_new.extend(scan_source(
        "crates/relmem/src/device.rs",
        "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        &class,
    ));
    let cmp = compare(&with_new, &base);
    assert!(
        cmp.fresh
            .iter()
            .any(|d| d.rule == Rule::NoUnwrap && d.file == "crates/relmem/src/device.rs"),
        "fresh unwrap not caught: {:?}",
        cmp.grown
    );
}

/// fabric-lint holds itself to the no-exit rule: its library code is
/// classified and must never call `process::exit` (the binary may).
#[test]
fn linter_library_obeys_no_exit() {
    let class: FileClass = classify("crates/fabric-lint/src/lib.rs").unwrap();
    assert!(class.is_lib && !class.is_core && !class.is_hot);
    let src = fixture("../../src/lib.rs");
    let d = scan_source("crates/fabric-lint/src/lib.rs", &src, &class);
    assert!(lines_of(&d, Rule::NoExit).is_empty(), "{d:?}");
}
