//! Fixture: statistics routed through the metrics registry, prints that
//! carry no stats, and test-only dumps (clean for rule `raw-stats-print`).

pub struct RmStats { pub retries: u64 }

pub struct Registry;
impl Registry {
    pub fn counter_add(&mut self, _name: &str, _v: u64) {}
}

impl RmStats {
    // The sanctioned path: counters land in the registry, the snapshot
    // serializer renders them.
    pub fn record_into(&self, registry: &mut Registry, prefix: &str) {
        registry.counter_add(&format!("{prefix}.retries"), self.retries);
    }
}

pub fn f(rows: usize) {
    // Prints without stats context are not this rule's business.
    println!("processed {rows} rows");
    // Mentioning stats in a comment or a string is fine:
    // println!("{stats:?}");
    let _doc = "println!(\"format stats by hand\");";
}

// Rendering into a caller-supplied writer is legal (EXPLAIN-style text).
pub fn render(out: &mut String, stats: &RmStats) -> std::fmt::Result {
    use std::fmt::Write as _;
    writeln!(out, "retries: {}", stats.retries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_dump_stats() {
        let stats = RmStats { retries: 1 };
        println!("{}", stats.retries);
    }
}
