//! Fixture: `unsafe` without a SAFETY comment — rule `undocumented-unsafe`
//! must flag both sites, tests included. NOT compiled.

pub fn read_first(bytes: &[u8]) -> u64 {
    unsafe { core::ptr::read_unaligned(bytes.as_ptr() as *const u64) }
}

#[cfg(test)]
mod tests {
    #[test]
    fn also_checked_in_tests() {
        let v = [0u8; 8];
        let _ = unsafe { core::ptr::read_unaligned(v.as_ptr() as *const u64) };
    }
}
