//! Fixture: every panic-family token that rule `no-unwrap` must catch in
//! core-crate library code. NOT compiled — read by tests/rules.rs.

pub fn takes_shortcuts(x: Option<u64>, y: Result<u64, String>) -> u64 {
    let a = x.unwrap(); // line 5: .unwrap()
    let b = y.expect("always fine"); // line 6: .expect(
    if a > b {
        panic!("a exceeded b"); // line 8: panic!
    }
    todo!() // line 10: todo!
}
