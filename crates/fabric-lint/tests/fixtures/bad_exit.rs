//! Fixture: `process::exit` in library code — `no-exit` must flag both
//! spellings. NOT compiled.

pub fn bail(code: i32) -> ! {
    std::process::exit(code) // line 5
}

pub fn bail_imported(code: i32) -> ! {
    use std::process;
    process::exit(code) // line 10
}
