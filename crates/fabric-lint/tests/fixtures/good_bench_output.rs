//! Fixture: artifact output routed through `bench::harness`, plus benign
//! mentions of the results directory — a doc path like
//! "results/BENCH_x.json" in a comment, identifiers, similar literals.

pub fn dump(name: &str, json: &str) -> usize {
    // Baselines live under results/ — but only the harness names it.
    let path = harness_write(name, json);
    let results = path.len();
    let shown = format!("wrote {path} ({results} bytes)");
    shown.len() + read_from("my_results/scratch.json")
}

fn harness_write(name: &str, json: &str) -> String {
    format!("BENCH_{name}:{}", json.len())
}

fn read_from(tag: &str) -> usize {
    tag.len()
}
