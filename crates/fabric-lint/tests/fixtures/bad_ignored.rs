//! Fixture: silent `Result` discards (rule `ignored-result`).

fn fallible() -> Result<u32, String> { Ok(1) }

pub fn f() {
    let _ = fallible();
    fallible().ok();
    let _  = fallible();
}
