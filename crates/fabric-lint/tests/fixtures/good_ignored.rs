//! Fixture: fallible outcomes handled, named, or genuinely used (clean
//! for rule `ignored-result`).

fn fallible() -> Result<u32, String> { Ok(1) }

pub fn f() -> Result<u32, String> {
    // A named placeholder is a reviewed decision, not a silent drop.
    let _deliberately_ignored = fallible();
    // Binding the Option uses it.
    let maybe = fallible().ok();
    // Destructuring patterns with `_` components use the other parts.
    let (_, kept) = (fallible(), 2);
    // `?` propagates; comparison `==` is not an assignment to `_`.
    let v = fallible()?;
    if v == 1 {
        return Ok(kept + maybe.unwrap_or(0));
    }
    // Mentioning `let _ = x;` in a comment or "let _ = s.ok();" in a
    // string does not count.
    let s = "let _ = in_a_string().ok();";
    Ok(s.len() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_discard() {
        let _ = fallible();
        fallible().ok();
    }
}
