//! Fixture: narrowing `as` casts in a hot-path module — `narrowing-cast`
//! must flag all four. NOT compiled.

pub fn pack(len: usize, off: u64, code: u32) -> (u8, u16, i32, u32) {
    let a = len as u8; // line 5
    let b = off as u16; // line 6
    let c = (len + 1) as i32; // line 7
    let d = off as u32; // line 8
    (a, b, c, d)
}
