//! Fixture: documented `unsafe` — SAFETY on the same line or within the
//! three lines above satisfies `undocumented-unsafe`. NOT compiled.

pub fn read_first(bytes: &[u8]) -> u64 {
    // SAFETY: caller guarantees bytes.len() >= 8; read_unaligned has no
    // alignment requirement.
    unsafe { core::ptr::read_unaligned(bytes.as_ptr() as *const u64) }
}

pub fn read_second(bytes: &[u8]) -> u64 {
    unsafe { core::ptr::read_unaligned(bytes.as_ptr() as *const u64) } // SAFETY: same-line form
}

pub fn mentions_the_keyword() {
    // A comment discussing unsafe code is not an unsafe block.
    let description = "this string says unsafe";
    let _ = description;
}
