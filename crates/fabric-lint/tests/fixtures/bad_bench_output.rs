//! Fixture: ad-hoc writes into the checked-in results directory, dodging
//! the `bench::harness` FABRIC_RESULTS_DIR redirect.

use std::fs;

pub fn dump(trace: &str) {
    fs::create_dir_all("results").expect("mkdir");
    fs::write("results/TRACE_fixture.json", trace).expect("write");
    let path = format!("results/BENCH_{}.json", "fixture");
    std::fs::write(path, trace).expect("write");
}
