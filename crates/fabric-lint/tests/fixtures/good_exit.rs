//! Fixture: library code that surfaces errors instead of exiting; the
//! string/comment mentions must not count. NOT compiled.

/// Callers decide what to do on failure — never `process::exit` here.
pub fn bail(code: i32) -> Result<(), String> {
    Err(format!("would have called process::exit({code})"))
}
