//! Fixture: hand-rolled stats formatting (rule `raw-stats-print`).

pub struct RmStats { pub retries: u64 }

pub fn f(stats: &RmStats, rm_stats: &RmStats) -> String {
    println!("retries={}", stats.retries);
    eprintln!("{rm_stats:?}");
    format!("device did {} retries", rm_stats.retries)
}
