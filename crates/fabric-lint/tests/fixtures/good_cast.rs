//! Fixture: the sanctioned alternatives — widening `as`, `try_from`, and
//! narrow casts confined to `#[cfg(test)]`. NOT compiled.

pub fn pack(len: u8, off: u16) -> Result<(u64, usize, u8), core::num::TryFromIntError> {
    let wide = off as u64; // widening: allowed
    let idx = len as usize; // widening: allowed
    let narrow = u8::try_from(wide)?; // checked: allowed
    Ok((wide, idx, narrow))
}

#[cfg(test)]
mod tests {
    #[test]
    fn narrow_in_tests_is_tolerated() {
        let x = 300usize as u8;
        assert_eq!(x, 44);
    }
}
