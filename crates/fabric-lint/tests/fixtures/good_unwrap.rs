//! Fixture: code that mentions the panic family only in places the
//! `no-unwrap` rule must ignore: comments, strings, `_or` variants, and
//! `#[cfg(test)]` regions. NOT compiled — read by tests/rules.rs.

/// Never calls `.unwrap()` outside tests; see panic!() docs.
pub fn careful(x: Option<u64>) -> u64 {
    let msg = "do not panic!() or todo!() here";
    let _mentioned = msg;
    x.unwrap_or_default().max(x.unwrap_or(3))
}

#[cfg(test)]
mod tests {
    use super::careful;

    #[test]
    fn shortcuts_are_fine_in_tests() {
        let v: Option<u64> = Some(careful(Some(1)));
        assert_eq!(v.unwrap(), 1);
        let r: Result<u64, ()> = Ok(2);
        assert_eq!(r.expect("test"), 2);
    }
}
