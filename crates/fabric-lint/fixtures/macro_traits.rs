//@ scan-as: crates/relmem/src/fx_macro_traits.rs
//! Macro bodies and trait impls are ordinary token streams to the
//! analyzer: a violation inside them is real code waiting to expand.

macro_rules! bump {
    ($s:expr) => {
        $s.cpu_cycles += 1 //~ unattributed-charge
    };
}

pub trait Telemetry {
    fn snapshot(&self) -> u64;

    fn render(&self) -> String {
        format!("snap={}", self.snapshot())
    }
}

pub struct Packer;

impl Telemetry for Packer {
    fn snapshot(&self) -> u64 {
        head().unwrap() //~ no-unwrap
    }
}

fn head() -> Option<u64> {
    Some(1)
}
