//@ scan-as: crates/relmem/src/fx_core_errors.rs
//! Core-crate library scope: `no-unwrap`, `ignored-result`, `no-exit`.
//! The `#[cfg(test)]` module at the bottom shows the test-region waiver.

use fabric_types::Result;

pub fn lookup(xs: &[u64], i: usize) -> u64 {
    *xs.get(i).unwrap() //~ no-unwrap
}

pub fn explain(x: Option<u64>) -> u64 {
    x.expect("present") //~ no-unwrap
}

pub fn boom() {
    panic!("bad geometry"); //~ no-unwrap
}

pub fn still_todo() {
    todo!(); //~ no-unwrap
}

pub fn drop_result(r: Result<()>) {
    let _ = r; //~ ignored-result
}

pub fn fire_and_forget() {
    retry().ok(); //~ ignored-result
}

pub fn bind_is_fine() -> Option<()> {
    let kept = retry().ok();
    kept
}

pub fn return_is_fine() -> Option<()> {
    return retry().ok();
}

pub fn bail() {
    std::process::exit(2); //~ no-exit
}

fn retry() -> Result<()> {
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        super::retry().unwrap();
        let _ = super::retry();
    }
}
