//@ scan-as: crates/mvcc/src/fx_stats_print.rs
//! `raw-stats-print`: ad-hoc stringification of counter structs in a
//! core-crate library, as a positional argument or an inline capture.
//! `write!`/`writeln!` into a caller-supplied writer stay legal.

pub fn dump(stats: &MemStats) {
    println!("l1={} l2={}", stats.l1_hits, stats.l2_hits); //~ raw-stats-print
}

pub fn capture(txn_stats: &TxnStats) -> String {
    format!("{txn_stats:?}") //~ raw-stats-print
}

pub fn render_into(out: &mut String, stats: &MemStats) {
    use std::fmt::Write as _;
    let rendered = writeln!(out, "l1={}", stats.l1_hits);
    drop(rendered);
}

pub fn plain_prints_are_fine(rows: usize) {
    println!("{rows} rows");
}
