//@ scan-as: crates/workload/src/fx_entry.rs
//! `deprecated-entry-point` token shapes: qualified calls, the bare
//! resilient shims, and the lookalikes that must stay clean.

pub fn drives_old_api(m: &mut M, c: &C, b: &B) {
    query::execute(m, c, b); //~ deprecated-entry-point
    sql::run(m, c, "select 1"); //~ deprecated-entry-point
    execute_resilient(m, c, b); //~ deprecated-entry-point
}

pub fn qualified_counts_once(m: &mut M, c: &C, b: &B, p: P) {
    query::execute_on(m, c, b, p); //~ deprecated-entry-point
}

pub fn replacements_are_clean(session: &mut Session, prepared: &P, path: Path) {
    session.execute_on(prepared, path);
    execute_on_impl(prepared);
    my_query::execute(prepared);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_drivers_must_migrate_too() {
        query::execute(m, c, b); //~ deprecated-entry-point
    }
}
