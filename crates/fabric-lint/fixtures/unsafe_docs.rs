//@ scan-as: crates/colstore/src/fx_unsafe.rs
//! `undocumented-unsafe` applies everywhere — tests included — and is
//! satisfied by a `SAFETY:` line or block comment within three lines.

pub fn documented(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}

pub fn documented_by_block(p: *const u8) -> u8 {
    /* SAFETY: caller guarantees `p` is valid
       for reads across this whole block. */
    unsafe { *p }
}

pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p } //~ undocumented-unsafe
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_are_not_exempt() {
        let x = 7u8;
        let y = unsafe { *(&x as *const u8) }; //~ undocumented-unsafe
        assert_eq!(y, 7);
    }
}
