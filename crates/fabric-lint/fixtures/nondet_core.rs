//@ scan-as: crates/query/src/fx_nondet.rs
//! `nondeterministic-core` in a result-affecting library: hash-order
//! containers, wall-clock reads, and un-allowlisted env reads.

use std::collections::HashMap; //~ nondeterministic-core

pub fn hash_order(m: HashMap<u64, u64>, s: HashSet<u64>) -> usize { //~ nondeterministic-core nondeterministic-core
    m.len() + s.len()
}

pub fn wall_clock() -> u128 {
    let t = std::time::Instant::now(); //~ nondeterministic-core
    t.elapsed().as_nanos()
}

pub fn bare_clock() -> Instant {
    Instant::now() //~ nondeterministic-core
}

pub fn env_reads() -> (Option<String>, Option<String>) {
    let seed = std::env::var("FABRIC_CHAOS_SEED").ok();
    let home = std::env::var("HOME").ok(); //~ nondeterministic-core
    (seed, home)
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing_in_tests_is_fine() {
        let started = Instant::now();
        assert!(started.elapsed().as_nanos() < u128::MAX);
    }
}
