//@ scan-as: crates/relmem/src/fx_lexer_torture.rs
//! The old line-scanner's nemesis cases: violations spelled inside raw
//! strings, nested block comments, byte strings, and char literals must
//! all stay silent — and real code *after* them must still be seen.

pub fn strings() -> usize {
    let plain = ".unwrap() and panic! live here";
    let raw = r#"s.cpu_cycles += 4; HashMap::new(); "results/x.json""#;
    let nested = r##"outer r#"inner"# is still one token"##;
    let bytes = b"QueryExecutor::new(&v, path)";
    let byte_raw = br#"std::process::exit(1)"#;
    plain.len() + raw.len() + nested.len() + bytes.len() + byte_raw.len()
}

/* block comments nest in Rust:
   /* OpCache::default() and Scratchpad::new() */
   s.cpu_cycles += 4; and this is still inside the outer comment
*/

pub fn lifetimes_vs_chars<'a>(x: &'a [u8]) -> (char, u8) {
    let c = 'q';
    let esc = '\'';
    // `as u8` is legal here: this file is not a hot-path module.
    (c, x[0] + esc as u8)
}

pub fn resynchronized_after_all_of_that(x: Option<u64>) -> u64 {
    x.unwrap() //~ no-unwrap
}
