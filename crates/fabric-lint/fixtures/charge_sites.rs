//@ scan-as: crates/fabric-sim/src/fx_charge.rs
//! `unattributed-charge`: MemStats counters mutate only at the charge
//! sites. Reads/comparisons and non-counter fields are fine; `==` is its
//! own token, so it can never look like an assignment.

pub fn rogue_charge(stats: &mut MemStats) {
    stats.cpu_cycles += 4; //~ unattributed-charge
    stats.bytes_read = 128; //~ unattributed-charge
    stats.stall_dram_cycles <<= 1; //~ unattributed-charge
}

pub fn reads_are_fine(a: &MemStats, b: &MemStats) -> bool {
    a.cpu_cycles == b.cpu_cycles && a.l1_hits > b.l1_hits
}

pub fn other_fields_are_fine(q: &mut QueryStats) {
    q.rows_emitted += 1;
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_fabricate_counters() {
        let mut s = MemStats::default();
        s.cpu_cycles = 99;
        assert_eq!(s.cpu_cycles, 99);
    }
}
