//@ scan-as: crates/query/src/fx_querylog.rs
//! The query-log and calibration ledger live in the observability layer
//! (layer 1): any higher crate — here the query engine — may import
//! `fabric_obs::querylog` and `fabric_obs::calib` downward to record
//! envelopes and observations. Reaching further up (the workload crate
//! sits above query) is still an inversion.

use fabric_obs::calib::CalibLedger;
use fabric_obs::querylog::{QueryLog, QueryRecord};
use workload::Lineitem; //~ layering-violation

pub fn record(log: &mut QueryLog, ledger: &mut CalibLedger, r: QueryRecord) -> u64 {
    let entry = ledger.observe("lineitem/0/row", 0.0, 0.0);
    log.push(r) + entry.runs
}
