//@ scan-as: crates/compress/src/fx_casts.rs
//! `narrowing-cast` in a hot-path module: truncating `as` is flagged,
//! widening and checked conversions are not, tests are out of scope.

pub fn truncates(v: u64) -> u8 {
    (v & 0x7F) as u8 //~ narrowing-cast
}

pub fn truncates_signed(v: i64) -> i32 {
    v as i32 //~ narrowing-cast
}

pub fn widens(v: u32) -> u64 {
    v as u64
}

pub fn checked(v: u64) -> Option<u16> {
    u16::try_from(v).ok()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_cast() {
        assert_eq!(super::truncates(0x17F), 0x17F as u8);
    }
}
