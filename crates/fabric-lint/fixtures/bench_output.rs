//@ scan-as: crates/workload/src/fx_results.rs
//! `adhoc-bench-output`: string literals naming the artifact directory,
//! including raw strings; comments and lookalike paths stay clean.

pub fn hardcoded_artifact() {
    let ignored = std::fs::write("results/q1.json", b"{}"); //~ adhoc-bench-output
    drop(ignored);
}

pub fn hardcoded_raw_dir() -> &'static str {
    r"results/traces" //~ adhoc-bench-output
}

pub fn lookalikes_are_clean() -> (&'static str, &'static str) {
    // artifacts land in "results/BENCH_x.json" — a comment, not code
    ("my_results/x.json", "results_dir")
}
