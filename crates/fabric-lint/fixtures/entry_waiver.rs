//@ scan-as: crates/workload/src/fx_entry_waiver.rs
//! A file-level `#![allow(deprecated)]` — the waiver rustc itself
//! requires of a deliberate caller — silences `deprecated-entry-point`.
#![allow(deprecated)]

pub fn deliberate_legacy_driver(m: &mut M, c: &C, b: &B) {
    query::execute(m, c, b);
}
