//@ scan-as: crates/durability/src/fx_profile.rs
//! The profiler sits in the observability layer: a layer-3 storage crate
//! may import `fabric_obs::profile` (downward) to wrap its recorder, but
//! still may not reach up into the query engine to label samples.

use fabric_obs::profile::SamplingProfiler;
use fabric_obs::RingRecorder;
use fabric_sim::Cycles;
use query::Engine; //~ layering-violation

pub fn profiled_recorder(period: Cycles) -> SamplingProfiler {
    SamplingProfiler::wrapping(Box::new(RingRecorder::new(1 << 12)), period)
}
