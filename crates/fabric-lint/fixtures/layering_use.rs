//@ scan-as: crates/fabric-obs/src/fx_layering.rs
//! The acceptance-criterion inversion: the observability layer reaching
//! *up* into the query engine. Downward and std imports stay clean, and
//! `use` declarations inside test modules are checked too — a test still
//! compiles against its crate's dependency set.

use query::Engine; //~ layering-violation
use fabric_types::Value;
use std::fmt::Write as _;

pub fn render(v: Value) -> String {
    let mut s = String::new();
    let done = write!(s, "{v:?}");
    drop(done);
    s
}

#[cfg(test)]
mod tests {
    use workload::Suite; //~ layering-violation
}
