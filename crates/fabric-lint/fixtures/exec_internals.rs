//@ scan-as: crates/workload/src/fx_exec_internals.rs
//! `exec-internals` token shapes: constructor calls on the staged
//! executor's internals, qualified or not, and the lookalikes and
//! stats-read patterns that must stay clean.

pub fn builds_operators_by_hand(v: &V, path: P) {
    let ex = QueryExecutor::new(v, path); //~ exec-internals
    let cache = OpCache::default(); //~ exec-internals
    let scratch = query::exec::Scratchpad::new(); //~ exec-internals
    drop((ex, cache, scratch));
}

pub fn engine_surface_is_clean(engine: &Engine, cache: &OpCache) -> (u64, u64) {
    // Observing the cache through the engine is the supported surface.
    let _ = engine.op_cache_stats();
    cache.stats()
}

pub fn lookalikes_are_clean() {
    let c = MyConsumer::new();
    let n = OpNodeish::default();
    drop((c, n));
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_drivers_obey_the_boundary_too() {
        let ex = QueryExecutor::new(v, p); //~ exec-internals
        drop(ex);
    }
}
