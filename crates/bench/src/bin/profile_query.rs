//! Profile the query pipeline with the cycle-domain sampling profiler
//! (DESIGN.md §15) and export a collapsed-stack (`.folded`) file that
//! flamegraph tooling renders directly.
//!
//! A `SamplingProfiler` wraps a `RingRecorder`, so one run yields both a
//! Chrome trace and a folded profile: every N simulated cycles the open
//! span stack is sampled into a folded-stack accumulator. Three query
//! classes (q1 grouped aggregate, q6 global aggregate, plain scan) run in
//! separate sessions, so the bench envelope also carries the per-class
//! p50/p99 latency gauges and per-session scoped counters.
//!
//! Render with `inferno-flamegraph results/PROFILE_query.folded` or any
//! `flamegraph.pl`-compatible tool.
//!
//! Usage: `profile_query [--rows N] [--period CYCLES] [--reps R]`

use bench::arg_usize;
use colstore::ColTable;
use fabric_sim::{validate_chrome_trace, RingRecorder, SamplingProfiler, SimConfig};
use fabric_types::{ColumnType, Schema, Value};
use query::Engine;
use rowstore::RowTable;

fn main() {
    let args = bench::harness::cli_args();
    let rows = arg_usize(&args, "--rows", 4096);
    let period = arg_usize(&args, "--period", 512).max(1) as u64;
    let reps = arg_usize(&args, "--reps", 8);

    let mut engine = Engine::new(SimConfig::zynq_a53());
    let schema = Schema::from_pairs(&[
        ("grp", ColumnType::FixedStr(1)),
        ("c1", ColumnType::I64),
        ("c2", ColumnType::I64),
    ]);
    eprintln!("# loading {rows} rows (grp + 2 x i64)...");
    let mut rt = RowTable::create(engine.mem(), schema.clone(), rows).expect("create rows");
    let mut ct = ColTable::create(engine.mem(), schema, rows).expect("create cols");
    let groups = [b"a", b"b", b"c", b"d"];
    for i in 0..rows as i64 {
        let g = groups[(i % 4) as usize];
        let row = vec![
            Value::Str(String::from_utf8_lossy(g).into_owned()),
            Value::I64(i),
            Value::I64(i * 7 % 1000),
        ];
        rt.load(engine.mem(), &row).expect("load rows");
        ct.load(engine.mem(), &row).expect("load cols");
    }
    engine.register("t", rt, ct);

    // Arm the profiler over a ring recorder: the same run produces a
    // Chrome trace AND a folded profile of the open-span stack.
    engine
        .mem()
        .set_recorder(Box::new(SamplingProfiler::wrapping(
            Box::new(RingRecorder::new(1 << 16)),
            period,
        )));

    let shapes: [(&str, &str); 3] = [
        ("q1", "SELECT grp, count(*), sum(c2) FROM t GROUP BY grp"),
        ("q6", "SELECT sum(c2) FROM t WHERE c1 < 2048"),
        ("scan", "SELECT grp, c1 FROM t WHERE c1 >= 0"),
    ];
    for (class, sql) in shapes {
        // One session per class: scoped `session.<id>.*` metrics separate
        // the classes in the exported envelope.
        let mut session = engine.session();
        let mut last_ns = 0.0;
        for _ in 0..reps.max(1) {
            let out = session.run(sql).expect("execute");
            last_ns = out.ns;
        }
        eprintln!("# {class}: {reps} reps, last {}", bench::fmt_ns(last_ns));
    }

    let folded = engine
        .mem()
        .export_folded()
        .expect("sampling profiler exports folded stacks");
    let stats = engine
        .mem()
        .profile_stats()
        .expect("sampling profiler reports stats");
    assert!(!folded.is_empty(), "profile must contain samples");
    // Reconciliation: the sample count must account for exactly the
    // cycles the profiler observed, one sample per period.
    assert_eq!(
        stats.samples,
        (stats.end - stats.start) / stats.period,
        "sample total must reconcile with elapsed cycles"
    );
    let trace = engine
        .mem()
        .export_trace()
        .expect("inner ring recorder exports a trace");
    validate_chrome_trace(&trace).expect("trace must be structurally valid");

    let reg = engine.mem().metrics_mut();
    reg.counter_add("profile.samples", stats.samples);
    reg.counter_add("profile.period_cycles", stats.period);
    reg.gauge_set(
        "profile.observed_cycles",
        stats.end.saturating_sub(stats.start) as f64,
    );

    let path = bench::harness::write_artifact("PROFILE_query.folded", &folded)
        .expect("write folded profile");

    println!("Profiled q1/q6/scan under a {period}-cycle sampling period:");
    println!(
        "  {} samples over {} observed cycles, {} distinct stacks",
        stats.samples,
        stats.end.saturating_sub(stats.start),
        folded.lines().count()
    );
    println!(
        "  wrote {} — render with a flamegraph.pl-compatible tool",
        path.display()
    );
    bench::emit_bench_json("profile_query", engine.mem_ref().metrics());
}
