//! Ablation of paper §III-A's indexing claim: with a Relational Fabric,
//! *"indexes will mostly be useful for workloads with point queries and
//! updates, since range queries can be very efficiently evaluated with
//! column-group accesses."*
//!
//! Point query: index probe ≫ any scan (index keeps its job).
//! Range sum: the ordered index pays a random base-row access per match,
//! while the fabric streams the column group — the fabric takes over as
//! the range widens.
//!
//! Usage: `abl_index [--rows N]`

use bench::{arg_usize, fmt_ns, render_table};
use fabric_sim::{MemoryHierarchy, SimConfig};
use fabric_types::{CmpOp, ColumnPredicate, ColumnType, Predicate, Schema, Value};
use relmem::{EphemeralColumns, RmConfig};
use rowstore::{HashIndex, OrderedIndex, RowTable};

fn main() {
    let args = bench::harness::cli_args();
    let rows = arg_usize(&args, "--rows", 1 << 20);

    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    let schema = Schema::from_pairs(&[
        ("key", ColumnType::I64),
        ("a", ColumnType::I64),
        ("b", ColumnType::I64),
        ("c", ColumnType::I64),
    ]);
    let mut t = RowTable::create(&mut mem, schema, rows).expect("create");
    eprintln!("# loading {rows} rows...");
    for i in 0..rows as i64 {
        // key is a permutation so point lookups hit exactly one row.
        let key = (i * 2_654_435_761i64) % rows as i64;
        let key = if key < 0 { key + rows as i64 } else { key };
        t.load(
            &mut mem,
            &[
                Value::I64(key),
                Value::I64(i),
                Value::I64(i % 97),
                Value::I64(1),
            ],
        )
        .expect("load");
    }
    let hash = HashIndex::build(&mut mem, &t, 0).expect("hash index");
    let ordered = OrderedIndex::build(&mut mem, &t, 0).expect("ordered index");

    // ---- Point query: index vs RM-with-device-selection vs full scan.
    let key = (rows as i64) / 3;
    mem.flush_caches();
    let t0 = mem.now();
    let hits = hash.probe(&mut mem, &t, key).expect("probe");
    let probe_ns = mem.ns_since(t0);
    assert_eq!(hits.len(), 1);

    mem.flush_caches();
    let t0 = mem.now();
    let pred = Predicate::always_true().and(ColumnPredicate::new(
        t.layout().field(0).unwrap(),
        CmpOp::Eq,
        Value::I64(key),
    ));
    let g = t.geometry(&[1]).unwrap().with_predicate(pred);
    let mut eph = EphemeralColumns::configure(&mut mem, RmConfig::prototype(), g).unwrap();
    let mut found = 0;
    while let Some(b) = eph.next_batch(&mut mem) {
        found += b.len();
    }
    let rm_ns = mem.ns_since(t0);
    assert_eq!(found, 1);

    let m = mem.metrics_mut();
    m.gauge_set("index.point.probe_ns", probe_ns);
    m.gauge_set("index.point.rm_scan_ns", rm_ns);
    m.gauge_set("index.point.index_advantage", rm_ns / probe_ns.max(1.0));

    println!("Point query (1 of {rows} rows):");
    println!(
        "{}",
        render_table(
            &["plan", "time"],
            &[
                vec!["hash index probe".into(), fmt_ns(probe_ns)],
                vec!["RM scan (device filter)".into(), fmt_ns(rm_ns)],
                vec![
                    "index advantage".into(),
                    format!("{:.0}x", rm_ns / probe_ns.max(1.0))
                ],
            ]
        )
    );

    // ---- Range sum: ordered index vs RM column-group access.
    let mut out = Vec::new();
    for frac in [0.001f64, 0.01, 0.1, 0.5] {
        let span = (rows as f64 * frac) as i64;
        let (lo, hi) = (1000i64, 1000 + span);

        mem.flush_caches();
        let t0 = mem.now();
        let (idx_sum, n) = ordered
            .range_sum(&mut mem, &t, lo, hi, 1)
            .expect("range_sum");
        let idx_ns = mem.ns_since(t0);

        mem.flush_caches();
        let t0 = mem.now();
        let pred = Predicate::new(vec![
            ColumnPredicate::new(t.layout().field(0).unwrap(), CmpOp::Ge, Value::I64(lo)),
            ColumnPredicate::new(t.layout().field(0).unwrap(), CmpOp::Lt, Value::I64(hi)),
        ]);
        let g = t.geometry(&[1]).unwrap().with_predicate(pred);
        let mut eph = EphemeralColumns::configure(&mut mem, RmConfig::prototype(), g).unwrap();
        let costs = mem.costs();
        let mut rm_sum = 0.0;
        let mut rm_n = 0usize;
        while let Some(b) = eph.next_batch(&mut mem) {
            for r in 0..b.len() {
                mem.cpu(costs.vector_elem + costs.f64_op);
                rm_sum += b.i64_at(r, 0) as f64;
            }
            rm_n += b.len();
        }
        let rm_ns = mem.ns_since(t0);
        assert_eq!((idx_sum, n), (rm_sum, rm_n), "plans disagree at {frac}");

        let m = mem.metrics_mut();
        m.gauge_set(&format!("index.range_{frac:.3}.ordered_ns"), idx_ns);
        m.gauge_set(&format!("index.range_{frac:.3}.rm_group_ns"), rm_ns);

        out.push(vec![
            format!("{:.1}%", frac * 100.0),
            format!("{n}"),
            fmt_ns(idx_ns),
            fmt_ns(rm_ns),
            if rm_ns < idx_ns {
                format!("RM {:.1}x", idx_ns / rm_ns)
            } else {
                format!("index {:.1}x", rm_ns / idx_ns)
            },
        ]);
    }
    println!("Range sum over the key column:");
    println!(
        "{}",
        render_table(
            &[
                "range",
                "matches",
                "ordered index",
                "RM column group",
                "winner"
            ],
            &out
        )
    );
    let stats = mem.stats();
    stats.record_into(mem.metrics_mut(), "mem");
    bench::emit_bench_json("abl_index", mem.metrics());
}
