//! Regenerates **Fig. 7**: TPC-H Q1 (7a) and Q6 (7b) execution time for
//! ROW / COL / RM while the data size varies, with the x-axis expressed as
//! the target-column-group size (the paper's convention: 2–128 MB of
//! target columns, i.e. tables from ~9 MB to ~700 MB).
//!
//! Paper claims to reproduce (shape):
//! * 7a (Q1) — all three layouts land close together: the eight grouped
//!   aggregates dominate, so layout matters little;
//! * 7b (Q6) — RM is fastest at every size (single packed stream of the
//!   four touched columns); ROW is slowest (ships whole 152-byte rows);
//!   the column engine sits between.
//!
//! Usage: `fig7_tpch [q1|q6|both] [--max-target M] [--csv]` where targets
//! double from 2 MiB up to `--max-target` (default 32; 128 reproduces the
//! paper's largest size but takes correspondingly longer to simulate).

use bench::{arg_usize, fmt_ns, render_table};
use fabric_sim::{MemoryHierarchy, SimConfig};
use relmem::RmConfig;
use workload::queries;
use workload::Lineitem;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0)
}

fn run_query(which: &str, max_target: usize, csv: bool) {
    let mut targets = vec![2usize];
    while *targets.last().unwrap() < max_target {
        let next = targets.last().unwrap() * 2;
        targets.push(next);
    }

    let mut out_rows = Vec::new();
    let mut reg = fabric_sim::MetricsRegistry::new();
    if csv {
        println!("query,target_mib,table_mib,row_ns,col_ns,rm_ns");
    }
    for &t in &targets {
        let rows = if which == "q1" {
            Lineitem::rows_for_q1_target(t)
        } else {
            Lineitem::rows_for_q6_target(t)
        };
        let table_mib = rows * Lineitem::row_width() / (1024 * 1024);
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        eprintln!("# {which}: target {t} MiB -> {rows} rows ({table_mib} MiB table)");
        let li = Lineitem::generate(&mut mem, rows, 0xF1_7 + t as u64).expect("generate");

        let (row, col, rm) = if which == "q1" {
            (
                queries::q1_row(&mut mem, &li).expect("q1 row"),
                queries::q1_col(&mut mem, &li).expect("q1 col"),
                queries::q1_rm(&mut mem, &li, RmConfig::prototype()).expect("q1 rm"),
            )
        } else {
            (
                queries::q6_row(&mut mem, &li).expect("q6 row"),
                queries::q6_col(&mut mem, &li).expect("q6 col"),
                queries::q6_rm(&mut mem, &li, RmConfig::prototype()).expect("q6 rm"),
            )
        };
        assert!(
            close(row.checksum, col.checksum),
            "engines disagree at {t} MiB"
        );
        assert!(
            close(row.checksum, rm.checksum),
            "engines disagree at {t} MiB"
        );

        reg.gauge_set(&format!("fig7.{which}.t{t:03}.row_ns"), row.ns);
        reg.gauge_set(&format!("fig7.{which}.t{t:03}.col_ns"), col.ns);
        reg.gauge_set(&format!("fig7.{which}.t{t:03}.rm_ns"), rm.ns);
        reg.counter_add(&format!("fig7.{which}.targets"), 1);
        let stats = mem.stats();
        stats.record_into(&mut reg, &format!("fig7.{which}.t{t:03}.mem"));
        if csv {
            println!(
                "{which},{t},{table_mib},{:.0},{:.0},{:.0}",
                row.ns, col.ns, rm.ns
            );
        }
        out_rows.push(vec![
            format!("{t}"),
            format!("{table_mib}"),
            fmt_ns(row.ns),
            fmt_ns(col.ns),
            fmt_ns(rm.ns),
            format!("{:.2}x", row.ns / rm.ns),
            format!("{:.2}x", col.ns / rm.ns),
        ]);
    }
    if !csv {
        println!(
            "Fig. 7{} — TPC-H {} execution time vs data size",
            if which == "q1" { "a" } else { "b" },
            which.to_uppercase()
        );
        println!(
            "{}",
            render_table(
                &[
                    "target_MiB",
                    "table_MiB",
                    "ROW",
                    "COL",
                    "RM",
                    "RMvsROW",
                    "RMvsCOL"
                ],
                &out_rows
            )
        );
    }
    bench::emit_bench_json(&format!("fig7_tpch_{which}"), &reg);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("both");
    let max_target = arg_usize(&args, "--max-target", 32);
    let csv = args.iter().any(|a| a == "--csv");
    if which == "q1" || which == "both" {
        run_query("q1", max_target, csv);
    }
    if which == "q6" || which == "both" {
        run_query("q6", max_target, csv);
    }
}
