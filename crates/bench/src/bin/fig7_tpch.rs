//! Regenerates **Fig. 7**: TPC-H Q1 (7a) and Q6 (7b) execution time for
//! ROW / COL / RM while the data size varies, with the x-axis expressed as
//! the target-column-group size (the paper's convention: 2–128 MB of
//! target columns, i.e. tables from ~9 MB to ~700 MB).
//!
//! Paper claims to reproduce (shape):
//! * 7a (Q1) — all three layouts land close together: the eight grouped
//!   aggregates dominate, so layout matters little;
//! * 7b (Q6) — RM is fastest at every size (single packed stream of the
//!   four touched columns); ROW is slowest (ships whole 152-byte rows);
//!   the column engine sits between.
//!
//! Usage: `fig7_tpch [q1|q6|both] [--max-target M] [--csv] [--cores N]`
//! where targets double from 2 MiB up to `--max-target` (default 32; 128
//! reproduces the paper's largest size but takes correspondingly longer to
//! simulate). With `--cores N` (N > 1) an extra section re-runs Q1 and Q6
//! through the SQL session API on every access path at 1 vs N simulated
//! cores, asserting bit-identical answers and reporting the morsel-driven
//! speedup.

use bench::{arg_usize, fmt_ns, render_table};
use fabric_sim::{MemoryHierarchy, SimConfig};
use query::{AccessPath, Engine};
use relmem::RmConfig;
use workload::queries;
use workload::Lineitem;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0)
}

fn run_query(which: &str, max_target: usize, csv: bool) {
    let mut targets = vec![2usize];
    while *targets.last().unwrap() < max_target {
        let next = targets.last().unwrap() * 2;
        targets.push(next);
    }

    let mut out_rows = Vec::new();
    let mut reg = fabric_sim::MetricsRegistry::new();
    if csv {
        println!("query,target_mib,table_mib,row_ns,col_ns,rm_ns");
    }
    for &t in &targets {
        let rows = if which == "q1" {
            Lineitem::rows_for_q1_target(t)
        } else {
            Lineitem::rows_for_q6_target(t)
        };
        let table_mib = rows * Lineitem::row_width() / (1024 * 1024);
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        eprintln!("# {which}: target {t} MiB -> {rows} rows ({table_mib} MiB table)");
        let li = Lineitem::generate(&mut mem, rows, 0xF1_7 + t as u64).expect("generate");

        let (row, col, rm) = if which == "q1" {
            (
                queries::q1_row(&mut mem, &li).expect("q1 row"),
                queries::q1_col(&mut mem, &li).expect("q1 col"),
                queries::q1_rm(&mut mem, &li, RmConfig::prototype()).expect("q1 rm"),
            )
        } else {
            (
                queries::q6_row(&mut mem, &li).expect("q6 row"),
                queries::q6_col(&mut mem, &li).expect("q6 col"),
                queries::q6_rm(&mut mem, &li, RmConfig::prototype()).expect("q6 rm"),
            )
        };
        assert!(
            close(row.checksum, col.checksum),
            "engines disagree at {t} MiB"
        );
        assert!(
            close(row.checksum, rm.checksum),
            "engines disagree at {t} MiB"
        );

        reg.gauge_set(&format!("fig7.{which}.t{t:03}.row_ns"), row.ns);
        reg.gauge_set(&format!("fig7.{which}.t{t:03}.col_ns"), col.ns);
        reg.gauge_set(&format!("fig7.{which}.t{t:03}.rm_ns"), rm.ns);
        reg.counter_add(&format!("fig7.{which}.targets"), 1);
        let stats = mem.stats();
        stats.record_into(&mut reg, &format!("fig7.{which}.t{t:03}.mem"));
        if csv {
            println!(
                "{which},{t},{table_mib},{:.0},{:.0},{:.0}",
                row.ns, col.ns, rm.ns
            );
        }
        out_rows.push(vec![
            format!("{t}"),
            format!("{table_mib}"),
            fmt_ns(row.ns),
            fmt_ns(col.ns),
            fmt_ns(rm.ns),
            format!("{:.2}x", row.ns / rm.ns),
            format!("{:.2}x", col.ns / rm.ns),
        ]);
    }
    if !csv {
        println!(
            "Fig. 7{} — TPC-H {} execution time vs data size",
            if which == "q1" { "a" } else { "b" },
            which.to_uppercase()
        );
        println!(
            "{}",
            render_table(
                &[
                    "target_MiB",
                    "table_MiB",
                    "ROW",
                    "COL",
                    "RM",
                    "RMvsROW",
                    "RMvsCOL"
                ],
                &out_rows
            )
        );
    }
    bench::emit_bench_json(&format!("fig7_tpch_{which}"), &reg);
}

/// The morsel-parallel section: Q1 and Q6 as SQL through the session API
/// at 1 vs `cores` simulated cores on every access path. Answers must be
/// bit-identical; the speedup column is simulated cycles, so it reflects
/// the fabric model (shared L2 port, DRAM controller, serial RM beat),
/// not host scheduling noise.
fn run_parallel(cores: usize) {
    const Q1: &str = "SELECT l_returnflag, l_linestatus, sum(l_quantity), \
                      sum(l_extendedprice), sum(l_extendedprice * (1 - l_discount)), \
                      avg(l_quantity), count(*) \
                      FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' \
                      GROUP BY l_returnflag, l_linestatus";
    const Q6: &str = "SELECT sum(l_extendedprice * l_discount) FROM lineitem \
                      WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
                      AND l_discount >= 0.05 AND l_discount <= 0.07 AND l_quantity < 24";
    let rows = Lineitem::rows_for_q6_target(2);
    let engine_at = |n: usize| {
        let mut e = Engine::with_cores(SimConfig::zynq_a53(), n);
        let li = Lineitem::generate(e.mem(), rows, 0xF1_7).expect("generate");
        e.register("lineitem", li.rows, li.cols);
        e
    };

    let mut table = Vec::new();
    let mut best = 0.0f64;
    for (qname, sql) in [("Q1", Q1), ("Q6", Q6)] {
        for path in [AccessPath::Row, AccessPath::Col, AccessPath::Rm] {
            let base = engine_at(1).session().run_on(sql, path).expect("1-core");
            let par = engine_at(cores)
                .session()
                .run_on(sql, path)
                .expect("N-core");
            assert_eq!(
                par.rows, base.rows,
                "{qname} {path} at {cores} cores diverged from the 1-core answer"
            );
            let speedup = base.ns / par.ns;
            best = best.max(speedup);
            table.push(vec![
                qname.to_string(),
                path.to_string(),
                fmt_ns(base.ns),
                fmt_ns(par.ns),
                format!("{speedup:.2}x"),
            ]);
        }
    }
    println!("Fig. 7 supplement — morsel-driven scaling at {cores} cores ({rows} rows)");
    println!(
        "{}",
        render_table(
            &[
                "query",
                "path",
                "1-core",
                &format!("{cores}-core"),
                "speedup"
            ],
            &table
        )
    );
    if cores >= 4 {
        assert!(
            best > 1.8,
            "expected >1.8x simulated-cycle speedup on at least one query at {cores} cores, best {best:.2}x"
        );
    }
    println!("# best speedup {best:.2}x (answers bit-identical on every path)");
}

fn main() {
    let args = bench::harness::cli_args();
    let which = args.get(1).map(String::as_str).unwrap_or("both");
    let max_target = arg_usize(&args, "--max-target", 32);
    let cores = arg_usize(&args, "--cores", 1);
    let csv = args.iter().any(|a| a == "--csv");
    if which == "q1" || which == "both" {
        run_query("q1", max_target, csv);
    }
    if which == "q6" || which == "both" {
        run_query("q6", max_target, csv);
    }
    if cores > 1 {
        run_parallel(cores);
    }
}
