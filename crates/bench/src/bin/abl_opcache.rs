//! Ablation: the signature-keyed operator cache, cold vs. warm.
//!
//! One engine, one session, repeated subplans: the first execution of
//! each (plan shape, path) earns its stage output through the memory
//! hierarchy; every repeat must be served from the operator cache —
//! identical rows, zero hierarchy bytes, zero stall — at a fraction of
//! the cold cost. The bin asserts bit-identical answers, a perfect hit
//! ratio over the warm reps, and a warm-over-cold simulated-cycle
//! speedup of at least 1.5x on every shape (the acceptance envelope;
//! the observed ratios are far higher because a hit's only charge is
//! the probe plus one pass over the memoized rows).
//!
//! Expected shape: the widest margin on the scan-heavy shapes (Q6-like
//! selective aggregates re-touch every line on a cold run), a smaller
//! but still decisive margin on the projection shape, whose ORDER BY /
//! LIMIT post-processing is re-applied even on a hit.
//!
//! Usage: `abl_opcache [--rows N] [--reps K]`

use bench::{arg_usize, fmt_ns, render_table};
use fabric_sim::SimConfig;
use query::{AccessPath, Engine};
use workload::Lineitem;

/// Distinct subplan shapes: grouped aggregate, selective aggregate, and
/// a projection with post-processing (sort/limit are re-applied on every
/// hit — the cache memoizes the pre-sort stage output).
const SHAPES: &[(&str, &str)] = &[
    (
        "q1_group",
        "SELECT l_returnflag, l_linestatus, sum(l_quantity), sum(l_extendedprice), \
         sum(l_extendedprice * (1 - l_discount)), avg(l_quantity), count(*) \
         FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' \
         GROUP BY l_returnflag, l_linestatus",
    ),
    (
        "q6_select",
        "SELECT sum(l_extendedprice * l_discount) FROM lineitem \
         WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
         AND l_discount >= 0.05 AND l_discount <= 0.07 AND l_quantity < 24",
    ),
    (
        "topk_project",
        "SELECT l_orderkey, l_extendedprice FROM lineitem \
         WHERE l_quantity < 10 ORDER BY 2 DESC LIMIT 20",
    ),
];

/// Warm-over-cold acceptance floor, per shape and path.
const MIN_WARM_SPEEDUP: f64 = 1.5;

fn main() {
    let args = bench::harness::cli_args();
    let rows = arg_usize(&args, "--rows", 20_000);
    let reps = arg_usize(&args, "--reps", 4).max(2);

    let mut e = Engine::with_cores(SimConfig::zynq_a53(), 2);
    let li = Lineitem::generate(e.mem(), rows, 0xAB1_7A).expect("generate lineitem");
    e.register("lineitem", li.rows, li.cols);

    let mut reg = fabric_sim::MetricsRegistry::new();
    let mut table = Vec::new();
    let mut expected_hits = 0u64;
    let mut expected_misses = 0u64;
    for (shape, sql) in SHAPES {
        for path in [AccessPath::Row, AccessPath::Col, AccessPath::Rm] {
            let mut s = e.session();
            let cold = s.run_on(sql, path).expect("cold run");
            expected_misses += 1;
            let mut warm_ns = 0.0;
            let mut warm_bytes = 0u64;
            for _ in 1..reps {
                let warm = s.run_on(sql, path).expect("warm run");
                assert_eq!(
                    warm.rows, cold.rows,
                    "{shape} {path}: warm answer diverged from cold"
                );
                warm_ns += warm.ns;
                warm_bytes += warm.cores.iter().map(|c| c.bytes_read).sum::<u64>();
                expected_hits += 1;
            }
            let warm_avg = warm_ns / (reps - 1) as f64;
            assert_eq!(
                warm_bytes, 0,
                "{shape} {path}: cache hits must not touch the hierarchy"
            );
            let speedup = cold.ns / warm_avg;
            assert!(
                speedup >= MIN_WARM_SPEEDUP,
                "{shape} {path}: warm speedup {speedup:.2}x below the \
                 {MIN_WARM_SPEEDUP}x acceptance envelope"
            );
            let key = format!("abl_opcache.{shape}.{path}");
            reg.gauge_set(&format!("{key}.cold_ns"), cold.ns);
            reg.gauge_set(&format!("{key}.warm_ns"), warm_avg);
            reg.gauge_set(&format!("{key}.speedup"), speedup);
            table.push(vec![
                (*shape).to_string(),
                path.to_string(),
                fmt_ns(cold.ns),
                fmt_ns(warm_avg),
                format!("{speedup:.1}x"),
            ]);
        }
    }

    // The session ran every (shape, path) once cold and reps-1 warm:
    // the cache must account for exactly that — a perfect hit ratio on
    // the repeats, nothing evicted, nothing double-inserted.
    let (hits, misses) = e.op_cache_stats();
    assert_eq!(
        (hits, misses),
        (expected_hits, expected_misses),
        "op cache accounting drifted"
    );
    let hit_ratio = hits as f64 / (hits + misses) as f64;
    reg.counter_add("abl_opcache.hits", hits);
    reg.counter_add("abl_opcache.misses", misses);
    reg.gauge_set("abl_opcache.hit_ratio", hit_ratio);
    reg.gauge_set("abl_opcache.entries", e.op_cache().len() as f64);

    println!(
        "Ablation — operator cache cold vs. warm ({rows} rows, {} warm reps)",
        reps - 1
    );
    println!(
        "{}",
        render_table(&["shape", "path", "cold", "warm", "speedup"], &table)
    );
    println!(
        "hit ratio {:.3} ({hits} hits / {misses} misses, {} entries)",
        hit_ratio,
        e.op_cache().len()
    );
    bench::emit_bench_json("abl_opcache", &reg);
}
