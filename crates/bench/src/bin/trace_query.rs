//! Trace a Fig-5-shaped projection query (16 × i32 columns, 64-byte rows)
//! through the whole fabric and write a Perfetto-loadable Chrome trace.
//!
//! All three access paths run under one `RingRecorder`, so the exported
//! file shows the row scan, the columnar scan, and the RM
//! configure/gather/pack/deliver pipeline side by side on the simulated
//! cycle clock. Open `results/TRACE_query.json` at <https://ui.perfetto.dev>
//! (or chrome://tracing) to inspect it.
//!
//! Usage: `trace_query [--rows N] [--proj P] [--events E]`

use bench::arg_usize;
use colstore::ColTable;
use fabric_sim::{validate_chrome_trace, RingRecorder, SimConfig};
use fabric_types::{ColumnType, Schema, Value};
use query::{AccessPath, Engine};
use rowstore::RowTable;

fn main() {
    let args = bench::harness::cli_args();
    let rows = arg_usize(&args, "--rows", 1 << 16);
    let proj = arg_usize(&args, "--proj", 6).clamp(1, 16);
    let events = arg_usize(&args, "--events", 1 << 16);

    let mut engine = Engine::new(SimConfig::zynq_a53());
    let names: Vec<(String, ColumnType)> = (0..16)
        .map(|i| (format!("c{i}"), ColumnType::I32))
        .collect();
    let pairs: Vec<(&str, ColumnType)> = names.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    let schema = Schema::from_pairs(&pairs);
    eprintln!("# loading {rows} rows (16 x i32, 64-byte rows)...");
    let mut rt = RowTable::create(engine.mem(), schema.clone(), rows).expect("create rows");
    let mut ct = ColTable::create(engine.mem(), schema, rows).expect("create cols");
    for i in 0..rows as i32 {
        let row: Vec<Value> = (0..16)
            .map(|j| Value::I32(i.wrapping_mul(16) + j))
            .collect();
        rt.load(engine.mem(), &row).expect("load rows");
        ct.load(engine.mem(), &row).expect("load cols");
    }
    engine.register("t", rt, ct);

    let cols: Vec<String> = (0..proj).map(|i| format!("c{i}")).collect();
    let sql = format!("SELECT {} FROM t WHERE c0 >= 0", cols.join(", "));

    engine
        .mem()
        .set_recorder(Box::new(RingRecorder::new(events)));
    for path in [AccessPath::Row, AccessPath::Col, AccessPath::Rm] {
        let out = engine.session().run_on(&sql, path).expect("execute");
        eprintln!(
            "# {path:?}: {} rows in {}",
            out.rows.len(),
            bench::fmt_ns(out.ns)
        );
    }

    let trace = engine
        .mem()
        .export_trace()
        .expect("ring recorder exports a trace");
    let summary = validate_chrome_trace(&trace).expect("trace must be structurally valid");
    let path = bench::harness::write_artifact("TRACE_query.json", &trace).expect("write trace");
    let path = path.display();

    println!("Traced `{sql}` over all three access paths:");
    println!(
        "  {} events ({} spans, {} instants, {} counter samples, {} dropped)",
        summary.events, summary.begins, summary.instants, summary.counters, summary.dropped
    );
    println!("  wrote {path} — load it at https://ui.perfetto.dev");

    let stats = engine.mem_ref().stats();
    stats.record_into(engine.mem().metrics_mut(), "mem");
    bench::emit_bench_json("trace_query", engine.mem_ref().metrics());
}
