//! Ablation of Relational Storage (paper §IV-D): near-data projection /
//! selection / aggregation in the SSD controller versus shipping whole
//! pages to the host, plus on-the-fly decompression versus host-side
//! decode.
//!
//! Usage: `abl_relstore [--rows N]`

use bench::{arg_usize, fmt_ns, render_table};
use fabric_sim::{MemoryHierarchy, SimConfig};
use fabric_types::{
    AggFunc, AggSpec, CmpOp, ColumnPredicate, ColumnType, FieldSlice, Geometry, OutputMode,
    Predicate, Schema, Value,
};
use relstore::{CompressedTable, RsConfig, SsdDevice};

fn main() {
    let args = bench::harness::cli_args();
    let rows = arg_usize(&args, "--rows", 500_000);

    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    let mut dev = SsdDevice::new(RsConfig::smartssd(), &mem);

    // A 64-byte row of 16 i32 columns, stored row-major on flash.
    eprintln!("# storing {rows} rows on simulated flash...");
    let mut bytes = Vec::with_capacity(rows * 64);
    for i in 0..rows {
        for j in 0..16usize {
            bytes.extend_from_slice(&(((i * 16 + j) % 1_000_000) as i32).to_le_bytes());
        }
    }
    let table = dev.store_rows(&bytes, 64).expect("store");
    let f = |c: usize| FieldSlice::new(c, c * 4, ColumnType::I32);

    let mut out = Vec::new();

    // Projection of 2 of 16 columns.
    dev.reset_timing();
    let t0 = mem.now();
    let (_, host) = dev.fetch_raw(&mut mem, &table).expect("host");
    let host_ns = mem.ns_since(t0);
    dev.reset_timing();
    let t0 = mem.now();
    let (_, near) = dev
        .fetch_geometry(&mut mem, &table, vec![f(0), f(5)], Predicate::always_true())
        .expect("near");
    let near_ns = mem.ns_since(t0);
    let m = mem.metrics_mut();
    m.gauge_set("relstore.project.host_ns", host_ns);
    m.gauge_set("relstore.project.near_ns", near_ns);
    m.counter_add("relstore.project.host_bytes", host.bytes_shipped);
    m.counter_add("relstore.project.near_bytes", near.bytes_shipped);
    out.push(vec![
        "project 2/16 cols".into(),
        format!("{} ({})", fmt_ns(host_ns), host.bytes_shipped / 1024 / 1024),
        format!("{} ({})", fmt_ns(near_ns), near.bytes_shipped / 1024 / 1024),
        format!("{:.2}x", host_ns / near_ns),
    ]);

    // Selective projection (1 % of rows).
    let pred =
        Predicate::always_true().and(ColumnPredicate::new(f(3), CmpOp::Lt, Value::I32(10_000)));
    dev.reset_timing();
    let t0 = mem.now();
    let (_, near) = dev
        .fetch_geometry(&mut mem, &table, vec![f(0), f(5)], pred.clone())
        .expect("near");
    let near_ns = mem.ns_since(t0);
    let m = mem.metrics_mut();
    m.gauge_set("relstore.select.near_ns", near_ns);
    m.counter_add("relstore.select.near_bytes", near.bytes_shipped);
    out.push(vec![
        "project 2 + select ~1%".into(),
        format!("{} ({})", fmt_ns(host_ns), host.bytes_shipped / 1024 / 1024),
        format!("{} ({})", fmt_ns(near_ns), near.bytes_shipped / 1024 / 1024),
        format!("{:.2}x", host_ns / near_ns),
    ]);

    // Aggregation: only scalars cross the link.
    let g = Geometry::packed(0, 64, table.rows, vec![f(1)]).with_mode(OutputMode::Aggregate(vec![
        AggSpec::count(),
        AggSpec::over(AggFunc::Sum, f(1)),
    ]));
    dev.reset_timing();
    let t0 = mem.now();
    let (_, agg) = dev.fetch_aggregate(&mut mem, &table, &g).expect("agg");
    let agg_ns = mem.ns_since(t0);
    let m = mem.metrics_mut();
    m.gauge_set("relstore.aggregate.near_ns", agg_ns);
    m.counter_add("relstore.aggregate.near_bytes", agg.bytes_shipped);
    out.push(vec![
        "sum + count".into(),
        format!("{} ({})", fmt_ns(host_ns), host.bytes_shipped / 1024 / 1024),
        format!("{} ({}B)", fmt_ns(agg_ns), agg.bytes_shipped),
        format!("{:.2}x", host_ns / agg_ns),
    ]);

    println!("Relational Storage vs ship-to-host ({rows} rows, 64 B rows):");
    println!(
        "{}",
        render_table(
            &["operation", "host path (MiB)", "near-data (MiB)", "speedup"],
            &out
        )
    );

    // --- Compressed columns: device-side vs host-side decompression.
    let schema = Schema::from_pairs(&[("flag", ColumnType::I32), ("grp", ColumnType::I64)]);
    let col_a: Vec<u8> = (0..rows)
        .flat_map(|i| ((i % 8) as i32).to_le_bytes())
        .collect();
    let col_b: Vec<u8> = (0..rows)
        .flat_map(|i| ((i % 3) as i64 * 99).to_le_bytes())
        .collect();
    let ct = CompressedTable::store(&mut dev, schema, rows, vec![col_a, col_b]).expect("store");

    let mut out = Vec::new();
    dev.reset_timing();
    let t0 = mem.now();
    let (_, near) = ct
        .fetch_rows_decompressed(&mut dev, &mut mem, &[0, 1])
        .expect("near");
    let near_ns = mem.ns_since(t0);
    dev.reset_timing();
    let t0 = mem.now();
    let (_, host) = ct
        .fetch_rows_host_decode(&mut dev, &mut mem, &[0, 1])
        .expect("host");
    let host_ns = mem.ns_since(t0);
    let m = mem.metrics_mut();
    m.gauge_set("relstore.decompress.host_ns", host_ns);
    m.gauge_set("relstore.decompress.near_ns", near_ns);
    m.counter_add("relstore.decompress.host_bytes", host.bytes_shipped);
    m.counter_add("relstore.decompress.near_bytes", near.bytes_shipped);
    out.push(vec![
        "decompress + reconstruct".into(),
        format!("{} ({} KiB)", fmt_ns(host_ns), host.bytes_shipped / 1024),
        format!("{} ({} KiB)", fmt_ns(near_ns), near.bytes_shipped / 1024),
        format!("{:.2}x", host_ns / near_ns),
    ]);
    println!(
        "On-the-fly decompression (dictionary columns, {:.1}x compressed):",
        ct.original_bytes() as f64 / ct.compressed_bytes() as f64
    );
    println!(
        "{}",
        render_table(
            &["operation", "host decode", "device decode", "speedup"],
            &out
        )
    );
    let stats = mem.stats();
    stats.record_into(mem.metrics_mut(), "mem");
    bench::emit_bench_json("abl_relstore", mem.metrics());
}
