//! The §III-D compression analysis as a runnable table: compression ratio
//! and random-access granularity of every codec on three column shapes,
//! with the fabric-compatibility verdict.
//!
//! Usage: `abl_compression [--rows N]`

use bench::{arg_usize, render_table};
use compress::{analyze_i64, RandomAccess};
use fabric_types::rng::DetRng;

fn describe(access: RandomAccess) -> String {
    match access {
        RandomAccess::Direct => "O(1) direct".into(),
        RandomAccess::Block(n) => format!("block of {n}"),
        RandomAccess::Search => "run search".into(),
        RandomAccess::None => "full decode".into(),
    }
}

fn main() {
    let args = bench::harness::cli_args();
    let rows = arg_usize(&args, "--rows", 200_000);
    let mut rng = DetRng::seed_from_u64(0xAB4);

    let datasets: Vec<(&str, Vec<i64>)> = vec![
        (
            "sorted timestamps",
            (0..rows as i64).map(|i| 1_600_000_000 + i * 7).collect(),
        ),
        (
            "low-cardinality flags",
            (0..rows).map(|_| rng.gen_range(0..4i64) * 37).collect(),
        ),
        (
            "uniform random",
            (0..rows)
                .map(|_| rng.gen_range(-1_000_000..1_000_000i64))
                .collect(),
        ),
    ];

    let mut reg = fabric_sim::MetricsRegistry::new();
    for (name, values) in &datasets {
        let reports = analyze_i64(values).expect("analyze");
        let slug = name.replace(' ', "_").replace('-', "_");
        for r in &reports {
            reg.gauge_set(&format!("compression.{slug}.{}.ratio", r.name), r.ratio());
            reg.counter_add(
                &format!("compression.{slug}.{}.fabric_compatible", r.name),
                u64::from(r.fabric_compatible()),
            );
        }
        let rows_out: Vec<Vec<String>> = reports
            .iter()
            .map(|r| {
                vec![
                    r.name.to_string(),
                    format!("{:.2}x", r.ratio()),
                    describe(r.access),
                    if r.fabric_compatible() {
                        "yes".into()
                    } else {
                        "NO".into()
                    },
                ]
            })
            .collect();
        println!("Column: {name} ({rows} values)");
        println!(
            "{}",
            render_table(
                &["codec", "ratio", "random access", "fabric-compatible"],
                &rows_out
            )
        );
    }
    println!(
        "Verdict (paper §III-D): dictionary/delta/huffman suit the fabric; \
         RLE needs run searches; LZ needs full decompression."
    );
    bench::emit_bench_json("abl_compression", &reg);
}
