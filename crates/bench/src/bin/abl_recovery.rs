//! Ablation of the durability subsystem (DESIGN.md §14): what the
//! WAL-before-apply protocol costs at commit time, and what checkpoints
//! buy at recovery time — replay ns versus checkpoint cadence at a fixed
//! workload, with the recovered state asserted bit-identical.
//!
//! Usage: `abl_recovery [--commits N]`

use bench::{arg_usize, fmt_ns, render_table};
use durability::DurabilityConfig;
use fabric_sim::{MemoryHierarchy, SimConfig};
use fabric_types::{ColumnType, Schema, Value};
use mvcc::DurableStore;

fn main() {
    let args = bench::harness::cli_args();
    let commits = arg_usize(&args, "--commits", 512);
    let schema = Schema::from_pairs(&[("k", ColumnType::I64), ("v", ColumnType::I64)]);

    let mut out = Vec::new();
    let mut reg = fabric_sim::MetricsRegistry::new();
    // Cadence 0 = never checkpoint (pure log replay) up to every 16
    // commits; each run commits the same workload, crashes at the end,
    // and times recovery from what survived.
    for ckpt_every in [0u64, 64, 16] {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let mut store = DurableStore::create(
            &mut mem,
            schema.clone(),
            commits * 2 + 16,
            DurabilityConfig::quiet(7),
            ckpt_every,
        )
        .expect("create");

        let t0 = mem.now();
        for i in 0..commits as i64 {
            let mut txn = store.begin();
            if i % 3 == 2 {
                // Every third commit updates an existing row: the log and
                // checkpoints carry version chains, not just inserts.
                txn.update((i / 3) as usize, vec![(1, Value::I64(i * 100))]);
            } else {
                txn.insert(vec![Value::I64(i), Value::I64(i * 10)]);
            }
            store.commit(&mut mem, txn).expect("commit");
        }
        let commit_ns = mem.ns_since(t0);
        let log_bytes = store.media().stats().append_bytes;
        let ckpt_pages = store.media().stats().checkpoint_pages;
        let before = store.snapshot_rows(&mut mem).expect("rows");
        let watermark = store.snapshot_ts();

        // Crash now; time recovery on a fresh machine.
        let image = store.crash_image();
        let mut mem2 = MemoryHierarchy::new(SimConfig::zynq_a53());
        let t0 = mem2.now();
        let (recovered, report) = DurableStore::replay(
            &mut mem2,
            schema.clone(),
            commits * 2 + 16,
            image,
            DurabilityConfig::quiet(8),
            ckpt_every,
        )
        .expect("replay");
        let replay_ns = mem2.ns_since(t0);
        assert_eq!(report.watermark, watermark, "watermark must survive");
        assert_eq!(
            recovered.snapshot_rows(&mut mem2).expect("rows"),
            before,
            "recovered answers must be bit-identical"
        );

        let label = format!("recovery.e{ckpt_every:03}");
        reg.gauge_set(&format!("{label}.commit_ns"), commit_ns / commits as f64);
        reg.gauge_set(&format!("{label}.replay_ns"), replay_ns);
        reg.counter_add(&format!("{label}.log_bytes"), log_bytes);
        reg.counter_add(&format!("{label}.ckpt_pages"), ckpt_pages);
        reg.counter_add(
            &format!("{label}.commits_replayed"),
            report.commits_replayed,
        );

        out.push(vec![
            if ckpt_every == 0 {
                "never".into()
            } else {
                format!("every {ckpt_every}")
            },
            format!("{:.1} KiB", log_bytes as f64 / 1024.0),
            format!("{ckpt_pages}"),
            fmt_ns(commit_ns / commits as f64),
            format!("{}", report.commits_replayed),
            fmt_ns(replay_ns),
        ]);
    }

    println!("Crash recovery: WAL commit tax and checkpoint-bounded replay ({commits} commits):");
    println!(
        "{}",
        render_table(
            &[
                "checkpoint",
                "log size",
                "ckpt pages",
                "commit (avg)",
                "replayed",
                "replay time",
            ],
            &out
        )
    );
    bench::emit_bench_json("abl_recovery", &reg);
}
