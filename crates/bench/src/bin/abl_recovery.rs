//! Ablation of the durability subsystem (DESIGN.md §14): what the
//! WAL-before-apply protocol costs at commit time, and what checkpoints
//! buy at recovery time — replay ns versus checkpoint cadence at a fixed
//! workload, with the recovered state asserted bit-identical.
//!
//! Usage: `abl_recovery [--commits N]`

use bench::{arg_usize, fmt_ns, render_table};
use durability::DurabilityConfig;
use fabric_sim::{validate_chrome_trace, MemoryHierarchy, RingRecorder, SimConfig};
use fabric_types::{ColumnType, Schema, Value};
use mvcc::DurableStore;

/// Fold the write-path `durability.*` counters a run accumulated into the
/// bench registry under the cadence label, so the envelope carries the
/// instrumented WAL/checkpoint/replay totals per configuration.
fn merge_durability_counters(
    reg: &mut fabric_sim::MetricsRegistry,
    label: &str,
    src: &MemoryHierarchy,
) {
    let snap = src.metrics().snapshot();
    for (key, value) in snap.subtree("durability.").counters {
        reg.counter_add(&format!("{label}.durability.{key}"), value);
    }
}

fn main() {
    let args = bench::harness::cli_args();
    let commits = arg_usize(&args, "--commits", 512);
    let schema = Schema::from_pairs(&[("k", ColumnType::I64), ("v", ColumnType::I64)]);

    let mut out = Vec::new();
    let mut reg = fabric_sim::MetricsRegistry::new();
    // Cadence 0 = never checkpoint (pure log replay) up to every 16
    // commits; each run commits the same workload, crashes at the end,
    // and times recovery from what survived.
    for ckpt_every in [0u64, 64, 16] {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let mut store = DurableStore::create(
            &mut mem,
            schema.clone(),
            commits * 2 + 16,
            DurabilityConfig::quiet(7),
            ckpt_every,
        )
        .expect("create");

        let t0 = mem.now();
        for i in 0..commits as i64 {
            let mut txn = store.begin();
            if i % 3 == 2 {
                // Every third commit updates an existing row: the log and
                // checkpoints carry version chains, not just inserts.
                txn.update((i / 3) as usize, vec![(1, Value::I64(i * 100))]);
            } else {
                txn.insert(vec![Value::I64(i), Value::I64(i * 10)]);
            }
            store.commit(&mut mem, txn).expect("commit");
        }
        let commit_ns = mem.ns_since(t0);
        let log_bytes = store.media().stats().append_bytes;
        let ckpt_pages = store.media().stats().checkpoint_pages;
        let before = store.snapshot_rows(&mut mem).expect("rows");
        let watermark = store.snapshot_ts();

        // Crash now; time recovery on a fresh machine.
        let image = store.crash_image();
        let mut mem2 = MemoryHierarchy::new(SimConfig::zynq_a53());
        let t0 = mem2.now();
        let (recovered, report) = DurableStore::replay(
            &mut mem2,
            schema.clone(),
            commits * 2 + 16,
            image,
            DurabilityConfig::quiet(8),
            ckpt_every,
        )
        .expect("replay");
        let replay_ns = mem2.ns_since(t0);
        assert_eq!(report.watermark, watermark, "watermark must survive");
        assert_eq!(
            recovered.snapshot_rows(&mut mem2).expect("rows"),
            before,
            "recovered answers must be bit-identical"
        );

        let label = format!("recovery.e{ckpt_every:03}");
        // Fold the instrumented write-path counters from both machines:
        // the commit-phase WAL/checkpoint totals and the replay totals.
        merge_durability_counters(&mut reg, &label, &mem);
        merge_durability_counters(&mut reg, &label, &mem2);
        assert!(
            reg.counter(&format!("{label}.durability.wal.appends")) > 0,
            "commit phase must count WAL appends"
        );
        assert!(
            reg.counter(&format!("{label}.durability.replay.records")) > 0,
            "recovery must count replayed records"
        );
        reg.gauge_set(&format!("{label}.commit_ns"), commit_ns / commits as f64);
        reg.gauge_set(&format!("{label}.replay_ns"), replay_ns);
        reg.counter_add(&format!("{label}.log_bytes"), log_bytes);
        reg.counter_add(&format!("{label}.ckpt_pages"), ckpt_pages);
        reg.counter_add(
            &format!("{label}.commits_replayed"),
            report.commits_replayed,
        );

        out.push(vec![
            if ckpt_every == 0 {
                "never".into()
            } else {
                format!("every {ckpt_every}")
            },
            format!("{:.1} KiB", log_bytes as f64 / 1024.0),
            format!("{ckpt_pages}"),
            fmt_ns(commit_ns / commits as f64),
            format!("{}", report.commits_replayed),
            fmt_ns(replay_ns),
        ]);
    }

    // One instrumented pass under a RingRecorder: replay a crashed image,
    // then push the recovered store past a checkpoint boundary, so a
    // single validated Chrome trace covers the replay phases AND the
    // WAL-append / checkpoint-write spans of the live write path.
    {
        let ckpt_every = 8u64;
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let mut store = DurableStore::create(
            &mut mem,
            schema.clone(),
            256,
            DurabilityConfig::quiet(9),
            ckpt_every,
        )
        .expect("create");
        // 27 commits with a cadence of 8: the last checkpoint lands at
        // commit 24, so replay reloads it and reapplies a 3-commit tail.
        for i in 0..27i64 {
            let mut txn = store.begin();
            txn.insert(vec![Value::I64(i), Value::I64(i * 10)]);
            store.commit(&mut mem, txn).expect("commit");
        }
        let image = store.crash_image();

        let mut mem2 = MemoryHierarchy::new(SimConfig::zynq_a53());
        mem2.set_recorder(Box::new(RingRecorder::new(1 << 15)));
        let (mut recovered, report) = DurableStore::replay(
            &mut mem2,
            schema.clone(),
            256,
            image,
            DurabilityConfig::quiet(10),
            ckpt_every,
        )
        .expect("replay");
        for i in 24..24 + ckpt_every as i64 {
            let mut txn = recovered.begin();
            txn.insert(vec![Value::I64(i), Value::I64(i * 10)]);
            recovered.commit(&mut mem2, txn).expect("commit");
        }
        let trace = mem2.export_trace().expect("ring recorder exports a trace");
        let summary = validate_chrome_trace(&trace).expect("trace must be structurally valid");
        for span in [
            "replay-scan",
            "replay-ckpt-load",
            "replay-reapply",
            "wal-append",
            "ckpt-write",
        ] {
            assert!(
                trace.contains(span),
                "instrumented trace must cover `{span}`"
            );
        }
        let path =
            bench::harness::write_artifact("TRACE_recovery.json", &trace).expect("write trace");
        eprintln!(
            "# instrumented recovery trace: {} events ({} spans), {} commits replayed -> {}",
            summary.events,
            summary.begins,
            report.commits_replayed,
            path.display()
        );
    }

    println!("Crash recovery: WAL commit tax and checkpoint-bounded replay ({commits} commits):");
    println!(
        "{}",
        render_table(
            &[
                "checkpoint",
                "log size",
                "ckpt pages",
                "commit (avg)",
                "replayed",
                "replay time",
            ],
            &out
        )
    );
    bench::emit_bench_json("abl_recovery", &reg);
}
