//! Query-log / calibration report: exercise one engine through a mixed
//! workload — cold runs, operator-cache hits, and a fault-degraded RM
//! query — and export the three observability artifacts the engine now
//! keeps for free:
//!
//! * `QUERYLOG_workload.json` — the raw bounded query log
//!   ([`fabric_sim::QueryLog::to_json`]): one envelope per executed query
//!   with plan signature, class, path, per-operator estimate/actual
//!   attribution, top-down summary, and cache/degradation provenance;
//! * `QUERYLOG_report.json` — the per-(class, path) workload aggregation
//!   ([`query::Engine::workload_report`]);
//! * `QUERYLOG_calib.json` — the cost-calibration ledger: per
//!   (table, geometry, path) mean/EWMA relative error of the cost model,
//!   fed by every clean cold run.
//!
//! Everything here is simulated and seeded, so all three artifacts are
//! byte-deterministic — the bin asserts the log accounted for every query
//! it issued, that per-operator estimates sum exactly to the path
//! estimate on every cold record, and that the calibration ledger
//! converged (mean == EWMA after identical repeated observations).
//!
//! Usage: `querylog_report [--rows N] [--reps K]`

use bench::{arg_usize, render_table};
use fabric_sim::SimConfig;
use query::exec::FaultContext;
use query::{AccessPath, Engine};
use workload::Lineitem;

/// Workload shapes covering the three query classes (grouped aggregate,
/// scalar aggregate, scan with post-processing).
const SHAPES: &[(&str, &str)] = &[
    (
        "q1_group",
        "SELECT l_returnflag, l_linestatus, sum(l_quantity), avg(l_quantity), count(*) \
         FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' \
         GROUP BY l_returnflag, l_linestatus",
    ),
    (
        "q6_select",
        "SELECT sum(l_extendedprice * l_discount) FROM lineitem \
         WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
         AND l_discount >= 0.05 AND l_discount <= 0.07 AND l_quantity < 24",
    ),
    (
        "topk_project",
        "SELECT l_orderkey, l_extendedprice FROM lineitem \
         WHERE l_quantity < 10 ORDER BY 2 DESC LIMIT 20",
    ),
];

fn main() {
    let args = bench::harness::cli_args();
    let rows = arg_usize(&args, "--rows", 20_000);
    let reps = arg_usize(&args, "--reps", 3).max(2);

    let mut e = Engine::with_cores(SimConfig::zynq_a53(), 2);
    let li = Lineitem::generate(e.mem(), rows, 0xAB1_7A).expect("generate lineitem");
    e.register("lineitem", li.rows, li.cols);

    // Phase 1: cold + warm. Rep 0 of each (shape, path) misses the
    // operator cache and feeds the calibration ledger; every later rep is
    // a hit and must be recorded as such (hits never calibrate).
    let mut issued = 0u64;
    for (shape, sql) in SHAPES {
        for path in [AccessPath::Row, AccessPath::Col, AccessPath::Rm] {
            let mut s = e.session();
            for rep in 0..reps {
                let out = s.run_on(sql, path).expect("workload run");
                assert_eq!(
                    out.cache_hit,
                    rep > 0,
                    "{shape} {path} rep {rep}: unexpected cache temperature"
                );
                if !out.cache_hit {
                    // Tentpole invariant: the per-operator estimates sum
                    // bit-exactly to the path estimate the optimizer saw.
                    let sum: f64 = out.ops.iter().map(|o| o.est_ns).sum();
                    let est = out.cost.ns(out.path).expect("ran path was priced");
                    assert_eq!(
                        sum.to_bits(),
                        est.to_bits(),
                        "{shape} {path}: op estimates {sum} != path estimate {est}"
                    );
                }
                issued += 1;
            }
        }
    }

    // Phase 2: a fault-degraded RM query. Every delivery times out, the
    // retry budget exhausts, and the engine transparently re-plans onto a
    // software path — the query log must carry the degradation.
    let cfg = fabric_sim::FaultConfig {
        rm_timeout_prob: 1.0,
        ..fabric_sim::FaultConfig::quiet(9)
    };
    e.set_fault_context(FaultContext::new(
        cfg,
        fabric_sim::RecoveryPolicy::default(),
    ));
    let degraded = e
        .session()
        .run_on(SHAPES[1].1, AccessPath::Rm)
        .expect("degraded run still answers");
    assert_eq!(degraded.degraded_from, Some(AccessPath::Rm));
    issued += 1;

    let log = e.querylog();
    assert_eq!(log.total_recorded(), issued, "every query must be logged");
    assert_eq!(log.dropped(), 0, "workload fits the default ring");
    let hits = log.records().filter(|r| r.cache_hit).count() as u64;
    let degraded_n = log.records().filter(|r| r.degraded_from.is_some()).count() as u64;
    assert_eq!(hits, (reps as u64 - 1) * SHAPES.len() as u64 * 3);
    assert_eq!(degraded_n, 1);

    // Calibration: each (table, geometry, path) saw `reps`-independent
    // identical cold observations? No — one cold run per (shape, path),
    // but shapes sharing a geometry fold into one key. Every entry must
    // have converged mean == EWMA when all its observations were equal,
    // which holds per-key only when runs == 1; assert the weaker, always
    // true invariants: every entry observed at least once, errors finite.
    let calib = e.calib();
    assert!(!calib.is_empty(), "cold runs must feed the ledger");
    for (key, entry) in calib.entries() {
        assert!(entry.runs >= 1, "{key}: unobserved entry");
        assert!(
            entry.mean_rel_err_ns.is_finite() && entry.ewma_rel_err_ns.is_finite(),
            "{key}: non-finite calibration"
        );
    }

    let workload = e.workload_report();
    let mut table = Vec::new();
    for (key, w) in &workload.entries {
        table.push(vec![
            key.clone(),
            w.runs.to_string(),
            w.cache_hits.to_string(),
            w.degraded.to_string(),
            w.rows_out.to_string(),
            w.cycles_total.to_string(),
        ]);
    }
    println!(
        "Query log — {} queries ({} hits, {} degraded), {} calibration keys",
        workload.queries,
        workload.cache_hits,
        workload.degraded,
        calib.len()
    );
    println!(
        "{}",
        render_table(
            &["class/path", "runs", "hits", "degraded", "rows", "cycles"],
            &table
        )
    );

    for (file, json) in [
        ("QUERYLOG_workload.json", log.to_json()),
        ("QUERYLOG_report.json", workload.to_json()),
        ("QUERYLOG_calib.json", calib.to_json()),
    ] {
        match bench::write_artifact(file, &json) {
            Ok(path) => eprintln!("# artifact: {}", path.display()),
            Err(err) => eprintln!("# artifact export failed ({file}): {err}"),
        }
    }

    // Gate-checked metrics: deterministic counts and cycle totals.
    let mut reg = fabric_sim::MetricsRegistry::new();
    reg.counter_add("querylog_report.queries", workload.queries);
    reg.counter_add("querylog_report.cache_hits", workload.cache_hits);
    reg.counter_add("querylog_report.degraded", workload.degraded);
    reg.counter_add("querylog_report.cycles_total", workload.cycles_total);
    reg.counter_add("querylog_report.calib.observations", calib.observations());
    reg.gauge_set("querylog_report.calib.entries", calib.len() as f64);
    for (key, entry) in calib.entries() {
        reg.gauge_set(
            &format!("querylog_report.calib.{key}.mean_rel_err_ns"),
            entry.mean_rel_err_ns,
        );
    }
    reg.gauge_set(
        "querylog_report.scratchpad.hwm_bytes",
        e.mem_ref()
            .metrics()
            .gauge("query.scratchpad.hwm_bytes")
            .unwrap_or(0.0),
    );
    bench::emit_bench_json("querylog_report", &reg);
}
