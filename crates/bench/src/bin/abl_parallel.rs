//! Ablation: morsel-driven multi-core scaling per access path.
//!
//! Runs TPC-H Q1 and Q6 through the SQL session API at 1..N simulated
//! cores on each access path, asserting every parallel answer is
//! **bit-identical** to the 1-core run, and reports the simulated-cycle
//! speedup plus where the extra cycles went (shared-resource stalls and
//! end-of-morsel idle waits, from the per-core attribution that EXPLAIN
//! ANALYZE renders).
//!
//! Expected shape: the software scan paths (ROW/COL) scale near-linearly —
//! one A53 core cannot saturate the shared L2 port or the DRAM
//! controller, so the bandwidth ledgers rarely bind at these widths — while
//! device-bound RM plans (Q6) stay flat: the RM engine produces batches at
//! its own serial beat and extra cores only drain them faster.
//!
//! Usage: `abl_parallel [--rows N] [--cores 1,2,4]`

use bench::{arg_usize, arg_value, fmt_ns, render_table};
use fabric_sim::SimConfig;
use query::{AccessPath, Engine};
use workload::Lineitem;

const Q1: &str = "SELECT l_returnflag, l_linestatus, sum(l_quantity), sum(l_extendedprice), \
                  sum(l_extendedprice * (1 - l_discount)), avg(l_quantity), count(*) \
                  FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' \
                  GROUP BY l_returnflag, l_linestatus";
const Q6: &str = "SELECT sum(l_extendedprice * l_discount) FROM lineitem \
                  WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
                  AND l_discount >= 0.05 AND l_discount <= 0.07 AND l_quantity < 24";

fn engine(rows: usize, cores: usize) -> Engine {
    let mut e = Engine::with_cores(SimConfig::zynq_a53(), cores);
    let li = Lineitem::generate(e.mem(), rows, 0xAB1_7A).expect("generate lineitem");
    e.register("lineitem", li.rows, li.cols);
    e
}

fn main() {
    let args = bench::harness::cli_args();
    let rows = arg_usize(&args, "--rows", 60_000);
    let cores: Vec<usize> = arg_value(&args, "--cores")
        .unwrap_or_else(|| "1,2,4".into())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .filter(|&n| n >= 1)
        .collect();

    let mut reg = fabric_sim::MetricsRegistry::new();
    for (qname, sql) in [("q1", Q1), ("q6", Q6)] {
        let mut table = Vec::new();
        for path in [AccessPath::Row, AccessPath::Col, AccessPath::Rm] {
            eprintln!("# {qname} {path}: {rows} rows at {cores:?} cores");
            let base = engine(rows, 1)
                .session()
                .run_on(sql, path)
                .expect("1-core run");
            for &n in &cores {
                let out = engine(rows, n).session().run_on(sql, path).expect("run");
                assert_eq!(
                    out.rows, base.rows,
                    "{qname} {path} at {n} cores diverged from the 1-core answer"
                );
                let speedup = base.ns / out.ns;
                let busy: u64 = out.cores.iter().map(|c| c.busy_cycles).sum();
                let stall: u64 = out.cores.iter().map(|c| c.stall_cycles).sum();
                let idle: u64 = out.cores.iter().map(|c| c.idle_cycles).sum();
                let key = format!("abl_parallel.{qname}.{path}.c{n}");
                reg.gauge_set(&format!("{key}.ns"), out.ns);
                reg.gauge_set(&format!("{key}.speedup"), speedup);
                reg.counter_add(&format!("{key}.busy_cycles"), busy);
                reg.counter_add(&format!("{key}.stall_cycles"), stall);
                reg.counter_add(&format!("{key}.idle_cycles"), idle);
                table.push(vec![
                    path.to_string(),
                    format!("{n}"),
                    fmt_ns(out.ns),
                    format!("{speedup:.2}x"),
                    format!("{:.1}%", 100.0 * stall as f64 / busy.max(1) as f64),
                    format!("{:.1}%", 100.0 * idle as f64 / (busy + idle).max(1) as f64),
                ]);
            }
        }
        println!(
            "Ablation — {} morsel-parallel scaling ({rows} rows)",
            qname.to_uppercase()
        );
        println!(
            "{}",
            render_table(
                &["path", "cores", "sim_time", "speedup", "stall%", "idle%"],
                &table
            )
        );
    }
    bench::emit_bench_json("abl_parallel", &reg);
}
