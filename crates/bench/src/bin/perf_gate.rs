//! Noise-aware perf regression gate (DESIGN.md §12): compare one fresh
//! bench artifact against its checked-in baseline.
//!
//! Driven by `tools/perf_gate.sh`, which reruns the bench binaries into a
//! scratch results directory and invokes this once per artifact:
//!
//! ```text
//! perf_gate --baseline results/BENCH_x.json --fresh /tmp/gate/BENCH_x.json \
//!           [--trajectory results/TRAJECTORY.jsonl]
//! perf_gate --self-test results/BENCH_x.json
//! ```
//!
//! Exit status: 0 = gate passed, 1 = regression (or a self-test that the
//! gate wrongly passed), 2 = usage / IO / schema error.
//!
//! `--self-test` is the CI sanity check on the gate itself: it copies the
//! baseline, injects a synthetic +10% regression into its first non-zero
//! cycle counter, and asserts the gate *fails* the perturbed copy.

use bench::arg_value;
use fabric_sim::{compare_bench, parse_json, GatePolicy, Json};
use std::process::ExitCode;

fn read(path: &str, side: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{side} `{path}`: {e}"))
}

/// Find a non-zero counter to perturb — preferring one whose name
/// mentions cycles, the deterministic kind the gate compares exactly —
/// and return `(name, value)`.
fn find_cycle_counter(artifact: &str) -> Result<(String, u64), String> {
    let doc = parse_json(artifact).map_err(|e| format!("artifact: {e}"))?;
    let counters = doc
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .cloned()
        .ok_or("artifact has no metrics.counters object")?;
    let Json::Obj(members) = counters else {
        return Err("metrics.counters is not an object".into());
    };
    let pick = |want_cycles: bool| {
        members.iter().find_map(|(name, v)| match v.as_num() {
            Some(n) if n > 0.0 && (!want_cycles || name.contains("cycles")) => {
                Some((name.clone(), n as u64))
            }
            _ => None,
        })
    };
    pick(true)
        .or_else(|| pick(false))
        .ok_or_else(|| "no non-zero counter to perturb".into())
}

/// Inject a synthetic +10% regression into a copy of `artifact` and check
/// that the gate catches it. Textual substitution on the exact
/// `"name":value` pair — counters serialize as integers and the counters
/// section precedes gauges/histograms, so the first occurrence is the one.
fn self_test(artifact: &str) -> Result<(), String> {
    let (name, value) = find_cycle_counter(artifact)?;
    let inflated = value + (value / 10).max(1);
    let needle = format!("\"{name}\":{value}");
    if !artifact.contains(&needle) {
        return Err(format!("could not locate `{needle}` in the artifact"));
    }
    let perturbed = artifact.replacen(&needle, &format!("\"{name}\":{inflated}"), 1);
    let report = compare_bench(artifact, &perturbed, &GatePolicy::default())
        .map_err(|e| format!("comparing perturbed copy: {e}"))?;
    if report.passed() {
        return Err(format!(
            "gate PASSED a synthetic +10% regression on `{name}` ({value} -> {inflated}) — \
             the comparison is not actually gating"
        ));
    }
    println!(
        "self-test: gate correctly failed a synthetic +10% regression on `{name}` \
         ({value} -> {inflated})"
    );
    Ok(())
}

fn run() -> Result<bool, String> {
    let args = bench::harness::cli_args();
    if let Some(path) = arg_value(&args, "--self-test") {
        let artifact = read(&path, "self-test baseline")?;
        self_test(&artifact)?;
        return Ok(true);
    }
    let baseline_path = arg_value(&args, "--baseline").ok_or("missing --baseline <file>")?;
    let fresh_path = arg_value(&args, "--fresh").ok_or("missing --fresh <file>")?;
    let baseline = read(&baseline_path, "baseline")?;
    let fresh = read(&fresh_path, "fresh")?;
    let report = compare_bench(&baseline, &fresh, &GatePolicy::default())?;
    print!("{}", report.render());
    if let Some(traj) = arg_value(&args, "--trajectory") {
        use std::io::Write as _;
        let mut line = report.to_json_line();
        line.push('\n');
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&traj)
            .and_then(|mut f| f.write_all(line.as_bytes()))
            .map_err(|e| format!("trajectory `{traj}`: {e}"))?;
    }
    Ok(report.passed())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("perf_gate: {e}");
            ExitCode::from(2)
        }
    }
}
