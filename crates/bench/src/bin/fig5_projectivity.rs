//! Regenerates **Fig. 5**: normalized execution time of ROW / COL / RM as
//! projectivity varies from 1 to 11 columns (4-byte columns, 64-byte rows).
//!
//! Paper claims to reproduce (shape, not absolute numbers):
//! * RM outperforms ROW at *every* projectivity;
//! * COL is fastest below ~4 projected columns (the prefetcher keeps up and
//!   tuple reconstruction is cheap);
//! * RM overtakes COL once more than ~4 columns are projected.
//!
//! Usage: `fig5_projectivity [--rows N] [--streams S] [--csv]`
//! (`--streams` overrides the prefetcher stream capacity — the ablation
//! probing the source of the crossover).

use bench::{arg_usize, render_table};
use fabric_sim::{MemoryHierarchy, SimConfig};
use relmem::RmConfig;
use workload::micro::{run_col, run_rm, run_row, MicroQuery};
use workload::SyntheticData;

fn main() {
    let args = bench::harness::cli_args();
    let rows = arg_usize(&args, "--rows", 1 << 20); // 64 MiB table by default
    let streams = arg_usize(&args, "--streams", 4);
    let csv = args.iter().any(|a| a == "--csv");

    let mut cfg = SimConfig::zynq_a53();
    cfg.prefetch_streams = streams;
    let mut mem = MemoryHierarchy::new(cfg);
    eprintln!("# generating {rows} rows (16 x i32, 64-byte rows)...");
    let data = SyntheticData::build(&mut mem, rows, 16, 0xF16_5).expect("generate");

    let mut out_rows = Vec::new();
    if csv {
        println!("projectivity,row_ns,col_ns,rm_ns,row_norm,col_norm,rm_norm");
    }
    for p in 1..=11 {
        let q = MicroQuery::projectivity(p);
        let row = run_row(&mut mem, &data.rows, &q).expect("row engine");
        let col = run_col(&mut mem, &data.cols, &q).expect("col engine");
        let rm = run_rm(&mut mem, &data.rows, &q, RmConfig::prototype()).expect("rm engine");
        assert_eq!(row.checksum, col.checksum, "engines disagree at p={p}");
        assert_eq!(row.checksum, rm.checksum, "engines disagree at p={p}");
        let norm = row.ns;
        let m = mem.metrics_mut();
        m.gauge_set(&format!("fig5.p{p:02}.row_ns"), row.ns);
        m.gauge_set(&format!("fig5.p{p:02}.col_ns"), col.ns);
        m.gauge_set(&format!("fig5.p{p:02}.rm_ns"), rm.ns);
        m.gauge_set(&format!("fig5.p{p:02}.col_norm"), col.ns / norm);
        m.gauge_set(&format!("fig5.p{p:02}.rm_norm"), rm.ns / norm);
        if csv {
            println!(
                "{p},{:.0},{:.0},{:.0},{:.3},{:.3},{:.3}",
                row.ns,
                col.ns,
                rm.ns,
                1.0,
                col.ns / norm,
                rm.ns / norm
            );
        }
        out_rows.push(vec![
            p.to_string(),
            format!("{:.3}", 1.0),
            format!("{:.3}", col.ns / norm),
            format!("{:.3}", rm.ns / norm),
            bench::fmt_ns(row.ns),
            bench::fmt_ns(col.ns),
            bench::fmt_ns(rm.ns),
        ]);
    }
    if !csv {
        println!("Fig. 5 — normalized execution time (lower is better), {rows} rows");
        println!(
            "{}",
            render_table(
                &["proj", "ROW", "COL", "RM", "row_t", "col_t", "rm_t"],
                &out_rows
            )
        );
    }
    let stats = mem.stats();
    stats.record_into(mem.metrics_mut(), "mem");
    bench::emit_bench_json("fig5_projectivity", mem.metrics());
}
