//! Ablation of MVCC visibility filtering (paper §III-C): the fabric's
//! hardware timestamp comparison versus a software visibility scan, as the
//! fraction of dead versions grows.
//!
//! Usage: `abl_mvcc [--rows N]`

use bench::{arg_usize, fmt_ns, render_table};
use fabric_sim::{MemoryHierarchy, SimConfig};
use fabric_types::{ColumnType, Schema, Value};
use mvcc::scan::{rm_visible_sum, sw_visible_sum};
use mvcc::{TxnManager, VersionedTable};
use relmem::RmConfig;

fn main() {
    let args = bench::harness::cli_args();
    let logical_rows = arg_usize(&args, "--rows", 100_000);

    let mut out = Vec::new();
    let mut reg = fabric_sim::MetricsRegistry::new();
    for update_rounds in [0usize, 1, 3, 7] {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::from_pairs(&[("k", ColumnType::I64), ("v", ColumnType::I64)]);
        let mut table =
            VersionedTable::create(&mut mem, schema, logical_rows * (update_rounds + 1) + 16)
                .expect("create");
        let tm = TxnManager::new();

        // Insert everything in one transaction, then update every row
        // `update_rounds` times — each round doubles... adds a dead version
        // per logical row.
        let mut txn = tm.begin();
        for k in 0..logical_rows as i64 {
            txn.insert(vec![Value::I64(k), Value::I64(k)]);
        }
        let ids = tm
            .commit(&mut mem, &mut table, txn)
            .expect("insert")
            .inserted;
        for round in 0..update_rounds {
            let mut txn = tm.begin();
            for &l in &ids {
                txn.update(l, vec![(1, Value::I64((round + 1) as i64 * 1000))]);
            }
            tm.commit(&mut mem, &mut table, txn).expect("update");
        }
        let ts = tm.snapshot_ts();

        mem.flush_caches();
        let t0 = mem.now();
        let (sw_sum, sw_n) = sw_visible_sum(&mut mem, &table, 1, ts).expect("sw");
        let sw_ns = mem.ns_since(t0);

        mem.flush_caches();
        let t0 = mem.now();
        let (rm_sum, rm_n) =
            rm_visible_sum(&mut mem, &table, 1, ts, RmConfig::prototype()).expect("rm");
        let rm_ns = mem.ns_since(t0);
        assert_eq!((sw_sum, sw_n), (rm_sum, rm_n), "paths disagree");

        let v = update_rounds + 1;
        reg.gauge_set(&format!("mvcc.v{v:02}.sw_ns"), sw_ns);
        reg.gauge_set(&format!("mvcc.v{v:02}.hw_ns"), rm_ns);
        reg.gauge_set(&format!("mvcc.v{v:02}.speedup"), sw_ns / rm_ns);
        reg.counter_add(
            &format!("mvcc.v{v:02}.versions"),
            table.version_count() as u64,
        );

        out.push(vec![
            format!("{}", update_rounds + 1),
            format!("{}", table.version_count()),
            fmt_ns(sw_ns),
            fmt_ns(rm_ns),
            format!("{:.2}x", sw_ns / rm_ns),
        ]);
    }
    println!(
        "MVCC visibility filter: software scan vs in-fabric timestamp comparison \
         ({logical_rows} logical rows):"
    );
    println!(
        "{}",
        render_table(
            &[
                "versions/row",
                "total versions",
                "SW visibility",
                "HW visibility",
                "speedup"
            ],
            &out
        )
    );
    bench::emit_bench_json("abl_mvcc", &reg);
}
