//! The paper's headline HTAP trade-off (§I), measured: a single-layout
//! fabric system (always-fresh analytics, no maintenance) versus the
//! conventional dual-layout design (columnar copy refreshed every K
//! commits: pay conversion for freshness, or accept stale answers).
//!
//! Usage: `abl_htap [--accounts N] [--batches B] [--updates U]`

use bench::{arg_usize, fmt_ns, render_table};
use fabric_sim::{MemoryHierarchy, SimConfig};
use workload::mix::{run_dual_layout_htap, run_fabric_htap, MixParams};

fn main() {
    let args = bench::harness::cli_args();
    let accounts = arg_usize(&args, "--accounts", 50_000);
    let batches = arg_usize(&args, "--batches", 24);
    let updates = arg_usize(&args, "--updates", 400);

    let base = MixParams {
        accounts,
        batches,
        updates_per_batch: updates,
        scans: true,
        convert_every: 1,
        seed: 0x47A9,
    };

    let mut rows = Vec::new();
    let mut reg = fabric_sim::MetricsRegistry::new();

    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    let fabric = run_fabric_htap(&mut mem, &base).expect("fabric");
    reg.gauge_set("htap.fabric.oltp_ns", fabric.oltp_ns);
    reg.gauge_set("htap.fabric.olap_ns", fabric.olap_ns);
    reg.gauge_set("htap.fabric.maintenance_ns", fabric.maintenance_ns);
    reg.gauge_set("htap.fabric.total_ns", fabric.total_ns());
    reg.gauge_set(
        "htap.fabric.staleness_commits",
        fabric.avg_staleness_commits,
    );
    rows.push(vec![
        "fabric (single layout)".into(),
        fmt_ns(fabric.oltp_ns),
        fmt_ns(fabric.olap_ns),
        fmt_ns(fabric.maintenance_ns),
        fmt_ns(fabric.total_ns()),
        format!("{:.1}", fabric.avg_staleness_commits),
    ]);

    for convert_every in [1usize, 4, 12, usize::MAX] {
        let p = MixParams {
            convert_every,
            ..base
        };
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let dual = run_dual_layout_htap(&mut mem, &p).expect("dual");
        let label = if convert_every == usize::MAX {
            "dual, never reconvert".to_string()
        } else {
            format!("dual, convert every {convert_every}")
        };
        let slug = if convert_every == usize::MAX {
            "never".to_string()
        } else {
            format!("k{convert_every:02}")
        };
        reg.gauge_set(&format!("htap.dual.{slug}.total_ns"), dual.total_ns());
        reg.gauge_set(
            &format!("htap.dual.{slug}.maintenance_ns"),
            dual.maintenance_ns,
        );
        reg.gauge_set(
            &format!("htap.dual.{slug}.staleness_commits"),
            dual.avg_staleness_commits,
        );
        rows.push(vec![
            label,
            fmt_ns(dual.oltp_ns),
            fmt_ns(dual.olap_ns),
            fmt_ns(dual.maintenance_ns),
            fmt_ns(dual.total_ns()),
            format!("{:.1}", dual.avg_staleness_commits),
        ]);
    }

    println!(
        "HTAP mix: {accounts} accounts, {batches} update batches x {updates} updates, \
         one analytical scan per batch"
    );
    println!(
        "{}",
        render_table(
            &[
                "system",
                "OLTP",
                "OLAP",
                "maintenance",
                "total",
                "staleness (commits)"
            ],
            &rows
        )
    );
    println!(
        "The fabric gets zero-staleness analytics with zero maintenance; the \
         dual-layout design must pick a point on the freshness/maintenance curve (§I)."
    );
    bench::emit_bench_json("abl_htap", &reg);
}
