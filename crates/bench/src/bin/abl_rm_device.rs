//! Ablations of the RM device parameters (paper §IV-A / §V):
//!
//! * staging-buffer size sweep — §V: *"RM supports arbitrary data sizes
//!   even with a small data memory of 2 MB on the FPGA by refilling it
//!   whenever it is full"*; smaller buffers shrink the production
//!   lookahead;
//! * engine-clock sweep — how slow the programmable logic can get (the
//!   prototype runs at 100 MHz) before RM stops beating the baselines.
//!
//! Usage: `abl_rm_device [--rows N]`

use bench::{arg_usize, fmt_ns, render_table};
use fabric_sim::{MemoryHierarchy, SimConfig};
use relmem::RmConfig;
use workload::micro::{run_rm, run_row, MicroQuery};
use workload::SyntheticData;

fn main() {
    let args = bench::harness::cli_args();
    let rows = arg_usize(&args, "--rows", 1 << 19);
    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    eprintln!("# generating {rows} rows...");
    let data = SyntheticData::build(&mut mem, rows, 16, 0xAB1).expect("generate");
    let q = MicroQuery::projectivity(6);
    let row = run_row(&mut mem, &data.rows, &q).expect("row");

    // --- Buffer sweep (fixed 16 KiB delivery batches).
    let mut out = Vec::new();
    for kib in [64usize, 256, 1024, 2048, 8192] {
        let cfg = RmConfig {
            buffer_bytes: kib * 1024,
            batch_bytes: 16 * 1024,
            ..RmConfig::prototype()
        };
        let rm = run_rm(&mut mem, &data.rows, &q, cfg).expect("rm");
        assert_eq!(rm.checksum, row.checksum);
        let m = mem.metrics_mut();
        m.gauge_set(&format!("rm_device.buffer_{kib:04}kib.ns"), rm.ns);
        m.gauge_set(
            &format!("rm_device.buffer_{kib:04}kib.speedup_vs_row"),
            row.ns / rm.ns,
        );
        out.push(vec![
            format!("{kib} KiB"),
            fmt_ns(rm.ns),
            format!("{:.2}x", row.ns / rm.ns),
        ]);
    }
    println!(
        "RM staging-buffer sweep (projectivity 6, ROW = {}):",
        fmt_ns(row.ns)
    );
    println!(
        "{}",
        render_table(&["buffer", "RM time", "speedup vs ROW"], &out)
    );

    // --- Engine-clock sweep.
    let mut out = Vec::new();
    for mhz in [25u32, 50, 100, 200, 400] {
        let period = 1000.0 / mhz as f64;
        let cfg = RmConfig {
            engine_ns_per_line: period,
            engine_ns_per_row: period,
            ..RmConfig::prototype()
        };
        let rm = run_rm(&mut mem, &data.rows, &q, cfg).expect("rm");
        assert_eq!(rm.checksum, row.checksum);
        let m = mem.metrics_mut();
        m.gauge_set(&format!("rm_device.clock_{mhz:03}mhz.ns"), rm.ns);
        m.gauge_set(
            &format!("rm_device.clock_{mhz:03}mhz.speedup_vs_row"),
            row.ns / rm.ns,
        );
        out.push(vec![
            format!("{mhz} MHz"),
            fmt_ns(rm.ns),
            format!("{:.2}x", row.ns / rm.ns),
        ]);
    }
    println!("RM engine-clock sweep (projectivity 6):");
    println!(
        "{}",
        render_table(&["engine clock", "RM time", "speedup vs ROW"], &out)
    );

    // --- RM prototype vs the envisioned Relational Memory Controller
    // (§IV-C): controller-domain engine, miss-fill-like delivery, ISA-level
    // configuration.
    let mut out = Vec::new();
    for p in [1usize, 6, 11] {
        let q = MicroQuery::projectivity(p);
        let rm = run_rm(&mut mem, &data.rows, &q, RmConfig::prototype()).expect("rm");
        let rmc = run_rm(&mut mem, &data.rows, &q, RmConfig::rmc()).expect("rmc");
        assert_eq!(rm.checksum, rmc.checksum);
        let m = mem.metrics_mut();
        m.gauge_set(&format!("rm_device.rmc.p{p:02}.fpga_ns"), rm.ns);
        m.gauge_set(&format!("rm_device.rmc.p{p:02}.rmc_ns"), rmc.ns);
        out.push(vec![
            format!("{p}"),
            fmt_ns(rm.ns),
            fmt_ns(rmc.ns),
            format!("{:.2}x", rm.ns / rmc.ns),
        ]);
    }
    println!("RM prototype vs Relational Memory Controller (section IV-C):");
    println!(
        "{}",
        render_table(&["projectivity", "RM (FPGA)", "RMC", "RMC gain"], &out)
    );

    // --- Concurrent ephemeral variables: the engine time-multiplexed
    // across N active geometries (each tenant gets 1/N of the beats and
    // buffer).
    let mut out = Vec::new();
    let q = MicroQuery::projectivity(4);
    let solo = run_rm(&mut mem, &data.rows, &q, RmConfig::prototype()).expect("solo");
    for tenants in [1usize, 2, 4, 8] {
        let cfg = RmConfig::prototype().shared(tenants);
        let rm = run_rm(&mut mem, &data.rows, &q, cfg).expect("shared");
        assert_eq!(rm.checksum, solo.checksum);
        let m = mem.metrics_mut();
        m.gauge_set(&format!("rm_device.tenants_{tenants:02}.ns"), rm.ns);
        m.gauge_set(
            &format!("rm_device.tenants_{tenants:02}.slowdown"),
            rm.ns / solo.ns,
        );
        out.push(vec![
            format!("{tenants}"),
            fmt_ns(rm.ns),
            format!("{:.2}x", rm.ns / solo.ns),
        ]);
    }
    println!("Device sharing across concurrent ephemeral variables (projectivity 4):");
    println!(
        "{}",
        render_table(&["active tenants", "per-tenant time", "slowdown"], &out)
    );
    let stats = mem.stats();
    stats.record_into(mem.metrics_mut(), "mem");
    bench::emit_bench_json("abl_rm_device", mem.metrics());
}
