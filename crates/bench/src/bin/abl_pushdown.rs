//! Ablation of the §IV-B extensions: pushing *selection* and *aggregation*
//! into the fabric, versus the base prototype that pushes projection only.
//!
//! * Selection push-down: the device evaluates the predicate while
//!   gathering, so only qualifying rows' columns cross the hierarchy — the
//!   win grows as selectivity drops.
//! * Aggregation push-down: only the aggregate scalars leave the device
//!   (*"the ephemeral variables will contain only … the aggregation
//!   result"*).
//!
//! Usage: `abl_pushdown [--rows N]`

use bench::{arg_usize, fmt_ns, render_table};
use fabric_sim::{MemoryHierarchy, SimConfig};
use fabric_types::{AggFunc, AggSpec, CmpOp, ColumnPredicate, OutputMode, Predicate, Value};
use relmem::{EphemeralColumns, RmConfig};
use workload::micro::{run_rm, run_rm_pushdown, MicroQuery};
use workload::SyntheticData;

fn main() {
    let args = bench::harness::cli_args();
    let rows = arg_usize(&args, "--rows", 1 << 19);
    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    eprintln!("# generating {rows} rows...");
    let data = SyntheticData::build(&mut mem, rows, 16, 0xAB2).expect("generate");

    // --- Selection push-down across selectivities (project 10, filter 2):
    // wide enough that the consumer, not the device scan, is the
    // bottleneck — which is where filtering at the device pays off.
    let mut out = Vec::new();
    for sel in [0.9f64, 0.5, 0.1, 0.01] {
        let q = MicroQuery::proj_sel(10, 2, 16, sel.sqrt());
        let base = run_rm(&mut mem, &data.rows, &q, RmConfig::prototype()).expect("rm");
        let push = run_rm_pushdown(&mut mem, &data.rows, &q, RmConfig::prototype()).expect("push");
        assert_eq!(base.checksum, push.checksum);
        let m = mem.metrics_mut();
        m.gauge_set(&format!("pushdown.select_{sel:.2}.cpu_filter_ns"), base.ns);
        m.gauge_set(
            &format!("pushdown.select_{sel:.2}.device_filter_ns"),
            push.ns,
        );
        out.push(vec![
            format!("{:.0}%", sel * 100.0),
            fmt_ns(base.ns),
            fmt_ns(push.ns),
            format!("{:.2}x", base.ns / push.ns),
        ]);
    }
    println!("Selection push-down (project 10 cols, 2 conjuncts):");
    println!(
        "{}",
        render_table(
            &[
                "selectivity",
                "RM (CPU filter)",
                "RM (device filter)",
                "speedup"
            ],
            &out
        )
    );

    // --- Aggregation push-down: eight per-column SUMs, optionally
    // filtered. Shipping eight columns and adding on the CPU is
    // consume-bound; the device returns just eight scalars.
    let mut out = Vec::new();
    let agg_cols: Vec<usize> = (0..8).collect();
    for sel in [1.0f64, 0.5, 0.05] {
        let thr = SyntheticData::threshold(sel);
        let layout = data.rows.layout();
        let pred = if sel >= 1.0 {
            Predicate::always_true()
        } else {
            Predicate::always_true().and(ColumnPredicate::new(
                layout.field(15).unwrap(),
                CmpOp::Lt,
                Value::I32(thr),
            ))
        };

        // Software consume: ship the eight columns (+ filter column),
        // filter + sum on the CPU.
        mem.flush_caches();
        let t0 = mem.now();
        let costs = mem.costs();
        let mut cols = agg_cols.clone();
        if sel < 1.0 {
            cols.push(15);
        }
        let g = data.rows.geometry(&cols).unwrap();
        let mut eph = EphemeralColumns::configure(&mut mem, RmConfig::prototype(), g).unwrap();
        let mut sw_sums = [0i64; 8];
        while let Some(b) = eph.next_batch(&mut mem) {
            for r in 0..b.len() {
                mem.cpu(costs.vector_elem + costs.value_op);
                if sel >= 1.0 || b.i32_at(r, 8) < thr {
                    mem.cpu(costs.value_op * 8);
                    for (j, s) in sw_sums.iter_mut().enumerate() {
                        *s += b.i32_at(r, j) as i64;
                    }
                }
            }
        }
        let sw_ns = mem.ns_since(t0);

        // Device aggregation: only the results leave the fabric.
        mem.flush_caches();
        let t0 = mem.now();
        let specs: Vec<AggSpec> = agg_cols
            .iter()
            .map(|&c| AggSpec::over(AggFunc::Sum, layout.field(c).unwrap()))
            .collect();
        let g = data
            .rows
            .geometry(&agg_cols)
            .unwrap()
            .with_predicate(pred)
            .with_mode(OutputMode::Aggregate(specs));
        let mut eph = EphemeralColumns::configure(&mut mem, RmConfig::prototype(), g).unwrap();
        let vals = eph.run_aggregate(&mut mem).unwrap();
        let hw_ns = mem.ns_since(t0);
        for (j, s) in sw_sums.iter().enumerate() {
            assert_eq!(vals[j], Value::I64(*s), "sum {j} disagrees at sel {sel}");
        }

        let m = mem.metrics_mut();
        m.gauge_set(&format!("pushdown.agg_{sel:.2}.cpu_ns"), sw_ns);
        m.gauge_set(&format!("pushdown.agg_{sel:.2}.device_ns"), hw_ns);

        out.push(vec![
            format!("{:.0}%", sel * 100.0),
            fmt_ns(sw_ns),
            fmt_ns(hw_ns),
            format!("{:.2}x", sw_ns / hw_ns),
        ]);
    }
    println!("Aggregation push-down (8 column SUMs [WHERE c15 < thr]):");
    println!(
        "{}",
        render_table(
            &[
                "selectivity",
                "CPU aggregate",
                "device aggregate",
                "speedup"
            ],
            &out
        )
    );
    let stats = mem.stats();
    stats.record_into(mem.metrics_mut(), "mem");
    bench::emit_bench_json("abl_pushdown", mem.metrics());
}
