//! Regenerates **Fig. 6**: heatmaps of RM speedup over ROW (6a) and over
//! COL (6b) as the number of projected columns (x) and selection columns
//! (y) each range from 1 to 10.
//!
//! Paper claims to reproduce (shape):
//! * 6a — RM beats direct row-wise access at *every* grid point (paper:
//!   1.3–1.5×; our ROW baseline carries more per-tuple interpretation
//!   overhead, so our speedups run higher);
//! * 6b — direct columnar access wins in the lower-left corner (small
//!   total column count); RM dominates as columns grow, with the largest
//!   speedups in the upper region.
//!
//! Usage: `fig6_heatmap [rm-vs-row|rm-vs-col|both] [--rows N]
//!        [--selectivity S]` (per-conjunct selectivity, default 0.93 so ten
//!        conjuncts keep ~50 % of rows, keeping work comparable across the
//!        grid).

use bench::{arg_f64, arg_usize};
use fabric_sim::{MemoryHierarchy, SimConfig};
use relmem::RmConfig;
use workload::micro::{run_col, run_rm, run_row, MicroQuery};
use workload::SyntheticData;

fn main() {
    let args = bench::harness::cli_args();
    let rows = arg_usize(&args, "--rows", 1 << 19); // 32 MiB table
    let selectivity = arg_f64(&args, "--selectivity", 0.93);
    let which = args.get(1).map(String::as_str).unwrap_or("both");

    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    eprintln!("# generating {rows} rows (16 x i32)...");
    let data = SyntheticData::build(&mut mem, rows, 16, 0xF16_6).expect("generate");

    let mut vs_row = vec![vec![0.0f64; 10]; 10];
    let mut vs_col = vec![vec![0.0f64; 10]; 10];
    for s in 1..=10usize {
        for p in 1..=10usize {
            let q = MicroQuery::proj_sel(p, s, 16, selectivity);
            let row = run_row(&mut mem, &data.rows, &q).expect("row");
            let col = run_col(&mut mem, &data.cols, &q).expect("col");
            let rm = run_rm(&mut mem, &data.rows, &q, RmConfig::prototype()).expect("rm");
            assert_eq!(
                row.checksum, col.checksum,
                "engines disagree at p={p} s={s}"
            );
            assert_eq!(row.checksum, rm.checksum, "engines disagree at p={p} s={s}");
            vs_row[s - 1][p - 1] = row.ns / rm.ns;
            vs_col[s - 1][p - 1] = col.ns / rm.ns;
            let m = mem.metrics_mut();
            m.gauge_set(&format!("fig6.s{s:02}.p{p:02}.rm_vs_row"), row.ns / rm.ns);
            m.gauge_set(&format!("fig6.s{s:02}.p{p:02}.rm_vs_col"), col.ns / rm.ns);
        }
        eprintln!("# selection row {s}/10 done");
    }

    if which == "rm-vs-row" || which == "both" {
        print_grid("Fig. 6a — speedup of RM vs ROW", &vs_row);
    }
    if which == "rm-vs-col" || which == "both" {
        print_grid("Fig. 6b — speedup of RM vs COL", &vs_col);
    }
    let stats = mem.stats();
    stats.record_into(mem.metrics_mut(), "mem");
    bench::emit_bench_json("fig6_heatmap", mem.metrics());
}

fn print_grid(title: &str, grid: &[Vec<f64>]) {
    println!("{title}");
    println!("(rows: # selection columns 10..1, cols: # projected columns 1..10)");
    for s in (0..10).rev() {
        let cells: Vec<String> = grid[s].iter().map(|v| format!("{v:5.2}")).collect();
        println!("s={:2} | {}", s + 1, cells.join(" "));
    }
    println!();
}
