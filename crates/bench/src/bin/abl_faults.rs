//! Ablation of graceful degradation under injected faults (DESIGN.md §9):
//! what does fault tolerance cost, and when does a faulty RM device stop
//! being worth using?
//!
//! Sweeps the per-site fault rate (delivery timeouts + CRC corruption +
//! engine stalls, all seeded and replayable) over an RM-routed projection
//! query and reports the resilient executor's simulated time, the injected
//! fault / retry / fallback counts, and the overhead vs. both the
//! fault-free RM run and the pure-software ROW path. Every configuration
//! must return the bit-identical answer — the sweep asserts it.
//!
//! Usage: `abl_faults [--rows N] [--seed S]`

use bench::{arg_usize, fmt_ns, render_table};
use fabric_sim::{FaultConfig, RecoveryPolicy, SimConfig};
use fabric_types::{ColumnType, Schema, Value};
use query::{AccessPath, Engine, FaultContext};
use rowstore::RowTable;

/// Wide rows-only table (16 × i64): the optimizer routes its projections
/// to the RM path, which is what this ablation stresses.
fn build_engine(rows: usize) -> Engine {
    let mut engine = Engine::new(SimConfig::zynq_a53());
    let names: Vec<(String, ColumnType)> = (0..16)
        .map(|i| (format!("c{i}"), ColumnType::I64))
        .collect();
    let pairs: Vec<(&str, ColumnType)> = names.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    let schema = Schema::from_pairs(&pairs);
    let mut rt = RowTable::create(engine.mem(), schema, rows).expect("create");
    for i in 0..rows as i64 {
        let row: Vec<Value> = (0..16).map(|j| Value::I64(i * 16 + j)).collect();
        rt.load(engine.mem(), &row).expect("load");
    }
    engine.register_rows("t", rt);
    engine
}

fn main() {
    let args = bench::harness::cli_args();
    let rows = arg_usize(&args, "--rows", 32_768);
    let seed = arg_usize(&args, "--seed", 0xFA_B51C) as u64;
    let sql = format!("SELECT c0, c5 FROM t WHERE c0 < {}", (rows as i64) * 8);

    eprintln!("# loading {rows} rows...");
    let mut engine = build_engine(rows);

    // Baselines: the fault-free RM run and the pure-software ROW path.
    let clean = engine.session().run_on(&sql, AccessPath::Rm).expect("rm");
    let row = engine.session().run_on(&sql, AccessPath::Row).expect("row");

    let rounds = arg_usize(&args, "--rounds", 16);
    let mut out = Vec::new();
    for rate in [0.0, 1e-3, 1e-2, 5e-2, 0.2] {
        let cfg = FaultConfig {
            rm_stall_prob: rate,
            rm_stall_ns: 2_500.0,
            rm_timeout_prob: rate,
            rm_corrupt_prob: rate,
            ..FaultConfig::quiet(seed)
        };
        engine.set_fault_context(FaultContext::new(cfg, RecoveryPolicy::default()));
        let mut total_ns = 0.0;
        let mut retries = 0u64;
        for _ in 0..rounds {
            // This sweep prices *execution* under faults; a memoized
            // answer from the operator cache would flatten the rate-0
            // reference, so every round re-earns its rows.
            engine.clear_op_cache();
            let res = engine.session().run(&sql).expect("resilient");
            assert_eq!(res.rows, clean.rows, "degradation must preserve the answer");
            total_ns += res.ns;
            retries += res.rm_stats.map_or(0, |s| s.retries);
        }
        let mean = total_ns / rounds as f64;
        let ctx_fallbacks = engine.fault_context().fallbacks;
        let ctx_injected = engine.fault_context().plan.stats().total();
        let m = engine.mem().metrics_mut();
        m.gauge_set(&format!("faults.rate_{rate:.3}.mean_ns"), mean);
        m.gauge_set(
            &format!("faults.rate_{rate:.3}.vs_clean_rm"),
            mean / clean.ns,
        );
        m.counter_add(&format!("faults.rate_{rate:.3}.retries"), retries);
        out.push(vec![
            format!("{rate:.3}"),
            fmt_ns(mean),
            format!("{:.2}x", mean / clean.ns),
            format!("{:.2}x", mean / row.ns),
            format!("{ctx_injected}"),
            format!("{retries}"),
            format!("{ctx_fallbacks}"),
        ]);
    }
    println!(
        "Degradation overhead vs fault rate ({rows} rows, {rounds} rounds per \
         rate, seed {seed}; fault-free RM = {}, pure software ROW = {}):",
        fmt_ns(clean.ns),
        fmt_ns(row.ns)
    );
    println!(
        "{}",
        render_table(
            &[
                "fault rate",
                "mean time",
                "vs clean RM",
                "vs ROW",
                "injected",
                "retries",
                "fallbacks",
            ],
            &out
        )
    );

    // --- A dead device: every delivery times out, so the executor
    // re-plans onto software after the retry budget. The interesting
    // number is the price of the wasted RM attempt vs. going straight
    // to the software path.
    let cfg = FaultConfig {
        rm_timeout_prob: 1.0,
        ..FaultConfig::quiet(seed)
    };
    let policy = RecoveryPolicy::default();
    engine.set_fault_context(FaultContext::new(cfg, policy));
    let mut out = Vec::new();
    for round in 1..=(policy.breaker_threshold + 2) {
        let res = engine.session().run(&sql).expect("resilient");
        assert_eq!(res.rows, clean.rows);
        let ctx = engine.fault_context();
        out.push(vec![
            format!("{round}"),
            fmt_ns(res.ns),
            format!("{:.2}x", res.ns / row.ns),
            format!("{}", ctx.fallbacks),
            format!("{}", ctx.breaker_skips),
            format!("{:?}", ctx.rm_health().state()),
        ]);
    }
    println!(
        "Dead-device rounds (timeout prob 1.0): fallback cost amortizes once \
         the breaker opens and the RM attempt is skipped entirely:"
    );
    println!(
        "{}",
        render_table(
            &[
                "round",
                "time",
                "vs ROW",
                "fallbacks",
                "breaker skips",
                "breaker"
            ],
            &out
        )
    );
    let (fallbacks, breaker_skips) = {
        let ctx = engine.fault_context();
        (ctx.fallbacks, ctx.breaker_skips)
    };
    let m = engine.mem().metrics_mut();
    m.counter_add("faults.dead_device.fallbacks", fallbacks);
    m.counter_add("faults.dead_device.breaker_skips", breaker_skips);
    let stats = engine.mem_ref().stats();
    stats.record_into(engine.mem().metrics_mut(), "mem");
    bench::emit_bench_json("abl_faults", engine.mem_ref().metrics());
}
