//! Shared harness utilities for the figure-regeneration binaries.

use fabric_sim::MetricsRegistry;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Serialize a bench run's metrics to `results/BENCH_<name>.json` through
/// the fabric-obs snapshot serializer — the workspace's single stats
/// serialization path (deterministic: sorted keys, fixed float format).
/// Returns the written path.
pub fn write_bench_json(name: &str, registry: &MetricsRegistry) -> std::io::Result<PathBuf> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, registry.snapshot().to_json())?;
    Ok(path)
}

/// [`write_bench_json`] plus the standard epilogue every figure binary
/// uses: announce the artifact on stderr, never fail the run over it.
pub fn emit_bench_json(name: &str, registry: &MetricsRegistry) {
    match write_bench_json(name, registry) {
        Ok(path) => eprintln!("# metrics: {}", path.display()),
        Err(e) => eprintln!("# metrics export failed: {e}"),
    }
}

/// Simple command-line flag extraction: `--name value`.
pub fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// `--name value` parsed as usize, with default.
pub fn arg_usize(args: &[String], name: &str, default: usize) -> usize {
    arg_value(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `--name value` parsed as f64, with default.
pub fn arg_f64(args: &[String], name: &str, default: f64) -> f64 {
    arg_value(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Render a table of rows with a header, aligned for terminal reading.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in header.iter().enumerate() {
        let _ = write!(out, "{:>w$}  ", h, w = widths[i]);
    }
    out.push('\n');
    for (i, _) in header.iter().enumerate() {
        let _ = write!(out, "{}  ", "-".repeat(widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:>w$}  ", cell, w = widths[i]);
        }
        out.push('\n');
    }
    out
}

/// Format nanoseconds human-readably.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse() {
        let args: Vec<String> = ["--rows", "500", "--frac", "0.25"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_usize(&args, "--rows", 1), 500);
        assert_eq!(arg_f64(&args, "--frac", 0.0), 0.25);
        assert_eq!(arg_usize(&args, "--missing", 7), 7);
    }

    #[test]
    fn table_renders_aligned() {
        let s = render_table(
            &["p", "ROW"],
            &[
                vec!["1".into(), "1.00".into()],
                vec!["10".into(), "0.55".into()],
            ],
        );
        assert!(s.contains("ROW"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn bench_json_goes_through_the_snapshot_serializer() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("rows", 100);
        reg.gauge_set("fig.row_ns", 1.5);
        let dir = std::env::temp_dir().join("bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let prev = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let path = write_bench_json("unit", &reg).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::env::set_current_dir(prev).unwrap();
        assert_eq!(text, reg.snapshot().to_json());
        assert!(fabric_sim::parse_json(&text).is_ok(), "{text}");
        assert!(path.ends_with("results/BENCH_unit.json"));
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(500.0), "500ns");
        assert_eq!(fmt_ns(1500.0), "1.50us");
        assert_eq!(fmt_ns(2.5e6), "2.50ms");
        assert_eq!(fmt_ns(3.2e9), "3.20s");
    }
}
