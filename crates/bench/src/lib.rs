//! Shared harness utilities for the figure-regeneration binaries.

pub mod harness;

pub use harness::{
    bench_artifact_json, cli_args, emit_bench_json, results_dir, write_artifact, write_bench_json,
};

use std::fmt::Write as _;

/// Simple command-line flag extraction: `--name value`.
pub fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// `--name value` parsed as usize, with default.
pub fn arg_usize(args: &[String], name: &str, default: usize) -> usize {
    arg_value(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `--name value` parsed as f64, with default.
pub fn arg_f64(args: &[String], name: &str, default: f64) -> f64 {
    arg_value(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Render a table of rows with a header, aligned for terminal reading.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in header.iter().enumerate() {
        let _ = write!(out, "{:>w$}  ", h, w = widths[i]);
    }
    out.push('\n');
    for (i, _) in header.iter().enumerate() {
        let _ = write!(out, "{}  ", "-".repeat(widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:>w$}  ", cell, w = widths[i]);
        }
        out.push('\n');
    }
    out
}

/// Format nanoseconds human-readably.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse() {
        let args: Vec<String> = ["--rows", "500", "--frac", "0.25"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_usize(&args, "--rows", 1), 500);
        assert_eq!(arg_f64(&args, "--frac", 0.0), 0.25);
        assert_eq!(arg_usize(&args, "--missing", 7), 7);
    }

    #[test]
    fn table_renders_aligned() {
        let s = render_table(
            &["p", "ROW"],
            &[
                vec!["1".into(), "1.00".into()],
                vec!["10".into(), "0.55".into()],
            ],
        );
        assert!(s.contains("ROW"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(500.0), "500ns");
        assert_eq!(fmt_ns(1500.0), "1.50us");
        assert_eq!(fmt_ns(2.5e6), "2.50ms");
        assert_eq!(fmt_ns(3.2e9), "3.20s");
    }
}
