//! The one `results/` emission path for every figure binary.
//!
//! Everything a bench writes lands here: the schema-versioned metrics
//! artifact (`BENCH_<name>.json`) the perf regression gate compares
//! against, and auxiliary artifacts (Chrome traces). Bins must not write
//! into `results/` directly — the fabric-lint `adhoc-bench-output` rule
//! rejects it — so the artifact envelope, the directory choice, and the
//! schema stamp stay uniform across all thirteen binaries.

use fabric_sim::{MetricsRegistry, BENCH_SCHEMA_VERSION};
use std::path::PathBuf;

/// Command-line arguments (program name included), as every bin consumes
/// them via [`crate::arg_value`] and friends.
pub fn cli_args() -> Vec<String> {
    std::env::args().collect()
}

/// The directory artifacts are written into: `results/` under the current
/// directory, unless `FABRIC_RESULTS_DIR` redirects it. The perf gate
/// (`tools/perf_gate.sh`) reruns benches with the redirect set so fresh
/// artifacts land in a scratch directory instead of clobbering the
/// checked-in baselines.
pub fn results_dir() -> PathBuf {
    std::env::var_os("FABRIC_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Render the schema-versioned bench-artifact envelope around a metrics
/// snapshot — the format `fabric_obs::regress` validates on both sides of
/// a comparison:
///
/// ```json
/// {"schema_version":1,"bench":"<name>","metrics":{...}}
/// ```
pub fn bench_artifact_json(name: &str, registry: &MetricsRegistry) -> String {
    format!(
        "{{\"schema_version\":{BENCH_SCHEMA_VERSION},\"bench\":\"{name}\",\"metrics\":{}}}",
        registry.snapshot().to_json()
    )
}

/// Write an auxiliary artifact (a trace, a CSV) into the results
/// directory. Returns the written path.
pub fn write_artifact(filename: &str, contents: &str) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(filename);
    std::fs::write(&path, contents)?;
    Ok(path)
}

/// Serialize a bench run's metrics to `<results>/BENCH_<name>.json` in the
/// schema-versioned envelope, through the fabric-obs snapshot serializer —
/// the workspace's single stats serialization path (deterministic: sorted
/// keys, fixed float format). Returns the written path.
pub fn write_bench_json(name: &str, registry: &MetricsRegistry) -> std::io::Result<PathBuf> {
    write_artifact(
        &format!("BENCH_{name}.json"),
        &bench_artifact_json(name, registry),
    )
}

/// [`write_bench_json`] plus the standard epilogue every figure binary
/// uses: announce the artifact on stderr, never fail the run over it.
pub fn emit_bench_json(name: &str, registry: &MetricsRegistry) {
    match write_bench_json(name, registry) {
        Ok(path) => eprintln!("# metrics: {}", path.display()),
        Err(e) => eprintln!("# metrics export failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::{compare_bench, GatePolicy};

    #[test]
    fn bench_artifact_is_schema_versioned_and_gate_comparable() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("rows", 100);
        reg.gauge_set("fig.row_ns", 1.5);
        let json = bench_artifact_json("unit", &reg);
        let doc = fabric_sim::parse_json(&json).unwrap();
        assert_eq!(
            doc.get("schema_version").and_then(|v| v.as_num()),
            Some(BENCH_SCHEMA_VERSION as f64)
        );
        assert_eq!(doc.get("bench").and_then(|v| v.as_str()), Some("unit"));
        // An artifact must compare clean against itself through the gate.
        let report = compare_bench(&json, &json, &GatePolicy::default()).unwrap();
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn results_dir_honors_the_redirect() {
        // Serialized with nothing: env mutation is process-global, but
        // this is the only test that touches FABRIC_RESULTS_DIR.
        std::env::set_var("FABRIC_RESULTS_DIR", "/tmp/fabric_gate_test");
        assert_eq!(results_dir(), PathBuf::from("/tmp/fabric_gate_test"));
        std::env::remove_var("FABRIC_RESULTS_DIR");
        assert_eq!(results_dir(), PathBuf::from("results"));
    }

    #[test]
    fn bench_json_goes_through_the_snapshot_serializer() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("rows", 100);
        let dir = std::env::temp_dir().join("bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let prev = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let path = write_bench_json("unit", &reg).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::env::set_current_dir(prev).unwrap();
        assert_eq!(text, bench_artifact_json("unit", &reg));
        assert!(text.contains(&reg.snapshot().to_json()), "{text}");
        assert!(path.ends_with("results/BENCH_unit.json"));
    }
}
