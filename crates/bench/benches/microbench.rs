//! Criterion micro-benchmarks of the real (wall-clock) library code paths.
//!
//! The figure binaries report *simulated* time; these benches measure how
//! fast the library itself runs — the packing datapath, the codecs, the
//! qualification logic, and a full simulated query per engine.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use fabric_sim::{MemoryHierarchy, SimConfig};
use fabric_types::{
    CmpOp, ColumnPredicate, ColumnType, Geometry, Predicate, RowLayout, Schema, Value,
};
use relmem::{packer, RmConfig};
use workload::micro::{run_col, run_rm, run_row, MicroQuery};
use workload::SyntheticData;

fn bench_packer(c: &mut Criterion) {
    let schema = Schema::uniform(16, ColumnType::I32);
    let layout = RowLayout::packed(&schema);
    let fields = layout.fields(&[0, 5, 9, 12]).unwrap();
    let g = Geometry::packed(0, 64, 1, fields);
    let row: Vec<u8> = (0..64u8).collect();

    let mut group = c.benchmark_group("packer");
    group.throughput(Throughput::Bytes(64));
    group.bench_function("pack_row_4_of_16", |b| {
        let mut out = Vec::with_capacity(1 << 16);
        b.iter(|| {
            out.clear();
            packer::pack_row(black_box(&g), black_box(&row), &mut out);
            black_box(&out);
        })
    });

    let pred = Predicate::always_true().and(ColumnPredicate::new(
        layout.field(3).unwrap(),
        CmpOp::Lt,
        Value::I32(1000),
    ));
    let gp = g.clone().with_predicate(pred);
    group.bench_function("row_qualifies", |b| {
        b.iter(|| packer::row_qualifies(black_box(&gp), black_box(&row)).unwrap())
    });
    group.finish();
}

fn bench_codecs(c: &mut Criterion) {
    let values: Vec<i64> = (0..8192).map(|i| 1_000_000 + i * 3).collect();
    let raw: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();

    let mut group = c.benchmark_group("codecs");
    group.throughput(Throughput::Bytes(raw.len() as u64));
    group.bench_function("delta_encode_8k", |b| {
        b.iter(|| compress::BlockDelta::encode(black_box(&values)))
    });
    let delta = compress::BlockDelta::encode(&values);
    group.bench_function("delta_decode_8k", |b| {
        b.iter(|| delta.decode_all().unwrap())
    });
    group.bench_function("dict_encode_8k", |b| {
        b.iter(|| compress::DictEncoded::encode(black_box(&raw), 8).unwrap())
    });
    group.bench_function("rle_encode_8k", |b| {
        b.iter(|| compress::RleEncoded::encode(black_box(&values)))
    });
    group.finish();
}

fn bench_simulated_engines(c: &mut Criterion) {
    // Wall-clock cost of simulating one query per engine (16k rows).
    let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
    let data = SyntheticData::build(&mut mem, 16_384, 16, 0xBE7).unwrap();
    let q = MicroQuery::projectivity(4);

    let mut group = c.benchmark_group("simulated_query_16k_rows");
    group.bench_function("row_engine", |b| {
        b.iter(|| run_row(&mut mem, &data.rows, black_box(&q)).unwrap())
    });
    group.bench_function("col_engine", |b| {
        b.iter(|| run_col(&mut mem, &data.cols, black_box(&q)).unwrap())
    });
    group.bench_function("rm_engine", |b| {
        b.iter(|| run_rm(&mut mem, &data.rows, black_box(&q), RmConfig::prototype()).unwrap())
    });
    group.finish();
}

fn bench_value_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("value");
    let bytes = 42i64.to_le_bytes();
    group.bench_function("decode_i64", |b| {
        b.iter(|| Value::decode(ColumnType::I64, black_box(&bytes)))
    });
    let (a, bb) = (Value::I64(7), Value::I64(9));
    group.bench_function("compare_i64", |b| {
        b.iter(|| a.compare(black_box(&bb)).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_packer,
    bench_codecs,
    bench_simulated_engines,
    bench_value_codec
);
criterion_main!(benches);
