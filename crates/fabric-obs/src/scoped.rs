//! Scoped metric registries: a borrowed view over [`MetricsRegistry`]
//! that prefixes every metric name with a dotted scope
//! (`"session.3."`, `"durability.wal."`, …).
//!
//! Scopes are a *naming* convention, not separate storage — every write
//! lands in the one global registry, so the prefix tree rolls up into the
//! same [`MetricsSnapshot`] that benches export and the perf gate checks.
//! [`MetricsSnapshot::subtree`] is the read-side complement: it carves a
//! prefix-stripped view back out of a snapshot.

use crate::metrics::{Histogram, MetricsRegistry, MetricsSnapshot};

/// A write handle that namespaces metric names under a dotted prefix.
///
/// Created by [`MetricsRegistry::scoped`]; the prefix always ends with
/// `'.'` (appended if the caller omitted it), so `scoped("session.3")`
/// and `scoped("session.3.")` name the same subtree.
pub struct ScopedMetrics<'a> {
    reg: &'a mut MetricsRegistry,
    prefix: String,
}

impl<'a> ScopedMetrics<'a> {
    pub(crate) fn new(reg: &'a mut MetricsRegistry, prefix: &str) -> Self {
        let mut prefix = prefix.to_string();
        if !prefix.ends_with('.') {
            prefix.push('.');
        }
        ScopedMetrics { reg, prefix }
    }

    fn key(&self, name: &str) -> String {
        let mut k = String::with_capacity(self.prefix.len() + name.len());
        k.push_str(&self.prefix);
        k.push_str(name);
        k
    }

    /// The scope's full dotted prefix, trailing `'.'` included.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Add to `"<prefix><name>"` in the underlying registry.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        let k = self.key(name);
        self.reg.counter_add(&k, delta);
    }

    /// Read counter `"<prefix><name>"` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.reg.counter(&self.key(name))
    }

    /// Set gauge `"<prefix><name>"`.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        let k = self.key(name);
        self.reg.gauge_set(&k, value);
    }

    /// Record a histogram sample under `"<prefix><name>"`.
    pub fn observe(&mut self, name: &str, value: u64) {
        let k = self.key(name);
        self.reg.observe(&k, value);
    }

    /// Read histogram `"<prefix><name>"`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.reg.histogram(&self.key(name))
    }

    /// A child scope: `scope("wal")` under `"durability."` writes to
    /// `"durability.wal.*"`. Reborrows the same registry.
    pub fn scope(&mut self, name: &str) -> ScopedMetrics<'_> {
        let child = self.key(name);
        ScopedMetrics::new(self.reg, &child)
    }
}

impl MetricsRegistry {
    /// A scoped write handle over this registry; see [`ScopedMetrics`].
    pub fn scoped(&mut self, prefix: &str) -> ScopedMetrics<'_> {
        ScopedMetrics::new(self, prefix)
    }
}

impl MetricsSnapshot {
    /// The prefix-stripped subtree of this snapshot: every metric whose
    /// name starts with `"<prefix>."` (the dot is appended if missing),
    /// re-keyed without the prefix. `subtree("session.3").counter("queries")`
    /// reads what `scoped("session.3").counter_add("queries", ..)` wrote.
    pub fn subtree(&self, prefix: &str) -> MetricsSnapshot {
        let mut p = prefix.to_string();
        if !p.ends_with('.') {
            p.push('.');
        }
        fn strip<V: Clone>(
            m: &std::collections::BTreeMap<String, V>,
            p: &str,
        ) -> std::collections::BTreeMap<String, V> {
            m.iter()
                .filter_map(|(k, v)| k.strip_prefix(p).map(|rest| (rest.to_string(), v.clone())))
                .collect()
        }
        MetricsSnapshot {
            counters: strip(&self.counters, &p),
            gauges: strip(&self.gauges, &p),
            histograms: strip(&self.histograms, &p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_prefix_and_roll_up() {
        let mut reg = MetricsRegistry::new();
        {
            let mut s = reg.scoped("session.3");
            s.counter_add("queries", 2);
            s.observe("latency.q1", 700);
            s.gauge_set("p99", 700.0);
            let mut child = s.scope("io");
            child.counter_add("reads", 5);
        }
        assert_eq!(reg.counter("session.3.queries"), 2);
        assert_eq!(reg.counter("session.3.io.reads"), 5);
        assert_eq!(reg.gauge("session.3.p99"), Some(700.0));
        assert_eq!(
            reg.histogram("session.3.latency.q1").map(Histogram::count),
            Some(1)
        );
    }

    #[test]
    fn trailing_dot_is_normalized() {
        let mut reg = MetricsRegistry::new();
        reg.scoped("durability.wal.").counter_add("appends", 1);
        reg.scoped("durability.wal").counter_add("appends", 1);
        assert_eq!(reg.counter("durability.wal.appends"), 2);
    }

    #[test]
    fn subtree_strips_the_prefix() {
        let mut reg = MetricsRegistry::new();
        reg.scoped("session.1").counter_add("queries", 4);
        reg.scoped("session.11").counter_add("queries", 9);
        reg.counter_add("unrelated", 1);
        let snap = reg.snapshot();
        let s1 = snap.subtree("session.1");
        assert_eq!(s1.counter("queries"), 4);
        // "session.11.*" must not leak into "session.1"'s subtree.
        assert_eq!(s1.counters.len(), 1);
        assert!(snap.subtree("session.2").counters.is_empty());
    }
}
