//! Noise-aware perf regression gate (DESIGN.md §12).
//!
//! Compares a fresh bench artifact against a checked-in baseline
//! (`results/BENCH_<name>.json`). Artifacts are schema-versioned wrappers
//! around a [`crate::MetricsSnapshot`]:
//!
//! ```json
//! {"schema_version":1,"bench":"fig5_projectivity","metrics":{...}}
//! ```
//!
//! Thresholds are per metric *kind*, chosen by what the simulator
//! guarantees:
//!
//! * **counters** — cycle/byte counts from the deterministic simulator:
//!   compared **exactly** (any drift is a real behavior change);
//! * **gauges** — derived figures (simulated-ns, ratios): compared with a
//!   relative tolerance ([`GatePolicy::gauge_rel_tol`]);
//! * **histograms** — `count` and `sum` compared exactly;
//! * names matching an exclude pattern (host wall-clock and friends) are
//!   skipped entirely.
//!
//! A metric present in the baseline but missing from the fresh run fails
//! the gate (schema drift is a regression); a metric only in the fresh
//! run is reported but does not fail (it needs `--update-baselines`).

use crate::json::{parse_json, Json};

/// Version stamped into every bench artifact by `bench::harness` and
/// required by the gate on both sides of a comparison.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Comparison policy.
#[derive(Debug, Clone)]
pub struct GatePolicy {
    /// Maximum relative drift tolerated on gauges.
    pub gauge_rel_tol: f64,
    /// Metric-name substrings excluded from comparison (wall-clock and
    /// other host-noise figures).
    pub exclude: Vec<String>,
}

impl Default for GatePolicy {
    fn default() -> Self {
        GatePolicy {
            gauge_rel_tol: 0.05,
            exclude: vec!["wall_ns".into(), "host_".into()],
        }
    }
}

impl GatePolicy {
    fn excluded(&self, name: &str) -> bool {
        self.exclude.iter().any(|p| name.contains(p))
    }
}

/// One metric that drifted past its threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Metric name, prefixed with its kind (`counter:`, `gauge:`, ...).
    pub metric: String,
    pub baseline: f64,
    pub fresh: f64,
    /// The relative tolerance that was applied (0 = exact).
    pub limit: f64,
}

/// Outcome of comparing one bench against its baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateReport {
    /// Bench name (from the baseline artifact).
    pub bench: String,
    /// Metrics compared.
    pub compared: usize,
    /// Metrics skipped by the exclude patterns.
    pub excluded: usize,
    /// Metrics that drifted past their threshold.
    pub regressions: Vec<Regression>,
    /// Baseline metrics absent from the fresh run (fails the gate).
    pub missing: Vec<String>,
    /// Fresh metrics absent from the baseline (reported, does not fail).
    pub added: Vec<String>,
}

impl GateReport {
    /// Whether the gate passes: nothing regressed, nothing went missing.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }

    /// Human-readable summary, one line per finding.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}: {} — {} compared, {} excluded, {} regressed, {} missing, {} added\n",
            self.bench,
            if self.passed() { "PASS" } else { "FAIL" },
            self.compared,
            self.excluded,
            self.regressions.len(),
            self.missing.len(),
            self.added.len(),
        );
        for r in &self.regressions {
            out.push_str(&format!(
                "  regressed {}: baseline {} -> fresh {} (tol {})\n",
                r.metric, r.baseline, r.fresh, r.limit
            ));
        }
        for m in &self.missing {
            out.push_str(&format!("  missing {m}\n"));
        }
        for m in &self.added {
            out.push_str(&format!("  added {m} (needs --update-baselines)\n"));
        }
        out
    }

    /// One machine-readable JSON line for `results/TRAJECTORY.jsonl`.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"bench\":\"{}\",\"status\":\"{}\",\"compared\":{},\"excluded\":{},\
             \"regressions\":{},\"missing\":{},\"added\":{}}}",
            crate::json::escaped(&self.bench),
            if self.passed() { "pass" } else { "fail" },
            self.compared,
            self.excluded,
            self.regressions.len(),
            self.missing.len(),
            self.added.len(),
        )
    }
}

/// Parse one bench artifact into `(bench name, metrics object)`,
/// validating the schema version.
fn parse_artifact(src: &str, side: &str) -> Result<(String, Json), String> {
    let doc = parse_json(src).map_err(|e| format!("{side}: {e}"))?;
    let ver = doc
        .get("schema_version")
        .and_then(Json::as_num)
        .ok_or_else(|| format!("{side}: missing `schema_version`"))? as u64;
    if ver != BENCH_SCHEMA_VERSION {
        return Err(format!(
            "{side}: schema_version {ver} != supported {BENCH_SCHEMA_VERSION}"
        ));
    }
    let bench = doc
        .get("bench")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{side}: missing `bench` name"))?
        .to_string();
    let metrics = doc
        .get("metrics")
        .cloned()
        .ok_or_else(|| format!("{side}: missing `metrics`"))?;
    Ok((bench, metrics))
}

/// Flatten one snapshot into comparable `(kind-prefixed name, value)`
/// pairs: counters and gauges directly, histograms as `.count`/`.sum`.
fn flatten(metrics: &Json) -> Vec<(String, f64, bool)> {
    // (name, value, exact) — `exact` marks counter-kind comparisons.
    let mut out = Vec::new();
    let section = |key: &str, exact: bool, out: &mut Vec<(String, f64, bool)>| {
        if let Some(Json::Obj(members)) = metrics.get(key) {
            for (name, v) in members {
                if let Some(n) = v.as_num() {
                    out.push((format!("{key}:{name}"), n, exact));
                }
            }
        }
    };
    section("counters", true, &mut out);
    section("gauges", false, &mut out);
    if let Some(Json::Obj(members)) = metrics.get("histograms") {
        for (name, h) in members {
            for field in ["count", "sum"] {
                if let Some(n) = h.get(field).and_then(Json::as_num) {
                    out.push((format!("histograms:{name}.{field}"), n, true));
                }
            }
        }
    }
    out
}

/// Compare a fresh bench artifact against its checked-in baseline.
pub fn compare_bench(
    baseline: &str,
    fresh: &str,
    policy: &GatePolicy,
) -> Result<GateReport, String> {
    let (base_name, base_metrics) = parse_artifact(baseline, "baseline")?;
    let (fresh_name, fresh_metrics) = parse_artifact(fresh, "fresh")?;
    if base_name != fresh_name {
        return Err(format!(
            "bench name mismatch: baseline `{base_name}` vs fresh `{fresh_name}`"
        ));
    }
    let base_flat = flatten(&base_metrics);
    let fresh_flat = flatten(&fresh_metrics);
    let mut report = GateReport {
        bench: base_name,
        ..GateReport::default()
    };
    for (name, base_v, exact) in &base_flat {
        if policy.excluded(name) {
            report.excluded += 1;
            continue;
        }
        let Some((_, fresh_v, _)) = fresh_flat.iter().find(|(n, ..)| n == name) else {
            report.missing.push(name.clone());
            continue;
        };
        report.compared += 1;
        let limit = if *exact { 0.0 } else { policy.gauge_rel_tol };
        let denom = base_v.abs().max(f64::MIN_POSITIVE);
        let drift = (fresh_v - base_v).abs() / denom;
        let ok = if *exact {
            fresh_v == base_v
        } else {
            drift <= limit
        };
        if !ok {
            report.regressions.push(Regression {
                metric: name.clone(),
                baseline: *base_v,
                fresh: *fresh_v,
                limit,
            });
        }
    }
    for (name, ..) in &fresh_flat {
        if !policy.excluded(name) && !base_flat.iter().any(|(n, ..)| n == name) {
            report.added.push(name.clone());
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(name: &str, cycles: u64, ns: f64) -> String {
        format!(
            "{{\"schema_version\":1,\"bench\":\"{name}\",\"metrics\":{{\
             \"counters\":{{\"mem.cpu_cycles\":{cycles}}},\
             \"gauges\":{{\"q.row_ns\":{ns:?},\"q.wall_ns\":123.0}},\
             \"histograms\":{{\"h\":{{\"count\":2,\"sum\":10,\"min\":1,\"max\":9,\"buckets\":[[1,2]]}}}}}}}}"
        )
    }

    #[test]
    fn identical_artifacts_pass() {
        let a = artifact("b1", 1000, 50.0);
        let r = compare_bench(&a, &a, &GatePolicy::default()).unwrap();
        assert!(r.passed(), "{}", r.render());
        assert_eq!(r.excluded, 1, "wall_ns gauge must be excluded");
        assert!(r.compared >= 4);
    }

    #[test]
    fn counter_drift_fails_exactly() {
        let base = artifact("b1", 1000, 50.0);
        let fresh = artifact("b1", 1001, 50.0);
        let r = compare_bench(&base, &fresh, &GatePolicy::default()).unwrap();
        assert!(!r.passed());
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(r.regressions[0].metric, "counters:mem.cpu_cycles");
        assert!(r.to_json_line().contains("\"status\":\"fail\""));
    }

    #[test]
    fn gauges_tolerate_noise_but_not_ten_percent() {
        let base = artifact("b1", 1000, 100.0);
        let ok =
            compare_bench(&base, &artifact("b1", 1000, 103.0), &GatePolicy::default()).unwrap();
        assert!(ok.passed(), "3% gauge drift is within tolerance");
        let bad =
            compare_bench(&base, &artifact("b1", 1000, 110.1), &GatePolicy::default()).unwrap();
        assert!(!bad.passed(), "10% gauge drift must fail");
    }

    #[test]
    fn schema_and_name_mismatches_are_errors() {
        let good = artifact("b1", 1, 1.0);
        let other = artifact("b2", 1, 1.0);
        assert!(compare_bench(&good, &other, &GatePolicy::default()).is_err());
        let unversioned = "{\"bench\":\"b1\",\"metrics\":{}}";
        assert!(compare_bench(unversioned, &good, &GatePolicy::default()).is_err());
        let wrong_ver = good.replace("\"schema_version\":1", "\"schema_version\":9");
        assert!(compare_bench(&wrong_ver, &good, &GatePolicy::default()).is_err());
    }

    #[test]
    fn missing_metric_fails_added_metric_warns() {
        let base = artifact("b1", 1000, 50.0);
        let mut fresh = artifact("b1", 1000, 50.0);
        fresh = fresh.replace("\"q.row_ns\":50.0,", "");
        let r = compare_bench(&base, &fresh, &GatePolicy::default()).unwrap();
        assert!(!r.passed());
        assert_eq!(r.missing, vec!["gauges:q.row_ns".to_string()]);
        let r2 = compare_bench(&fresh, &base, &GatePolicy::default()).unwrap();
        assert!(r2.passed(), "an added metric alone must not fail the gate");
        assert_eq!(r2.added, vec!["gauges:q.row_ns".to_string()]);
    }
}
