//! Top-down cycle accounting (DESIGN.md §12).
//!
//! Classifies every simulated cycle a core's clock advanced into a
//! two-level hierarchy, in the spirit of Yasin's top-down method adapted
//! to the fabric's cycle-accurate simulator:
//!
//! ```text
//! elapsed
//! ├── retired            compute the core actually executed
//! ├── memory-bound
//! │   ├── L1             L1 service latency (hits + miss issue slots)
//! │   ├── L2             L2 service latency (hits + prefetch transfers)
//! │   ├── DRAM           demand-miss / prefetch-completion waits
//! │   └── RM-device      producer-side device readiness (RM beat, SSD, bus)
//! └── stall
//!     ├── bw-ledger      shared L2-port / DRAM-controller bandwidth caps
//!     ├── fault-retry    recovery-policy backoff after injected faults
//!     └── idle           barrier wait for peer cores
//! ```
//!
//! The **hard invariant**: the eight leaf buckets sum *exactly* to the
//! elapsed cycles of the measured window on every core — no cycle is
//! unaccounted for and none is counted twice. [`TopDownCore::verify`]
//! checks it; `query::exec` asserts it after every query.

use crate::metrics::MetricsRegistry;

/// One core's top-down breakdown over a measured window. All fields are
/// cycle counts; the leaf buckets partition `elapsed`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopDownCore {
    /// Core index.
    pub core: usize,
    /// Cycles spent retiring compute.
    pub retired: u64,
    /// L1 service latency (hits and miss issue slots).
    pub mem_l1: u64,
    /// L2 service latency (hits and L2-to-L1 prefetch transfers).
    pub mem_l2: u64,
    /// Waits for DRAM data (demand misses, in-flight prefetches).
    pub mem_dram: u64,
    /// Waits for a producer-side device (RM engine, SSD, bus transfer).
    pub mem_rm_device: u64,
    /// Waits on a shared-fabric bandwidth ledger (L2 port / DRAM
    /// controller aggregate-throughput cap).
    pub bw_wait: u64,
    /// Fault-retry backoff imposed by the recovery policy.
    pub fault_retry: u64,
    /// Idle at the closing barrier, waiting for peer cores.
    pub idle: u64,
    /// Total elapsed cycles of the window (the global clock advance).
    pub elapsed: u64,
}

/// The leaf buckets in canonical order, as `(short name, value)` pairs.
/// Used by every renderer and exporter so the ordering is uniform.
pub const BUCKETS: usize = 8;

impl TopDownCore {
    /// The eight leaf buckets in canonical order.
    pub fn buckets(&self) -> [(&'static str, u64); BUCKETS] {
        [
            ("retired", self.retired),
            ("mem.l1", self.mem_l1),
            ("mem.l2", self.mem_l2),
            ("mem.dram", self.mem_dram),
            ("mem.rm_device", self.mem_rm_device),
            ("stall.bw", self.bw_wait),
            ("stall.retry", self.fault_retry),
            ("stall.idle", self.idle),
        ]
    }

    /// Level-1 memory-bound total (L1 + L2 + DRAM + RM-device).
    pub fn memory_bound(&self) -> u64 {
        self.mem_l1 + self.mem_l2 + self.mem_dram + self.mem_rm_device
    }

    /// Level-1 stall total (bandwidth-ledger + fault-retry + idle).
    pub fn stall(&self) -> u64 {
        self.bw_wait + self.fault_retry + self.idle
    }

    /// Sum of all leaf buckets; must equal `elapsed`.
    pub fn sum(&self) -> u64 {
        self.retired + self.memory_bound() + self.stall()
    }

    /// The hard invariant: every elapsed cycle lands in exactly one leaf
    /// bucket.
    pub fn verify(&self) -> Result<(), String> {
        if self.sum() == self.elapsed {
            Ok(())
        } else {
            Err(format!(
                "top-down buckets on core {} sum to {} but {} cycles elapsed ({:?})",
                self.core,
                self.sum(),
                self.elapsed,
                self
            ))
        }
    }
}

/// A whole query's (or window's) top-down breakdown: one row per core.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TopDown {
    /// Per-core breakdowns, indexed by core.
    pub cores: Vec<TopDownCore>,
}

impl TopDown {
    /// Verify the invariant on every core.
    pub fn verify(&self) -> Result<(), String> {
        for c in &self.cores {
            c.verify()?;
        }
        Ok(())
    }

    /// Export every bucket as a counter under
    /// `<prefix>.core<i>.td.<bucket>` (dots in bucket names kept), plus
    /// `<prefix>.core<i>.td.elapsed` — the snapshot-visible form of the
    /// breakdown.
    pub fn record_into(&self, registry: &mut MetricsRegistry, prefix: &str) {
        for c in &self.cores {
            for (name, v) in c.buckets() {
                registry.counter_add(&format!("{prefix}.core{}.td.{name}", c.core), v);
            }
            registry.counter_add(&format!("{prefix}.core{}.td.elapsed", c.core), c.elapsed);
        }
    }

    /// Render as an aligned text table with per-bucket percentages of
    /// elapsed, for `EXPLAIN ANALYZE` and postmortem artifacts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "  core   retired     mem.l1     mem.l2   mem.dram     mem.rm   stall.bw  stall.retry  stall.idle     elapsed\n",
        );
        for c in &self.cores {
            let pct = |v: u64| {
                if c.elapsed == 0 {
                    0.0
                } else {
                    v as f64 * 100.0 / c.elapsed as f64
                }
            };
            out.push_str(&format!(
                "  {:>4} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12} {:>11} {:>11}\n",
                c.core,
                format!("{:.1}%", pct(c.retired)),
                format!("{:.1}%", pct(c.mem_l1)),
                format!("{:.1}%", pct(c.mem_l2)),
                format!("{:.1}%", pct(c.mem_dram)),
                format!("{:.1}%", pct(c.mem_rm_device)),
                format!("{:.1}%", pct(c.bw_wait)),
                format!("{:.1}%", pct(c.fault_retry)),
                format!("{:.1}%", pct(c.idle)),
                c.elapsed,
            ));
        }
        out
    }

    /// Serialize as a deterministic JSON array (fixed field order), for
    /// embedding in postmortem artifacts.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, c) in self.cores.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"core\":{}", c.core));
            for (name, v) in c.buckets() {
                out.push_str(&format!(",\"{name}\":{v}"));
            }
            out.push_str(&format!(",\"elapsed\":{}}}", c.elapsed));
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TopDownCore {
        TopDownCore {
            core: 0,
            retired: 40,
            mem_l1: 10,
            mem_l2: 8,
            mem_dram: 20,
            mem_rm_device: 5,
            bw_wait: 7,
            fault_retry: 4,
            idle: 6,
            elapsed: 100,
        }
    }

    #[test]
    fn buckets_partition_elapsed() {
        let c = sample();
        assert_eq!(c.sum(), 100);
        c.verify().unwrap();
        assert_eq!(c.memory_bound(), 43);
        assert_eq!(c.stall(), 17);
    }

    #[test]
    fn verify_rejects_a_leak() {
        let mut c = sample();
        c.elapsed = 101; // one cycle unaccounted
        assert!(c.verify().is_err());
    }

    #[test]
    fn export_and_json_are_stable() {
        let td = TopDown {
            cores: vec![sample()],
        };
        let mut reg = MetricsRegistry::new();
        td.record_into(&mut reg, "query");
        assert_eq!(reg.counter("query.core0.td.retired"), 40);
        assert_eq!(reg.counter("query.core0.td.elapsed"), 100);
        let json = td.to_json();
        assert!(json.starts_with("[{\"core\":0,\"retired\":40,"));
        crate::parse_json(&json).expect("topdown json parses");
        let rendered = td.render();
        assert!(rendered.contains("40.0%"), "{rendered}");
    }
}
