//! The recorder trait engines emit trace events through.
//!
//! `FabricRecorder` is the seam between instrumented engines and the
//! trace sink. Engines call it with cycle timestamps they already hold —
//! recording never advances the simulated clock, so instrumentation is
//! zero-cost in the cycle domain by construction (and the no-op recorder
//! is zero-cost in the host domain too: empty inlined bodies).

use crate::trace::{Category, Phase, TraceBuffer, TraceEvent};
use crate::Cycles;

/// Sink for cycle-stamped trace events.
///
/// Hot paths should check [`FabricRecorder::enabled`] once and skip arg
/// marshalling entirely when tracing is off.
///
/// `Send` is a supertrait so that a hierarchy holding a boxed recorder
/// stays movable across threads (the concurrent HTAP example wraps one
/// in a `Mutex`); recorders are owned by one hierarchy, never shared.
pub trait FabricRecorder: Send {
    /// Whether events will actually be recorded. Callers may cache this.
    fn enabled(&self) -> bool;

    /// Open a span on the category's track.
    fn begin(&mut self, ts: Cycles, name: &'static str, cat: Category);

    /// Close the most recent open span with this `(cat, name)`; `args`
    /// attach to the closing edge (row counts, bytes moved, …).
    fn end(&mut self, ts: Cycles, name: &'static str, cat: Category, args: &[(&'static str, u64)]);

    /// A point-in-time event (retry, fault, breaker trip, …).
    fn instant(
        &mut self,
        ts: Cycles,
        name: &'static str,
        cat: Category,
        args: &[(&'static str, u64)],
    );

    /// Sample a counter track.
    fn counter(&mut self, ts: Cycles, name: &'static str, cat: Category, value: u64);

    /// Export the recorded trace as Chrome trace-event JSON, if this
    /// recorder keeps one (`None` for sinks that discard events). Lets
    /// callers holding a `Box<dyn FabricRecorder>` export without
    /// downcasting.
    fn export_chrome_json(&self) -> Option<String> {
        None
    }

    /// Export a collapsed-stack ("folded") profile, if this recorder
    /// samples one (`None` otherwise). See [`crate::profile`].
    fn export_folded(&self) -> Option<String> {
        None
    }

    /// Sampling statistics for a profiling recorder (`None` otherwise).
    fn profile_stats(&self) -> Option<crate::profile::ProfileStats> {
        None
    }
}

/// Recorder that discards everything. This is the default wired into
/// `MemoryHierarchy`; a query run against it must be cycle-identical to
/// an un-instrumented build (asserted in `tests/trace_determinism.rs`).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl FabricRecorder for NoopRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn begin(&mut self, _ts: Cycles, _name: &'static str, _cat: Category) {}

    #[inline]
    fn end(
        &mut self,
        _ts: Cycles,
        _name: &'static str,
        _cat: Category,
        _args: &[(&'static str, u64)],
    ) {
    }

    #[inline]
    fn instant(
        &mut self,
        _ts: Cycles,
        _name: &'static str,
        _cat: Category,
        _args: &[(&'static str, u64)],
    ) {
    }

    #[inline]
    fn counter(&mut self, _ts: Cycles, _name: &'static str, _cat: Category, _value: u64) {}
}

/// Recorder backed by a bounded [`TraceBuffer`] ring.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    buffer: TraceBuffer,
}

impl RingRecorder {
    /// A recorder whose ring holds at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            buffer: TraceBuffer::with_capacity(capacity),
        }
    }

    /// Borrow the recorded events.
    pub fn buffer(&self) -> &TraceBuffer {
        &self.buffer
    }

    /// Consume the recorder, keeping its trace.
    pub fn into_buffer(self) -> TraceBuffer {
        self.buffer
    }
}

impl FabricRecorder for RingRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn begin(&mut self, ts: Cycles, name: &'static str, cat: Category) {
        self.buffer
            .push(TraceEvent::new(Phase::Begin, ts, name, cat, &[]));
    }

    fn end(&mut self, ts: Cycles, name: &'static str, cat: Category, args: &[(&'static str, u64)]) {
        self.buffer
            .push(TraceEvent::new(Phase::End, ts, name, cat, args));
    }

    fn instant(
        &mut self,
        ts: Cycles,
        name: &'static str,
        cat: Category,
        args: &[(&'static str, u64)],
    ) {
        self.buffer
            .push(TraceEvent::new(Phase::Instant, ts, name, cat, args));
    }

    fn counter(&mut self, ts: Cycles, name: &'static str, cat: Category, value: u64) {
        self.buffer.push(TraceEvent::new(
            Phase::Counter,
            ts,
            name,
            cat,
            &[("value", value)],
        ));
    }

    fn export_chrome_json(&self) -> Option<String> {
        Some(self.buffer.to_chrome_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_recorder_captures_span_pairs() {
        let mut r = RingRecorder::new(16);
        assert!(r.enabled());
        r.begin(10, "query::exec", Category::Query);
        r.instant(12, "rm.retry", Category::Fault, &[("attempt", 1)]);
        r.counter(13, "mem.stalls", Category::Mem, 7);
        r.end(20, "query::exec", Category::Query, &[("rows", 5)]);
        let buf = r.into_buffer();
        assert_eq!(buf.len(), 4);
        let phases: Vec<char> = buf.iter().map(|e| e.ph.code()).collect();
        assert_eq!(phases, vec!['B', 'i', 'C', 'E']);
        crate::json::validate_chrome_trace(&buf.to_chrome_json()).expect("valid");
    }

    #[test]
    fn noop_recorder_is_disabled_and_silent() {
        let mut r = NoopRecorder;
        assert!(!r.enabled());
        r.begin(1, "x", Category::Mem);
        r.end(2, "x", Category::Mem, &[]);
        r.instant(3, "y", Category::Fault, &[]);
        r.counter(4, "z", Category::Store, 9);
        // Nothing observable — the type is a ZST with empty methods.
    }

    #[test]
    fn dyn_dispatch_works_for_both() {
        let mut ring = RingRecorder::new(4);
        let mut noop = NoopRecorder;
        let recorders: [&mut dyn FabricRecorder; 2] = [&mut ring, &mut noop];
        for r in recorders {
            r.begin(0, "s", Category::Query);
            r.end(1, "s", Category::Query, &[]);
        }
        assert_eq!(ring.buffer().len(), 2);
    }
}
