//! Cycle-domain structured trace events and the bounded ring buffer that
//! records them.
//!
//! Events are stamped with the simulated cycle clock (never wall time), so
//! a trace is a pure function of the workload, the platform configuration,
//! and the fault seed — two runs with the same inputs export byte-identical
//! JSON. The buffer is bounded and allocation-free after construction:
//! overflow overwrites the oldest event and counts the drop, it never
//! reallocates (hot engine loops must not see allocator jitter).

use crate::Cycles;
use std::fmt::Write as _;

/// Maximum key/value args carried inline by one event. Extra args passed
/// to [`TraceEvent::new`] are truncated (events are fixed-size on purpose:
/// the ring buffer never allocates per event).
pub const MAX_ARGS: usize = 6;

/// Event category: one Perfetto track per category, so a trace separates
/// CPU-side query work from device-side machinery at a glance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// SQL front end and plan execution (`query::exec`).
    Query,
    /// Relational Memory device machinery (`relmem`).
    Rm,
    /// CPU-side memory hierarchy (`fabric-sim`).
    Mem,
    /// Relational storage / SSD page I/O (`relstore`).
    Store,
    /// Fault injection and recovery events.
    Fault,
}

impl Category {
    /// Stable name used as the Chrome `cat` field.
    pub fn name(self) -> &'static str {
        match self {
            Category::Query => "query",
            Category::Rm => "rm",
            Category::Mem => "mem",
            Category::Store => "store",
            Category::Fault => "fault",
        }
    }

    /// Track id the category renders on (Chrome `tid`).
    pub fn track(self) -> u32 {
        match self {
            Category::Query => 1,
            Category::Rm => 2,
            Category::Mem => 3,
            Category::Store => 4,
            Category::Fault => 5,
        }
    }
}

/// Chrome trace-event phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`"B"`).
    Begin,
    /// Span end (`"E"`).
    End,
    /// Instant event (`"i"`).
    Instant,
    /// Counter sample (`"C"`).
    Counter,
}

impl Phase {
    /// The Chrome `ph` code.
    pub fn code(self) -> char {
        match self {
            Phase::Begin => 'B',
            Phase::End => 'E',
            Phase::Instant => 'i',
            Phase::Counter => 'C',
        }
    }
}

/// One trace event: fixed-size, `Copy`, cycle-stamped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle at which the event occurred.
    pub ts: Cycles,
    pub name: &'static str,
    pub cat: Category,
    pub ph: Phase,
    args: [(&'static str, u64); MAX_ARGS],
    n_args: u8,
}

impl TraceEvent {
    /// Build an event; at most [`MAX_ARGS`] args are kept.
    pub fn new(
        ph: Phase,
        ts: Cycles,
        name: &'static str,
        cat: Category,
        args: &[(&'static str, u64)],
    ) -> Self {
        let mut inline = [("", 0u64); MAX_ARGS];
        let n = args.len().min(MAX_ARGS);
        inline[..n].copy_from_slice(&args[..n]);
        TraceEvent {
            ts,
            name,
            cat,
            ph,
            args: inline,
            n_args: n as u8,
        }
    }

    /// The event's key/value args.
    pub fn args(&self) -> &[(&'static str, u64)] {
        &self.args[..self.n_args as usize]
    }
}

/// Bounded ring of [`TraceEvent`]s.
///
/// Capacity is fixed at construction; the backing storage is allocated
/// once and never grows. When full, a push overwrites the oldest event
/// and increments [`TraceBuffer::dropped`] — the trace keeps its most
/// recent window, and the drop count makes truncation visible instead of
/// silent.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest event once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// A buffer holding at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceBuffer {
            events: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Record an event; overwrites the oldest when full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The fixed capacity (never changes after construction).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events overwritten by ring wrap-around since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events[self.head..]
            .iter()
            .chain(self.events[..self.head].iter())
    }

    /// Export as Chrome trace-event JSON (object format), loadable in
    /// Perfetto / `chrome://tracing`.
    ///
    /// Timestamps are raw simulated cycles (the `ts` unit reads as
    /// microseconds in the viewer; `otherData.clock` names the real unit).
    /// Output is byte-deterministic: same events in, same string out.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\"sim-cycles\",");
        let _ignored = write!(out, "\"dropped\":{}}},\"traceEvents\":[", self.dropped);
        for (i, ev) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ignored = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
                crate::json::escaped(ev.name),
                ev.cat.name(),
                ev.ph.code(),
                ev.ts,
                ev.cat.track(),
            );
            if ev.ph == Phase::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            if !ev.args().is_empty() {
                out.push_str(",\"args\":{");
                for (j, (k, v)) in ev.args().iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ignored = write!(out, "\"{}\":{}", crate::json::escaped(k), v);
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: Cycles, name: &'static str) -> TraceEvent {
        TraceEvent::new(Phase::Instant, ts, name, Category::Query, &[("n", ts)])
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut b = TraceBuffer::with_capacity(3);
        for t in 0..5 {
            b.push(ev(t, "e"));
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.capacity(), 3);
        assert_eq!(b.dropped(), 2);
        let ts: Vec<Cycles> = b.iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn ring_never_reallocates() {
        let mut b = TraceBuffer::with_capacity(4);
        b.push(ev(0, "a"));
        let ptr = b.events.as_ptr();
        let cap = b.events.capacity();
        for t in 1..100 {
            b.push(ev(t, "a"));
        }
        assert_eq!(b.events.as_ptr(), ptr, "backing storage moved");
        assert_eq!(b.events.capacity(), cap, "backing storage grew");
        assert_eq!(b.dropped(), 96);
    }

    #[test]
    fn args_are_truncated_at_max() {
        let args: Vec<(&'static str, u64)> = vec![("a", 1); MAX_ARGS + 3];
        let e = TraceEvent::new(Phase::Begin, 0, "x", Category::Rm, &args);
        assert_eq!(e.args().len(), MAX_ARGS);
    }

    #[test]
    fn chrome_json_is_deterministic_and_parses() {
        let mut b = TraceBuffer::with_capacity(8);
        b.push(TraceEvent::new(Phase::Begin, 10, "q", Category::Query, &[]));
        b.push(TraceEvent::new(
            Phase::End,
            25,
            "q",
            Category::Query,
            &[("rows", 3)],
        ));
        let j1 = b.to_chrome_json();
        let j2 = b.to_chrome_json();
        assert_eq!(j1, j2);
        let summary = crate::json::validate_chrome_trace(&j1).expect("valid chrome trace");
        assert_eq!(summary.events, 2);
        assert_eq!(summary.begins, 1);
        assert_eq!(summary.ends, 1);
    }

    #[test]
    fn instants_carry_scope_and_counters_render() {
        let mut b = TraceBuffer::with_capacity(8);
        b.push(TraceEvent::new(
            Phase::Instant,
            5,
            "retry",
            Category::Fault,
            &[("attempt", 2)],
        ));
        b.push(TraceEvent::new(
            Phase::Counter,
            6,
            "stalls",
            Category::Mem,
            &[("value", 42)],
        ));
        let j = b.to_chrome_json();
        assert!(j.contains("\"s\":\"t\""), "{j}");
        assert!(j.contains("\"ph\":\"C\""), "{j}");
        crate::json::validate_chrome_trace(&j).expect("valid");
    }
}
