//! Engine-wide query log: a bounded, deterministic ring of per-query
//! envelopes (DESIGN.md §17).
//!
//! EXPLAIN ANALYZE answers "what did *this* query do"; the query log
//! answers "what has the *workload* been doing". Every query the
//! executor finishes — cold, op-cache hit, degraded, or recovered —
//! pushes one [`QueryRecord`] carrying its plan signature, chosen path,
//! per-operator estimate/actual attribution, top-down cycle summary, and
//! cache/degradation provenance. The ring is bounded (oldest records are
//! dropped and counted), lives entirely on the host side (recording never
//! advances the simulated clock), and exports byte-deterministic JSON:
//! the same seed and fault plan produce an identical document.
//!
//! [`QueryLog::workload_report`] folds the ring into a per-(class, path)
//! aggregation — the workload-level degradation view the HTAP papers
//! measure systems by — rendered by the `querylog_report` bench bin into
//! `results/QUERYLOG_*.json` artifacts.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::metrics::fmt_f64;

/// Default ring capacity. Large enough to hold every query of the CI
/// workloads; small enough that an unbounded workload cannot grow the
/// host heap without bound.
pub const DEFAULT_QUERYLOG_CAP: usize = 256;

/// Per-operator estimated and actual attribution inside one query.
#[derive(Debug, Clone, PartialEq)]
pub struct OpRecord {
    /// Operator name as lowered (`scan_row`, `filter`, `aggregate`, ...).
    pub op: String,
    /// Estimated nanoseconds for this operator (its share of the path
    /// estimate; shares sum exactly to the path total).
    pub est_ns: f64,
    /// Estimated bytes moved by this operator.
    pub est_bytes: f64,
    /// Observed simulated cycles attributed to this operator.
    pub actual_cycles: u64,
    /// Observed bytes moved by this operator.
    pub actual_bytes: u64,
    /// Rows entering the operator.
    pub rows_in: u64,
    /// Rows leaving the operator.
    pub rows_out: u64,
    /// Operator body invocations (morsels, or merge folds).
    pub invocations: u64,
}

/// Engine-wide top-down cycle summary for one query (leaf buckets summed
/// over all participating cores).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopDownSummary {
    /// Useful work cycles.
    pub retired: u64,
    /// Memory-bound cycles (L1 + L2 + DRAM + RM device).
    pub mem: u64,
    /// Stalled cycles (bandwidth-ledger waits + fault retries).
    pub stall: u64,
    /// Idle cycles (core finished its morsels early).
    pub idle: u64,
    /// Elapsed cycles summed over cores; equals the other buckets' sum.
    pub elapsed: u64,
}

/// One query's envelope in the log.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRecord {
    /// Monotonic sequence number, assigned by [`QueryLog::push`].
    pub seq: u64,
    /// 128-bit plan signature (op-cache key for the *planned* path —
    /// degradation changes `path`, never the signature).
    pub plan_sig: u128,
    /// Query class (`q1`, `q6`, `scan`, ...).
    pub class: String,
    /// Session id that issued the query (0 for engine-direct runs).
    pub session: u64,
    /// Path that actually ran (`row`, `col`, `rm`).
    pub path: String,
    /// Planner's estimated nanoseconds for the executed path.
    pub est_ns: f64,
    /// Observed simulated cycles for the whole query.
    pub actual_cycles: u64,
    /// Planner's estimated bytes for the executed path.
    pub est_bytes: f64,
    /// Observed bytes moved (0 for op-cache hits: nothing moved).
    pub actual_bytes: u64,
    /// Rows returned after post-processing.
    pub rows_out: u64,
    /// True when the answer was replayed from the op cache.
    pub cache_hit: bool,
    /// Path the query was planned on before degrading, when it did.
    pub degraded_from: Option<String>,
    /// Tables recovered (WAL replay) before this query ran.
    pub recovered_tables: u64,
    /// Faults injected into this query's RM scan.
    pub faults_injected: u64,
    /// Per-operator attribution (empty for op-cache hits).
    pub ops: Vec<OpRecord>,
    /// Top-down cycle summary over all cores.
    pub topdown: TopDownSummary,
}

/// Bounded deterministic ring of [`QueryRecord`]s, hosted one-per-engine
/// on the `MemoryHierarchy`.
#[derive(Debug)]
pub struct QueryLog {
    ring: VecDeque<QueryRecord>,
    cap: usize,
    next_seq: u64,
    dropped: u64,
}

impl Default for QueryLog {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_QUERYLOG_CAP)
    }
}

impl QueryLog {
    /// A log that retains at most `cap` records (oldest dropped first).
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            ring: VecDeque::with_capacity(cap.min(DEFAULT_QUERYLOG_CAP)),
            cap: cap.max(1),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Append a record, assigning it the next sequence number. Evicts the
    /// oldest record (counted in [`dropped`](Self::dropped)) when full.
    pub fn push(&mut self, mut record: QueryRecord) -> u64 {
        record.seq = self.next_seq;
        self.next_seq += 1;
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(record);
        self.next_seq - 1
    }

    /// Records currently retained, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &QueryRecord> {
        self.ring.iter()
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no record has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total queries ever recorded (including dropped ones).
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// Records evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drop all retained records; sequence numbering continues.
    pub fn clear(&mut self) {
        self.ring.clear();
    }

    /// Byte-deterministic JSON export of the retained ring: sorted-key
    /// objects, fixed float formatting, plan signatures as 32-digit hex.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ignored = write!(
            out,
            "{{\"schema\":1,\"cap\":{},\"dropped\":{},\"records\":[",
            self.cap, self.dropped
        );
        for (i, r) in self.ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&record_json(r));
        }
        out.push_str("]}");
        out
    }

    /// Fold the retained ring into a per-(class, path) workload report.
    pub fn workload_report(&self) -> WorkloadReport {
        let mut report = WorkloadReport::default();
        for r in self.ring.iter() {
            let key = format!("{}/{}", r.class, r.path);
            let e = report.entries.entry(key).or_default();
            e.runs += 1;
            e.rows_out += r.rows_out;
            e.cycles_total += r.actual_cycles;
            e.est_ns_total += r.est_ns;
            if r.cache_hit {
                e.cache_hits += 1;
            }
            if r.degraded_from.is_some() {
                e.degraded += 1;
            }
            e.faults_injected += r.faults_injected;
            report.queries += 1;
            report.cycles_total += r.actual_cycles;
            if r.cache_hit {
                report.cache_hits += 1;
            }
            if r.degraded_from.is_some() {
                report.degraded += 1;
            }
        }
        report.dropped = self.dropped;
        report
    }
}

fn record_json(r: &QueryRecord) -> String {
    let mut out = String::with_capacity(256);
    let _ignored = write!(
        out,
        "{{\"actual_bytes\":{},\"actual_cycles\":{},\"cache_hit\":{},\"class\":\"{}\"",
        r.actual_bytes,
        r.actual_cycles,
        r.cache_hit,
        crate::json::escaped(&r.class)
    );
    match &r.degraded_from {
        Some(p) => {
            let _ignored = write!(out, ",\"degraded_from\":\"{}\"", crate::json::escaped(p));
        }
        None => out.push_str(",\"degraded_from\":null"),
    }
    let _ignored = write!(
        out,
        ",\"est_bytes\":{},\"est_ns\":{},\"faults_injected\":{},\"ops\":[",
        fmt_f64(r.est_bytes),
        fmt_f64(r.est_ns),
        r.faults_injected
    );
    for (i, o) in r.ops.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ignored = write!(
            out,
            "{{\"actual_bytes\":{},\"actual_cycles\":{},\"est_bytes\":{},\"est_ns\":{},\
             \"invocations\":{},\"op\":\"{}\",\"rows_in\":{},\"rows_out\":{}}}",
            o.actual_bytes,
            o.actual_cycles,
            fmt_f64(o.est_bytes),
            fmt_f64(o.est_ns),
            o.invocations,
            crate::json::escaped(&o.op),
            o.rows_in,
            o.rows_out
        );
    }
    let _ignored = write!(
        out,
        "],\"path\":\"{}\",\"plan_sig\":\"{:032x}\",\"recovered_tables\":{},\"rows_out\":{},\
         \"seq\":{},\"session\":{},\"topdown\":{{\"elapsed\":{},\"idle\":{},\"mem\":{},\
         \"retired\":{},\"stall\":{}}}}}",
        crate::json::escaped(&r.path),
        r.plan_sig,
        r.recovered_tables,
        r.rows_out,
        r.seq,
        r.session,
        r.topdown.elapsed,
        r.topdown.idle,
        r.topdown.mem,
        r.topdown.retired,
        r.topdown.stall
    );
    out
}

/// Per-(class, path) aggregation bucket of a [`WorkloadReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkloadEntry {
    /// Queries folded into this bucket.
    pub runs: u64,
    /// How many were op-cache hits.
    pub cache_hits: u64,
    /// How many degraded off their planned path.
    pub degraded: u64,
    /// Faults injected across the bucket's RM scans.
    pub faults_injected: u64,
    /// Rows returned across the bucket.
    pub rows_out: u64,
    /// Observed cycles across the bucket.
    pub cycles_total: u64,
    /// Estimated nanoseconds across the bucket.
    pub est_ns_total: f64,
}

/// Workload-level aggregation of the query log, keyed `class/path`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkloadReport {
    /// Aggregation buckets, sorted by key.
    pub entries: BTreeMap<String, WorkloadEntry>,
    /// Total queries folded (retained ring only).
    pub queries: u64,
    /// Total op-cache hits.
    pub cache_hits: u64,
    /// Total degraded queries.
    pub degraded: u64,
    /// Total observed cycles.
    pub cycles_total: u64,
    /// Records the ring had already evicted (not folded).
    pub dropped: u64,
}

impl WorkloadReport {
    /// Byte-deterministic JSON export (sorted keys, fixed floats).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        let _ignored = write!(
            out,
            "{{\"schema\":1,\"cache_hits\":{},\"cycles_total\":{},\"degraded\":{},\
             \"dropped\":{},\"entries\":{{",
            self.cache_hits, self.cycles_total, self.degraded, self.dropped
        );
        for (i, (k, e)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ignored = write!(
                out,
                "\"{}\":{{\"cache_hits\":{},\"cycles_total\":{},\"degraded\":{},\
                 \"est_ns_total\":{},\"faults_injected\":{},\"rows_out\":{},\"runs\":{}}}",
                crate::json::escaped(k),
                e.cache_hits,
                e.cycles_total,
                e.degraded,
                fmt_f64(e.est_ns_total),
                e.faults_injected,
                e.rows_out,
                e.runs
            );
        }
        let _ignored = write!(out, "}},\"queries\":{}}}", self.queries);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(class: &str, path: &str, cycles: u64, hit: bool) -> QueryRecord {
        QueryRecord {
            seq: 0,
            plan_sig: 0xDEAD_BEEF,
            class: class.to_string(),
            session: 1,
            path: path.to_string(),
            est_ns: 100.0,
            actual_cycles: cycles,
            est_bytes: 4096.0,
            actual_bytes: if hit { 0 } else { 4096 },
            rows_out: 10,
            cache_hit: hit,
            degraded_from: None,
            recovered_tables: 0,
            faults_injected: 0,
            ops: vec![OpRecord {
                op: "scan_row".to_string(),
                est_ns: 100.0,
                est_bytes: 4096.0,
                actual_cycles: cycles,
                actual_bytes: 4096,
                rows_in: 10,
                rows_out: 10,
                invocations: 1,
            }],
            topdown: TopDownSummary {
                retired: cycles,
                mem: 0,
                stall: 0,
                idle: 0,
                elapsed: cycles,
            },
        }
    }

    #[test]
    fn ring_bounds_and_sequences() {
        let mut log = QueryLog::with_capacity(2);
        assert_eq!(log.push(record("q1", "row", 10, false)), 0);
        assert_eq!(log.push(record("q1", "row", 20, false)), 1);
        assert_eq!(log.push(record("q6", "col", 30, false)), 2);
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.total_recorded(), 3);
        let seqs: Vec<u64> = log.records().map(|r| r.seq).collect();
        assert_eq!(seqs, [1, 2]);
    }

    #[test]
    fn json_is_stable_and_parseable() {
        let mut log = QueryLog::with_capacity(8);
        log.push(record("q1", "row", 10, false));
        log.push(record("q1", "row", 2, true));
        let a = log.to_json();
        let b = log.to_json();
        assert_eq!(a, b, "export must be byte-deterministic");
        let parsed = crate::json::parse_json(&a).expect("querylog JSON must parse");
        let records = parsed
            .get("records")
            .and_then(crate::json::Json::as_arr)
            .expect("records array");
        assert_eq!(records.len(), 2);
        assert_eq!(
            records[0]
                .get("plan_sig")
                .and_then(crate::json::Json::as_str),
            Some("000000000000000000000000deadbeef")
        );
    }

    #[test]
    fn workload_report_folds_by_class_and_path() {
        let mut log = QueryLog::with_capacity(8);
        log.push(record("q1", "row", 10, false));
        log.push(record("q1", "row", 2, true));
        log.push(record("q6", "col", 30, false));
        let report = log.workload_report();
        assert_eq!(report.queries, 3);
        assert_eq!(report.cache_hits, 1);
        let q1 = report.entries.get("q1/row").expect("q1/row bucket");
        assert_eq!(q1.runs, 2);
        assert_eq!(q1.cache_hits, 1);
        assert_eq!(q1.cycles_total, 12);
        let j = report.to_json();
        assert!(crate::json::parse_json(&j).is_ok(), "report JSON parses");
        assert_eq!(j, log.workload_report().to_json());
    }
}
