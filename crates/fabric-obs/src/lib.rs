//! `fabric-obs`: the observability spine of the Relational Fabric
//! reproduction (DESIGN.md §10).
//!
//! The paper's claims are quantitative — less data movement, fewer
//! stalls, single-copy HTAP at no transactional cost — so every layer of
//! the reproduction must be able to attribute cycles and bytes to the
//! component that spent them. This crate provides the three pieces that
//! make that attribution uniform across the workspace:
//!
//! * **Cycle-domain structured tracing** ([`trace`]): span begin/end and
//!   instant events stamped with the *simulated* cycle clock, recorded
//!   into a bounded ring buffer ([`TraceBuffer`]) that never reallocates
//!   and counts drops on overflow. Traces export as Chrome trace-event
//!   JSON ([`TraceBuffer::to_chrome_json`]) loadable in Perfetto, and are
//!   fully deterministic: the same seed and fault plan produce a
//!   byte-identical trace.
//! * **Metrics registry** ([`metrics`]): named monotonic counters, gauges,
//!   and log-bucketed histograms with a stable snapshot/delta API and a
//!   single JSON serialization path ([`MetricsSnapshot::to_json`]) that
//!   replaces every hand-rolled stats formatter in the workspace (the
//!   `raw-stats-print` fabric-lint rule enforces this).
//! * **Recorder trait** ([`recorder`]): engines emit events through
//!   [`FabricRecorder`], whose [`NoopRecorder`] implementation is free —
//!   recording never charges simulated cycles, so a query executed with
//!   the no-op recorder is cycle-identical to an un-instrumented run
//!   (asserted in `tests/trace_determinism.rs`).
//!
//! Like the rest of the workspace, this crate is std-only and resolves
//! offline. The minimal JSON model in [`json`] exists so exported traces
//! and metric snapshots can be structurally validated without external
//! parsers.

pub mod calib;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod opstats;
pub mod profile;
pub mod querylog;
pub mod recorder;
pub mod regress;
pub mod scoped;
pub mod topdown;
pub mod trace;

pub use calib::{CalibEntry, CalibLedger, EWMA_ALPHA};
pub use flight::{FlightRecorder, Postmortem};
pub use json::{escaped, parse_json, validate_chrome_trace, ChromeTraceSummary, Json};
pub use metrics::{Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use opstats::OpStats;
pub use profile::{ProfileStats, SamplingProfiler};
pub use querylog::{
    OpRecord, QueryLog, QueryRecord, TopDownSummary, WorkloadEntry, WorkloadReport,
    DEFAULT_QUERYLOG_CAP,
};
pub use recorder::{FabricRecorder, NoopRecorder, RingRecorder};
pub use regress::{compare_bench, GatePolicy, GateReport, Regression, BENCH_SCHEMA_VERSION};
pub use scoped::ScopedMetrics;
pub use topdown::{TopDown, TopDownCore};
pub use trace::{Category, Phase, TraceBuffer, TraceEvent, MAX_ARGS};

/// Simulated time, measured in CPU core cycles (mirrors `fabric_sim::Cycles`;
/// redeclared here so this crate stays at the bottom of the dependency DAG).
pub type Cycles = u64;
