//! Per-operator actuals for the staged query executor (DESIGN.md §16).
//!
//! Each operator node in the executor's DAG accumulates row counts and
//! invocation counts host-side while it runs; recording them into the
//! metrics registry (as `query.op.<name>.*` counters) happens after the
//! query window closes, so — like every observability surface in this
//! crate — the bookkeeping never advances the simulated clock.

use crate::metrics::MetricsRegistry;

/// One operator's accumulated actuals across a query (all morsels, all
/// cores): how many times the operator body ran, how many rows it was fed,
/// and how many it emitted downstream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Operator body invocations (morsels for fused scan stages, merge
    /// folds for the merge stage).
    pub invocations: u64,
    /// Rows the operator consumed.
    pub rows_in: u64,
    /// Rows the operator produced.
    pub rows_out: u64,
}

impl OpStats {
    /// Count one invocation consuming `rows_in` and producing `rows_out`.
    pub fn record(&mut self, rows_in: u64, rows_out: u64) {
        self.invocations += 1;
        self.rows_in += rows_in;
        self.rows_out += rows_out;
    }

    /// Fold another operator's accumulation into this one.
    pub fn merge(&mut self, other: &OpStats) {
        self.invocations += other.invocations;
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
    }

    /// Export as monotonic counters under `<prefix>.<op>.{invocations,
    /// rows_in,rows_out}` — the `query.op.*` namespace the executor uses.
    pub fn record_into(&self, reg: &mut MetricsRegistry, prefix: &str, op: &str) {
        reg.counter_add(&format!("{prefix}.{op}.invocations"), self.invocations);
        reg.counter_add(&format!("{prefix}.{op}.rows_in"), self.rows_in);
        reg.counter_add(&format!("{prefix}.{op}.rows_out"), self.rows_out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_exports_counters() {
        let mut s = OpStats::default();
        s.record(4096, 100);
        s.record(4096, 99);
        let mut other = OpStats::default();
        other.record(1000, 1000);
        s.merge(&other);
        assert_eq!(s.invocations, 3);
        assert_eq!(s.rows_in, 9192);
        assert_eq!(s.rows_out, 1199);

        let mut reg = MetricsRegistry::new();
        s.record_into(&mut reg, "query.op", "filter");
        assert_eq!(reg.counter("query.op.filter.invocations"), 3);
        assert_eq!(reg.counter("query.op.filter.rows_in"), 9192);
        assert_eq!(reg.counter("query.op.filter.rows_out"), 1199);
    }
}
