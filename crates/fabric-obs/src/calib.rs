//! Cost-calibration ledger: per-(table, geometry, path) observed-cost
//! history (DESIGN.md §17).
//!
//! The planner's `PathCost` estimates are analytic; this ledger records
//! how wrong they were in practice. Every *clean cold* query (not an
//! op-cache hit, not degraded, no injected faults) contributes one
//! observation — the relative error of the estimated nanoseconds and
//! bytes against what the simulator actually charged — keyed by
//! `table/geometry/path`. Entries accumulate a run count, arithmetic
//! mean, and EWMA of both error series, so a re-planner can ask "for
//! this table laid out this way, how far off is the column-path
//! estimate lately?" and bias its choice accordingly. This is the
//! substrate ROADMAP item 5 (adaptive execution) consumes.
//!
//! The ledger is host-side bookkeeping: observing never advances the
//! simulated clock, and JSON export is byte-deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::fmt_f64;

/// EWMA smoothing factor. 0.25 weights roughly the last seven runs —
/// responsive enough to track a geometry migration, smooth enough that
/// one chaotic run does not whipsaw the re-planner.
pub const EWMA_ALPHA: f64 = 0.25;

/// Accumulated observed-cost history for one (table, geometry, path) key.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CalibEntry {
    /// Clean cold runs folded into this entry.
    pub runs: u64,
    /// Arithmetic mean of the time rel-error (percent).
    pub mean_rel_err_ns: f64,
    /// EWMA of the time rel-error (percent), `alpha = 0.25`.
    pub ewma_rel_err_ns: f64,
    /// Arithmetic mean of the bytes rel-error (percent).
    pub mean_rel_err_bytes: f64,
    /// EWMA of the bytes rel-error (percent).
    pub ewma_rel_err_bytes: f64,
}

impl CalibEntry {
    fn observe(&mut self, rel_err_ns: f64, rel_err_bytes: f64) {
        self.runs += 1;
        let n = self.runs as f64;
        self.mean_rel_err_ns += (rel_err_ns - self.mean_rel_err_ns) / n;
        self.mean_rel_err_bytes += (rel_err_bytes - self.mean_rel_err_bytes) / n;
        if self.runs == 1 {
            self.ewma_rel_err_ns = rel_err_ns;
            self.ewma_rel_err_bytes = rel_err_bytes;
        } else {
            self.ewma_rel_err_ns += EWMA_ALPHA * (rel_err_ns - self.ewma_rel_err_ns);
            self.ewma_rel_err_bytes += EWMA_ALPHA * (rel_err_bytes - self.ewma_rel_err_bytes);
        }
    }
}

/// The per-engine ledger, keyed `table/geometry-tag/path`.
#[derive(Debug, Clone, Default)]
pub struct CalibLedger {
    entries: BTreeMap<String, CalibEntry>,
    observations: u64,
}

impl CalibLedger {
    /// Fold one clean-cold observation into the `key` entry and return
    /// the updated entry (copied out, so callers can export gauges
    /// without holding the borrow).
    pub fn observe(&mut self, key: &str, rel_err_ns: f64, rel_err_bytes: f64) -> CalibEntry {
        self.observations += 1;
        let entry = self.entries.entry(key.to_string()).or_default();
        entry.observe(rel_err_ns, rel_err_bytes);
        *entry
    }

    /// Entry lookup.
    pub fn get(&self, key: &str) -> Option<&CalibEntry> {
        self.entries.get(key)
    }

    /// All entries, sorted by key.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &CalibEntry)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total observations folded across all keys.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Export every entry as `calib.<key>.*` gauges. The monotonic
    /// `calib.observations` counter is advanced by the executor at
    /// observation time, not here.
    pub fn record_into(&self, registry: &mut crate::metrics::MetricsRegistry) {
        for (key, e) in &self.entries {
            registry.gauge_set(&format!("calib.{key}.runs"), e.runs as f64);
            registry.gauge_set(&format!("calib.{key}.mean_rel_err_ns"), e.mean_rel_err_ns);
            registry.gauge_set(&format!("calib.{key}.ewma_rel_err_ns"), e.ewma_rel_err_ns);
            registry.gauge_set(
                &format!("calib.{key}.mean_rel_err_bytes"),
                e.mean_rel_err_bytes,
            );
            registry.gauge_set(
                &format!("calib.{key}.ewma_rel_err_bytes"),
                e.ewma_rel_err_bytes,
            );
        }
    }

    /// Byte-deterministic JSON export (sorted keys, fixed floats).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ignored = write!(
            out,
            "{{\"schema\":1,\"observations\":{},\"entries\":{{",
            self.observations
        );
        for (i, (k, e)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ignored = write!(
                out,
                "\"{}\":{{\"ewma_rel_err_bytes\":{},\"ewma_rel_err_ns\":{},\
                 \"mean_rel_err_bytes\":{},\"mean_rel_err_ns\":{},\"runs\":{}}}",
                crate::json::escaped(k),
                fmt_f64(e.ewma_rel_err_bytes),
                fmt_f64(e.ewma_rel_err_ns),
                fmt_f64(e.mean_rel_err_bytes),
                fmt_f64(e.mean_rel_err_ns),
                e.runs
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_observations_converge_mean_and_ewma() {
        let mut ledger = CalibLedger::default();
        for _ in 0..5 {
            ledger.observe("lineitem/abcd1234/row", 12.5, 3.0);
        }
        let e = ledger.get("lineitem/abcd1234/row").expect("entry");
        assert_eq!(e.runs, 5);
        assert_eq!(e.mean_rel_err_ns, 12.5);
        assert_eq!(e.ewma_rel_err_ns, 12.5);
        assert_eq!(e.mean_rel_err_bytes, 3.0);
        assert_eq!(e.ewma_rel_err_bytes, 3.0);
        assert_eq!(ledger.observations(), 5);
    }

    #[test]
    fn ewma_tracks_recent_observations_faster_than_mean() {
        let mut ledger = CalibLedger::default();
        for _ in 0..10 {
            ledger.observe("t/g/col", 10.0, 0.0);
        }
        ledger.observe("t/g/col", 50.0, 0.0);
        let e = ledger.get("t/g/col").expect("entry");
        assert!(
            e.ewma_rel_err_ns > e.mean_rel_err_ns,
            "ewma {} should overtake mean {} after a spike",
            e.ewma_rel_err_ns,
            e.mean_rel_err_ns
        );
    }

    #[test]
    fn json_export_is_deterministic_and_parses() {
        let mut ledger = CalibLedger::default();
        ledger.observe("b/g/rm", 1.0, 2.0);
        ledger.observe("a/g/row", 3.0, 4.0);
        let j = ledger.to_json();
        assert_eq!(j, ledger.to_json());
        assert!(j.find("\"a/g/row\"") < j.find("\"b/g/rm\""), "sorted keys");
        assert!(crate::json::parse_json(&j).is_ok());
        let mut reg = crate::metrics::MetricsRegistry::new();
        ledger.record_into(&mut reg);
        assert_eq!(reg.gauge("calib.a/g/row.mean_rel_err_ns"), Some(3.0));
    }
}
