//! Metrics registry: named monotonic counters, gauges, and log-bucketed
//! histograms, with a stable snapshot/delta API and a single JSON
//! serialization path.
//!
//! All maps are `BTreeMap`s so iteration — and therefore serialization —
//! is deterministic: same counter updates, byte-identical JSON. This is
//! the one formatter the workspace's stats flow through (`raw-stats-print`
//! in fabric-lint flags hand-rolled alternatives in core crates).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of log2 buckets in a [`Histogram`]. Bucket `i` counts values
/// `v` with `63 - v.leading_zeros() == i` (bucket 0 also takes `v == 0`),
/// covering the full `u64` range.
pub const HIST_BUCKETS: usize = 64;

/// A log2-bucketed histogram over `u64` samples (latencies in cycles,
/// amplification ratios scaled ×100, byte counts, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of observed samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Deterministic quantile estimate (`q` in `[0, 1]`).
    ///
    /// The histogram keeps log2 buckets, so the estimate selects the
    /// bucket containing the target rank and interpolates linearly inside
    /// the bucket's `[2^i, 2^(i+1))` value range, clamped to the observed
    /// `[min, max]`. Pure integer/f64 arithmetic over the bucket counts:
    /// the same samples always yield bit-identical quantiles, which is
    /// what lets p50/p99 gauges pass through the exact-match perf gate.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_buckets(
            self.buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| (i as u32, n)),
            self.count,
            if self.count == 0 { 0 } else { self.min },
            self.max,
            q,
        )
    }

    /// Fold another histogram into this one (bucket-wise). Used by scope
    /// rollups: merging per-session histograms reproduces exactly the
    /// histogram a single shared registry would have accumulated.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, n) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Immutable snapshot used by [`MetricsSnapshot`].
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| (i as u32, n))
                .collect(),
        }
    }
}

/// Point-in-time copy of a [`Histogram`]; only non-empty buckets are kept,
/// as `(log2_bucket, count)` pairs sorted by bucket.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Same estimator as [`Histogram::quantile`], over the snapshot's
    /// sparse bucket list.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_buckets(
            self.buckets.iter().copied(),
            self.count,
            self.min,
            self.max,
            q,
        )
    }
}

/// Shared quantile walk over sparse `(log2_bucket, count)` pairs.
///
/// Rank is `ceil(q * count)` clamped to `[1, count]` (nearest-rank with
/// interpolation inside the owning bucket). Bucket `i > 0` spans values
/// `[2^i, 2^(i+1))`; bucket 0 spans `[0, 2)`. The interpolated value is
/// clamped to the observed `[min, max]` so quantiles never exaggerate
/// past real samples. Empty histograms report 0.0.
fn quantile_from_buckets(
    buckets: impl Iterator<Item = (u32, u64)>,
    count: u64,
    min: u64,
    max: u64,
    q: f64,
) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (bucket, n) in buckets {
        if seen + n >= rank {
            let lo = if bucket == 0 {
                0.0
            } else {
                (1u64 << bucket) as f64
            };
            let hi = if bucket >= 63 {
                u64::MAX as f64
            } else {
                (1u64 << (bucket + 1)) as f64
            };
            // Midpoint-of-rank interpolation: the k-th of n samples in a
            // bucket sits at fraction (k - 0.5) / n of the bucket span.
            let k = rank - seen;
            let frac = (k as f64 - 0.5) / n as f64;
            let v = lo + frac * (hi - lo);
            return v.clamp(min as f64, max as f64);
        }
        seen += n;
    }
    max as f64
}

/// The workspace-wide metrics registry.
///
/// Counters are monotonic `u64`s, gauges are last-write-wins `f64`s,
/// histograms are log2-bucketed. Names are dotted paths
/// (`"mem.l1.hits"`, `"rm.retries"`, `"explain.rel_err_pct"`), owned
/// strings so callers can build them dynamically.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add to a monotonic counter (created at 0 on first touch).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c = c.saturating_add(delta);
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Read a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set a gauge to its latest value.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = value;
        } else {
            self.gauges.insert(name.to_string(), value);
        }
    }

    /// Read a gauge (`None` when never set).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record a histogram sample (histogram created on first touch).
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::new();
            h.observe(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Read a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Reset everything (counters to absent, not to 0 — a fresh registry).
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }

    /// Point-in-time snapshot of all metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Immutable snapshot of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value at snapshot time (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Counters that advanced since `earlier`, plus gauges/histograms at
    /// their current values. Counters with zero delta are omitted, so a
    /// delta over an idle interval is empty.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .filter_map(|(k, &v)| {
                let d = v.saturating_sub(earlier.counter(k));
                (d > 0).then(|| (k.clone(), d))
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }

    /// The single serialization path: deterministic JSON (sorted keys,
    /// fixed float formatting). Every stats export in the workspace —
    /// bench `BENCH_*.json` files, EXPLAIN ANALYZE appendices, CI
    /// artifacts — goes through here.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ignored = write!(out, "\"{}\":{}", crate::json::escaped(k), v);
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ignored = write!(out, "\"{}\":{}", crate::json::escaped(k), fmt_f64(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ignored = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                crate::json::escaped(k),
                h.count,
                h.sum,
                h.min,
                h.max
            );
            for (j, (bucket, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ignored = write!(out, "[{bucket},{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// Deterministic float rendering for JSON: finite values via `{:?}`
/// (shortest round-trip form, locale-independent), non-finite mapped to
/// JSON-legal sentinels.
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        // JSON has no Infinity/NaN; null keeps the document parseable.
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic_and_sorted() {
        let mut r = MetricsRegistry::new();
        r.counter_add("b.second", 2);
        r.counter_add("a.first", 1);
        r.counter_add("b.second", 3);
        assert_eq!(r.counter("b.second"), 5);
        assert_eq!(r.counter("missing"), 0);
        let snap = r.snapshot();
        let keys: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(keys, ["a.first", "b.second"]);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 1024, u64::MAX] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        // 0 and 1 land in bucket 0; 2 and 3 in bucket 1; 1024 in 10; MAX in 63.
        assert_eq!(s.buckets, vec![(0, 2), (1, 2), (10, 1), (63, 1)]);
    }

    #[test]
    fn delta_omits_idle_counters() {
        let mut r = MetricsRegistry::new();
        r.counter_add("x", 10);
        r.counter_add("y", 1);
        let before = r.snapshot();
        r.counter_add("x", 7);
        let delta = r.snapshot().delta_since(&before);
        assert_eq!(delta.counter("x"), 7);
        assert!(!delta.counters.contains_key("y"));
    }

    #[test]
    fn json_is_deterministic_and_parses() {
        let mut r = MetricsRegistry::new();
        r.counter_add("mem.l1.hits", 42);
        r.gauge_set("explain.rel_err_pct", 12.5);
        r.observe("rm.batch_cycles", 900);
        r.observe("rm.batch_cycles", 1100);
        let s = r.snapshot();
        let j1 = s.to_json();
        let j2 = s.to_json();
        assert_eq!(j1, j2);
        let parsed = crate::json::parse_json(&j1).expect("snapshot JSON parses");
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("mem.l1.hits"))
                .and_then(crate::json::Json::as_num),
            Some(42.0)
        );
        assert_eq!(
            parsed
                .get("gauges")
                .and_then(|g| g.get("explain.rel_err_pct"))
                .and_then(crate::json::Json::as_num),
            Some(12.5)
        );
    }

    #[test]
    fn quantiles_are_deterministic_and_ordered() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!((1.0..=1000.0).contains(&p50));
        assert!(p99 <= 1000.0);
        // Snapshot agrees bit-for-bit with the live histogram.
        let s = h.snapshot();
        assert_eq!(s.quantile(0.50).to_bits(), p50.to_bits());
        assert_eq!(s.quantile(0.99).to_bits(), p99.to_bits());
        // Empty histogram and extremes stay well-defined.
        assert_eq!(Histogram::new().quantile(0.5), 0.0);
        let mut one = Histogram::new();
        one.observe(7);
        assert_eq!(one.quantile(0.0), 7.0);
        assert_eq!(one.quantile(1.0), 7.0);
    }

    #[test]
    fn merge_matches_single_accumulation() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [3u64, 900, 17, 0, 65536] {
            whole.observe(v);
            if v % 2 == 0 {
                a.observe(v)
            } else {
                b.observe(v)
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn non_finite_gauges_stay_parseable() {
        let mut r = MetricsRegistry::new();
        r.gauge_set("bad", f64::INFINITY);
        let j = r.snapshot().to_json();
        crate::json::parse_json(&j).expect("still valid JSON");
        assert!(j.contains("\"bad\":null"));
    }
}
