//! Metrics registry: named monotonic counters, gauges, and log-bucketed
//! histograms, with a stable snapshot/delta API and a single JSON
//! serialization path.
//!
//! All maps are `BTreeMap`s so iteration — and therefore serialization —
//! is deterministic: same counter updates, byte-identical JSON. This is
//! the one formatter the workspace's stats flow through (`raw-stats-print`
//! in fabric-lint flags hand-rolled alternatives in core crates).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of log2 buckets in a [`Histogram`]. Bucket `i` counts values
/// `v` with `63 - v.leading_zeros() == i` (bucket 0 also takes `v == 0`),
/// covering the full `u64` range.
pub const HIST_BUCKETS: usize = 64;

/// A log2-bucketed histogram over `u64` samples (latencies in cycles,
/// amplification ratios scaled ×100, byte counts, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of observed samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Immutable snapshot used by [`MetricsSnapshot`].
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| (i as u32, n))
                .collect(),
        }
    }
}

/// Point-in-time copy of a [`Histogram`]; only non-empty buckets are kept,
/// as `(log2_bucket, count)` pairs sorted by bucket.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: Vec<(u32, u64)>,
}

/// The workspace-wide metrics registry.
///
/// Counters are monotonic `u64`s, gauges are last-write-wins `f64`s,
/// histograms are log2-bucketed. Names are dotted paths
/// (`"mem.l1.hits"`, `"rm.retries"`, `"explain.rel_err_pct"`), owned
/// strings so callers can build them dynamically.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add to a monotonic counter (created at 0 on first touch).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c = c.saturating_add(delta);
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Read a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set a gauge to its latest value.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = value;
        } else {
            self.gauges.insert(name.to_string(), value);
        }
    }

    /// Read a gauge (`None` when never set).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record a histogram sample (histogram created on first touch).
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::new();
            h.observe(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Read a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Reset everything (counters to absent, not to 0 — a fresh registry).
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }

    /// Point-in-time snapshot of all metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Immutable snapshot of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value at snapshot time (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Counters that advanced since `earlier`, plus gauges/histograms at
    /// their current values. Counters with zero delta are omitted, so a
    /// delta over an idle interval is empty.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .filter_map(|(k, &v)| {
                let d = v.saturating_sub(earlier.counter(k));
                (d > 0).then(|| (k.clone(), d))
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }

    /// The single serialization path: deterministic JSON (sorted keys,
    /// fixed float formatting). Every stats export in the workspace —
    /// bench `BENCH_*.json` files, EXPLAIN ANALYZE appendices, CI
    /// artifacts — goes through here.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ignored = write!(out, "\"{}\":{}", crate::json::escaped(k), v);
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ignored = write!(out, "\"{}\":{}", crate::json::escaped(k), fmt_f64(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ignored = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                crate::json::escaped(k),
                h.count,
                h.sum,
                h.min,
                h.max
            );
            for (j, (bucket, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ignored = write!(out, "[{bucket},{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// Deterministic float rendering for JSON: finite values via `{:?}`
/// (shortest round-trip form, locale-independent), non-finite mapped to
/// JSON-legal sentinels.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        // JSON has no Infinity/NaN; null keeps the document parseable.
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic_and_sorted() {
        let mut r = MetricsRegistry::new();
        r.counter_add("b.second", 2);
        r.counter_add("a.first", 1);
        r.counter_add("b.second", 3);
        assert_eq!(r.counter("b.second"), 5);
        assert_eq!(r.counter("missing"), 0);
        let snap = r.snapshot();
        let keys: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(keys, ["a.first", "b.second"]);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 1024, u64::MAX] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        // 0 and 1 land in bucket 0; 2 and 3 in bucket 1; 1024 in 10; MAX in 63.
        assert_eq!(s.buckets, vec![(0, 2), (1, 2), (10, 1), (63, 1)]);
    }

    #[test]
    fn delta_omits_idle_counters() {
        let mut r = MetricsRegistry::new();
        r.counter_add("x", 10);
        r.counter_add("y", 1);
        let before = r.snapshot();
        r.counter_add("x", 7);
        let delta = r.snapshot().delta_since(&before);
        assert_eq!(delta.counter("x"), 7);
        assert!(!delta.counters.contains_key("y"));
    }

    #[test]
    fn json_is_deterministic_and_parses() {
        let mut r = MetricsRegistry::new();
        r.counter_add("mem.l1.hits", 42);
        r.gauge_set("explain.rel_err_pct", 12.5);
        r.observe("rm.batch_cycles", 900);
        r.observe("rm.batch_cycles", 1100);
        let s = r.snapshot();
        let j1 = s.to_json();
        let j2 = s.to_json();
        assert_eq!(j1, j2);
        let parsed = crate::json::parse_json(&j1).expect("snapshot JSON parses");
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("mem.l1.hits"))
                .and_then(crate::json::Json::as_num),
            Some(42.0)
        );
        assert_eq!(
            parsed
                .get("gauges")
                .and_then(|g| g.get("explain.rel_err_pct"))
                .and_then(crate::json::Json::as_num),
            Some(12.5)
        );
    }

    #[test]
    fn non_finite_gauges_stay_parseable() {
        let mut r = MetricsRegistry::new();
        r.gauge_set("bad", f64::INFINITY);
        let j = r.snapshot().to_json();
        crate::json::parse_json(&j).expect("still valid JSON");
        assert!(j.contains("\"bad\":null"));
    }
}
