//! Flight recorder: always-on bounded event ring + postmortem artifacts
//! (DESIGN.md §12).
//!
//! The fabric records every trace event into a small ring regardless of
//! whether a user recorder is installed — recording is allocation-free and
//! never advances simulated time, so the always-on ring is behaviorally
//! invisible. When something goes wrong (a query degrades off the RM path,
//! the circuit breaker trips, a CRC check fails), the owner dumps a
//! **postmortem**: the last-N trace events as a validator-clean Chrome
//! trace, the metrics delta since the recorder was armed, the top-down
//! cycle breakdown at the instant of failure, and the fault timeline
//! extracted from the ring. Every input is simulated state, so the
//! artifact is byte-deterministic: the same seed produces the same dump.

use crate::metrics::MetricsSnapshot;
use crate::topdown::TopDown;
use crate::trace::{Phase, TraceBuffer, TraceEvent};
use crate::Cycles;
use std::fmt::Write as _;

/// Default flight-ring capacity (events). Big enough to hold several
/// batches' worth of spans around a failure, small enough to stay cheap.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 512;

/// Postmortems retained per recorder; older dumps are discarded (the
/// count is still visible via [`FlightRecorder::dumps`]).
pub const MAX_POSTMORTEMS: usize = 8;

/// One postmortem artifact, captured at a failure trigger.
#[derive(Debug, Clone, PartialEq)]
pub struct Postmortem {
    /// What tripped the dump (e.g. `"degraded"`, `"breaker-open"`,
    /// `"crc-failure"`).
    pub reason: &'static str,
    /// Simulated cycle at which the dump was taken.
    pub cycle: Cycles,
    /// The last-N trace events as Chrome trace-event JSON. Orphan `E`
    /// events whose `B` was overwritten by ring wrap-around are elided,
    /// so this always round-trips through
    /// [`crate::validate_chrome_trace`].
    pub trace: String,
    /// Metrics delta since the recorder was last armed (or the full
    /// snapshot if it never was), serialized via
    /// [`MetricsSnapshot::to_json`].
    pub metrics_delta: String,
    /// Top-down cycle breakdown at the dump instant
    /// ([`TopDown::to_json`]).
    pub topdown: String,
    /// Fault-category events from the ring, oldest first:
    /// `[{"ts":..,"name":"..",..}, ...]`.
    pub fault_timeline: String,
    /// Optional caller-supplied JSON document giving the dump's trigger
    /// context (e.g. a recovery report). Must be valid JSON; embedded
    /// verbatim under `"context"` when present.
    pub context: Option<String>,
}

impl Postmortem {
    /// The combined artifact: one JSON document embedding all four parts
    /// plus the trigger metadata. Byte-deterministic.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(
            128 + self.trace.len()
                + self.metrics_delta.len()
                + self.topdown.len()
                + self.fault_timeline.len(),
        );
        let _ignored = write!(
            out,
            "{{\"schema_version\":1,\"reason\":\"{}\",\"cycle\":{}",
            crate::json::escaped(self.reason),
            self.cycle,
        );
        if let Some(ctx) = &self.context {
            let _ignored = write!(out, ",\"context\":{ctx}");
        }
        let _ignored = write!(
            out,
            ",\"topdown\":{},\"fault_timeline\":{},\"metrics_delta\":{},\"trace\":{}}}",
            self.topdown, self.fault_timeline, self.metrics_delta, self.trace,
        );
        out
    }
}

/// The always-on bounded ring plus the postmortems it has produced.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: TraceBuffer,
    baseline: Option<MetricsSnapshot>,
    postmortems: Vec<Postmortem>,
    dumps: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder whose ring holds at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            ring: TraceBuffer::with_capacity(capacity),
            baseline: None,
            postmortems: Vec::new(),
            dumps: 0,
        }
    }

    /// Record one event (called from every trace entry point, always).
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        self.ring.push(ev);
    }

    /// Arm the recorder at the start of a measured window: postmortem
    /// metrics report the delta since this snapshot.
    pub fn arm(&mut self, baseline: MetricsSnapshot) {
        self.baseline = Some(baseline);
    }

    /// Total dumps taken (monotonic, survives postmortem eviction).
    pub fn dumps(&self) -> u64 {
        self.dumps
    }

    /// The retained postmortems, oldest first.
    pub fn postmortems(&self) -> &[Postmortem] {
        &self.postmortems
    }

    /// Drain the retained postmortems.
    pub fn take_postmortems(&mut self) -> Vec<Postmortem> {
        std::mem::take(&mut self.postmortems)
    }

    /// Capture a postmortem at simulated cycle `now`. `current` is the
    /// live metrics snapshot; `topdown` the breakdown at this instant.
    pub fn dump(
        &mut self,
        reason: &'static str,
        now: Cycles,
        current: &MetricsSnapshot,
        topdown: &TopDown,
    ) -> &Postmortem {
        self.dump_with_context(reason, now, current, topdown, None)
    }

    /// [`FlightRecorder::dump`] with a caller-supplied context document
    /// (must already be valid JSON — e.g. a `RecoveryReport` rendering)
    /// embedded in the artifact under `"context"`.
    pub fn dump_with_context(
        &mut self,
        reason: &'static str,
        now: Cycles,
        current: &MetricsSnapshot,
        topdown: &TopDown,
        context: Option<String>,
    ) -> &Postmortem {
        self.dumps += 1;
        let metrics_delta = match &self.baseline {
            Some(base) => current.delta_since(base).to_json(),
            None => current.to_json(),
        };
        let pm = Postmortem {
            reason,
            cycle: now,
            trace: self.sanitized_trace(),
            metrics_delta,
            topdown: topdown.to_json(),
            fault_timeline: self.fault_timeline(),
            context,
        };
        if self.postmortems.len() == MAX_POSTMORTEMS {
            self.postmortems.remove(0);
        }
        self.postmortems.push(pm);
        self.postmortems.last().expect("just pushed")
    }

    /// The ring's events as Chrome JSON with orphan `E`s (whose `B` fell
    /// off the ring) elided, so the export always validates.
    fn sanitized_trace(&self) -> String {
        let mut kept = TraceBuffer::with_capacity(self.ring.len().max(1));
        let mut open: Vec<(u32, &str)> = Vec::new();
        for ev in self.ring.iter() {
            match ev.ph {
                Phase::Begin => {
                    open.push((ev.cat.track(), ev.name));
                    kept.push(*ev);
                }
                Phase::End => {
                    if let Some(i) = open
                        .iter()
                        .rposition(|&(t, n)| t == ev.cat.track() && n == ev.name)
                    {
                        open.remove(i);
                        kept.push(*ev);
                    }
                    // Orphan end: its begin was overwritten — elide.
                }
                _ => kept.push(*ev),
            }
        }
        kept.to_chrome_json()
    }

    /// Fault-category events in the ring, oldest first, as a JSON array.
    fn fault_timeline(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        for ev in self.ring.iter() {
            if ev.cat != crate::trace::Category::Fault {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ignored = write!(
                out,
                "{{\"ts\":{},\"name\":\"{}\"",
                ev.ts,
                crate::json::escaped(ev.name)
            );
            for (k, v) in ev.args() {
                let _ignored = write!(out, ",\"{}\":{}", crate::json::escaped(k), v);
            }
            out.push('}');
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::topdown::TopDownCore;
    use crate::trace::Category;

    fn armed_recorder() -> (FlightRecorder, MetricsRegistry) {
        let mut fr = FlightRecorder::with_capacity(8);
        let reg = MetricsRegistry::new();
        fr.arm(reg.snapshot());
        (fr, reg)
    }

    #[test]
    fn dump_is_deterministic_and_validator_clean() {
        let build = || {
            let (mut fr, mut reg) = armed_recorder();
            fr.record(TraceEvent::new(Phase::Begin, 10, "q", Category::Query, &[]));
            fr.record(TraceEvent::new(
                Phase::Instant,
                12,
                "rm.fault.crc",
                Category::Fault,
                &[("attempt", 1)],
            ));
            fr.record(TraceEvent::new(Phase::End, 20, "q", Category::Query, &[]));
            reg.counter_add("q.runs", 1);
            let td = TopDown {
                cores: vec![TopDownCore {
                    retired: 20,
                    elapsed: 20,
                    ..TopDownCore::default()
                }],
            };
            fr.dump("crc-failure", 20, &reg.snapshot(), &td).to_json()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "postmortem must be byte-deterministic");
        let doc = crate::parse_json(&a).expect("artifact parses");
        assert_eq!(
            doc.get("reason").and_then(crate::Json::as_str),
            Some("crc-failure")
        );
        assert!(a.contains("\"rm.fault.crc\""), "{a}");
        // The embedded trace stands alone as a valid Chrome trace.
        let (mut fr2, reg2) = armed_recorder();
        fr2.record(TraceEvent::new(Phase::Begin, 1, "s", Category::Rm, &[]));
        fr2.record(TraceEvent::new(Phase::End, 2, "s", Category::Rm, &[]));
        let pm = fr2.dump("degraded", 2, &reg2.snapshot(), &TopDown::default());
        crate::validate_chrome_trace(&pm.trace).expect("trace validates");
    }

    #[test]
    fn wrapped_ring_elides_orphan_ends() {
        let mut fr = FlightRecorder::with_capacity(2);
        fr.record(TraceEvent::new(Phase::Begin, 1, "a", Category::Query, &[]));
        fr.record(TraceEvent::new(Phase::Begin, 2, "b", Category::Query, &[]));
        // Wraps: "a"'s begin falls off; its end would be an orphan.
        fr.record(TraceEvent::new(Phase::End, 3, "a", Category::Query, &[]));
        let reg = MetricsRegistry::new();
        let pm = fr.dump("degraded", 3, &reg.snapshot(), &TopDown::default());
        let s = crate::validate_chrome_trace(&pm.trace).expect("sanitized trace validates");
        assert_eq!(s.ends, 0, "orphan end must be elided");
        assert_eq!(s.begins, 1);
    }

    #[test]
    fn context_embeds_verbatim_and_stays_parseable() {
        let (mut fr, reg) = armed_recorder();
        let ctx = "{\"watermark\":7,\"degraded\":\"torn checkpoint\"}".to_string();
        let pm = fr
            .dump_with_context(
                "recovery-degraded",
                9,
                &reg.snapshot(),
                &TopDown::default(),
                Some(ctx),
            )
            .to_json();
        let doc = crate::parse_json(&pm).expect("artifact with context parses");
        assert_eq!(
            doc.get("context")
                .and_then(|c| c.get("watermark"))
                .and_then(crate::Json::as_num),
            Some(7.0)
        );
        // Without context the key is absent entirely (byte-compatible
        // with pre-context artifacts).
        let pm2 = fr
            .dump("degraded", 9, &reg.snapshot(), &TopDown::default())
            .to_json();
        assert!(!pm2.contains("\"context\""));
    }

    #[test]
    fn postmortems_are_bounded_but_counted() {
        let mut fr = FlightRecorder::with_capacity(4);
        let reg = MetricsRegistry::new();
        for _ in 0..(MAX_POSTMORTEMS + 3) {
            fr.dump("degraded", 1, &reg.snapshot(), &TopDown::default());
        }
        assert_eq!(fr.postmortems().len(), MAX_POSTMORTEMS);
        assert_eq!(fr.dumps(), (MAX_POSTMORTEMS + 3) as u64);
        assert_eq!(fr.take_postmortems().len(), MAX_POSTMORTEMS);
        assert!(fr.postmortems().is_empty());
    }
}
