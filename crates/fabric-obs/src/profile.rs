//! Cycle-domain sampling profiler with folded-stack export.
//!
//! [`SamplingProfiler`] wraps any [`FabricRecorder`] and, as trace events
//! stream through, samples the open-span stack once every `period`
//! simulated cycles. Samples accumulate into a folded-stack map —
//! `"fabric;query:exec;mem:wal-append" -> count` — exported as
//! collapsed-stack text ([`SamplingProfiler::to_folded`]) that
//! flamegraph.pl and speedscope both ingest directly.
//!
//! Sampling is driven *entirely* by the cycle timestamps engines already
//! emit: the profiler never reads host time and never advances the
//! simulated clock, so profiles are bit-deterministic for a fixed seed
//! and the zero-cost invariant holds — a run under [`NoopRecorder`]
//! (no profiler installed) has identical cycle counts to a profiled run
//! (`tests/trace_determinism.rs` asserts both).
//!
//! Timestamps from forked multi-core sections arrive non-monotonically
//! (each core carries its own clock); the profiler tracks a frontier and
//! only ticks forward, so the sample total always reconciles as
//! `samples == (frontier - origin) / period` (integer division).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::recorder::FabricRecorder;
use crate::trace::Category;
use crate::Cycles;

/// Sampling statistics reported by [`FabricRecorder::profile_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileStats {
    /// Samples taken so far.
    pub samples: u64,
    /// Sampling period in simulated cycles.
    pub period: Cycles,
    /// Timestamp of the first event seen (sampling origin).
    pub start: Cycles,
    /// Highest timestamp seen (the sampling frontier).
    pub end: Cycles,
}

/// A [`FabricRecorder`] decorator that samples the open-span stack every
/// `period` simulated cycles into a folded-stack accumulator, forwarding
/// every event to the wrapped recorder unchanged.
pub struct SamplingProfiler {
    inner: Box<dyn FabricRecorder>,
    period: Cycles,
    /// Timestamp of the first event; `None` until sampling starts.
    origin: Option<Cycles>,
    /// Next cycle at which a sample is due.
    next_tick: Cycles,
    /// Highest timestamp observed (multi-core events may arrive out of
    /// order; the frontier only moves forward).
    frontier: Cycles,
    /// Open-span stack as `(category, name)` frames.
    stack: Vec<(&'static str, &'static str)>,
    /// Folded stack key -> sample count.
    folded: BTreeMap<String, u64>,
    samples: u64,
}

impl SamplingProfiler {
    /// Wrap `inner`, sampling every `period` cycles (`period` is clamped
    /// to at least 1).
    pub fn wrapping(inner: Box<dyn FabricRecorder>, period: Cycles) -> Self {
        SamplingProfiler {
            inner,
            period: period.max(1),
            origin: None,
            next_tick: 0,
            frontier: 0,
            stack: Vec::new(),
            folded: BTreeMap::new(),
            samples: 0,
        }
    }

    /// The wrapped recorder (e.g. to export its Chrome trace).
    pub fn inner(&self) -> &dyn FabricRecorder {
        &*self.inner
    }

    /// Current stack rendered as a folded key: frames joined with `';'`,
    /// each frame `"<cat>:<name>"`, under a constant `"fabric"` root so
    /// samples taken between spans still land somewhere visible.
    fn stack_key(&self) -> String {
        let mut key = String::from("fabric");
        for (cat, name) in &self.stack {
            let _ignored = write!(key, ";{cat}:{name}");
        }
        key
    }

    /// Advance the sampling clock to `ts`, attributing one sample to the
    /// *current* stack for every period boundary crossed. Called before
    /// the event at `ts` mutates the stack, so a sample due exactly at a
    /// span edge sees the state preceding the edge (half-open intervals,
    /// applied consistently — determinism cares, the flamegraph doesn't).
    fn advance_to(&mut self, ts: Cycles) {
        let ts = ts.max(self.frontier);
        if self.origin.is_none() {
            self.origin = Some(ts);
            self.next_tick = ts.saturating_add(self.period);
        }
        while self.next_tick <= ts {
            let key = self.stack_key();
            *self.folded.entry(key).or_insert(0) += 1;
            self.samples += 1;
            self.next_tick = self.next_tick.saturating_add(self.period);
        }
        self.frontier = ts;
    }

    /// Collapsed-stack text: one `"<stack> <count>"` line per distinct
    /// stack, sorted by stack key. Deterministic byte-for-byte.
    pub fn to_folded(&self) -> String {
        let mut out = String::with_capacity(self.folded.len() * 32);
        for (stack, count) in &self.folded {
            let _ignored = writeln!(out, "{stack} {count}");
        }
        out
    }

    /// Sampling statistics so far.
    pub fn stats(&self) -> ProfileStats {
        ProfileStats {
            samples: self.samples,
            period: self.period,
            start: self.origin.unwrap_or(0),
            end: self.frontier,
        }
    }
}

impl FabricRecorder for SamplingProfiler {
    fn enabled(&self) -> bool {
        // The profiler itself consumes events even if the inner sink
        // discards them.
        true
    }

    fn begin(&mut self, ts: Cycles, name: &'static str, cat: Category) {
        self.advance_to(ts);
        self.stack.push((cat.name(), name));
        self.inner.begin(ts, name, cat);
    }

    fn end(&mut self, ts: Cycles, name: &'static str, cat: Category, args: &[(&'static str, u64)]) {
        self.advance_to(ts);
        // Close the most recent matching frame (forked cores interleave,
        // so the top of stack is not always the span being closed).
        let cat_name = cat.name();
        if let Some(i) = self
            .stack
            .iter()
            .rposition(|&(c, n)| c == cat_name && n == name)
        {
            self.stack.remove(i);
        }
        self.inner.end(ts, name, cat, args);
    }

    fn instant(
        &mut self,
        ts: Cycles,
        name: &'static str,
        cat: Category,
        args: &[(&'static str, u64)],
    ) {
        self.advance_to(ts);
        self.inner.instant(ts, name, cat, args);
    }

    fn counter(&mut self, ts: Cycles, name: &'static str, cat: Category, value: u64) {
        self.advance_to(ts);
        self.inner.counter(ts, name, cat, value);
    }

    fn export_chrome_json(&self) -> Option<String> {
        self.inner.export_chrome_json()
    }

    fn export_folded(&self) -> Option<String> {
        Some(self.to_folded())
    }

    fn profile_stats(&self) -> Option<ProfileStats> {
        Some(self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{NoopRecorder, RingRecorder};

    #[test]
    fn samples_attribute_to_the_open_stack() {
        let mut p = SamplingProfiler::wrapping(Box::new(NoopRecorder), 10);
        p.begin(0, "exec", Category::Query);
        p.begin(5, "scan", Category::Mem);
        p.end(95, "scan", Category::Mem, &[]);
        p.end(100, "exec", Category::Query, &[]);
        let stats = p.stats();
        assert_eq!(stats.start, 0);
        assert_eq!(stats.end, 100);
        // Ticks at 10..=100: ten samples, reconciling with elapsed/period.
        assert_eq!(stats.samples, (stats.end - stats.start) / stats.period);
        let folded = p.to_folded();
        // Ticks 10..=90 happen inside the nested scan (advance runs
        // before the closing edge mutates the stack at 95 and 100).
        assert!(folded.contains("fabric;query:exec;mem:scan 9"), "{folded}");
        assert!(folded.contains("fabric;query:exec 1"), "{folded}");
        let total: u64 = p.folded.values().sum();
        assert_eq!(total, stats.samples);
    }

    #[test]
    fn non_monotonic_timestamps_only_move_the_frontier_forward() {
        let mut p = SamplingProfiler::wrapping(Box::new(NoopRecorder), 10);
        p.begin(0, "fork", Category::Query);
        p.end(50, "core1", Category::Mem, &[]); // unmatched end: ignored frame-wise
        p.begin(20, "late", Category::Mem); // earlier core's event arrives late
        p.end(60, "late", Category::Mem, &[]);
        p.end(70, "fork", Category::Query, &[]);
        let stats = p.stats();
        assert_eq!(stats.end, 70);
        assert_eq!(stats.samples, 7);
    }

    #[test]
    fn folded_export_is_deterministic_and_forwards_to_inner() {
        let run = || {
            let mut p = SamplingProfiler::wrapping(Box::new(RingRecorder::new(16)), 7);
            p.begin(3, "a", Category::Query);
            p.instant(10, "tick", Category::Fault, &[]);
            p.end(40, "a", Category::Query, &[("rows", 1)]);
            (p.to_folded(), p.export_chrome_json().unwrap())
        };
        let (f1, t1) = run();
        let (f2, t2) = run();
        assert_eq!(f1, f2);
        assert_eq!(t1, t2);
        assert!(!f1.is_empty());
        crate::json::validate_chrome_trace(&t1).expect("inner trace still valid");
    }

    #[test]
    fn empty_profile_folds_to_empty_text() {
        let p = SamplingProfiler::wrapping(Box::new(NoopRecorder), 100);
        assert_eq!(p.to_folded(), "");
        assert_eq!(p.stats().samples, 0);
    }
}
