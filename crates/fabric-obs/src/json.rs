//! A minimal JSON model: enough writer support to escape strings, and a
//! strict parser so exported traces and metric snapshots can be
//! structurally validated offline (no external parsers in this workspace).

use std::fmt;

/// Escape a string for embedding in a JSON document.
pub fn escaped(s: &str) -> Escaped<'_> {
    Escaped(s)
}

/// Display adapter produced by [`escaped`].
pub struct Escaped<'a>(&'a str);

impl fmt::Display for Escaped<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in self.0.chars() {
            match c {
                '"' => f.write_str("\\\"")?,
                '\\' => f.write_str("\\\\")?,
                '\n' => f.write_str("\\n")?,
                '\r' => f.write_str("\\r")?,
                '\t' => f.write_str("\\t")?,
                c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                c => write!(f, "{c}")?,
            }
        }
        Ok(())
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object as an ordered key/value list (duplicate keys preserved —
    /// the validator rejects none, this is a diagnostic tool).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(src, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {} (found {:?})",
            ch as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(src: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(src, bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(src, bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    other => return Err(format!("expected `,` or `}}`, found {other:?}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(src, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected `,` or `]`, found {other:?}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(src, bytes, pos)?)),
        Some(b't') => keyword(src, pos, "true", Json::Bool(true)),
        Some(b'f') => keyword(src, pos, "false", Json::Bool(false)),
        Some(b'n') => keyword(src, pos, "null", Json::Null),
        Some(_) => parse_number(src, bytes, pos),
    }
}

fn keyword(src: &str, pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if src[*pos..].starts_with(word) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(src: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let rest = &src[*pos..];
        let mut chars = rest.char_indices();
        match chars.next() {
            None => return Err("unterminated string".into()),
            Some((_, '"')) => {
                *pos += 1;
                return Ok(out);
            }
            Some((_, '\\')) => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = src.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("\\u escape: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some((i, c)) => {
                out.push(c);
                *pos += c.len_utf8() + i;
            }
        }
    }
}

fn parse_number(src: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    src[start..*pos]
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number `{}`: {e}", &src[start..*pos]))
}

/// What [`validate_chrome_trace`] found in a structurally valid export.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChromeTraceSummary {
    pub events: usize,
    pub begins: usize,
    pub ends: usize,
    pub instants: usize,
    pub counters: usize,
    /// `otherData.dropped` from the export header.
    pub dropped: u64,
}

/// Structurally validate a Chrome trace-event JSON export:
/// top-level object with a `traceEvents` array; every event carries a
/// string `name`, a `ph` in `{B, E, i, C}`, a numeric `ts`, and numeric
/// `pid`/`tid`; begin/end events balance per `(tid, name)`.
pub fn validate_chrome_trace(src: &str) -> Result<ChromeTraceSummary, String> {
    let doc = parse_json(src)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing `traceEvents`")?
        .as_arr()
        .ok_or("`traceEvents` is not an array")?;
    let mut summary = ChromeTraceSummary {
        events: events.len(),
        ..ChromeTraceSummary::default()
    };
    if let Some(d) = doc.get("otherData").and_then(|o| o.get("dropped")) {
        summary.dropped = d.as_num().ok_or("`dropped` is not a number")? as u64;
    }
    let mut open: Vec<(f64, String)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string `name`"))?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string `ph`"))?;
        ev.get("ts")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i}: missing numeric `ts`"))?;
        ev.get("pid")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i}: missing numeric `pid`"))?;
        let tid = ev
            .get("tid")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i}: missing numeric `tid`"))?;
        match ph {
            "B" => {
                summary.begins += 1;
                open.push((tid, name.to_string()));
            }
            "E" => {
                summary.ends += 1;
                let top = open
                    .iter()
                    .rposition(|(t, n)| *t == tid && n == name)
                    .ok_or_else(|| format!("event {i}: `E` for `{name}` with no open `B`"))?;
                open.remove(top);
            }
            "i" => summary.instants += 1,
            "C" => summary.counters += 1,
            other => return Err(format!("event {i}: unknown phase `{other}`")),
        }
    }
    // A ring that dropped its oldest events may have orphan `E`s (their
    // `B` was overwritten) — already tolerated above only when balanced;
    // unbalanced opens at EOF are fine (the trace window closed mid-span).
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        let j = parse_json(r#"{"a":[1,2.5,-3e2],"b":"x\n","c":true,"d":null}"#).unwrap();
        assert_eq!(j.get("b").unwrap().as_str().unwrap(), "x\n");
        let arr = j.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[2].as_num().unwrap(), -300.0);
        assert_eq!(j.get("c"), Some(&Json::Bool(true)));
        assert_eq!(j.get("d"), Some(&Json::Null));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse_json("{} x").is_err());
        assert!(parse_json("{\"a\":").is_err());
        assert!(parse_json("[1,]").is_err());
    }

    #[test]
    fn escaping_round_trips() {
        let src = "a\"b\\c\nd\te\u{1}";
        let doc = format!("{{\"k\":\"{}\"}}", escaped(src));
        let j = parse_json(&doc).unwrap();
        assert_eq!(j.get("k").unwrap().as_str().unwrap(), src);
    }

    #[test]
    fn validator_accepts_balanced_and_rejects_orphan_end() {
        let good = r#"{"traceEvents":[
            {"name":"a","cat":"q","ph":"B","ts":1,"pid":1,"tid":1},
            {"name":"a","cat":"q","ph":"E","ts":2,"pid":1,"tid":1}]}"#;
        let s = validate_chrome_trace(good).unwrap();
        assert_eq!((s.begins, s.ends), (1, 1));
        let bad = r#"{"traceEvents":[
            {"name":"a","cat":"q","ph":"E","ts":2,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(bad).is_err());
    }

    #[test]
    fn validator_requires_event_fields() {
        let missing_ts = r#"{"traceEvents":[{"name":"a","ph":"i","pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(missing_ts).is_err());
        let bad_ph = r#"{"traceEvents":[{"name":"a","ph":"Z","ts":1,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(bad_ph).is_err());
    }
}
