//! The COL baseline: an in-memory column store with column-at-a-time
//! processing.
//!
//! Paper §V: *"[we custom implement] an in-memory column-store following the
//! column-at-a-time processing model"*. Unlike the Relational Memory path,
//! this engine keeps a *materialized* copy of every column as a dense array
//! (that is precisely the data duplication the Relational Fabric removes):
//!
//! * [`ColTable`] holds per-column arrays in the simulated arena;
//! * [`exec`] provides vectorized primitives: full-column predicate scans,
//!   candidate-list refinement, lockstep multi-column iteration, and tuple
//!   reconstruction — the operation whose cost the paper identifies as
//!   COL's weakness at high projectivity.

pub mod exec;
pub mod table;

pub use exec::{
    for_each_lockstep, for_each_lockstep_fused, reconstruct, refine, refine_conj, scan_filter,
    scan_filter_conj, sum_expr, TupleBatch,
};
pub use table::{ColRef, ColTable};
