//! Column-oriented tables: one dense array per column.

use fabric_sim::MemoryHierarchy;
use fabric_types::{Addr, ColumnId, ColumnType, FabricError, Result, Schema, Value};

/// Location and type of one column array.
#[derive(Debug, Clone, Copy)]
pub struct ColRef {
    pub addr: Addr,
    pub ty: ColumnType,
}

impl ColRef {
    /// Address of element `row`.
    #[inline]
    pub fn at(&self, row: usize) -> Addr {
        self.addr + (row * self.ty.width()) as u64
    }
}

/// A column-oriented table: each column is a contiguous array in the arena.
///
/// This is the layout a classic analytical system materializes — and the
/// duplicate copy a Relational Fabric deployment would not need.
pub struct ColTable {
    schema: Schema,
    cols: Vec<ColRef>,
    rows: usize,
    capacity: usize,
    /// Scratch arrays for materialized selection vectors (ping/pong): the
    /// column-at-a-time engine writes each pass's qualifying positions and
    /// reads them back in the next pass, and that traffic is real.
    sv_in: Addr,
    sv_out: Addr,
    /// Scratch for materialized intermediate value arrays (the BATs a
    /// column-at-a-time engine writes between passes).
    mat: Addr,
}

impl ColTable {
    /// Allocate arrays for `capacity` rows.
    pub fn create(mem: &mut MemoryHierarchy, schema: Schema, capacity: usize) -> Result<Self> {
        let line = mem.config().line_size;
        let mut cols = Vec::with_capacity(schema.len());
        for (_, def) in schema.iter() {
            let addr = mem.alloc(capacity * def.ty.width(), line)?;
            cols.push(ColRef { addr, ty: def.ty });
        }
        let sv_in = mem.alloc(capacity * 4, line)?;
        let sv_out = mem.alloc(capacity * 4, line)?;
        let mat = mem.alloc(capacity * 8, line)?;
        Ok(ColTable {
            schema,
            cols,
            rows: 0,
            capacity,
            sv_in,
            sv_out,
            mat,
        })
    }

    /// Address of byte `off` of the intermediate-materialization scratch.
    pub fn mat_addr(&self, off: usize) -> Addr {
        self.mat + off as u64
    }

    /// Address of slot `i` of the selection-vector scratch being *read*.
    pub fn sv_in_addr(&self, i: usize) -> Addr {
        self.sv_in + (i * 4) as u64
    }

    /// Address of slot `i` of the selection-vector scratch being *written*.
    pub fn sv_out_addr(&self, i: usize) -> Addr {
        self.sv_out + (i * 4) as u64
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn len(&self) -> usize {
        self.rows
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Discard all rows (keeps the allocation). Used when a table acts as a
    /// refreshable analytical copy of row-oriented base data.
    pub fn clear(&mut self) {
        self.rows = 0;
    }

    /// The array backing column `id`.
    pub fn col(&self, id: ColumnId) -> Result<ColRef> {
        self.cols
            .get(id)
            .copied()
            .ok_or(FabricError::ColumnIndexOutOfRange {
                index: id,
                len: self.cols.len(),
            })
    }

    /// Column id by name.
    pub fn column_id(&self, name: &str) -> Result<ColumnId> {
        self.schema.column_id(name)
    }

    fn encode_at(
        &self,
        mem: &mut MemoryHierarchy,
        row: usize,
        values: &[Value],
        timed: bool,
    ) -> Result<()> {
        if values.len() != self.schema.len() {
            return Err(FabricError::Internal(format!(
                "row has {} values, schema has {} columns",
                values.len(),
                self.schema.len()
            )));
        }
        let mut buf = [0u8; 64];
        for (c, v) in values.iter().enumerate() {
            let col = self.cols[c];
            let w = col.ty.width();
            if w > buf.len() {
                return Err(FabricError::Internal("column wider than 64 bytes".into()));
            }
            v.encode_into(col.ty, &mut buf[..w])?;
            if timed {
                // The column-store insert penalty: one scattered write per
                // column.
                mem.write(col.at(row), &buf[..w]);
            } else {
                mem.write_untimed(col.at(row), &buf[..w]);
            }
        }
        Ok(())
    }

    /// Append a row through the timed hierarchy: `n_columns` scattered
    /// writes — the reason column stores are "an inefficient layout for
    /// inserts" (paper §II).
    pub fn append(&mut self, mem: &mut MemoryHierarchy, values: &[Value]) -> Result<usize> {
        if self.rows == self.capacity {
            return Err(FabricError::Internal("table full".into()));
        }
        mem.cpu(mem.costs().value_op * self.schema.len() as u64);
        self.encode_at(mem, self.rows, values, true)?;
        self.rows += 1;
        Ok(self.rows - 1)
    }

    /// Untimed bulk load.
    pub fn load(&mut self, mem: &mut MemoryHierarchy, values: &[Value]) -> Result<usize> {
        if self.rows == self.capacity {
            return Err(FabricError::Internal("table full".into()));
        }
        self.encode_at(mem, self.rows, values, false)?;
        self.rows += 1;
        Ok(self.rows - 1)
    }

    /// Build a columnar copy of a row table (untimed: physical-design-time
    /// conversion, exactly the duplication HTAP systems pay for).
    pub fn from_rows(
        mem: &mut MemoryHierarchy,
        rows: &rowstore_view::RowTableView<'_>,
    ) -> Result<Self> {
        let mut t = Self::create(mem, rows.schema.clone(), rows.len)?;
        for i in 0..rows.len {
            let vals = (rows.decode)(i)?;
            t.load(mem, &vals)?;
        }
        Ok(t)
    }

    /// Decode one value without timing (verification helper).
    pub fn value_untimed(&self, mem: &MemoryHierarchy, row: usize, col: ColumnId) -> Result<Value> {
        let c = self.col(col)?;
        let bytes = mem.read_untimed(c.at(row), c.ty.width());
        Ok(Value::decode(c.ty, bytes))
    }
}

/// A light abstraction so `ColTable::from_rows` does not depend on the
/// `rowstore` crate (avoids a dependency cycle); `workload` provides the
/// glue.
pub mod rowstore_view {
    use fabric_types::{Result, Schema, Value};

    /// Borrowed view of a row table: its schema, length, and a row decoder.
    pub struct RowTableView<'a> {
        pub schema: Schema,
        pub len: usize,
        #[allow(clippy::type_complexity)]
        pub decode: Box<dyn Fn(usize) -> Result<Vec<Value>> + 'a>,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::SimConfig;

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(SimConfig::zynq_a53())
    }

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("id", ColumnType::I64),
            ("qty", ColumnType::I32),
            ("name", ColumnType::FixedStr(4)),
        ])
    }

    #[test]
    fn load_and_read_back() {
        let mut mem = mem();
        let mut t = ColTable::create(&mut mem, schema(), 8).unwrap();
        t.load(
            &mut mem,
            &[Value::I64(1), Value::I32(10), Value::Str("ab".into())],
        )
        .unwrap();
        t.load(
            &mut mem,
            &[Value::I64(2), Value::I32(20), Value::Str("cd".into())],
        )
        .unwrap();
        assert_eq!(t.value_untimed(&mem, 1, 0).unwrap(), Value::I64(2));
        assert_eq!(t.value_untimed(&mem, 0, 1).unwrap(), Value::I32(10));
        assert_eq!(
            t.value_untimed(&mem, 1, 2).unwrap(),
            Value::Str("cd".into())
        );
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn columns_are_contiguous_arrays() {
        let mut mem = mem();
        let mut t = ColTable::create(&mut mem, schema(), 100).unwrap();
        for i in 0..50i64 {
            t.load(
                &mut mem,
                &[Value::I64(i), Value::I32(i as i32), Value::Str("x".into())],
            )
            .unwrap();
        }
        let qty = t.col(1).unwrap();
        assert_eq!(qty.at(10) - qty.at(0), 40); // 10 * 4 bytes
                                                // Raw array contents are dense i32s.
        let raw = mem.read_untimed(qty.addr, 50 * 4);
        let v7 = i32::from_le_bytes(raw[28..32].try_into().unwrap());
        assert_eq!(v7, 7);
    }

    #[test]
    fn timed_append_is_more_expensive_per_row_than_rowstore_style_write() {
        let mut mem = mem();
        let mut t = ColTable::create(&mut mem, schema(), 1024).unwrap();
        let t0 = mem.now();
        t.append(
            &mut mem,
            &[Value::I64(1), Value::I32(2), Value::Str("a".into())],
        )
        .unwrap();
        let col_insert = mem.now() - t0;
        // Three scattered lines (one per column) vs one line for a 16-byte
        // row: the column insert must touch at least 3 lines.
        assert!(mem.stats().line_accesses >= 3);
        assert!(col_insert > 0);
    }

    #[test]
    fn capacity_and_arity_checks() {
        let mut mem = mem();
        let mut t = ColTable::create(&mut mem, schema(), 1).unwrap();
        let row = [Value::I64(1), Value::I32(2), Value::Str("a".into())];
        t.load(&mut mem, &row).unwrap();
        assert!(t.load(&mut mem, &row).is_err());
        assert!(t.col(7).is_err());
    }
}
