//! Column-at-a-time execution primitives.
//!
//! The building blocks of the COL baseline:
//!
//! * [`scan_filter`] — vectorized full-column predicate scan producing a
//!   selection vector (one perfectly sequential stream; the prefetcher
//!   loves it);
//! * [`refine`] — re-check a candidate list against another column
//!   (data-dependent, irregular accesses; the prefetcher does not);
//! * [`for_each_lockstep`] — stream several columns in lockstep batches.
//!   Each batch switches between `p` column arrays: with more than the
//!   prefetcher's stream capacity (4 on the A53) every switch retrains,
//!   which is the mechanical source of the paper's four-column crossover;
//! * [`reconstruct`] — lockstep iteration plus per-value tuple-stitching
//!   cost, the "tuple reconstruction cost" of paper §II;
//! * [`sum_expr`] — aggregate an expression over columns.

use crate::table::ColTable;
use fabric_sim::MemoryHierarchy;
use fabric_types::{CmpOp, ColumnId, Expr, FabricError, Result, Value};

/// Rows per vectorized batch (a classic vector size: 1024 values).
pub const BATCH_ROWS: usize = 1024;

/// Cycles for one comparison against a value of this column type
/// (floating-point compares run on the FPU).
fn cmp_cycles(costs: &fabric_sim::hierarchy::OpCosts, ty: fabric_types::ColumnType) -> u64 {
    match ty {
        fabric_types::ColumnType::F32 | fabric_types::ColumnType::F64 => costs.f64_op,
        _ => costs.value_op,
    }
}

/// Verify that every position in a candidate/selection vector addresses a
/// row of `t`. A stale or hand-built vector would otherwise surface as an
/// arena panic deep inside the access loops; this returns the structured
/// error up front instead.
fn check_selection(t: &ColTable, sel: &[u32]) -> Result<()> {
    match sel.iter().max() {
        Some(&max) if (max as usize) >= t.len() => Err(FabricError::RowIndexOutOfRange {
            index: max as usize,
            len: t.len(),
        }),
        _ => Ok(()),
    }
}

/// A batch of reconstructed tuples, row-major.
pub struct TupleBatch {
    pub arity: usize,
    pub values: Vec<Value>,
}

impl TupleBatch {
    pub fn rows(&self) -> usize {
        if self.arity == 0 {
            0
        } else {
            self.values.len() / self.arity
        }
    }

    pub fn row(&self, i: usize) -> &[Value] {
        &self.values[i * self.arity..(i + 1) * self.arity]
    }
}

/// Vectorized full-column scan: returns the selection vector of row ids
/// whose value satisfies `op value`.
pub fn scan_filter(
    mem: &mut MemoryHierarchy,
    t: &ColTable,
    col: ColumnId,
    op: CmpOp,
    value: &Value,
) -> Result<Vec<u32>> {
    let c = t.col(col)?;
    let w = c.ty.width();
    let costs = mem.costs();
    let mut sel = Vec::new();
    let mut kept: Vec<u32> = Vec::with_capacity(BATCH_ROWS);
    let mut row = 0usize;
    // One primitive invocation, one setup: the batch loop below is the
    // steady state, so `vector_setup` amortizes over the whole call
    // rather than recurring every BATCH_ROWS.
    if row < t.len() {
        mem.cpu(costs.vector_setup);
    }
    while row < t.len() {
        let n = BATCH_ROWS.min(t.len() - row);
        mem.touch_read(c.at(row), n * w);
        mem.cpu(n as u64 * (costs.vector_elem + cmp_cycles(&costs, c.ty)));
        let bytes = mem.bytes(c.at(row), n * w);
        for i in 0..n {
            let v = Value::decode(c.ty, &bytes[i * w..(i + 1) * w]);
            if op.matches(v.compare(value)?) {
                kept.push((row + i) as u32);
            }
        }
        if !kept.is_empty() {
            mem.touch_write(t.sv_out_addr(sel.len()), kept.len() * 4);
            sel.append(&mut kept);
        }
        row += n;
    }
    Ok(sel)
}

/// Vectorized full-column scan with several conjuncts on the *same* column
/// (e.g. a range predicate) evaluated in one pass.
pub fn scan_filter_conj(
    mem: &mut MemoryHierarchy,
    t: &ColTable,
    col: ColumnId,
    preds: &[(CmpOp, Value)],
) -> Result<Vec<u32>> {
    scan_filter_conj_range(mem, t, col, preds, 0, t.len())
}

/// [`scan_filter_conj`] restricted to raw rows `[start, end)` — one morsel
/// of the scan space. Emitted positions are absolute row ids, so per-morsel
/// selection vectors concatenate in morsel order to the full-scan result.
pub fn scan_filter_conj_range(
    mem: &mut MemoryHierarchy,
    t: &ColTable,
    col: ColumnId,
    preds: &[(CmpOp, Value)],
    start: usize,
    end: usize,
) -> Result<Vec<u32>> {
    let mut sel = Vec::new();
    scan_filter_conj_range_into(mem, t, col, preds, start, end, &mut sel)?;
    Ok(sel)
}

/// [`scan_filter_conj_range`] writing into a caller-supplied selection
/// vector (cleared first) so the staged executor can recycle one buffer
/// across morsels and queries. Cycle/byte charging is identical — buffer
/// reuse is host-side only.
pub fn scan_filter_conj_range_into(
    mem: &mut MemoryHierarchy,
    t: &ColTable,
    col: ColumnId,
    preds: &[(CmpOp, Value)],
    start: usize,
    end: usize,
    sel: &mut Vec<u32>,
) -> Result<()> {
    sel.clear();
    let c = t.col(col)?;
    let w = c.ty.width();
    let costs = mem.costs();
    let end = end.min(t.len());
    let mut kept: Vec<u32> = Vec::with_capacity(BATCH_ROWS);
    let mut row = start.min(end);
    if row < end {
        mem.cpu(costs.vector_setup);
    }
    while row < end {
        let n = BATCH_ROWS.min(end - row);
        mem.touch_read(c.at(row), n * w);
        mem.cpu(n as u64 * (costs.vector_elem + cmp_cycles(&costs, c.ty) * preds.len() as u64));
        let bytes = mem.bytes(c.at(row), n * w);
        'rows: for i in 0..n {
            let v = Value::decode(c.ty, &bytes[i * w..(i + 1) * w]);
            for (op, value) in preds {
                if !op.matches(v.compare(value)?) {
                    continue 'rows;
                }
            }
            kept.push((row + i) as u32);
        }
        if !kept.is_empty() {
            mem.touch_write(t.sv_out_addr(sel.len()), kept.len() * 4);
            sel.append(&mut kept);
        }
        row += n;
    }
    Ok(())
}

/// Column-at-a-time candidate pass: the whole-column select operator of a
/// classic column engine. The *entire* column is streamed and every row's
/// predicate evaluated (that is the column-at-a-time contract — the
/// operator has no knowledge of which rows earlier passes kept); the match
/// set is then intersected with the incoming candidate list.
pub fn scan_filter_cand(
    mem: &mut MemoryHierarchy,
    t: &ColTable,
    col: ColumnId,
    preds: &[(CmpOp, Value)],
    candidates: &[u32],
) -> Result<Vec<u32>> {
    scan_filter_cand_range(mem, t, col, preds, candidates, 0, t.len())
}

/// [`scan_filter_cand`] restricted to raw rows `[start, end)`. The
/// candidate list must contain only positions inside the range (the
/// morsel-driven executor hands each morsel its own candidates).
pub fn scan_filter_cand_range(
    mem: &mut MemoryHierarchy,
    t: &ColTable,
    col: ColumnId,
    preds: &[(CmpOp, Value)],
    candidates: &[u32],
    start: usize,
    end: usize,
) -> Result<Vec<u32>> {
    let mut out = Vec::new();
    scan_filter_cand_range_into(mem, t, col, preds, candidates, start, end, &mut out)?;
    Ok(out)
}

/// [`scan_filter_cand_range`] writing into a caller-supplied output vector
/// (cleared first) for buffer reuse across morsels and queries. Charging
/// is identical to the allocating variant.
#[allow(clippy::too_many_arguments)]
pub fn scan_filter_cand_range_into(
    mem: &mut MemoryHierarchy,
    t: &ColTable,
    col: ColumnId,
    preds: &[(CmpOp, Value)],
    candidates: &[u32],
    start: usize,
    end: usize,
    out: &mut Vec<u32>,
) -> Result<()> {
    out.clear();
    let c = t.col(col)?;
    check_selection(t, candidates)?;
    let w = c.ty.width();
    let costs = mem.costs();
    let end = end.min(t.len());
    out.reserve(candidates.len());
    let mut kept: Vec<u32> = Vec::with_capacity(BATCH_ROWS);
    let mut ci = 0usize; // cursor into candidates
    let mut row = start.min(end);
    // Candidates below the range would never be visited; reject instead of
    // silently dropping them.
    if candidates.first().is_some_and(|&p| (p as usize) < row) {
        return Err(FabricError::RowIndexOutOfRange {
            index: candidates[0] as usize,
            len: row,
        });
    }
    if row < end {
        mem.cpu(costs.vector_setup);
    }
    while row < end {
        let n = BATCH_ROWS.min(end - row);
        // Full-column sequential read and full-width evaluation.
        mem.touch_read(c.at(row), n * w);
        mem.cpu(n as u64 * (costs.vector_elem + cmp_cycles(&costs, c.ty) * preds.len() as u64));
        // Candidate positions falling into this chunk (read back from the
        // materialized selection vector), then intersect.
        let ci0 = ci;
        while ci < candidates.len() && (candidates[ci] as usize) < row + n {
            ci += 1;
        }
        if ci > ci0 {
            mem.touch_read(t.sv_in_addr(ci0), (ci - ci0) * 4);
            mem.cpu((ci - ci0) as u64 * costs.value_op);
        }
        let bytes = mem.bytes(c.at(row), n * w);
        'cands: for &pos in &candidates[ci0..ci] {
            let i = pos as usize - row;
            let v = Value::decode(c.ty, &bytes[i * w..(i + 1) * w]);
            for (op, value) in preds {
                if !op.matches(v.compare(value)?) {
                    continue 'cands;
                }
            }
            kept.push(pos);
        }
        if !kept.is_empty() {
            mem.touch_write(t.sv_out_addr(out.len()), kept.len() * 4);
            out.append(&mut kept);
        }
        row += n;
    }
    Ok(())
}

/// [`refine`] with several conjuncts on the same column.
pub fn refine_conj(
    mem: &mut MemoryHierarchy,
    t: &ColTable,
    col: ColumnId,
    preds: &[(CmpOp, Value)],
    candidates: &[u32],
) -> Result<Vec<u32>> {
    let c = t.col(col)?;
    check_selection(t, candidates)?;
    let w = c.ty.width();
    let costs = mem.costs();
    let mut out = Vec::with_capacity(candidates.len());
    let mut done = 0usize;
    for chunk in candidates.chunks(BATCH_ROWS) {
        mem.cpu(costs.vector_setup);
        mem.touch_read(t.sv_in_addr(done), chunk.len() * 4);
        let out0 = out.len();
        'cands: for &pos in chunk {
            mem.touch_read(c.at(pos as usize), w);
            mem.cpu(costs.vector_elem + costs.value_op * preds.len() as u64);
            let bytes = mem.bytes(c.at(pos as usize), w);
            let v = Value::decode(c.ty, bytes);
            for (op, value) in preds {
                if !op.matches(v.compare(value)?) {
                    continue 'cands;
                }
            }
            out.push(pos);
        }
        if out.len() > out0 {
            mem.touch_write(t.sv_out_addr(out0), (out.len() - out0) * 4);
        }
        done += chunk.len();
    }
    Ok(out)
}

/// Refine a candidate list against another column. The accesses follow the
/// candidate positions — ascending but data-dependent, so prefetching is
/// unreliable, which is why candidate-list scans degrade as more selection
/// columns pile up.
pub fn refine(
    mem: &mut MemoryHierarchy,
    t: &ColTable,
    col: ColumnId,
    op: CmpOp,
    value: &Value,
    candidates: &[u32],
) -> Result<Vec<u32>> {
    let c = t.col(col)?;
    check_selection(t, candidates)?;
    let w = c.ty.width();
    let costs = mem.costs();
    let mut out = Vec::with_capacity(candidates.len());
    let mut done = 0usize;
    for chunk in candidates.chunks(BATCH_ROWS) {
        mem.cpu(costs.vector_setup);
        mem.touch_read(t.sv_in_addr(done), chunk.len() * 4);
        let out0 = out.len();
        for &pos in chunk {
            mem.touch_read(c.at(pos as usize), w);
            mem.cpu(costs.vector_elem + costs.value_op);
            let bytes = mem.bytes(c.at(pos as usize), w);
            let v = Value::decode(c.ty, bytes);
            if op.matches(v.compare(value)?) {
                out.push(pos);
            }
        }
        if out.len() > out0 {
            mem.touch_write(t.sv_out_addr(out0), (out.len() - out0) * 4);
        }
        done += chunk.len();
    }
    Ok(out)
}

/// Stream `cols` in lockstep over `sel` (or all rows), invoking `f` with
/// `(row_id, values)` for every row. No tuple-reconstruction cost is charged
/// — use this for aggregation-style consumption; the caller charges its own
/// compute (e.g. via [`sum_expr`]).
pub fn for_each_lockstep<F>(
    mem: &mut MemoryHierarchy,
    t: &ColTable,
    cols: &[ColumnId],
    sel: Option<&[u32]>,
    mut f: F,
) -> Result<()>
where
    F: FnMut(&mut MemoryHierarchy, usize, &[Value]) -> Result<()>,
{
    let rows = match sel {
        Some(s) => RowSet::Sel(s),
        None => RowSet::Range(0, t.len()),
    };
    lockstep_impl(mem, t, cols, rows, false, true, |mem, ev| match ev {
        Event::Row(row, vals) => f(mem, row, vals),
        Event::BatchEnd => Ok(()),
    })
}

/// [`for_each_lockstep`] over an explicit selection vector that is still
/// *register-resident*: the caller just produced `sel` in the same fused
/// stage (e.g. the staged executor's filter feeding its project within one
/// morsel), so the positions never round-tripped through the materialized
/// selection-vector arena and re-reading them charges nothing. Column
/// accesses are charged exactly as in [`for_each_lockstep`].
pub fn for_each_lockstep_fused<F>(
    mem: &mut MemoryHierarchy,
    t: &ColTable,
    cols: &[ColumnId],
    sel: &[u32],
    mut f: F,
) -> Result<()>
where
    F: FnMut(&mut MemoryHierarchy, usize, &[Value]) -> Result<()>,
{
    lockstep_impl(
        mem,
        t,
        cols,
        RowSet::Sel(sel),
        false,
        false,
        |mem, ev| match ev {
            Event::Row(row, vals) => f(mem, row, vals),
            Event::BatchEnd => Ok(()),
        },
    )
}

/// [`for_each_lockstep`] over the dense raw-row range `[start, end)` —
/// one morsel of an unselective scan.
pub fn for_each_lockstep_range<F>(
    mem: &mut MemoryHierarchy,
    t: &ColTable,
    cols: &[ColumnId],
    start: usize,
    end: usize,
    mut f: F,
) -> Result<()>
where
    F: FnMut(&mut MemoryHierarchy, usize, &[Value]) -> Result<()>,
{
    let end = end.min(t.len());
    lockstep_impl(
        mem,
        t,
        cols,
        RowSet::Range(start.min(end), end),
        false,
        true,
        |mem, ev| match ev {
            Event::Row(row, vals) => f(mem, row, vals),
            Event::BatchEnd => Ok(()),
        },
    )
}

/// Reconstruct row-major tuples batch by batch, charging the per-value
/// reconstruction cost, and hand each [`TupleBatch`] to `f`. This is the
/// materializing path whose cost grows with projectivity (paper §II:
/// *"increased tuple reconstruction cost for queries with high
/// projectivity"*).
pub fn reconstruct<F>(
    mem: &mut MemoryHierarchy,
    t: &ColTable,
    cols: &[ColumnId],
    sel: Option<&[u32]>,
    mut f: F,
) -> Result<()>
where
    F: FnMut(&mut MemoryHierarchy, &TupleBatch) -> Result<()>,
{
    let arity = cols.len();
    let mut batch = TupleBatch {
        arity,
        values: Vec::new(),
    };
    let rows = match sel {
        Some(s) => RowSet::Sel(s),
        None => RowSet::Range(0, t.len()),
    };
    lockstep_impl(mem, t, cols, rows, true, true, |mem, ev| match ev {
        Event::Row(_, vals) => {
            batch.values.extend_from_slice(vals);
            Ok(())
        }
        Event::BatchEnd => {
            if !batch.values.is_empty() {
                f(mem, &batch)?;
                batch.values.clear();
            }
            Ok(())
        }
    })
}

/// Events delivered by [`lockstep_impl`].
enum Event<'a> {
    Row(usize, &'a [Value]),
    BatchEnd,
}

/// Which rows a lockstep pass visits: a dense raw-row range (unselective
/// scans and per-morsel slices of them) or an explicit selection vector.
enum RowSet<'a> {
    Range(usize, usize),
    Sel(&'a [u32]),
}

/// Sum `expr` (over slots matching `cols` order) across `sel` (or all rows).
pub fn sum_expr(
    mem: &mut MemoryHierarchy,
    t: &ColTable,
    cols: &[ColumnId],
    expr: &Expr,
    sel: Option<&[u32]>,
) -> Result<f64> {
    let ops = expr.ops();
    let mut total = 0.0;
    let costs = mem.costs();
    for_each_lockstep(mem, t, cols, sel, |mem, _, vals| {
        mem.cpu(costs.value_op * (ops + 1));
        total += expr.eval_f64(vals)?;
        Ok(())
    })?;
    Ok(total)
}

/// Shared lockstep machinery.
///
/// Per batch of up to [`BATCH_ROWS`] positions, each column array is read in
/// turn (a stream switch per column, which is what exposes the prefetcher's
/// stream limit), values are decoded into per-column staging, and then rows
/// are emitted in order as [`Event::Row`]; [`Event::BatchEnd`] fires at
/// batch boundaries (used by [`reconstruct`] to flush). `vector_setup` is
/// charged once per invocation. When `read_sv` is false the selection
/// vector is treated as register-resident (fused producer→consumer) and is
/// not re-read through the hierarchy.
fn lockstep_impl<F>(
    mem: &mut MemoryHierarchy,
    t: &ColTable,
    cols: &[ColumnId],
    rows: RowSet<'_>,
    materialize: bool,
    read_sv: bool,
    mut emit: F,
) -> Result<()>
where
    F: for<'a> FnMut(&mut MemoryHierarchy, Event<'a>) -> Result<()>,
{
    let costs = mem.costs();
    let refs: Vec<_> = cols.iter().map(|&c| t.col(c)).collect::<Result<_>>()?;
    let (range_start, total_rows, sel) = match rows {
        RowSet::Range(start, end) => {
            debug_assert!(start <= end && end <= t.len());
            (start, end - start, None)
        }
        RowSet::Sel(s) => {
            check_selection(t, s)?;
            (0, s.len(), Some(s))
        }
    };
    let line = mem.config().line_size as u64;
    // Per-column last line touched: memory is charged once per new line,
    // so the hierarchy sees one interleaved line stream per column — the
    // access pattern of tuple-at-a-time reconstruction from `p` arrays.
    let mut last_line: Vec<u64> = vec![u64::MAX; cols.len()];
    let mut row_buf: Vec<Value> = Vec::with_capacity(cols.len());
    let mut gather: Vec<(u64, usize)> = Vec::with_capacity(cols.len());

    let mut done = 0usize;
    if total_rows > 0 {
        mem.cpu(costs.vector_setup);
    }
    while done < total_rows {
        let n = BATCH_ROWS.min(total_rows - done);
        if sel.is_some() && read_sv {
            mem.touch_read(t.sv_in_addr(done), n * 4);
        }
        for i in 0..n {
            let row_id = match sel {
                None => range_start + done + i,
                Some(s) => s[done + i] as usize,
            };
            // The p column loads of one tuple are independent: issue the
            // new lines together and overlap their misses.
            gather.clear();
            for (j, c) in refs.iter().enumerate() {
                let addr = c.at(row_id);
                let la = addr & !(line - 1);
                if la != last_line[j] {
                    gather.push((addr, c.ty.width()));
                    last_line[j] = la;
                }
            }
            if !gather.is_empty() {
                mem.touch_read_gather(&gather);
            }
            row_buf.clear();
            for c in refs.iter() {
                mem.cpu(costs.vector_elem);
                if materialize {
                    mem.cpu(costs.reconstruct);
                }
                let bytes = mem.bytes(c.at(row_id), c.ty.width());
                row_buf.push(Value::decode(c.ty, bytes));
            }
            emit(mem, Event::Row(row_id, &row_buf))?;
        }
        done += n;
        emit(mem, Event::BatchEnd)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::SimConfig;
    use fabric_types::{ColumnType, Schema};

    /// 3000 rows: a = i, b = i % 100, c = i as f64 / 2.
    fn fixture() -> (MemoryHierarchy, ColTable) {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let schema = Schema::from_pairs(&[
            ("a", ColumnType::I32),
            ("b", ColumnType::I32),
            ("c", ColumnType::F64),
        ]);
        let mut t = ColTable::create(&mut mem, schema, 4096).unwrap();
        for i in 0..3000i32 {
            t.load(
                &mut mem,
                &[
                    Value::I32(i),
                    Value::I32(i % 100),
                    Value::F64(i as f64 / 2.0),
                ],
            )
            .unwrap();
        }
        (mem, t)
    }

    #[test]
    fn scan_filter_selects_correct_rows() {
        let (mut mem, t) = fixture();
        let sel = scan_filter(&mut mem, &t, 0, CmpOp::Lt, &Value::I32(10)).unwrap();
        assert_eq!(sel, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn refine_narrows_candidates() {
        let (mut mem, t) = fixture();
        let sel = scan_filter(&mut mem, &t, 0, CmpOp::Lt, &Value::I32(500)).unwrap();
        let sel = refine(&mut mem, &t, 1, CmpOp::Eq, &Value::I32(7), &sel).unwrap();
        // i < 500 && i % 100 == 7 -> 7, 107, 207, 307, 407.
        assert_eq!(sel, vec![7, 107, 207, 307, 407]);
    }

    #[test]
    fn lockstep_visits_all_rows_in_order() {
        let (mut mem, t) = fixture();
        let mut seen = Vec::new();
        for_each_lockstep(&mut mem, &t, &[0, 2], None, |_, row, vals| {
            assert_eq!(vals[0], Value::I32(row as i32));
            seen.push(row);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen.len(), 3000);
        assert_eq!(seen[2999], 2999);
    }

    #[test]
    fn lockstep_respects_selection_vector() {
        let (mut mem, t) = fixture();
        let sel = vec![5u32, 100, 2999];
        let mut rows = Vec::new();
        for_each_lockstep(&mut mem, &t, &[0], Some(&sel), |_, row, vals| {
            rows.push((row, vals[0].clone()));
            Ok(())
        })
        .unwrap();
        assert_eq!(
            rows,
            vec![
                (5, Value::I32(5)),
                (100, Value::I32(100)),
                (2999, Value::I32(2999))
            ]
        );
    }

    #[test]
    fn ranged_scans_concatenate_to_the_full_scan() {
        let (mut mem, t) = fixture();
        let preds = vec![(CmpOp::Lt, Value::I32(50))];
        let whole = scan_filter_conj(&mut mem, &t, 1, &preds).unwrap();

        // Morsel-sized conj scans over [start, end) chunks, concatenated in
        // order, must equal the unsplit scan (absolute row ids).
        let mut pieced = Vec::new();
        let step = 257; // deliberately unaligned with BATCH_ROWS
        let mut start = 0;
        while start < t.len() {
            let end = (start + step).min(t.len());
            pieced.extend(scan_filter_conj_range(&mut mem, &t, 1, &preds, start, end).unwrap());
            start = end;
        }
        assert_eq!(pieced, whole);

        // Same for the candidate-intersection scan: slice the candidate
        // vector per morsel and concatenate.
        let cand = scan_filter_conj(&mut mem, &t, 0, &[(CmpOp::Lt, Value::I32(1500))]).unwrap();
        let whole_cand = scan_filter_cand(&mut mem, &t, 1, &preds, &cand).unwrap();
        let mut pieced_cand = Vec::new();
        let mut start = 0;
        while start < t.len() {
            let end = (start + step).min(t.len());
            let lo = cand.partition_point(|&p| (p as usize) < start);
            let hi = cand.partition_point(|&p| (p as usize) < end);
            pieced_cand.extend(
                scan_filter_cand_range(&mut mem, &t, 1, &preds, &cand[lo..hi], start, end).unwrap(),
            );
            start = end;
        }
        assert_eq!(pieced_cand, whole_cand);

        // Out-of-bounds end clamps; empty range yields nothing.
        let clamped = scan_filter_conj_range(&mut mem, &t, 1, &preds, 0, t.len() * 2).unwrap();
        assert_eq!(clamped, whole);
        assert!(scan_filter_conj_range(&mut mem, &t, 1, &preds, 100, 100)
            .unwrap()
            .is_empty());

        // A candidate below the morsel start is an error, not a silent drop.
        let err = scan_filter_cand_range(&mut mem, &t, 1, &preds, &[3], 100, 200);
        assert!(err.is_err());
    }

    #[test]
    fn ranged_lockstep_concatenates_to_the_full_pass() {
        let (mut mem, t) = fixture();
        let mut whole = Vec::new();
        for_each_lockstep(&mut mem, &t, &[0, 2], None, |_, row, vals| {
            whole.push((row, vals.to_vec()));
            Ok(())
        })
        .unwrap();

        let mut pieced = Vec::new();
        let step = 611;
        let mut start = 0;
        while start < t.len() {
            let end = (start + step).min(t.len());
            for_each_lockstep_range(&mut mem, &t, &[0, 2], start, end, |_, row, vals| {
                pieced.push((row, vals.to_vec()));
                Ok(())
            })
            .unwrap();
            start = end;
        }
        assert_eq!(pieced, whole);

        // Clamping and empty ranges.
        let mut n = 0usize;
        for_each_lockstep_range(&mut mem, &t, &[0], 2990, usize::MAX, |_, _, _| {
            n += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(n, 10);
        for_each_lockstep_range(&mut mem, &t, &[0], 5, 5, |_, _, _| {
            panic!("empty range must not emit")
        })
        .unwrap();
    }

    #[test]
    fn fused_lockstep_matches_output_and_skips_sv_reread() {
        let (mut mem, t) = fixture();
        let sel = scan_filter(&mut mem, &t, 1, CmpOp::Lt, &Value::I32(3)).unwrap();

        let mut via_sv = Vec::new();
        let b0 = mem.stats();
        for_each_lockstep(&mut mem, &t, &[0, 2], Some(&sel), |_, row, vals| {
            via_sv.push((row, vals.to_vec()));
            Ok(())
        })
        .unwrap();
        let sv_bytes = mem.stats().delta_since(&b0).bytes_read;

        let mut fused = Vec::new();
        let b0 = mem.stats();
        for_each_lockstep_fused(&mut mem, &t, &[0, 2], &sel, |_, row, vals| {
            fused.push((row, vals.to_vec()));
            Ok(())
        })
        .unwrap();
        let fused_bytes = mem.stats().delta_since(&b0).bytes_read;

        assert_eq!(fused, via_sv);
        // The fused pass skips re-reading the materialized selection vector
        // (4 B per position) but touches the same column lines.
        assert!(
            fused_bytes < sv_bytes,
            "fused {fused_bytes} !< via-sv {sv_bytes}"
        );
        // Bounds are still validated.
        assert!(for_each_lockstep_fused(&mut mem, &t, &[0], &[9999], |_, _, _| Ok(())).is_err());
    }

    #[test]
    fn sum_expr_computes_expression() {
        let (mut mem, t) = fixture();
        // sum(a * c) over rows with a < 4: 0*0 + 1*0.5 + 2*1 + 3*1.5 = 7.
        let sel = scan_filter(&mut mem, &t, 0, CmpOp::Lt, &Value::I32(4)).unwrap();
        let s = sum_expr(
            &mut mem,
            &t,
            &[0, 2],
            &Expr::mul(Expr::col(0), Expr::col(1)),
            Some(&sel),
        )
        .unwrap();
        assert_eq!(s, 7.0);
    }

    #[test]
    fn reconstruct_builds_row_major_batches() {
        let (mut mem, t) = fixture();
        let mut total_rows = 0;
        let mut first = None;
        reconstruct(&mut mem, &t, &[2, 0], None, |_, batch| {
            assert_eq!(batch.arity, 2);
            if first.is_none() {
                first = Some(batch.row(1).to_vec());
            }
            total_rows += batch.rows();
            Ok(())
        })
        .unwrap();
        assert_eq!(total_rows, 3000);
        assert_eq!(first.unwrap(), vec![Value::F64(0.5), Value::I32(1)]);
    }

    #[test]
    fn reconstruct_charges_more_cpu_than_lockstep() {
        let (mut mem, t) = fixture();
        let c0 = mem.stats().cpu_cycles;
        for_each_lockstep(&mut mem, &t, &[0, 1, 2], None, |_, _, _| Ok(())).unwrap();
        let lockstep_cpu = mem.stats().cpu_cycles - c0;

        let (mut mem2, t2) = fixture();
        let c0 = mem2.stats().cpu_cycles;
        reconstruct(&mut mem2, &t2, &[0, 1, 2], None, |_, _| Ok(())).unwrap();
        let reconstruct_cpu = mem2.stats().cpu_cycles - c0;
        assert!(reconstruct_cpu > lockstep_cpu);
    }

    #[test]
    fn empty_selection_is_fine() {
        let (mut mem, t) = fixture();
        let sel: Vec<u32> = Vec::new();
        let s = sum_expr(&mut mem, &t, &[0], &Expr::col(0), Some(&sel)).unwrap();
        assert_eq!(s, 0.0);
        let out = refine(&mut mem, &t, 0, CmpOp::Eq, &Value::I32(1), &sel).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn out_of_range_selection_is_structured_error_not_panic() {
        let (mut mem, t) = fixture();
        let bad = vec![0u32, 5000]; // table has 3000 rows
        let err = refine(&mut mem, &t, 0, CmpOp::Eq, &Value::I32(1), &bad).unwrap_err();
        assert_eq!(
            err,
            FabricError::RowIndexOutOfRange {
                index: 5000,
                len: 3000
            }
        );
        assert!(scan_filter_cand(&mut mem, &t, 0, &[(CmpOp::Ge, Value::I32(0))], &bad).is_err());
        assert!(refine_conj(&mut mem, &t, 0, &[(CmpOp::Ge, Value::I32(0))], &bad).is_err());
        assert!(for_each_lockstep(&mut mem, &t, &[0], Some(&bad), |_, _, _| Ok(())).is_err());
        assert!(sum_expr(&mut mem, &t, &[0], &Expr::col(0), Some(&bad)).is_err());
    }

    #[test]
    fn full_scan_is_sequential_and_mostly_prefetched() {
        let (mut mem, t) = fixture();
        // Warm nothing; scan a full column. 3000 * 4 B = 188 lines.
        let before = mem.stats();
        scan_filter(&mut mem, &t, 0, CmpOp::Ge, &Value::I32(0)).unwrap();
        let d = mem.stats().delta_since(&before);
        assert!(
            d.prefetch_hits > d.demand_misses,
            "column scan should be prefetch friendly: {d:?}"
        );
    }
}
