//! Banked DRAM timing model with open-row tracking.
//!
//! Cache lines are interleaved across banks (line `i` lives in bank
//! `i % banks`), the layout memory controllers use to give sequential
//! streams bank-level parallelism. Each bank is a simple resource with a
//! `free_at` time and an open row: an access to the open row occupies the
//! bank for `t_row_hit`, anything else pays `t_row_miss`.
//!
//! Both the CPU side (through [`crate::hierarchy::MemoryHierarchy`]) and the
//! near-data devices (`relmem`, `relstore`) use this model; the devices get
//! their own instance because they sit on their own memory port — exactly
//! the asymmetry the paper exploits: *"operating closer to the data allows
//! to exploit the inherent parallelism of memory cells"* (§II).

use crate::config::SimConfig;
use crate::Cycles;

/// Banked DRAM with open-row state.
#[derive(Debug, Clone)]
pub struct DramModel {
    banks: usize,
    lines_per_row: u64,
    line_shift: u32,
    t_hit: Cycles,
    t_miss: Cycles,
    bank_free: Vec<Cycles>,
    open_row: Vec<Option<u64>>,
    accesses: u64,
    row_hits: u64,
}

impl DramModel {
    /// Build from the simulator configuration.
    pub fn new(cfg: &SimConfig) -> Self {
        DramModel {
            banks: cfg.dram_banks,
            lines_per_row: (cfg.dram_row_bytes / cfg.line_size).max(1) as u64,
            line_shift: cfg.line_size.trailing_zeros(),
            t_hit: cfg.ns_to_cycles(cfg.dram_row_hit_ns),
            t_miss: cfg.ns_to_cycles(cfg.dram_row_miss_ns),
            bank_free: vec![0; cfg.dram_banks],
            open_row: vec![None; cfg.dram_banks],
            accesses: 0,
            row_hits: 0,
        }
    }

    #[inline]
    fn locate(&self, line_addr: u64) -> (usize, u64) {
        let line_index = line_addr >> self.line_shift;
        // XOR-fold higher address bits into the bank index (bank-address
        // hashing, standard in memory controllers): without it, arrays
        // allocated at power-of-two distances would alias their k-th lines
        // onto one bank and serialize what should be parallel fetches.
        let hashed = line_index
            ^ (line_index >> 4)
            ^ (line_index >> 8)
            ^ (line_index >> 12)
            ^ (line_index >> 16);
        let bank = (hashed % self.banks as u64) as usize;
        let row = (line_index / self.banks as u64) / self.lines_per_row;
        (bank, row)
    }

    /// Bank index of a line address (exposed for tests and device planning).
    pub fn bank_of(&self, line_addr: u64) -> usize {
        self.locate(line_addr).0
    }

    /// Schedule a line fetch issued at time `now`; returns its completion
    /// time. Bank queuing and open-row state advance accordingly.
    pub fn access(&mut self, line_addr: u64, now: Cycles) -> Cycles {
        let (bank, row) = self.locate(line_addr);
        let start = now.max(self.bank_free[bank]);
        let occupancy = if self.open_row[bank] == Some(row) {
            self.row_hits += 1;
            self.t_hit
        } else {
            self.open_row[bank] = Some(row);
            self.t_miss
        };
        self.accesses += 1;
        let done = start + occupancy;
        self.bank_free[bank] = done;
        done
    }

    /// Completion time for a *batch* of lines all issued at `now` — how a
    /// near-data gather engine uses its parallel bank access.
    pub fn access_batch(
        &mut self,
        line_addrs: impl IntoIterator<Item = u64>,
        now: Cycles,
    ) -> Cycles {
        let mut done = now;
        for la in line_addrs {
            done = done.max(self.access(la, now));
        }
        done
    }

    /// `(total accesses, open-row hits)`.
    pub fn counters(&self) -> (u64, u64) {
        (self.accesses, self.row_hits)
    }

    /// Forget queue state and open rows (new experiment), keep geometry.
    pub fn reset(&mut self) {
        self.bank_free.fill(0);
        self.open_row.fill(None);
        self.accesses = 0;
        self.row_hits = 0;
    }

    /// Number of banks (for device gather planning).
    pub fn num_banks(&self) -> usize {
        self.banks
    }

    /// Row-hit occupancy in cycles (device throughput planning).
    pub fn t_row_hit(&self) -> Cycles {
        self.t_hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DramModel {
        DramModel::new(&SimConfig::zynq_a53())
    }

    #[test]
    fn consecutive_lines_use_different_banks() {
        let mut d = model();
        // 8 consecutive lines issued at t=0 all start immediately
        // (8 banks, line-interleaved), so the batch finishes in one
        // row-miss occupancy.
        let done = d.access_batch((0..8).map(|i| i * 64), 0);
        let t_miss = SimConfig::zynq_a53().ns_to_cycles(60.0);
        assert_eq!(done, t_miss);
    }

    /// Find a line address beyond `from_idx` that maps to the same bank as
    /// line 0.
    fn same_bank_as_zero(d: &DramModel, from_idx: u64) -> u64 {
        let target = d.bank_of(0);
        (from_idx..from_idx + 4096)
            .find(|i| d.bank_of(i * 64) == target)
            .expect("a same-bank line exists")
            * 64
    }

    #[test]
    fn same_bank_lines_serialize() {
        let mut d = model();
        let other = same_bank_as_zero(&d, 1);
        let d1 = d.access(0, 0);
        let d2 = d.access(other, 0);
        assert!(d2 > d1);
    }

    #[test]
    fn open_row_hits_are_faster() {
        let cfg = SimConfig::zynq_a53();
        let mut d = model();
        // Same bank within the first DRAM row window (rows span
        // banks * lines_per_row consecutive lines).
        let row_span = (cfg.dram_banks * cfg.dram_row_bytes / cfg.line_size) as u64;
        let other = same_bank_as_zero(&d, 1);
        assert!(
            other / 64 < row_span,
            "test assumes a same-bank line within row 0"
        );
        let first = d.access(0, 0);
        let second = d.access(other, first);
        assert_eq!(second - first, cfg.ns_to_cycles(cfg.dram_row_hit_ns));
        let (acc, hits) = d.counters();
        assert_eq!(acc, 2);
        assert_eq!(hits, 1);
    }

    #[test]
    fn row_conflict_pays_miss_latency() {
        let cfg = SimConfig::zynq_a53();
        let mut d = model();
        let row_span = (cfg.dram_banks * cfg.dram_row_bytes / cfg.line_size) as u64;
        // A same-bank line in a different DRAM row.
        let far = same_bank_as_zero(&d, row_span);
        let first = d.access(0, 0);
        let second = d.access(far, first);
        assert_eq!(second - first, cfg.ns_to_cycles(cfg.dram_row_miss_ns));
    }

    #[test]
    fn sequential_stream_sustains_bank_parallel_bandwidth() {
        let cfg = SimConfig::zynq_a53();
        let mut d = model();
        // Issue 8 * 32 consecutive lines as fast as the banks allow.
        let n = 256u64;
        let mut done = 0;
        for i in 0..n {
            done = done.max(d.access(i * 64, 0));
        }
        // Perfect pipelining: each bank services n/8 requests back to back;
        // most are open-row hits.
        let per_bank = n / cfg.dram_banks as u64;
        let upper = per_bank * cfg.ns_to_cycles(cfg.dram_row_miss_ns);
        let lower = per_bank * cfg.ns_to_cycles(cfg.dram_row_hit_ns);
        assert!(
            done >= lower && done <= upper,
            "done={done} not in [{lower},{upper}]"
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut d = model();
        d.access(0, 0);
        d.reset();
        assert_eq!(d.counters(), (0, 0));
        // After reset the bank is free at t=0 again.
        let done = d.access(0, 0);
        assert_eq!(done, SimConfig::zynq_a53().ns_to_cycles(60.0));
    }
}
