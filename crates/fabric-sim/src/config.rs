//! Simulator configuration and platform presets.

use crate::Cycles;

/// All tunable parameters of the simulated platform.
///
/// The default ([`SimConfig::zynq_a53`]) approximates the paper's target: a
/// Cortex-A53 at 1.5 GHz with 32 KB L1D, 1 MB shared L2, 64-byte lines, a
/// stream prefetcher good for four concurrent streams, and DDR4 behind an
/// 8-bank controller. Latency numbers are deliberately round; what matters
/// for the reproduction is their *ratios*.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimConfig {
    /// Core clock in GHz (used to convert DRAM nanoseconds into cycles).
    pub cpu_ghz: f64,
    /// Cache-line size in bytes (64 everywhere in this project).
    pub line_size: usize,

    /// L1 data cache capacity in bytes.
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// L1 hit latency in cycles.
    pub l1_hit_cycles: Cycles,

    /// L2 capacity in bytes.
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// L2 hit latency in cycles.
    pub l2_hit_cycles: Cycles,
    /// Occupancy of the shared L2 port per line transaction (cycles).
    /// With more than one core configured, conflicting fills serialize on
    /// this port; a single core never pays it (bit-identical to the
    /// original single-core model).
    pub l2_port_cycles: Cycles,

    /// Number of DRAM banks the controller interleaves lines across.
    pub dram_banks: usize,
    /// Bytes of one DRAM row per bank (open-row window).
    pub dram_row_bytes: usize,
    /// Bank occupancy for an access that hits the open row (ns).
    pub dram_row_hit_ns: f64,
    /// Bank occupancy for an access that must open a new row (ns).
    pub dram_row_miss_ns: f64,
    /// Fixed controller/bus overhead added to every demand miss (ns).
    pub dram_demand_overhead_ns: f64,

    /// Number of concurrent sequential streams the prefetcher can track.
    /// The Cortex-A53 manual and the paper both put this at 4.
    pub prefetch_streams: usize,
    /// How many lines ahead a trained stream prefetches.
    pub prefetch_degree: usize,
    /// Consecutive same-stride observations needed before a stream is
    /// considered trained and prefetching starts.
    pub prefetch_train: usize,
}

impl SimConfig {
    /// The paper's platform (§V "Target Platform").
    pub fn zynq_a53() -> Self {
        SimConfig {
            cpu_ghz: 1.5,
            line_size: 64,
            l1_bytes: 32 * 1024,
            l1_assoc: 4,
            l1_hit_cycles: 4,
            l2_bytes: 1024 * 1024,
            l2_assoc: 16,
            l2_hit_cycles: 13,
            l2_port_cycles: 4,
            dram_banks: 16,
            dram_row_bytes: 2048,
            dram_row_hit_ns: 30.0,
            dram_row_miss_ns: 60.0,
            dram_demand_overhead_ns: 40.0,
            prefetch_streams: 4,
            prefetch_degree: 16,
            prefetch_train: 2,
        }
    }

    /// A tiny configuration for fast unit tests: small caches so miss paths
    /// are exercised with little data.
    pub fn tiny() -> Self {
        SimConfig {
            l1_bytes: 1024,
            l1_assoc: 2,
            l2_bytes: 8 * 1024,
            l2_assoc: 4,
            ..Self::zynq_a53()
        }
    }

    /// Convert nanoseconds into core cycles (rounded to nearest, min 1).
    pub fn ns_to_cycles(&self, ns: f64) -> Cycles {
        ((ns * self.cpu_ghz).round() as Cycles).max(1)
    }

    /// Convert core cycles into nanoseconds.
    pub fn cycles_to_ns(&self, cycles: Cycles) -> f64 {
        cycles as f64 / self.cpu_ghz
    }

    /// Number of cache lines covering `bytes` starting at `addr`.
    pub fn lines_spanned(&self, addr: u64, bytes: usize) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let first = addr / self.line_size as u64;
        let last = (addr + bytes as u64 - 1) / self.line_size as u64;
        last - first + 1
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::zynq_a53()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_matches_paper_platform() {
        let c = SimConfig::zynq_a53();
        assert_eq!(c.l1_bytes, 32 * 1024);
        assert_eq!(c.l2_bytes, 1024 * 1024);
        assert_eq!(c.line_size, 64);
        assert_eq!(c.prefetch_streams, 4);
        assert!((c.cpu_ghz - 1.5).abs() < 1e-9);
    }

    #[test]
    fn ns_cycle_conversions() {
        let c = SimConfig::zynq_a53();
        assert_eq!(c.ns_to_cycles(10.0), 15);
        assert!((c.cycles_to_ns(15) - 10.0).abs() < 1e-9);
        // Never zero cycles for a positive latency.
        assert_eq!(c.ns_to_cycles(0.01), 1);
    }

    #[test]
    fn lines_spanned_handles_straddles() {
        let c = SimConfig::zynq_a53();
        assert_eq!(c.lines_spanned(0, 0), 0);
        assert_eq!(c.lines_spanned(0, 1), 1);
        assert_eq!(c.lines_spanned(0, 64), 1);
        assert_eq!(c.lines_spanned(0, 65), 2);
        assert_eq!(c.lines_spanned(60, 8), 2);
        assert_eq!(c.lines_spanned(64, 64), 1);
        assert_eq!(c.lines_spanned(63, 2), 2);
    }
}
