//! The CPU-side memory port: caches + prefetcher + DRAM + time.
//!
//! Engines interact with simulated memory exclusively through
//! [`MemoryHierarchy`]:
//!
//! * [`MemoryHierarchy::read`] / [`MemoryHierarchy::write`] move real bytes
//!   *and* charge simulated cycles;
//! * [`MemoryHierarchy::cpu`] charges pure compute;
//! * the `*_untimed` variants load or inspect data without advancing time
//!   (used when populating tables, which the paper's experiments also do
//!   outside the measured window);
//! * [`MemoryHierarchy::stall_until`] lets device models (RM, the SSD
//!   controller) impose producer-side readiness on the consuming CPU.

use crate::arena::MemArena;
use crate::cache::SetAssocCache;
use crate::config::SimConfig;
use crate::dram::DramModel;
use crate::prefetch::StreamPrefetcher;
use crate::stats::MemStats;
use crate::Cycles;
use fabric_obs::{
    CalibLedger, Category, FabricRecorder, FlightRecorder, MetricsRegistry, NoopRecorder, Phase,
    Postmortem, QueryLog, TopDown, TraceEvent,
};
use fabric_types::{Addr, Result};

/// Per-operation CPU cost model (cycles), shared by all engines so that
/// compute is charged consistently.
///
/// The values approximate an in-order Cortex-A53: a virtual call plus
/// per-tuple bookkeeping for a Volcano `next()`, a couple of cycles for an
/// arithmetic op on a loaded value, and so on. They are deliberately simple;
/// the reproduction's claims rest on *ratios* between data-movement costs,
/// with compute providing realistic dilution.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OpCosts {
    /// Per-row overhead of a Volcano-style `next()` chain hop
    /// (virtual dispatch, tuple bookkeeping).
    pub volcano_next: Cycles,
    /// One arithmetic/comparison op on a register value.
    pub value_op: Cycles,
    /// Amortized per-element cost of a tight vectorized kernel on an
    /// in-order core (load + loop bookkeeping).
    pub vector_elem: Cycles,
    /// Per-value decode cost in a tuple-at-a-time engine (load + widen /
    /// convert into the tuple representation).
    pub decode: Cycles,
    /// Per-value tuple-reconstruction cost in a column store (stitching a
    /// value into an output tuple).
    pub reconstruct: Cycles,
    /// Mispredicted branch penalty (charged by engines on selective
    /// branches).
    pub branch_miss: Cycles,
    /// Per-batch fixed overhead of starting a vectorized primitive.
    pub vector_setup: Cycles,
    /// One double-precision arithmetic op (the A53 FPU has ~4-cycle FMA
    /// latency; aggregation kernels are chains of these).
    pub f64_op: Cycles,
    /// Per-row cost of hashing a group key and probing a hash table
    /// (excluding the memory traffic of very large tables, which the
    /// engines charge separately when applicable).
    pub hash_op: Cycles,
}

impl Default for OpCosts {
    fn default() -> Self {
        OpCosts {
            volcano_next: 6,
            value_op: 1,
            vector_elem: 2,
            decode: 2,
            reconstruct: 1,
            branch_miss: 8,
            vector_setup: 40,
            f64_op: 4,
            hash_op: 20,
        }
    }
}

/// One simulated core's private memory-system state: its L1, its stream
/// prefetcher, its logical clock, and the statistics it accumulated.
///
/// Cores share everything else — the L2, the DRAM controller, and the
/// arena — through [`MemoryHierarchy`]. There are no OS threads: cores are
/// *logical* contexts multiplexed by the (single-threaded) caller, each
/// advancing its own clock, reconciled at explicit barrier points
/// ([`MemoryHierarchy::join_clocks`]).
struct CoreCtx {
    l1: SetAssocCache,
    prefetcher: StreamPrefetcher,
    /// Private DRAM timing view (multi-core only): per-bank cursors and
    /// open-row state for *this core's* access stream. Latency is a
    /// per-stream property; shared-controller contention is modelled
    /// separately by the aggregate-bandwidth ledger, because a single set
    /// of shared cursors cannot be replayed out of order (the host
    /// simulates one core's whole morsel before the next core's, so a
    /// shared cursor would serialize parallel work behind the first
    /// core's entire timeline).
    dram: DramModel,
    now: Cycles,
    stats: MemStats,
}

impl CoreCtx {
    fn new(cfg: &SimConfig, now: Cycles) -> Self {
        CoreCtx {
            l1: SetAssocCache::new(cfg.l1_bytes, cfg.l1_assoc, cfg.line_size),
            prefetcher: StreamPrefetcher::new(cfg),
            dram: DramModel::new(cfg),
            now,
            stats: MemStats::default(),
        }
    }
}

/// The simulated CPU-side memory system.
///
/// Models N cores (default 1), each owning a private L1, stream
/// prefetcher, and DRAM timing view, sharing one L2, one DRAM controller,
/// and the arena. With more than one core the shared L2 port and DRAM
/// controller are finite resources: aggregate-bandwidth ledgers admit at
/// most one fill per port slot (and one DRAM line per
/// `t_row_hit / banks`) across all cores since the last fork point, so
/// parallel speedup saturates exactly when the shared fabric does. A
/// single-core hierarchy is cycle-identical to the original model.
///
/// Also the host of the workspace's observability spine: every engine
/// already threads a `&mut MemoryHierarchy`, so the trace recorder and the
/// metrics registry live here and are reachable from every instrumented
/// layer without new plumbing. Recording *never* advances `now` — a run
/// with a live recorder is cycle-identical to an un-instrumented one.
pub struct MemoryHierarchy {
    cfg: SimConfig,
    costs: OpCosts,
    arena: MemArena,
    cores: Vec<CoreCtx>,
    /// Index of the core all timed operations currently charge to.
    active: usize,
    l2: SetAssocCache,
    dram: DramModel,
    demand_overhead: Cycles,
    /// Start of the current parallel region (the last fork point): the
    /// bandwidth ledgers below meter shared throughput from this instant.
    shared_base: Cycles,
    /// Aggregate-bandwidth ledger for the shared L2 port (multi-core
    /// only): fills admitted since `shared_base`. The `k`-th fill cannot
    /// start before `shared_base + k * l2_port_cycles` — an
    /// order-insensitive cap on aggregate port throughput. A cursor
    /// ("port busy until cycle T") cannot be used here because cores are
    /// simulated one morsel at a time, not interleaved in virtual time;
    /// a counter ledger meters the same physical capacity regardless of
    /// the order morsels are replayed in.
    l2_port_fills: u64,
    /// Same ledger for the shared DRAM controller: lines fetched from
    /// DRAM (demand misses and consumed prefetches) since `shared_base`.
    /// The `k`-th line cannot arrive before
    /// `shared_base + k * t_row_hit / banks` — the controller's peak
    /// streaming throughput with all banks pipelined.
    dram_line_fills: u64,
    recorder: Box<dyn FabricRecorder>,
    /// Cached `recorder.enabled()` so hot paths pay one bool test.
    tracing: bool,
    metrics: MetricsRegistry,
    /// Always-on bounded event ring for postmortems (DESIGN.md §12):
    /// fed by every trace entry point regardless of `tracing`, so a
    /// failure can dump its recent history even on uninstrumented runs.
    flight: FlightRecorder,
    /// Engine-wide ring of per-query envelopes (DESIGN.md §17). Host-side
    /// bookkeeping: pushing a record never advances `now`.
    querylog: QueryLog,
    /// Per-(table, geometry, path) observed-cost history feeding the
    /// adaptive re-planner (DESIGN.md §17). Host-side, like `querylog`.
    calib: CalibLedger,
}

impl MemoryHierarchy {
    /// Build a single-core hierarchy with the default 4 GiB arena.
    pub fn new(cfg: SimConfig) -> Self {
        let l2 = SetAssocCache::new(cfg.l2_bytes, cfg.l2_assoc, cfg.line_size);
        let dram = DramModel::new(&cfg);
        let demand_overhead = cfg.ns_to_cycles(cfg.dram_demand_overhead_ns);
        let core0 = CoreCtx::new(&cfg, 0);
        MemoryHierarchy {
            cfg,
            costs: OpCosts::default(),
            arena: MemArena::new(),
            cores: vec![core0],
            active: 0,
            l2,
            dram,
            demand_overhead,
            shared_base: 0,
            l2_port_fills: 0,
            dram_line_fills: 0,
            recorder: Box::new(NoopRecorder),
            tracing: false,
            metrics: MetricsRegistry::new(),
            flight: FlightRecorder::default(),
            querylog: QueryLog::default(),
            calib: CalibLedger::default(),
        }
    }

    /// The platform configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The shared per-operation cost model.
    pub fn costs(&self) -> OpCosts {
        self.costs
    }

    /// Override the cost model (ablation experiments).
    pub fn set_costs(&mut self, costs: OpCosts) {
        self.costs = costs;
    }

    /// Current simulated time in cycles (the active core's clock).
    pub fn now(&self) -> Cycles {
        self.cores[self.active].now
    }

    /// Nanoseconds between `t0` and now.
    pub fn ns_since(&self, t0: Cycles) -> f64 {
        self.cfg.cycles_to_ns(self.now() - t0)
    }

    /// Statistics so far, summed over all cores.
    pub fn stats(&self) -> MemStats {
        let mut total = MemStats::default();
        for c in &self.cores {
            total.accumulate(&c.stats);
        }
        total
    }

    // ----------------------------------------------------------- multi-core

    /// Reconfigure the number of simulated cores. Core 0 keeps its cache
    /// and prefetcher state; new cores start cold with their clock at the
    /// active core's current time. When shrinking, the dropped cores'
    /// statistics fold into core 0 so [`Self::stats`] stays monotonic.
    pub fn set_core_count(&mut self, n: usize) {
        let n = n.max(1);
        let now = self.now();
        while self.cores.len() < n {
            self.cores.push(CoreCtx::new(&self.cfg, now));
        }
        while self.cores.len() > n {
            let dropped = self.cores.pop().expect("len > n >= 1");
            let folded = dropped.stats;
            self.cores[0].stats.accumulate(&folded);
        }
        if self.active >= n {
            self.active = 0;
        }
        self.shared_base = now;
        self.l2_port_fills = 0;
        self.dram_line_fills = 0;
    }

    /// Number of simulated cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Index of the core timed operations currently charge to.
    pub fn active_core(&self) -> usize {
        self.active
    }

    /// Switch the core that subsequent timed operations charge to.
    ///
    /// # Panics
    /// Panics if `i >= num_cores()` — scheduling onto a core that does not
    /// exist is a logic error in the caller.
    pub fn set_active_core(&mut self, i: usize) {
        assert!(i < self.cores.len(), "core {i} out of range");
        self.active = i;
    }

    /// Core `i`'s logical clock.
    pub fn core_now(&self, i: usize) -> Cycles {
        self.cores[i].now
    }

    /// Core `i`'s private statistics.
    pub fn core_stats(&self, i: usize) -> MemStats {
        self.cores[i].stats
    }

    /// Fork point: align every core's clock to the global frontier (the
    /// maximum across cores) so a parallel region starts from one instant.
    /// Returns the fork timestamp.
    pub fn fork_clocks(&mut self) -> Cycles {
        let t = self.cores.iter().map(|c| c.now).max().unwrap_or(0);
        for c in &mut self.cores {
            c.now = t;
        }
        self.shared_base = t;
        self.l2_port_fills = 0;
        self.dram_line_fills = 0;
        t
    }

    /// Barrier point: reconcile the per-core clocks to the global frontier
    /// (the maximum across cores — laggards were idle waiting). Returns
    /// the barrier timestamp; afterwards every core's clock equals it.
    pub fn join_clocks(&mut self) -> Cycles {
        self.fork_clocks()
    }

    // ------------------------------------------------------- observability

    /// Install a trace recorder (replacing the default no-op one). The
    /// recorder sees cycle-stamped events from every instrumented layer;
    /// it never advances simulated time.
    pub fn set_recorder(&mut self, recorder: Box<dyn FabricRecorder>) {
        self.tracing = recorder.enabled();
        self.recorder = recorder;
    }

    /// Remove the current recorder (to export its trace), leaving the
    /// no-op recorder behind.
    pub fn take_recorder(&mut self) -> Box<dyn FabricRecorder> {
        self.tracing = false;
        std::mem::replace(&mut self.recorder, Box::new(NoopRecorder))
    }

    /// Whether trace events are being recorded (cached; cheap to poll).
    #[inline]
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Export the current recorder's trace as Chrome trace-event JSON
    /// (`None` when the no-op recorder is installed).
    pub fn export_trace(&self) -> Option<String> {
        self.recorder.export_chrome_json()
    }

    /// Export the current recorder's folded-stack profile (`None` unless
    /// a [`fabric_obs::SamplingProfiler`] is installed).
    pub fn export_folded(&self) -> Option<String> {
        self.recorder.export_folded()
    }

    /// Sampling statistics of the installed profiler, if any.
    pub fn profile_stats(&self) -> Option<fabric_obs::ProfileStats> {
        self.recorder.profile_stats()
    }

    /// The workspace metrics registry hosted by this hierarchy.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access for instrumented layers recording counters,
    /// gauges, and histogram samples.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// The engine-wide query log hosted by this hierarchy.
    pub fn querylog(&self) -> &QueryLog {
        &self.querylog
    }

    /// Mutable access for the executor pushing query records.
    pub fn querylog_mut(&mut self) -> &mut QueryLog {
        &mut self.querylog
    }

    /// The per-(table, geometry, path) cost-calibration ledger.
    pub fn calib(&self) -> &CalibLedger {
        &self.calib
    }

    /// Mutable access for the executor folding clean-cold observations.
    pub fn calib_mut(&mut self) -> &mut CalibLedger {
        &mut self.calib
    }

    /// Open a span at the current cycle.
    #[inline]
    pub fn trace_begin(&mut self, name: &'static str, cat: Category) {
        let now = self.now();
        self.flight
            .record(TraceEvent::new(Phase::Begin, now, name, cat, &[]));
        if self.tracing {
            self.recorder.begin(now, name, cat);
        }
    }

    /// Close a span at the current cycle, attaching `args`.
    #[inline]
    pub fn trace_end(&mut self, name: &'static str, cat: Category, args: &[(&'static str, u64)]) {
        let now = self.now();
        self.flight
            .record(TraceEvent::new(Phase::End, now, name, cat, args));
        if self.tracing {
            self.recorder.end(now, name, cat, args);
        }
    }

    /// Open a span at an explicit cycle timestamp (device models report
    /// phases that completed in the simulated past, e.g. a gather that ran
    /// while the CPU was elsewhere).
    #[inline]
    pub fn trace_begin_at(&mut self, ts: Cycles, name: &'static str, cat: Category) {
        self.flight
            .record(TraceEvent::new(Phase::Begin, ts, name, cat, &[]));
        if self.tracing {
            self.recorder.begin(ts, name, cat);
        }
    }

    /// Close a span at an explicit cycle timestamp.
    #[inline]
    pub fn trace_end_at(
        &mut self,
        ts: Cycles,
        name: &'static str,
        cat: Category,
        args: &[(&'static str, u64)],
    ) {
        self.flight
            .record(TraceEvent::new(Phase::End, ts, name, cat, args));
        if self.tracing {
            self.recorder.end(ts, name, cat, args);
        }
    }

    /// Record an instant event at the current cycle.
    #[inline]
    pub fn trace_instant(
        &mut self,
        name: &'static str,
        cat: Category,
        args: &[(&'static str, u64)],
    ) {
        let now = self.now();
        self.flight
            .record(TraceEvent::new(Phase::Instant, now, name, cat, args));
        if self.tracing {
            self.recorder.instant(now, name, cat, args);
        }
    }

    /// Sample a counter track at the current cycle.
    #[inline]
    pub fn trace_counter(&mut self, name: &'static str, cat: Category, value: u64) {
        let now = self.now();
        self.flight.record(TraceEvent::new(
            Phase::Counter,
            now,
            name,
            cat,
            &[("value", value)],
        ));
        if self.tracing {
            self.recorder.counter(now, name, cat, value);
        }
    }

    /// Run `f` inside a span, attributing the memory-hierarchy activity it
    /// caused — per-level hits, demand misses, stall cycles, bytes read —
    /// as args on the closing edge. This is how callers get per-level
    /// hit/miss/stall attribution without threading counters by hand.
    pub fn traced<R>(
        &mut self,
        name: &'static str,
        cat: Category,
        f: impl FnOnce(&mut Self) -> R,
    ) -> R {
        let before = self.stats();
        self.trace_begin(name, cat);
        let out = f(self);
        let d = self.stats().delta_since(&before);
        self.trace_end(
            name,
            cat,
            &[
                ("l1_hits", d.l1_hits),
                ("l2_hits", d.l2_hits),
                ("prefetch_hits", d.prefetch_hits),
                ("demand_misses", d.demand_misses),
                ("stall_cycles", d.stall_cycles),
                ("bytes_read", d.bytes_read),
            ],
        );
        out
    }

    // ----------------------------------------------------- flight recorder

    /// Arm the flight recorder at the start of a measured window: a
    /// postmortem taken later reports the metrics delta since this call.
    pub fn flight_arm(&mut self) {
        self.flight.arm(self.metrics.snapshot());
    }

    /// Capture a postmortem artifact (last-N events, metrics delta,
    /// top-down breakdown, fault timeline) and count the dump in the
    /// metrics registry. Triggered by the resilience layer on
    /// degradation, breaker trips, and CRC failures.
    pub fn flight_dump(&mut self, reason: &'static str) {
        let now = self.now();
        let td = self.topdown_now();
        let snap = self.metrics.snapshot();
        self.flight.dump(reason, now, &snap, &td);
        self.metrics.counter_add("flight.dumps", 1);
    }

    /// [`MemoryHierarchy::flight_dump`] with a caller-supplied JSON
    /// context document (e.g. a recovery report) embedded in the
    /// postmortem under `"context"`.
    pub fn flight_dump_with(&mut self, reason: &'static str, context: String) {
        let now = self.now();
        let td = self.topdown_now();
        let snap = self.metrics.snapshot();
        self.flight
            .dump_with_context(reason, now, &snap, &td, Some(context));
        self.metrics.counter_add("flight.dumps", 1);
    }

    /// The flight recorder (to inspect or drain postmortems).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Drain the retained postmortem artifacts, oldest first.
    pub fn take_postmortems(&mut self) -> Vec<Postmortem> {
        self.flight.take_postmortems()
    }

    /// Cumulative top-down breakdown per core (no idle attribution —
    /// barrier waits are attributed by the query layer, which owns the
    /// fork/join windows). Used for mid-query postmortems.
    pub fn topdown_now(&self) -> TopDown {
        TopDown {
            cores: self
                .cores
                .iter()
                .enumerate()
                .map(|(i, c)| c.stats.topdown(i, 0))
                .collect(),
        }
    }

    // ---------------------------------------------------------------- time

    /// Charge `cycles` of CPU compute (to the active core).
    #[inline]
    pub fn cpu(&mut self, cycles: Cycles) {
        let core = &mut self.cores[self.active];
        core.now += cycles;
        core.stats.cpu_cycles += cycles;
    }

    /// Charge a vectorized primitive: one `vector_setup` for the whole
    /// invocation plus `per_elem` cycles for each of `elems` elements,
    /// attributed to the active core as CPU compute. The staged executor's
    /// branch-free kernels (DESIGN.md §16) charge through here so "set up
    /// once, stream many" has a single attributable charge site.
    #[inline]
    pub fn cpu_vector(&mut self, elems: u64, per_elem: Cycles) {
        let cycles = self.costs.vector_setup + elems * per_elem;
        let core = &mut self.cores[self.active];
        core.now += cycles;
        core.stats.cpu_cycles += cycles;
    }

    /// Block until simulated time `t` (no-op if already past); the waited
    /// cycles are accounted as memory stall, attributed to the
    /// producer-device bucket. Device models use this to make the CPU wait
    /// for data they have not produced yet.
    #[inline]
    pub fn stall_until(&mut self, t: Cycles) {
        let core = &mut self.cores[self.active];
        if t > core.now {
            core.stats.stall_cycles += t - core.now;
            core.stats.stall_device_cycles += t - core.now;
            core.now = t;
        }
    }

    /// Like [`Self::stall_until`], but the waited cycles are attributed to
    /// the fault-retry bucket. Recovery policies use this for backoff so
    /// top-down accounting can separate "the device was slow" from "we
    /// were re-trying after a fault".
    #[inline]
    pub fn stall_retry_until(&mut self, t: Cycles) {
        let core = &mut self.cores[self.active];
        if t > core.now {
            core.stats.stall_cycles += t - core.now;
            core.stats.stall_retry_cycles += t - core.now;
            core.now = t;
        }
    }

    /// Internal: wait for DRAM data (demand or prefetch completion),
    /// attributed to the DRAM-wait bucket.
    #[inline]
    fn stall_dram_until(&mut self, t: Cycles) {
        let core = &mut self.cores[self.active];
        if t > core.now {
            core.stats.stall_cycles += t - core.now;
            core.stats.stall_dram_cycles += t - core.now;
            core.now = t;
        }
    }

    // -------------------------------------------------------------- memory

    /// Allocate arena memory (cache-line aligned by default callers).
    pub fn alloc(&mut self, len: usize, align: usize) -> Result<Addr> {
        self.arena.alloc(len, align)
    }

    /// Charge the timing for reading `[addr, addr+len)` without touching
    /// the data. Combined with [`Self::bytes`] this is the zero-copy path.
    pub fn touch_read(&mut self, addr: Addr, len: usize) {
        self.cores[self.active].stats.bytes_read += len as u64;
        self.for_each_line(addr, len);
    }

    /// Charge the timing for writing `[addr, addr+len)` (write-allocate:
    /// same line traffic as a read).
    pub fn touch_write(&mut self, addr: Addr, len: usize) {
        self.cores[self.active].stats.bytes_written += len as u64;
        self.for_each_line(addr, len);
    }

    /// Charge the timing for reading several *independent* spans at once,
    /// letting their cache misses overlap (non-blocking caches / MLP).
    ///
    /// This models the load-level parallelism of a tuple-reconstruction
    /// loop: the `p` column loads of one output tuple have no data
    /// dependencies, so even an in-order core overlaps their line fills.
    /// Hits are charged serially (they are latency, not occupancy); misses
    /// issue together and the CPU stalls once for the slowest.
    pub fn touch_read_gather(&mut self, parts: &[(Addr, usize)]) {
        let MemoryHierarchy {
            cfg,
            cores,
            active,
            l2,
            dram,
            demand_overhead,
            shared_base,
            l2_port_fills,
            dram_line_fills,
            ..
        } = self;
        let multi = cores.len() > 1;
        let CoreCtx {
            l1,
            prefetcher,
            dram: core_dram,
            now,
            stats,
        } = &mut cores[*active];
        // Same shared-resource model as `access_line`: the port and DRAM
        // ledgers meter aggregate throughput; latency comes from the
        // core's private DRAM view in multi-core mode.
        let dram = if multi { core_dram } else { dram };
        let line = cfg.line_size as u64;
        let mut max_done = *now;
        for &(addr, len) in parts {
            if len == 0 {
                continue;
            }
            stats.bytes_read += len as u64;
            let first = addr & !(line - 1);
            let last = (addr + len as u64 - 1) & !(line - 1);
            let mut la = first;
            loop {
                stats.line_accesses += 1;
                if l1.probe(la) {
                    stats.l1_hits += 1;
                    *now += cfg.l1_hit_cycles;
                    stats.mem_lat_cycles += cfg.l1_hit_cycles;
                    stats.lat_l1_cycles += cfg.l1_hit_cycles;
                } else {
                    // Past the private L1: the shared L2 port ledger.
                    if multi {
                        let floor = *shared_base + *l2_port_fills * cfg.l2_port_cycles;
                        if floor > *now {
                            stats.stall_cycles += floor - *now;
                            stats.stall_bw_cycles += floor - *now;
                            *now = floor;
                        }
                        *l2_port_fills += 1;
                    }
                    if l2.probe(la) {
                        stats.l2_hits += 1;
                        *now += cfg.l2_hit_cycles;
                        stats.mem_lat_cycles += cfg.l2_hit_cycles;
                        stats.lat_l2_cycles += cfg.l2_hit_cycles;
                        l1.fill(la);
                    } else {
                        // The line comes from DRAM: meter the shared
                        // controller's aggregate streaming bandwidth.
                        if multi {
                            let floor = *shared_base
                                + *dram_line_fills * dram.t_row_hit() / cfg.dram_banks as u64;
                            if floor > *now {
                                stats.stall_cycles += floor - *now;
                                stats.stall_bw_cycles += floor - *now;
                                *now = floor;
                            }
                            *dram_line_fills += 1;
                        }
                        if let Some(ready) = prefetcher.take_inflight(la) {
                            stats.prefetch_hits += 1;
                            *now += cfg.l2_hit_cycles;
                            stats.mem_lat_cycles += cfg.l2_hit_cycles;
                            stats.lat_l2_cycles += cfg.l2_hit_cycles;
                            max_done = max_done.max(ready);
                            l2.fill(la);
                            l1.fill(la);
                            prefetcher.observe(la, *now, dram);
                        } else {
                            stats.demand_misses += 1;
                            // Issue slot occupies the core briefly;
                            // completion is awaited collectively below.
                            *now += cfg.l1_hit_cycles;
                            stats.mem_lat_cycles += cfg.l1_hit_cycles;
                            stats.lat_l1_cycles += cfg.l1_hit_cycles;
                            let done = dram.access(la, *now) + *demand_overhead;
                            max_done = max_done.max(done);
                            l2.fill(la);
                            l1.fill(la);
                            prefetcher.observe(la, *now, dram);
                        }
                    }
                }
                if la == last {
                    break;
                }
                la += line;
            }
        }
        self.stall_dram_until(max_done);
    }

    /// Raw data view without timing (pair with [`Self::touch_read`]).
    #[inline]
    pub fn bytes(&self, addr: Addr, len: usize) -> &[u8] {
        self.arena.slice(addr, len)
    }

    /// Timed read: charges timing and returns the bytes.
    pub fn read(&mut self, addr: Addr, len: usize) -> &[u8] {
        self.touch_read(addr, len);
        self.arena.slice(addr, len)
    }

    /// Timed read into a caller-provided buffer.
    pub fn read_into(&mut self, addr: Addr, buf: &mut [u8]) {
        self.touch_read(addr, buf.len());
        buf.copy_from_slice(self.arena.slice(addr, buf.len()));
    }

    /// Timed write.
    pub fn write(&mut self, addr: Addr, data: &[u8]) {
        self.touch_write(addr, data.len());
        self.arena.write(addr, data);
    }

    /// Untimed write, for loading data sets outside the measured window.
    pub fn write_untimed(&mut self, addr: Addr, data: &[u8]) {
        self.arena.write(addr, data);
    }

    /// Untimed read (inspection / verification).
    pub fn read_untimed(&self, addr: Addr, len: usize) -> &[u8] {
        self.arena.slice(addr, len)
    }

    /// Direct arena access for loaders.
    pub fn arena_mut(&mut self) -> &mut MemArena {
        &mut self.arena
    }

    /// Direct arena access for device models (they read source data
    /// without CPU-side timing; their timing runs through their own
    /// [`DramModel`]).
    pub fn arena(&self) -> &MemArena {
        &self.arena
    }

    /// A fresh DRAM model with identical geometry, for a near-data device
    /// that has its own memory port.
    pub fn device_dram(&self) -> DramModel {
        DramModel::new(&self.cfg)
    }

    /// Drop all cached state and prefetcher training (between experiments),
    /// without resetting time or the arena contents. Flushes every core's
    /// private L1 and prefetcher plus the shared L2/DRAM.
    pub fn flush_caches(&mut self) {
        for c in &mut self.cores {
            c.l1.flush();
            c.prefetcher.reset();
            c.dram.reset();
        }
        self.l2.flush();
        self.dram.reset();
        self.shared_base = self.cores.iter().map(|c| c.now).max().unwrap_or(0);
        self.l2_port_fills = 0;
        self.dram_line_fills = 0;
    }

    // ------------------------------------------------------------ internals

    #[inline]
    fn for_each_line(&mut self, addr: Addr, len: usize) {
        if len == 0 {
            return;
        }
        let line = self.cfg.line_size as u64;
        let first = addr & !(line - 1);
        let last = (addr + len as u64 - 1) & !(line - 1);
        let mut la = first;
        loop {
            self.access_line(la);
            if la == last {
                break;
            }
            la += line;
        }
    }

    fn access_line(&mut self, line_addr: u64) {
        let MemoryHierarchy {
            cfg,
            cores,
            active,
            l2,
            dram,
            demand_overhead,
            shared_base,
            l2_port_fills,
            dram_line_fills,
            ..
        } = self;
        let multi = cores.len() > 1;
        let CoreCtx {
            l1,
            prefetcher,
            dram: core_dram,
            now,
            stats,
        } = &mut cores[*active];
        stats.line_accesses += 1;
        if l1.probe(line_addr) {
            stats.l1_hits += 1;
            *now += cfg.l1_hit_cycles;
            stats.mem_lat_cycles += cfg.l1_hit_cycles;
            stats.lat_l1_cycles += cfg.l1_hit_cycles;
            return;
        }
        // Past the private L1: every fill crosses the shared L2 port.
        // With more than one core the port is a finite resource — the
        // ledger admits at most one fill per `l2_port_cycles` across all
        // cores since the fork point (see the field docs for why this is
        // a counter, not a busy-until cursor).
        if multi {
            let floor = *shared_base + *l2_port_fills * cfg.l2_port_cycles;
            if floor > *now {
                stats.stall_cycles += floor - *now;
                stats.stall_bw_cycles += floor - *now;
                *now = floor;
            }
            *l2_port_fills += 1;
        }
        // Latency past L2 is a per-stream property: in multi-core mode it
        // comes from this core's private DRAM timing view, while the
        // shared controller's capacity is metered by the ledger above.
        let dram = if multi { core_dram } else { dram };
        if l2.probe(line_addr) {
            stats.l2_hits += 1;
            *now += cfg.l2_hit_cycles;
            stats.mem_lat_cycles += cfg.l2_hit_cycles;
            stats.lat_l2_cycles += cfg.l2_hit_cycles;
            l1.fill(line_addr);
            return;
        }
        // The line comes from DRAM (prefetched or on demand): meter the
        // shared controller's aggregate streaming bandwidth.
        if multi {
            let floor = *shared_base + *dram_line_fills * dram.t_row_hit() / cfg.dram_banks as u64;
            if floor > *now {
                stats.stall_cycles += floor - *now;
                stats.stall_bw_cycles += floor - *now;
                *now = floor;
            }
            *dram_line_fills += 1;
        }
        if let Some(ready) = prefetcher.take_inflight(line_addr) {
            // The prefetch is (or will be) in L2; wait for it if needed,
            // then pay the L2-to-L1 transfer.
            stats.prefetch_hits += 1;
            if ready > *now {
                stats.stall_cycles += ready - *now;
                stats.stall_dram_cycles += ready - *now;
                *now = ready;
            }
            *now += cfg.l2_hit_cycles;
            stats.mem_lat_cycles += cfg.l2_hit_cycles;
            stats.lat_l2_cycles += cfg.l2_hit_cycles;
            l2.fill(line_addr);
            l1.fill(line_addr);
            prefetcher.observe(line_addr, *now, dram);
            return;
        }
        // Full demand miss.
        stats.demand_misses += 1;
        let done = dram.access(line_addr, *now);
        let arrive = done + *demand_overhead;
        stats.stall_cycles += arrive - *now;
        stats.stall_dram_cycles += arrive - *now;
        *now = arrive;
        l2.fill(line_addr);
        l1.fill(line_addr);
        prefetcher.observe(line_addr, *now, dram);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(SimConfig::zynq_a53())
    }

    #[test]
    fn read_returns_real_bytes_and_advances_time() {
        let mut m = hierarchy();
        let p = m.alloc(128, 64).unwrap();
        m.write_untimed(p, &[7u8; 128]);
        let t0 = m.now();
        let data = m.read(p, 128);
        assert!(data.iter().all(|&b| b == 7));
        assert!(m.now() > t0);
        assert_eq!(m.stats().bytes_read, 128);
        assert_eq!(m.stats().line_accesses, 2);
    }

    #[test]
    fn second_read_hits_l1_and_is_cheap() {
        let mut m = hierarchy();
        let p = m.alloc(64, 64).unwrap();
        m.touch_read(p, 64);
        let t0 = m.now();
        m.touch_read(p, 64);
        assert_eq!(m.now() - t0, SimConfig::zynq_a53().l1_hit_cycles);
        assert_eq!(m.stats().l1_hits, 1);
    }

    #[test]
    fn cpu_charges_compute() {
        let mut m = hierarchy();
        let t0 = m.now();
        m.cpu(100);
        assert_eq!(m.now() - t0, 100);
        assert_eq!(m.stats().cpu_cycles, 100);
    }

    #[test]
    fn stall_until_only_moves_forward() {
        let mut m = hierarchy();
        m.cpu(1000);
        m.stall_until(500); // in the past: no-op
        assert_eq!(m.now(), 1000);
        m.stall_until(1500);
        assert_eq!(m.now(), 1500);
        assert_eq!(m.stats().stall_cycles, 500);
    }

    #[test]
    fn sequential_scan_gets_prefetched() {
        let mut m = hierarchy();
        let n = 512 * 1024;
        let p = m.alloc(n, 64).unwrap();
        // Stream through half a MB line by line.
        for i in 0..(n / 64) {
            m.touch_read(p + (i * 64) as u64, 64);
        }
        let s = m.stats();
        assert!(
            s.prefetch_hits > s.demand_misses * 10,
            "sequential scan should be mostly prefetch hits: {s:?}"
        );
    }

    #[test]
    fn big_random_pattern_mostly_misses() {
        let mut m = hierarchy();
        let n = 8 * 1024 * 1024;
        let p = m.alloc(n, 64).unwrap();
        // A deliberately non-sequential pattern (large co-prime hops).
        let lines = (n / 64) as u64;
        let mut idx = 0u64;
        let mut demand_t0 = m.stats().demand_misses;
        for _ in 0..4096 {
            idx = (idx + 2_654_435_761) % lines;
            m.touch_read(p + idx * 64, 64);
        }
        demand_t0 = m.stats().demand_misses - demand_t0;
        assert!(
            demand_t0 > 3500,
            "random pattern should demand-miss: {demand_t0}"
        );
    }

    #[test]
    fn flush_caches_forces_misses_again() {
        let mut m = hierarchy();
        let p = m.alloc(64, 64).unwrap();
        m.touch_read(p, 64);
        m.flush_caches();
        let misses0 = m.stats().demand_misses;
        m.touch_read(p, 64);
        assert_eq!(m.stats().demand_misses, misses0 + 1);
    }

    #[test]
    fn working_set_in_l2_hits_l2() {
        let mut m = hierarchy();
        let n = 256 * 1024; // fits in 1 MB L2, not in 32 KB L1
        let p = m.alloc(n, 64).unwrap();
        for i in 0..(n / 64) {
            m.touch_read(p + (i * 64) as u64, 64);
        }
        // Second pass: should be L2 hits (L1 too small).
        let before = m.stats();
        for i in 0..(n / 64) {
            m.touch_read(p + (i * 64) as u64, 64);
        }
        let d = m.stats().delta_since(&before);
        assert!(
            d.l2_hits > (n / 64) as u64 * 8 / 10,
            "expected mostly L2 hits: {d:?}"
        );
    }

    #[test]
    fn untimed_accessors_do_not_advance_time() {
        let mut m = hierarchy();
        let p = m.alloc(64, 64).unwrap();
        let t0 = m.now();
        m.write_untimed(p, &[1u8; 64]);
        let _ = m.read_untimed(p, 64);
        assert_eq!(m.now(), t0);
    }

    #[test]
    fn recorder_never_advances_time() {
        let mut bare = hierarchy();
        let mut traced = hierarchy();
        traced.set_recorder(Box::new(crate::RingRecorder::new(256)));
        for m in [&mut bare, &mut traced] {
            let p = m.alloc(4096, 64).unwrap();
            m.traced("scan", Category::Mem, |m| {
                m.touch_read(p, 4096);
                m.cpu(100);
            });
            m.trace_instant("tick", Category::Fault, &[("k", 1)]);
        }
        assert_eq!(bare.now(), traced.now(), "recording must be cycle-free");
        assert_eq!(bare.stats(), traced.stats());
        assert!(traced.tracing() && !bare.tracing());
    }

    #[test]
    fn traced_span_attributes_hierarchy_activity() {
        let mut m = hierarchy();
        m.set_recorder(Box::new(crate::RingRecorder::new(64)));
        let p = m.alloc(256, 64).unwrap();
        m.traced("scan", Category::Mem, |m| m.touch_read(p, 256));
        let json = m.export_trace().expect("ring recorder exports");
        let summary = fabric_obs::validate_chrome_trace(&json).expect("valid trace");
        assert_eq!((summary.begins, summary.ends), (1, 1));
        // The closing edge carries per-level attribution.
        assert!(json.contains("\"demand_misses\""), "{json}");
        assert!(json.contains("\"stall_cycles\""), "{json}");
        let rec = m.take_recorder();
        assert!(!m.tracing());
        assert_eq!(rec.export_chrome_json().as_deref(), Some(json.as_str()));
        assert!(m.export_trace().is_none(), "noop recorder exports nothing");
    }

    #[test]
    fn metrics_registry_is_hosted() {
        let mut m = hierarchy();
        m.metrics_mut().counter_add("mem.test", 3);
        m.stats().record_into(m.metrics_mut(), "mem");
        assert_eq!(m.metrics().counter("mem.test"), 3);
        let snap = m.metrics().snapshot();
        assert!(snap.counters.contains_key("mem.cpu_cycles"));
    }

    #[test]
    fn single_core_never_pays_the_l2_port() {
        // One core must be cycle-identical to the pre-multi-core model:
        // the shared-port arbitration is gated on `num_cores() > 1`.
        let mut a = hierarchy();
        let mut b = hierarchy();
        b.set_core_count(1);
        for m in [&mut a, &mut b] {
            let p = m.alloc(64 * 1024, 64).unwrap();
            for i in 0..1024u64 {
                m.touch_read(p + i * 64, 64);
            }
        }
        assert_eq!(a.now(), b.now());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn core_clock_advance_is_fully_attributed() {
        // Δnow == Δ(cpu + stall + mem_lat) on every core, which is what
        // lets EXPLAIN ANALYZE reconcile per-core busy time with the
        // global clock.
        let mut m = hierarchy();
        m.set_core_count(4);
        m.fork_clocks();
        let mut snaps = Vec::new();
        for i in 0..4 {
            snaps.push((m.core_now(i), m.core_stats(i)));
        }
        let p = m.alloc(1 << 20, 64).unwrap();
        for i in 0..4 {
            m.set_active_core(i);
            let base = p + (i as u64) * 256 * 1024;
            for l in 0..4096u64 {
                m.touch_read(base + l * 64, 64);
            }
            m.cpu(1000);
        }
        for i in 0..4 {
            let (t0, s0) = snaps[i];
            let d = m.core_stats(i).delta_since(&s0);
            assert_eq!(
                m.core_now(i) - t0,
                d.busy_cycles(),
                "core {i} clock advance must equal cpu+stall+mem_lat"
            );
        }
        let t = m.join_clocks();
        for i in 0..4 {
            assert_eq!(m.core_now(i), t);
        }
        m.set_active_core(0);
    }

    #[test]
    fn parallel_streams_under_the_bandwidth_cap_run_at_full_speed() {
        // A second core streaming a disjoint region must not slow the
        // first one down while the shared port and DRAM controller are
        // below their aggregate-throughput caps: core 0's timeline is
        // cycle-identical to a solo run over the same addresses.
        let solo = {
            let mut m = hierarchy();
            let p = m.alloc(1 << 20, 64).unwrap();
            m.flush_caches();
            let t0 = m.now();
            for l in 0..4096u64 {
                m.touch_read(p + l * 64, 64);
            }
            m.now() - t0
        };
        let mut m = hierarchy();
        m.set_core_count(2);
        let p = m.alloc(1 << 20, 64).unwrap();
        m.flush_caches();
        let t0 = m.fork_clocks();
        for l in 0..4096u64 {
            for c in 0..2u64 {
                m.set_active_core(c as usize);
                m.touch_read(p + c * 512 * 1024 + l * 64, 64);
            }
        }
        let core0 = m.core_now(0) - t0;
        assert_eq!(
            core0, solo,
            "an under-cap parallel stream must run at solo speed"
        );
        m.set_active_core(0);
        m.join_clocks();
    }

    #[test]
    fn saturated_l2_port_caps_aggregate_throughput() {
        // Narrow the shared port so two streaming cores exceed its
        // aggregate bandwidth: the ledger must stretch the parallel
        // region to at least `fills * port` cycles, and past what either
        // core would take alone.
        let cfg = SimConfig {
            l2_port_cycles: 40,
            ..SimConfig::zynq_a53()
        };
        let solo = {
            let mut m = MemoryHierarchy::new(cfg.clone());
            let p = m.alloc(1 << 20, 64).unwrap();
            m.flush_caches();
            let t0 = m.now();
            for l in 0..4096u64 {
                m.touch_read(p + l * 64, 64);
            }
            m.now() - t0
        };
        let mut m = MemoryHierarchy::new(cfg.clone());
        m.set_core_count(2);
        let p = m.alloc(1 << 20, 64).unwrap();
        m.flush_caches();
        let t0 = m.fork_clocks();
        for l in 0..4096u64 {
            for c in 0..2u64 {
                m.set_active_core(c as usize);
                m.touch_read(p + c * 512 * 1024 + l * 64, 64);
            }
        }
        m.set_active_core(0);
        let contended = m.join_clocks() - t0;
        assert!(
            contended >= (2 * 4096 - 1) * cfg.l2_port_cycles,
            "a saturated port must admit at most one fill per slot \
             ({contended} < {})",
            (2 * 4096 - 1) * cfg.l2_port_cycles
        );
        assert!(
            contended > solo,
            "two over-cap streams ({contended}) must exceed one solo stream ({solo})"
        );
    }

    #[test]
    fn saturated_dram_controller_caps_aggregate_throughput() {
        // A single-bank DRAM gives the controller no pipelining: four
        // cold streams must serialize at one line per `t_row_hit`.
        let cfg = SimConfig {
            dram_banks: 1,
            ..SimConfig::zynq_a53()
        };
        let t_hit = cfg.ns_to_cycles(cfg.dram_row_hit_ns);
        let mut m = MemoryHierarchy::new(cfg);
        m.set_core_count(4);
        let p = m.alloc(1 << 20, 64).unwrap();
        m.flush_caches();
        let t0 = m.fork_clocks();
        for l in 0..1024u64 {
            for c in 0..4u64 {
                m.set_active_core(c as usize);
                m.touch_read(p + c * 256 * 1024 + l * 64, 64);
            }
        }
        m.set_active_core(0);
        let elapsed = m.join_clocks() - t0;
        assert!(
            elapsed >= (4 * 1024 - 1) * t_hit,
            "a saturated single-bank controller must admit at most one \
             line per t_row_hit ({elapsed} < {})",
            (4 * 1024 - 1) * t_hit
        );
    }

    #[test]
    fn set_core_count_folds_stats_and_keeps_them_monotonic() {
        let mut m = hierarchy();
        m.set_core_count(3);
        let p = m.alloc(4096, 64).unwrap();
        m.set_active_core(2);
        m.touch_read(p, 4096);
        m.cpu(50);
        let before = m.stats();
        m.set_active_core(0);
        m.set_core_count(1);
        assert_eq!(m.num_cores(), 1);
        assert_eq!(m.stats(), before, "shrinking must not lose statistics");
        assert_eq!(m.active_core(), 0);
    }

    #[test]
    fn fork_aligns_new_cores_to_the_frontier() {
        let mut m = hierarchy();
        m.cpu(500);
        m.set_core_count(2);
        assert_eq!(m.core_now(1), 500);
        m.cpu(100); // core 0 runs ahead
        let t = m.fork_clocks();
        assert_eq!(t, 600);
        assert_eq!(m.core_now(0), m.core_now(1));
    }

    #[test]
    fn zero_length_access_is_free() {
        let mut m = hierarchy();
        let p = m.alloc(64, 64).unwrap();
        let t0 = m.now();
        m.touch_read(p, 0);
        assert_eq!(m.now(), t0);
        assert_eq!(m.stats().line_accesses, 0);
    }
}
