//! Set-associative cache model with LRU replacement.
//!
//! Tags only — data lives in the [`crate::arena::MemArena`]; the cache model
//! exists purely to decide hit/miss and therefore latency.

/// A set-associative, LRU, tag-only cache.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    /// `sets[s]` holds up to `assoc` line addresses, most recently used last.
    sets: Vec<Vec<u64>>,
    assoc: usize,
    set_mask: u64,
    line_shift: u32,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Build a cache of `capacity_bytes` with `assoc` ways and
    /// `line_size`-byte lines. Capacity must divide into a power-of-two
    /// number of sets.
    pub fn new(capacity_bytes: usize, assoc: usize, line_size: usize) -> Self {
        assert!(assoc >= 1);
        let num_lines = capacity_bytes / line_size;
        let num_sets = (num_lines / assoc).max(1);
        assert!(
            num_sets.is_power_of_two(),
            "cache with {num_lines} lines / {assoc} ways gives {num_sets} sets (must be a power of two)"
        );
        SetAssocCache {
            sets: vec![Vec::with_capacity(assoc); num_sets],
            assoc,
            set_mask: (num_sets - 1) as u64,
            line_shift: line_size.trailing_zeros(),
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn set_of(&self, line_addr: u64) -> usize {
        ((line_addr >> self.line_shift) & self.set_mask) as usize
    }

    /// Look up the line containing `line_addr` (must be line aligned).
    /// On hit, refresh LRU position and return `true`.
    pub fn probe(&mut self, line_addr: u64) -> bool {
        let set = self.set_of(line_addr);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == line_addr) {
            let tag = ways.remove(pos);
            ways.push(tag);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Install the line containing `line_addr`, evicting the LRU way if the
    /// set is full. Returns the evicted line address, if any.
    pub fn fill(&mut self, line_addr: u64) -> Option<u64> {
        let set = self.set_of(line_addr);
        let ways = &mut self.sets[set];
        if ways.contains(&line_addr) {
            return None; // already present
        }
        let evicted = if ways.len() == self.assoc {
            Some(ways.remove(0))
        } else {
            None
        };
        ways.push(line_addr);
        evicted
    }

    /// Check for presence without updating LRU or counters.
    pub fn contains(&self, line_addr: u64) -> bool {
        let set = self.set_of(line_addr);
        self.sets[set].contains(&line_addr)
    }

    /// Drop every cached line (e.g. between experiments).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// `(hits, misses)` since construction or [`Self::reset_counters`].
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Number of sets (for tests / introspection).
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_of_l1() {
        // 32 KB, 4-way, 64 B lines -> 128 sets.
        let c = SetAssocCache::new(32 * 1024, 4, 64);
        assert_eq!(c.num_sets(), 128);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = SetAssocCache::new(1024, 2, 64);
        assert!(!c.probe(0));
        c.fill(0);
        assert!(c.probe(0));
        assert_eq!(c.counters(), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        // 2-way: fill A, B (same set), touch A, fill C -> B evicted.
        let mut c = SetAssocCache::new(2 * 64, 2, 64); // 1 set, 2 ways
        assert_eq!(c.num_sets(), 1);
        c.fill(0);
        c.fill(64);
        assert!(c.probe(0)); // A is now MRU
        let evicted = c.fill(128);
        assert_eq!(evicted, Some(64)); // B was LRU
        assert!(c.contains(0));
        assert!(c.contains(128));
        assert!(!c.contains(64));
    }

    #[test]
    fn fill_existing_line_is_noop() {
        let mut c = SetAssocCache::new(2 * 64, 2, 64);
        c.fill(0);
        assert_eq!(c.fill(0), None);
        c.fill(64);
        // Set is full but refilling an existing line must not evict.
        assert_eq!(c.fill(64), None);
        assert!(c.contains(0) && c.contains(64));
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = SetAssocCache::new(4 * 64, 2, 64); // 2 sets, 2 ways
        assert_eq!(c.num_sets(), 2);
        // Lines 0 and 64 go to different sets.
        c.fill(0);
        c.fill(64);
        c.fill(128); // same set as 0
        c.fill(256); // same set as 0 -> evicts 0 (LRU)
        assert!(!c.contains(0));
        assert!(c.contains(64));
    }

    #[test]
    fn flush_clears_everything() {
        let mut c = SetAssocCache::new(1024, 2, 64);
        c.fill(0);
        c.fill(64);
        c.flush();
        assert!(!c.contains(0));
        assert!(!c.contains(64));
    }

    #[test]
    fn working_set_larger_than_cache_misses() {
        let mut c = SetAssocCache::new(1024, 2, 64); // 16 lines
                                                     // Stream 64 distinct lines twice; second pass must still miss
                                                     // (capacity misses), since the working set is 4x the capacity.
        for pass in 0..2 {
            for i in 0..64u64 {
                let hit = c.probe(i * 64);
                if pass == 0 {
                    assert!(!hit);
                }
                if !hit {
                    c.fill(i * 64);
                }
            }
        }
        let (hits, misses) = c.counters();
        assert_eq!(hits, 0);
        assert_eq!(misses, 128);
    }
}
