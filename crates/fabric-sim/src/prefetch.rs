//! Hardware stream prefetcher model.
//!
//! The Cortex-A53 L2 prefetcher tracks a small number of sequential streams
//! (four — the number the paper leans on: *"the prefetcher can efficiently
//! support up to four parallel sequential accesses"*, §V). This model keeps
//! a stream table with LRU allocation: an access pattern with at most
//! [`SimConfig::prefetch_streams`] interleaved sequential streams trains
//! quickly and hides DRAM latency; more streams thrash the table and every
//! access pays the full demand-miss cost. That mechanism — not a fitted
//! curve — is what produces the paper's four-column crossover in Fig. 5/6.

use crate::config::SimConfig;
use crate::dram::DramModel;
use crate::Cycles;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
struct Stream {
    /// Line index (not byte address) expected next.
    next_line: u64,
    /// Stride in lines (>= 1; ascending streams only).
    stride: u64,
    /// Consecutive confirmations; prefetch starts at `train`.
    score: usize,
    /// Highest line index already sent to DRAM for this stream.
    issued_until: u64,
    /// LRU tick of last use.
    last_use: u64,
}

/// Safety valve: if the in-flight table ever exceeds this many entries the
/// prefetcher drops them all (real prefetch buffers are tiny; this only
/// guards against pathological leak in very long simulations).
const MAX_INFLIGHT: usize = 1 << 20;

/// Maximum stride (in lines) a new stream allocation will infer.
const MAX_STRIDE_LINES: u64 = 8;

/// Deterministic pseudo-random source for victim selection.
#[inline]
fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// Stream prefetcher with a bounded stream table.
#[derive(Debug)]
pub struct StreamPrefetcher {
    streams: Vec<Stream>,
    capacity: usize,
    degree: u64,
    train: usize,
    tick: u64,
    line_shift: u32,
    /// line index -> completion time of the prefetch.
    inflight: BTreeMap<u64, Cycles>,
    issued: u64,
    useful: u64,
}

impl StreamPrefetcher {
    pub fn new(cfg: &SimConfig) -> Self {
        StreamPrefetcher {
            streams: Vec::with_capacity(cfg.prefetch_streams),
            capacity: cfg.prefetch_streams,
            degree: cfg.prefetch_degree as u64,
            train: cfg.prefetch_train,
            tick: 0,
            line_shift: cfg.line_size.trailing_zeros(),
            inflight: BTreeMap::new(),
            issued: 0,
            useful: 0,
        }
    }

    /// If a prefetch for this line is in flight, consume it and return its
    /// completion time.
    pub fn take_inflight(&mut self, line_addr: u64) -> Option<Cycles> {
        let line = line_addr >> self.line_shift;
        let ready = self.inflight.remove(&line);
        if ready.is_some() {
            self.useful += 1;
        }
        ready
    }

    /// Notify the prefetcher of an L2-level demand access (miss or prefetch
    /// hit); trains streams and issues new prefetches against `dram`.
    pub fn observe(&mut self, line_addr: u64, now: Cycles, dram: &mut DramModel) {
        self.tick += 1;
        let line = line_addr >> self.line_shift;

        // Try to match an existing stream.
        let mut matched: Option<usize> = None;
        for (i, s) in self.streams.iter_mut().enumerate() {
            if line == s.next_line {
                matched = Some(i);
                break;
            }
            // Allow an un-stabilised stream (stride guess pending) to lock
            // its stride from the second access.
            if s.score == 1 && line > s.next_line - s.stride {
                let delta = line - (s.next_line - s.stride);
                if delta <= MAX_STRIDE_LINES {
                    s.stride = delta;
                    s.next_line = line; // will be advanced below
                    matched = Some(i);
                    break;
                }
            }
        }

        match matched {
            Some(i) => {
                let tick = self.tick;
                let (degree, train) = (self.degree, self.train);
                let s = &mut self.streams[i];
                s.score += 1;
                s.next_line = line + s.stride;
                s.last_use = tick;
                if s.score >= train {
                    // Keep `degree` lines of lookahead in flight.
                    let target = line + degree * s.stride;
                    let mut next = s.issued_until.max(line + s.stride);
                    // Round `next` up onto the stream's phase.
                    let phase_off = (next.wrapping_sub(line)) % s.stride;
                    if phase_off != 0 {
                        next += s.stride - phase_off;
                    }
                    let stride = s.stride;
                    let mut issued_until = s.issued_until;
                    while next <= target {
                        if !self.inflight.contains_key(&next) {
                            let ready = dram.access(next << self.line_shift, now);
                            self.inflight.insert(next, ready);
                            self.issued += 1;
                        }
                        issued_until = issued_until.max(next);
                        next += stride;
                    }
                    self.streams[i].issued_until = issued_until;
                }
            }
            None => {
                // Allocate a fresh stream guessing a +1-line stride; the
                // stride locks on the second access.
                let tick = self.tick;
                if self.streams.len() == self.capacity {
                    // Pseudo-random replacement, like the Cortex-A53's
                    // caches: with N interleaved streams and a smaller
                    // table, a fraction of streams survives each round, so
                    // prefetch coverage degrades gradually — adversarial
                    // LRU would collapse to zero coverage at N+1 streams.
                    let victim = (xorshift(tick) as usize) % self.streams.len();
                    self.streams.swap_remove(victim);
                }
                self.streams.push(Stream {
                    next_line: line + 1,
                    stride: 1,
                    score: 1,
                    issued_until: line,
                    last_use: tick,
                });
            }
        }

        if self.inflight.len() > MAX_INFLIGHT {
            self.inflight.clear();
        }
    }

    /// `(prefetches issued, prefetches that serviced a demand access)`.
    pub fn counters(&self) -> (u64, u64) {
        (self.issued, self.useful)
    }

    /// Drop all state (new experiment).
    pub fn reset(&mut self) {
        self.streams.clear();
        self.inflight.clear();
        self.tick = 0;
        self.issued = 0;
        self.useful = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (StreamPrefetcher, DramModel, SimConfig) {
        let cfg = SimConfig::zynq_a53();
        (StreamPrefetcher::new(&cfg), DramModel::new(&cfg), cfg)
    }

    #[test]
    fn sequential_stream_trains_and_prefetches() {
        let (mut pf, mut dram, _) = setup();
        // Two observations train the stream; the third access should find
        // its line in flight.
        pf.observe(0, 0, &mut dram);
        pf.observe(64, 100, &mut dram);
        let (issued, _) = pf.counters();
        assert!(issued > 0, "trained stream must issue prefetches");
        assert!(pf.take_inflight(128).is_some());
    }

    #[test]
    fn strided_stream_locks_stride() {
        let (mut pf, mut dram, _) = setup();
        // Stride of 2 lines (a 128-byte-row scan).
        pf.observe(0, 0, &mut dram);
        pf.observe(128, 100, &mut dram);
        pf.observe(256, 200, &mut dram);
        assert!(
            pf.take_inflight(384).is_some(),
            "stride-2 line should be prefetched"
        );
        // Lines between the stride must NOT be prefetched.
        assert!(pf.take_inflight(320).is_none());
    }

    #[test]
    fn four_interleaved_streams_all_train() {
        let (mut pf, mut dram, _) = setup();
        let bases: Vec<u64> = (0..4).map(|i| i * 1 << 20).collect();
        let mut now = 0;
        for step in 0..4u64 {
            for &b in &bases {
                pf.observe(b + step * 64, now, &mut dram);
                now += 50;
            }
        }
        for &b in &bases {
            assert!(
                pf.take_inflight(b + 4 * 64).is_some(),
                "stream at base {b:#x} should be prefetching"
            );
        }
    }

    #[test]
    fn excess_interleaved_streams_degrade_coverage() {
        // Coverage (prefetches issued per access) must drop substantially
        // once the number of round-robin streams exceeds the table size,
        // but — thanks to random replacement — not collapse to zero.
        let run = |n_streams: u64| {
            let (mut pf, mut dram, _) = setup();
            let bases: Vec<u64> = (0..n_streams).map(|i| i << 20).collect();
            let mut now = 0;
            let steps = 64u64;
            for step in 0..steps {
                for &b in &bases {
                    pf.observe(b + step * 64, now, &mut dram);
                    now += 50;
                }
            }
            let (issued, _) = pf.counters();
            issued as f64 / (steps * n_streams) as f64
        };
        let cov4 = run(4);
        let cov8 = run(8);
        assert!(cov4 > 0.9, "4 streams should be fully covered: {cov4}");
        assert!(
            cov8 < cov4 * 0.7,
            "8 streams should degrade: {cov8} vs {cov4}"
        );
    }

    #[test]
    fn take_inflight_consumes_once() {
        let (mut pf, mut dram, _) = setup();
        pf.observe(0, 0, &mut dram);
        pf.observe(64, 10, &mut dram);
        assert!(pf.take_inflight(128).is_some());
        assert!(pf.take_inflight(128).is_none());
    }

    #[test]
    fn reset_clears_counters_and_streams() {
        let (mut pf, mut dram, _) = setup();
        pf.observe(0, 0, &mut dram);
        pf.observe(64, 10, &mut dram);
        pf.reset();
        assert_eq!(pf.counters(), (0, 0));
        assert!(pf.take_inflight(128).is_none());
    }
}
