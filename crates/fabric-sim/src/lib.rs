//! A software-timed model of the memory hierarchy of the paper's target
//! platform (Xilinx Zynq UltraScale+ MPSoC: Cortex-A53 cores, private L1,
//! shared L2, DDR memory behind a banked controller).
//!
//! The Relational Fabric paper evaluates a *hardware* prototype; this crate
//! is the substitution that lets the whole reproduction run as pure
//! software. Every engine in the workspace reads real bytes out of a
//! [`MemArena`] *through* a [`MemoryHierarchy`], which charges simulated
//! CPU cycles for cache hits, misses, DRAM bank contention, and prefetch
//! behaviour. Simulated time — not wall-clock time — is what the figure
//! benchmarks report, so the paper's *shape* claims (who wins, where the
//! crossovers are) emerge from the modeled mechanisms:
//!
//! * set-associative L1/L2 caches with LRU replacement ([`cache`]);
//! * a stream prefetcher that tracks a small number of concurrent
//!   sequential streams — four on the A53, which is exactly why the paper's
//!   columnar baseline stops scaling past four projected columns
//!   ([`prefetch`]);
//! * a DRAM model with per-bank queues and open-row tracking ([`dram`]);
//! * byte-accurate backing storage ([`arena`]);
//! * and cycle accounting plus traffic statistics ([`stats`]).
//!
//! Device-side components (the RM engine in `relmem`, the SSD controller in
//! `relstore`) reuse [`dram::DramModel`] directly: they sit *near* the data,
//! so they access DRAM banks without going through the CPU caches.

pub mod arena;
pub mod cache;
pub mod config;
pub mod dram;
pub mod faults;
pub mod hierarchy;
pub mod prefetch;
pub mod stats;

pub use arena::MemArena;
pub use cache::SetAssocCache;
pub use config::SimConfig;
pub use dram::DramModel;
pub use faults::{
    BreakerState, CircuitBreaker, FaultConfig, FaultPlan, FaultStats, RecoveryPolicy,
};
pub use hierarchy::MemoryHierarchy;
pub use stats::MemStats;

// Observability spine (see `fabric-obs`): re-exported so instrumented
// engines that already depend on `fabric-sim` need no extra manifest
// entry to emit spans or metrics.
pub use fabric_obs::{
    compare_bench, escaped, parse_json, validate_chrome_trace, CalibEntry, CalibLedger, Category,
    ChromeTraceSummary, FabricRecorder, FlightRecorder, GatePolicy, GateReport, Json,
    MetricsRegistry, MetricsSnapshot, NoopRecorder, OpRecord, OpStats, Postmortem, ProfileStats,
    QueryLog, QueryRecord, RingRecorder, SamplingProfiler, ScopedMetrics, TopDown, TopDownCore,
    TopDownSummary, TraceBuffer, WorkloadEntry, WorkloadReport, BENCH_SCHEMA_VERSION,
};

/// Simulated time, measured in CPU core cycles.
pub type Cycles = u64;
