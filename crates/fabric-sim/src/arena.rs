//! Byte-accurate backing memory for the simulation.
//!
//! Tables, column arrays, and device buffers are all allocated from one
//! [`MemArena`]. Addresses are stable `u64` offsets (the arena never moves
//! existing bytes), so engines can keep raw [`Addr`]s in their metadata the
//! way real software keeps pointers.

use fabric_types::{Addr, FabricError, Result};

/// Growable, bump-allocated simulated physical memory.
pub struct MemArena {
    bytes: Vec<u8>,
    next: usize,
    limit: usize,
}

/// Default arena capacity limit: 4 GiB of simulated physical memory,
/// matching common Zynq MPSoC boards.
pub const DEFAULT_LIMIT: usize = 4 << 30;

impl MemArena {
    /// Create an arena with the default 4 GiB limit.
    pub fn new() -> Self {
        Self::with_limit(DEFAULT_LIMIT)
    }

    /// Create an arena that will refuse to grow beyond `limit` bytes.
    pub fn with_limit(limit: usize) -> Self {
        MemArena {
            bytes: Vec::new(),
            next: 0,
            limit,
        }
    }

    /// Allocate `len` bytes aligned to `align` (a power of two); returns the
    /// base address. Freshly allocated memory is zeroed.
    pub fn alloc(&mut self, len: usize, align: usize) -> Result<Addr> {
        debug_assert!(align.is_power_of_two());
        let base = (self.next + align - 1) & !(align - 1);
        let end = base.checked_add(len).ok_or(FabricError::ArenaExhausted {
            requested: len,
            available: self.limit - self.next,
        })?;
        if end > self.limit {
            return Err(FabricError::ArenaExhausted {
                requested: len,
                available: self.limit - self.next,
            });
        }
        if end > self.bytes.len() {
            self.bytes.resize(end, 0);
        }
        self.next = end;
        Ok(base as Addr)
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> usize {
        self.next
    }

    /// Immutable view of `[addr, addr+len)`.
    pub fn slice(&self, addr: Addr, len: usize) -> &[u8] {
        let a = addr as usize;
        debug_assert!(
            a + len <= self.bytes.len(),
            "arena read out of bounds: {addr:#x}+{len} (size {})",
            self.bytes.len()
        );
        &self.bytes[a..a + len]
    }

    /// Mutable view of `[addr, addr+len)`.
    pub fn slice_mut(&mut self, addr: Addr, len: usize) -> &mut [u8] {
        let a = addr as usize;
        debug_assert!(
            a + len <= self.bytes.len(),
            "arena write out of bounds: {addr:#x}+{len} (size {})",
            self.bytes.len()
        );
        &mut self.bytes[a..a + len]
    }

    /// Checked read that returns an error instead of panicking.
    pub fn try_slice(&self, addr: Addr, len: usize) -> Result<&[u8]> {
        let a = addr as usize;
        if a + len > self.bytes.len() {
            return Err(FabricError::ArenaOutOfBounds {
                addr,
                len,
                size: self.bytes.len(),
            });
        }
        Ok(&self.bytes[a..a + len])
    }

    /// Copy `data` into the arena at `addr`.
    pub fn write(&mut self, addr: Addr, data: &[u8]) {
        self.slice_mut(addr, data.len()).copy_from_slice(data);
    }

    /// Read a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: Addr) -> u64 {
        u64::from_le_bytes(self.slice(addr, 8).try_into().unwrap())
    }

    /// Write a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: Addr, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }
}

impl Default for MemArena {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_zeroed() {
        let mut a = MemArena::new();
        let p1 = a.alloc(10, 1).unwrap();
        let p2 = a.alloc(64, 64).unwrap();
        assert_eq!(p1, 0);
        assert_eq!(p2 % 64, 0);
        assert!(a.slice(p2, 64).iter().all(|&b| b == 0));
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut a = MemArena::new();
        let p1 = a.alloc(100, 8).unwrap();
        let p2 = a.alloc(100, 8).unwrap();
        assert!(p2 >= p1 + 100);
        a.write(p1, &[1u8; 100]);
        a.write(p2, &[2u8; 100]);
        assert!(a.slice(p1, 100).iter().all(|&b| b == 1));
        assert!(a.slice(p2, 100).iter().all(|&b| b == 2));
    }

    #[test]
    fn limit_is_enforced() {
        let mut a = MemArena::with_limit(1024);
        assert!(a.alloc(1000, 1).is_ok());
        assert!(matches!(
            a.alloc(100, 1),
            Err(FabricError::ArenaExhausted { .. })
        ));
    }

    #[test]
    fn u64_roundtrip() {
        let mut a = MemArena::new();
        let p = a.alloc(8, 8).unwrap();
        a.write_u64(p, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(a.read_u64(p), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn try_slice_checks_bounds() {
        let mut a = MemArena::new();
        let p = a.alloc(16, 1).unwrap();
        assert!(a.try_slice(p, 16).is_ok());
        assert!(a.try_slice(p, 17).is_err());
    }
}
