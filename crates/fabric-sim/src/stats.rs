//! Counters describing what the simulated hierarchy did.

/// Traffic and timing statistics accumulated by a
/// [`crate::hierarchy::MemoryHierarchy`].
///
/// All counters are monotonically increasing; snapshot-and-subtract
/// ([`MemStats::delta_since`]) to measure one experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemStats {
    /// Lines serviced by L1.
    pub l1_hits: u64,
    /// Lines serviced by L2.
    pub l2_hits: u64,
    /// Lines serviced by an in-flight prefetch.
    pub prefetch_hits: u64,
    /// Lines that paid the full demand-miss path to DRAM.
    pub demand_misses: u64,
    /// Total line-granularity accesses (sum of the four above).
    pub line_accesses: u64,
    /// Bytes requested by reads (payload, not line-rounded).
    pub bytes_read: u64,
    /// Bytes requested by writes.
    pub bytes_written: u64,
    /// Cycles explicitly charged as CPU compute.
    pub cpu_cycles: u64,
    /// Cycles the CPU spent stalled on memory.
    pub stall_cycles: u64,
    /// Cycles spent in cache-hit latency (L1/L2 hit service time and miss
    /// issue slots). Together with `cpu_cycles` and `stall_cycles` this
    /// accounts for every cycle a core's clock advances:
    /// `Δnow == Δ(cpu_cycles + stall_cycles + mem_lat_cycles)`.
    pub mem_lat_cycles: u64,
    /// Stall cycles waiting on a shared-fabric bandwidth ledger (the L2
    /// port or the DRAM controller's aggregate-throughput cap). One of
    /// four sub-buckets that partition `stall_cycles` exactly:
    /// `stall_cycles == stall_bw + stall_dram + stall_device + stall_retry`.
    pub stall_bw_cycles: u64,
    /// Stall cycles waiting for DRAM data to arrive (demand-miss latency
    /// and in-flight prefetch completion).
    pub stall_dram_cycles: u64,
    /// Stall cycles waiting on a producer-side device (RM engine beat,
    /// SSD controller, bus transfer) via [`stall_until`].
    ///
    /// [`stall_until`]: crate::hierarchy::MemoryHierarchy::stall_until
    pub stall_device_cycles: u64,
    /// Stall cycles spent in fault-retry backoff via [`stall_retry_until`].
    ///
    /// [`stall_retry_until`]: crate::hierarchy::MemoryHierarchy::stall_retry_until
    pub stall_retry_cycles: u64,
    /// L1-service portion of `mem_lat_cycles` (L1 hits and miss issue
    /// slots). With `lat_l2_cycles` it partitions `mem_lat_cycles`
    /// exactly: `mem_lat_cycles == lat_l1 + lat_l2`.
    pub lat_l1_cycles: u64,
    /// L2-service portion of `mem_lat_cycles` (L2 hits and L2-to-L1
    /// transfers of completed prefetches).
    pub lat_l2_cycles: u64,
}

impl MemStats {
    /// Counter-wise difference (`self - earlier`).
    pub fn delta_since(&self, earlier: &MemStats) -> MemStats {
        MemStats {
            l1_hits: self.l1_hits - earlier.l1_hits,
            l2_hits: self.l2_hits - earlier.l2_hits,
            prefetch_hits: self.prefetch_hits - earlier.prefetch_hits,
            demand_misses: self.demand_misses - earlier.demand_misses,
            line_accesses: self.line_accesses - earlier.line_accesses,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            cpu_cycles: self.cpu_cycles - earlier.cpu_cycles,
            stall_cycles: self.stall_cycles - earlier.stall_cycles,
            mem_lat_cycles: self.mem_lat_cycles - earlier.mem_lat_cycles,
            stall_bw_cycles: self.stall_bw_cycles - earlier.stall_bw_cycles,
            stall_dram_cycles: self.stall_dram_cycles - earlier.stall_dram_cycles,
            stall_device_cycles: self.stall_device_cycles - earlier.stall_device_cycles,
            stall_retry_cycles: self.stall_retry_cycles - earlier.stall_retry_cycles,
            lat_l1_cycles: self.lat_l1_cycles - earlier.lat_l1_cycles,
            lat_l2_cycles: self.lat_l2_cycles - earlier.lat_l2_cycles,
        }
    }

    /// Counter-wise accumulation (`self += other`); used to aggregate
    /// per-core statistics into a hierarchy-wide view.
    pub fn accumulate(&mut self, other: &MemStats) {
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.prefetch_hits += other.prefetch_hits;
        self.demand_misses += other.demand_misses;
        self.line_accesses += other.line_accesses;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.cpu_cycles += other.cpu_cycles;
        self.stall_cycles += other.stall_cycles;
        self.mem_lat_cycles += other.mem_lat_cycles;
        self.stall_bw_cycles += other.stall_bw_cycles;
        self.stall_dram_cycles += other.stall_dram_cycles;
        self.stall_device_cycles += other.stall_device_cycles;
        self.stall_retry_cycles += other.stall_retry_cycles;
        self.lat_l1_cycles += other.lat_l1_cycles;
        self.lat_l2_cycles += other.lat_l2_cycles;
    }

    /// Cycles this core's clock advanced: compute + stalls + cache-hit
    /// service latency.
    pub fn busy_cycles(&self) -> u64 {
        self.cpu_cycles + self.stall_cycles + self.mem_lat_cycles
    }

    /// Check the sub-bucket partitions: the four stall buckets must sum
    /// exactly to `stall_cycles` and the two latency buckets to
    /// `mem_lat_cycles`. Every charge site in the hierarchy maintains
    /// this; the top-down accounting asserts it.
    pub fn buckets_reconcile(&self) -> bool {
        self.stall_bw_cycles
            + self.stall_dram_cycles
            + self.stall_device_cycles
            + self.stall_retry_cycles
            == self.stall_cycles
            && self.lat_l1_cycles + self.lat_l2_cycles == self.mem_lat_cycles
    }

    /// Bytes of cache-line traffic that actually crossed the memory bus
    /// (demand misses + prefetch fills), assuming `line_size`-byte lines.
    pub fn dram_traffic_bytes(&self, line_size: usize) -> u64 {
        (self.demand_misses + self.prefetch_hits) * line_size as u64
    }

    /// Fraction of line accesses that hit in L1.
    pub fn l1_hit_rate(&self) -> f64 {
        if self.line_accesses == 0 {
            return 0.0;
        }
        self.l1_hits as f64 / self.line_accesses as f64
    }

    /// This window's top-down breakdown (DESIGN.md §12): maps the stat
    /// buckets onto the Level-1/Level-2 taxonomy. `idle_cycles` is the
    /// barrier wait attributed by the caller (0 outside a parallel
    /// region); `elapsed == busy_cycles() + idle_cycles` by construction,
    /// so the result always satisfies [`fabric_obs::TopDownCore::verify`]
    /// when the sub-bucket partitions hold ([`Self::buckets_reconcile`]).
    pub fn topdown(&self, core: usize, idle_cycles: u64) -> fabric_obs::TopDownCore {
        fabric_obs::TopDownCore {
            core,
            retired: self.cpu_cycles,
            mem_l1: self.lat_l1_cycles,
            mem_l2: self.lat_l2_cycles,
            mem_dram: self.stall_dram_cycles,
            mem_rm_device: self.stall_device_cycles,
            bw_wait: self.stall_bw_cycles,
            fault_retry: self.stall_retry_cycles,
            idle: idle_cycles,
            elapsed: self.busy_cycles() + idle_cycles,
        }
    }

    /// Record every counter into a [`fabric_obs::MetricsRegistry`] under
    /// `<prefix>.<counter>` — the single serialization path for stats
    /// (replaces hand-rolled formatters; see fabric-lint `raw-stats-print`).
    pub fn record_into(&self, registry: &mut fabric_obs::MetricsRegistry, prefix: &str) {
        for (name, value) in [
            ("l1_hits", self.l1_hits),
            ("l2_hits", self.l2_hits),
            ("prefetch_hits", self.prefetch_hits),
            ("demand_misses", self.demand_misses),
            ("line_accesses", self.line_accesses),
            ("bytes_read", self.bytes_read),
            ("bytes_written", self.bytes_written),
            ("cpu_cycles", self.cpu_cycles),
            ("stall_cycles", self.stall_cycles),
            ("mem_lat_cycles", self.mem_lat_cycles),
            ("stall_bw_cycles", self.stall_bw_cycles),
            ("stall_dram_cycles", self.stall_dram_cycles),
            ("stall_device_cycles", self.stall_device_cycles),
            ("stall_retry_cycles", self.stall_retry_cycles),
            ("lat_l1_cycles", self.lat_l1_cycles),
            ("lat_l2_cycles", self.lat_l2_cycles),
        ] {
            registry.counter_add(&format!("{prefix}.{name}"), value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_counterwise() {
        let a = MemStats {
            l1_hits: 10,
            demand_misses: 4,
            line_accesses: 14,
            ..Default::default()
        };
        let b = MemStats {
            l1_hits: 25,
            demand_misses: 9,
            line_accesses: 34,
            ..Default::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.l1_hits, 15);
        assert_eq!(d.demand_misses, 5);
        assert_eq!(d.line_accesses, 20);
    }

    #[test]
    fn traffic_and_hit_rate() {
        let s = MemStats {
            l1_hits: 75,
            demand_misses: 20,
            prefetch_hits: 5,
            line_accesses: 100,
            ..Default::default()
        };
        assert_eq!(s.dram_traffic_bytes(64), 25 * 64);
        assert!((s.l1_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(MemStats::default().l1_hit_rate(), 0.0);
    }
}
