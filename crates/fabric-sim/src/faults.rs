//! Deterministic, seeded fault injection for the simulated hardware.
//!
//! The paper's premise is a hardware layer that is *transparent* to
//! software; transparency has to survive the hardware misbehaving. This
//! module is the single source of truth for *when* a simulated component
//! misbehaves: every injection site draws its faults from a [`FaultPlan`],
//! and every draw is a pure function of `(seed, site, counter)` — so a
//! chaos run is bit-replayable from its seed alone, regardless of how the
//! consuming code interleaves sites.
//!
//! What can be injected (consumers detect and recover, see DESIGN.md §9):
//!
//! * **RM engine stalls** — a produced batch becomes ready late
//!   ([`FaultPlan::rm_engine_stall`]; charged straight to the cycle clock,
//!   recoverable by waiting);
//! * **RM delivery timeouts** — a delivery attempt elapses with no data
//!   ([`FaultPlan::rm_timeout`]; consumer retries with backoff, then
//!   surfaces `FabricError::DeviceTimeout`);
//! * **bit flips in delivered batches** ([`FaultPlan::rm_corrupt`];
//!   detected by the CRC-32 frame, redelivered, then
//!   `FabricError::CorruptBatch`);
//! * **transient flash read failures** ([`FaultPlan::flash_read_failed`])
//!   and **latent sector errors** ([`FaultPlan::flash_latent`], persistent
//!   per page — retries cannot fix them);
//! * **host-link corruption** ([`FaultPlan::link_corrupted`]; detected by
//!   the shipment CRC, re-shipped, then `FabricError::CorruptBatch`).
//!
//! The *write path* (DESIGN.md §14) has its own sites:
//!
//! * **flash program failures** ([`FaultPlan::flash_write_failed`];
//!   retried with backoff, then `FabricError::FlashWriteError`);
//! * **power cuts** ([`FaultPlan::write_crash`]; either drawn per durable
//!   write from `wal_crash_prob` or *scheduled* at the `crash_at_write`-th
//!   write for systematic crash matrices — the in-flight write survives
//!   only as the prefix picked by [`FaultPlan::crash_keep`], and the
//!   device surfaces `FabricError::PowerLoss`);
//! * **silent torn page writes** ([`FaultPlan::torn_write`]; a checkpoint
//!   page persists only partially with no error at write time — detected
//!   later by the per-page CRC at read).
//!
//! Recovery budgets (retries, backoff, circuit-breaker thresholds) live in
//! [`RecoveryPolicy`]; per-device health in [`CircuitBreaker`].

use crate::Cycles;
use fabric_types::rng::SplitMix64;

/// Per-site salts: distinct streams per fault kind so enabling one fault
/// class never perturbs the draws of another.
const SALT_RM_STALL: u64 = 0x524D_5354_414C_4C01;
const SALT_RM_TIMEOUT: u64 = 0x524D_5449_4D45_4F02;
const SALT_RM_CORRUPT: u64 = 0x524D_434F_5252_5003;
const SALT_FLASH_TRANSIENT: u64 = 0x464C_5452_414E_5304;
const SALT_FLASH_LATENT: u64 = 0x464C_4C41_5445_4E05;
const SALT_LINK: u64 = 0x4C49_4E4B_434F_5206;
const SALT_FLASH_WRITE: u64 = 0x464C_5752_4954_4507;
const SALT_WAL_CRASH: u64 = 0x5741_4C43_5241_5308;
const SALT_TORN: u64 = 0x544F_524E_5747_5409;

/// Number of counter-backed sites (latent errors are stateless per page).
const N_SITES: usize = 8;
const SITE_RM_STALL: usize = 0;
const SITE_RM_TIMEOUT: usize = 1;
const SITE_RM_CORRUPT: usize = 2;
const SITE_FLASH_TRANSIENT: usize = 3;
const SITE_LINK: usize = 4;
const SITE_FLASH_WRITE: usize = 5;
const SITE_WAL_CRASH: usize = 6;
const SITE_TORN: usize = 7;

/// Probabilities of each injectable fault (all default to 0 = fault-free).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultConfig {
    /// Seed of every fault stream; the replay handle for a chaos run.
    pub seed: u64,
    /// Probability a produced RM batch is delayed in the engine
    /// (recoverable slowness, charged to `ready_at`).
    pub rm_stall_prob: f64,
    /// Extra engine latency charged when a stall hits (simulated ns).
    pub rm_stall_ns: f64,
    /// Probability an RM delivery attempt times out with no data.
    pub rm_timeout_prob: f64,
    /// Probability a delivered RM batch arrives with a flipped bit.
    pub rm_corrupt_prob: f64,
    /// Probability a flash page read fails transiently (per attempt).
    pub flash_transient_prob: f64,
    /// Probability a flash page carries a latent sector error
    /// (persistent per page: every read of that page fails).
    pub flash_latent_prob: f64,
    /// Probability a host-link shipment arrives corrupted (per attempt).
    pub link_corrupt_prob: f64,
    /// Probability a flash page program attempt fails (per attempt).
    pub flash_write_prob: f64,
    /// Probability a durable write (WAL append or checkpoint page) is
    /// interrupted by a power cut.
    pub wal_crash_prob: f64,
    /// Probability a checkpoint page write silently persists only a
    /// prefix of its bytes (no error at write time; caught by CRC).
    pub torn_write_prob: f64,
    /// Scheduled power cut at exactly the n-th durable write (1-based;
    /// 0 disables). Counts every [`FaultPlan::write_crash`] ask across
    /// the device, so a crash matrix can step a run through each write.
    pub crash_at_write: u64,
}

impl FaultConfig {
    /// A fault-free plan (all probabilities zero).
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            rm_stall_prob: 0.0,
            rm_stall_ns: 2_000.0,
            rm_timeout_prob: 0.0,
            rm_corrupt_prob: 0.0,
            flash_transient_prob: 0.0,
            flash_latent_prob: 0.0,
            link_corrupt_prob: 0.0,
            flash_write_prob: 0.0,
            wal_crash_prob: 0.0,
            torn_write_prob: 0.0,
            crash_at_write: 0,
        }
    }

    /// `true` when this configuration can never inject anything: every
    /// probability is zero and no scheduled power cut is armed. Consumers
    /// use this to keep fault-visible behaviour (degradation, breaker
    /// state) identical whether or not they hold caches — a memoized
    /// result must not short-circuit a device that is configured to fail.
    pub fn is_quiet(&self) -> bool {
        self.rm_stall_prob == 0.0
            && self.rm_timeout_prob == 0.0
            && self.rm_corrupt_prob == 0.0
            && self.flash_transient_prob == 0.0
            && self.flash_latent_prob == 0.0
            && self.link_corrupt_prob == 0.0
            && self.flash_write_prob == 0.0
            && self.wal_crash_prob == 0.0
            && self.torn_write_prob == 0.0
            && self.crash_at_write == 0
    }

    /// Every *transient* fault at the same `rate`; latent errors and
    /// power cuts stay off (they are unrecoverable in place and deserve
    /// an explicit opt-in).
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultConfig {
            rm_stall_prob: rate,
            rm_timeout_prob: rate,
            rm_corrupt_prob: rate,
            flash_transient_prob: rate,
            link_corrupt_prob: rate,
            flash_write_prob: rate,
            ..FaultConfig::quiet(seed)
        }
    }

    /// This configuration with latent sector errors at `rate`.
    pub fn with_latent(self, rate: f64) -> Self {
        FaultConfig {
            flash_latent_prob: rate,
            ..self
        }
    }

    /// This configuration with a power cut scheduled at the `n`-th
    /// durable write (1-based; 0 disables).
    pub fn with_crash_at(self, n: u64) -> Self {
        FaultConfig {
            crash_at_write: n,
            ..self
        }
    }
}

/// Detection-and-recovery budgets shared by every consumer.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RecoveryPolicy {
    /// Redelivery attempts after the first failure before surfacing an
    /// error to the caller.
    pub max_retries: u32,
    /// Base backoff charged to the simulated clock per retry; doubles
    /// each attempt (capped at 2^8 × base).
    pub backoff_ns: f64,
    /// Consecutive operation-level failures that open a device's circuit
    /// breaker.
    pub breaker_threshold: u32,
    /// Operations the open breaker fails fast before letting one trial
    /// through (half-open probe).
    pub breaker_cooldown: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            backoff_ns: 250.0,
            breaker_threshold: 3,
            breaker_cooldown: 8,
        }
    }
}

impl RecoveryPolicy {
    /// Backoff for retry number `attempt` (1-based) in cycles, exponential
    /// with a cap, on a clock of `cpu_ghz` cycles per nanosecond.
    pub fn backoff_cycles(&self, attempt: u32, cpu_ghz: f64) -> Cycles {
        let base = (self.backoff_ns * cpu_ghz).round().max(1.0) as Cycles;
        base << attempt.saturating_sub(1).min(8)
    }
}

/// Counts of faults actually injected (not merely probable).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultStats {
    pub rm_stalls: u64,
    pub rm_timeouts: u64,
    pub rm_corruptions: u64,
    pub flash_transients: u64,
    pub flash_latents: u64,
    pub link_corruptions: u64,
    pub flash_write_errors: u64,
    pub wal_crashes: u64,
    pub torn_writes: u64,
}

impl FaultStats {
    /// Total injected faults across every site.
    pub fn total(&self) -> u64 {
        self.rm_stalls
            + self.rm_timeouts
            + self.rm_corruptions
            + self.flash_transients
            + self.flash_latents
            + self.link_corruptions
            + self.flash_write_errors
            + self.wal_crashes
            + self.torn_writes
    }
}

/// A seeded, deterministic fault plan. Clone-free by design: each device
/// holds (or borrows) exactly one plan so counters advance exactly once
/// per injection opportunity.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    counters: [u64; N_SITES],
    stats: FaultStats,
}

impl FaultPlan {
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan {
            cfg,
            counters: [0; N_SITES],
            stats: FaultStats::default(),
        }
    }

    /// A plan that never injects anything.
    pub fn quiet() -> Self {
        FaultPlan::new(FaultConfig::quiet(0))
    }

    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// One uniform draw in `[0, 1)` for `(seed, salt, n)`.
    fn unit(seed: u64, salt: u64, n: u64) -> f64 {
        let mut sm = SplitMix64::new(seed ^ salt ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        (sm.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Advance `site`'s counter and decide with probability `prob`.
    fn decide(&mut self, site: usize, salt: u64, prob: f64) -> bool {
        let n = self.counters[site];
        self.counters[site] += 1;
        prob > 0.0 && Self::unit(self.cfg.seed, salt, n) < prob
    }

    /// An auxiliary draw tied to the *current* count of `site` (used to
    /// pick corruption positions without disturbing the decision stream).
    fn aux(&self, site: usize, salt: u64) -> u64 {
        let n = self.counters[site];
        let mut sm = SplitMix64::new(self.cfg.seed ^ salt.rotate_left(17) ^ n);
        sm.next_u64()
    }

    /// Engine-side stall of a produced batch: `Some(extra_ns)` to add to
    /// its readiness time.
    pub fn rm_engine_stall(&mut self) -> Option<f64> {
        if self.decide(SITE_RM_STALL, SALT_RM_STALL, self.cfg.rm_stall_prob) {
            self.stats.rm_stalls += 1;
            Some(self.cfg.rm_stall_ns)
        } else {
            None
        }
    }

    /// Does this RM delivery attempt time out (no data arrives)?
    pub fn rm_timeout(&mut self) -> bool {
        let hit = self.decide(SITE_RM_TIMEOUT, SALT_RM_TIMEOUT, self.cfg.rm_timeout_prob);
        if hit {
            self.stats.rm_timeouts += 1;
        }
        hit
    }

    /// Bit flip in a delivered batch of `len` bytes: `Some((byte, mask))`
    /// to xor into the delivered copy.
    pub fn rm_corrupt(&mut self, len: usize) -> Option<(usize, u8)> {
        if len == 0 || !self.decide(SITE_RM_CORRUPT, SALT_RM_CORRUPT, self.cfg.rm_corrupt_prob) {
            return None;
        }
        self.stats.rm_corruptions += 1;
        let raw = self.aux(SITE_RM_CORRUPT, SALT_RM_CORRUPT);
        let byte = (raw % len as u64) as usize;
        let mask = 1u8 << ((raw >> 32) % 8);
        Some((byte, mask))
    }

    /// Does this read attempt of `page` fail? Latent sector errors fail
    /// every attempt; transient failures are drawn per attempt.
    pub fn flash_read_failed(&mut self, page: u64) -> bool {
        if self.flash_latent(page) {
            self.stats.flash_latents += 1;
            return true;
        }
        let hit = self.decide(
            SITE_FLASH_TRANSIENT,
            SALT_FLASH_TRANSIENT,
            self.cfg.flash_transient_prob,
        );
        if hit {
            self.stats.flash_transients += 1;
        }
        hit
    }

    /// Persistent latent sector error on `page`: a pure function of
    /// `(seed, page)`, so retries deterministically keep failing.
    pub fn flash_latent(&self, page: u64) -> bool {
        self.cfg.flash_latent_prob > 0.0
            && Self::unit(self.cfg.seed, SALT_FLASH_LATENT, page) < self.cfg.flash_latent_prob
    }

    /// Does this host-link shipment arrive corrupted?
    pub fn link_corrupted(&mut self) -> bool {
        let hit = self.decide(SITE_LINK, SALT_LINK, self.cfg.link_corrupt_prob);
        if hit {
            self.stats.link_corruptions += 1;
        }
        hit
    }

    /// Does this flash page program attempt fail? Drawn per attempt, so
    /// a retry with backoff can succeed.
    pub fn flash_write_failed(&mut self) -> bool {
        let hit = self.decide(
            SITE_FLASH_WRITE,
            SALT_FLASH_WRITE,
            self.cfg.flash_write_prob,
        );
        if hit {
            self.stats.flash_write_errors += 1;
        }
        hit
    }

    /// Does the power cut out during this durable write? Every durable
    /// write on the device (WAL append or checkpoint page) must ask
    /// exactly once, so `crash_at_write = n` deterministically cuts the
    /// n-th write regardless of which kind it is. A hit means volatile
    /// state is lost and the in-flight write survives only as the prefix
    /// picked by [`FaultPlan::crash_keep`].
    pub fn write_crash(&mut self) -> bool {
        let n = self.counters[SITE_WAL_CRASH];
        self.counters[SITE_WAL_CRASH] += 1;
        let scheduled = self.cfg.crash_at_write > 0 && n + 1 == self.cfg.crash_at_write;
        let drawn = self.cfg.wal_crash_prob > 0.0
            && Self::unit(self.cfg.seed, SALT_WAL_CRASH, n) < self.cfg.wal_crash_prob;
        let hit = scheduled || drawn;
        if hit {
            self.stats.wal_crashes += 1;
        }
        hit
    }

    /// How many of the `len` in-flight bytes made it to the medium before
    /// the cut: a deterministic draw in `[0, len]` tied to the crash that
    /// just fired. `len` itself is possible — the write was durable but
    /// the caller never saw the acknowledgement (commit ambiguity).
    pub fn crash_keep(&self, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        (self.aux(SITE_WAL_CRASH, SALT_WAL_CRASH) % (len as u64 + 1)) as usize
    }

    /// Does this page write silently tear? `Some(keep)` with
    /// `0 < keep < len` means only the first `keep` bytes persist and the
    /// device reports success anyway — the lie a CRC check must catch.
    pub fn torn_write(&mut self, len: usize) -> Option<usize> {
        let hit = self.decide(SITE_TORN, SALT_TORN, self.cfg.torn_write_prob);
        if !hit || len < 2 {
            return None;
        }
        self.stats.torn_writes += 1;
        let keep = 1 + (self.aux(SITE_TORN, SALT_TORN) % (len as u64 - 1)) as usize;
        Some(keep)
    }
}

/// Breaker state, for introspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Operations flow through; failures are being counted.
    Closed,
    /// Failing fast: `skips_left` more operations are rejected unprobed.
    Open { skips_left: u32 },
    /// The cooldown elapsed; the next operation is a probe.
    HalfOpen,
}

/// Consecutive-failure circuit breaker guarding one device.
///
/// After `breaker_threshold` consecutive failures the breaker *opens*:
/// the next `breaker_cooldown` operations fail fast without touching the
/// device (no retry storms against dead hardware). It then goes
/// *half-open*, letting a single probe through; success closes it,
/// failure re-opens it for another cooldown.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: u32,
    consecutive_failures: u32,
    skips_left: u32,
    open: bool,
    /// Times the breaker tripped open.
    pub trips: u64,
    /// Operations rejected while open.
    pub rejections: u64,
}

impl CircuitBreaker {
    pub fn new(policy: &RecoveryPolicy) -> Self {
        CircuitBreaker {
            threshold: policy.breaker_threshold.max(1),
            cooldown: policy.breaker_cooldown,
            consecutive_failures: 0,
            skips_left: 0,
            open: false,
            trips: 0,
            rejections: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        if !self.open {
            BreakerState::Closed
        } else if self.skips_left > 0 {
            BreakerState::Open {
                skips_left: self.skips_left,
            }
        } else {
            BreakerState::HalfOpen
        }
    }

    /// May the next operation touch the device? `false` means fail fast.
    pub fn allow(&mut self) -> bool {
        if !self.open {
            return true;
        }
        if self.skips_left > 0 {
            self.skips_left -= 1;
            self.rejections += 1;
            false
        } else {
            // Half-open: admit one probe.
            true
        }
    }

    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.open = false;
        self.skips_left = 0;
    }

    pub fn record_failure(&mut self) {
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.threshold {
            if !self.open {
                self.trips += 1;
            }
            self.open = true;
            self.skips_left = self.cooldown;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = FaultPlan::new(FaultConfig::uniform(42, 0.3));
        let mut b = FaultPlan::new(FaultConfig::uniform(42, 0.3));
        for _ in 0..500 {
            assert_eq!(a.rm_timeout(), b.rm_timeout());
            assert_eq!(a.rm_corrupt(64), b.rm_corrupt(64));
            assert_eq!(a.flash_read_failed(7), b.flash_read_failed(7));
            assert_eq!(a.link_corrupted(), b.link_corrupted());
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().total() > 0);
    }

    #[test]
    fn sites_are_independent_streams() {
        // Drawing 100 extra timeouts must not change the corruption stream.
        let mut a = FaultPlan::new(FaultConfig::uniform(9, 0.5));
        let mut b = FaultPlan::new(FaultConfig::uniform(9, 0.5));
        for _ in 0..100 {
            let _ignored = b.rm_timeout();
        }
        for _ in 0..50 {
            assert_eq!(a.rm_corrupt(1024), b.rm_corrupt(1024));
        }
    }

    #[test]
    fn rates_track_probabilities() {
        let mut p = FaultPlan::new(FaultConfig::uniform(3, 0.25));
        let hits = (0..10_000).filter(|_| p.rm_timeout()).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        let mut quiet = FaultPlan::quiet();
        assert!(!(0..1000).any(|_| quiet.rm_timeout()));
        assert_eq!(quiet.stats().total(), 0);
    }

    #[test]
    fn latent_errors_are_persistent_per_page() {
        let p = FaultPlan::new(FaultConfig::quiet(11).with_latent(0.05));
        let bad: Vec<u64> = (0..2000).filter(|&pg| p.flash_latent(pg)).collect();
        assert!(
            (40..250).contains(&bad.len()),
            "expected ~5% latent pages, got {}",
            bad.len()
        );
        // Persistence: the verdict never changes across re-asks.
        for &pg in bad.iter().take(10) {
            for _ in 0..5 {
                assert!(p.flash_latent(pg));
            }
        }
    }

    #[test]
    fn corruption_targets_are_in_bounds() {
        let mut p = FaultPlan::new(FaultConfig::uniform(5, 1.0));
        for len in [1usize, 7, 64, 4096] {
            for _ in 0..100 {
                let (byte, mask) = p.rm_corrupt(len).expect("prob 1.0 always corrupts");
                assert!(byte < len);
                assert_eq!(mask.count_ones(), 1);
            }
        }
        assert!(p.rm_corrupt(0).is_none(), "empty batches cannot corrupt");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let pol = RecoveryPolicy::default();
        let b1 = pol.backoff_cycles(1, 1.2);
        let b2 = pol.backoff_cycles(2, 1.2);
        let b3 = pol.backoff_cycles(3, 1.2);
        assert_eq!(b2, b1 * 2);
        assert_eq!(b3, b1 * 4);
        assert_eq!(pol.backoff_cycles(40, 1.2), b1 << 8); // capped
        assert!(b1 > 0);
    }

    #[test]
    fn breaker_opens_after_threshold_and_half_opens() {
        let pol = RecoveryPolicy {
            breaker_threshold: 3,
            breaker_cooldown: 2,
            ..RecoveryPolicy::default()
        };
        let mut cb = CircuitBreaker::new(&pol);
        assert!(cb.allow());
        cb.record_failure();
        cb.record_failure();
        assert_eq!(cb.state(), BreakerState::Closed);
        cb.record_failure(); // third: trips
        assert_eq!(cb.trips, 1);
        assert!(!cb.allow()); // cooldown 1
        assert!(!cb.allow()); // cooldown 2
        assert_eq!(cb.rejections, 2);
        assert_eq!(cb.state(), BreakerState::HalfOpen);
        assert!(cb.allow(), "half-open admits a probe");
        cb.record_failure(); // probe fails: re-open without a new trip count
        assert!(!cb.allow());
        assert_eq!(cb.trips, 1, "re-open of an open breaker is not a new trip");
        // Let cooldown drain, probe succeeds, breaker closes.
        assert!(!cb.allow());
        assert!(cb.allow());
        cb.record_success();
        assert_eq!(cb.state(), BreakerState::Closed);
        assert!(cb.allow());
    }

    #[test]
    fn uniform_config_keeps_latent_off() {
        let c = FaultConfig::uniform(1, 0.1);
        assert_eq!(c.flash_latent_prob, 0.0);
        assert_eq!(c.with_latent(0.01).flash_latent_prob, 0.01);
    }

    #[test]
    fn uniform_config_keeps_power_cuts_off() {
        let c = FaultConfig::uniform(1, 0.1);
        assert_eq!(c.flash_write_prob, 0.1);
        assert_eq!(c.wal_crash_prob, 0.0);
        assert_eq!(c.torn_write_prob, 0.0);
        assert_eq!(c.crash_at_write, 0);
        assert_eq!(c.with_crash_at(7).crash_at_write, 7);
    }

    #[test]
    fn write_sites_replay_bit_identically_from_the_seed() {
        let cfg = FaultConfig {
            wal_crash_prob: 0.2,
            torn_write_prob: 0.3,
            ..FaultConfig::uniform(77, 0.3)
        };
        let mut a = FaultPlan::new(cfg);
        let mut b = FaultPlan::new(cfg);
        for _ in 0..500 {
            assert_eq!(a.flash_write_failed(), b.flash_write_failed());
            let (ca, cb) = (a.write_crash(), b.write_crash());
            assert_eq!(ca, cb);
            if ca {
                assert_eq!(a.crash_keep(4096), b.crash_keep(4096));
            }
            assert_eq!(a.torn_write(4096), b.torn_write(4096));
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().wal_crashes > 0);
        assert!(a.stats().torn_writes > 0);
        assert!(a.stats().flash_write_errors > 0);
    }

    #[test]
    fn write_sites_do_not_perturb_read_streams() {
        let cfg = FaultConfig {
            wal_crash_prob: 0.5,
            torn_write_prob: 0.5,
            ..FaultConfig::uniform(13, 0.5)
        };
        let mut a = FaultPlan::new(cfg);
        let mut b = FaultPlan::new(cfg);
        for _ in 0..100 {
            let _ignored = b.flash_write_failed();
            let _ignored = b.write_crash();
            let _ignored = b.torn_write(512);
        }
        for _ in 0..50 {
            assert_eq!(a.rm_corrupt(1024), b.rm_corrupt(1024));
            assert_eq!(a.flash_read_failed(3), b.flash_read_failed(3));
        }
    }

    #[test]
    fn scheduled_crash_fires_at_exactly_the_nth_write() {
        for n in [1u64, 2, 5, 17] {
            let mut p = FaultPlan::new(FaultConfig::quiet(0).with_crash_at(n));
            for i in 1..=30u64 {
                let crashed = p.write_crash();
                assert_eq!(crashed, i == n, "crash_at={n} write #{i}");
            }
            assert_eq!(p.stats().wal_crashes, 1);
        }
        // 0 disables scheduling entirely.
        let mut quiet = FaultPlan::quiet();
        assert!(!(0..100).any(|_| quiet.write_crash()));
    }

    #[test]
    fn crash_keep_and_tear_points_are_in_bounds() {
        let cfg = FaultConfig {
            torn_write_prob: 1.0,
            ..FaultConfig::quiet(21)
        };
        let mut p = FaultPlan::new(cfg);
        let mut seen_full = false;
        let mut seen_partial = false;
        for _ in 0..200 {
            let _advance = p.write_crash();
            let keep = p.crash_keep(64);
            assert!(keep <= 64);
            seen_full |= keep == 64;
            seen_partial |= keep < 64;
            let torn = p.torn_write(64).expect("prob 1.0 always tears");
            assert!(torn >= 1 && torn < 64, "tear keeps a strict prefix");
        }
        assert!(seen_full, "keep == len (durable-but-unacked) must occur");
        assert!(seen_partial, "partial prefixes must occur");
        assert_eq!(p.crash_keep(0), 0);
        assert!(p.torn_write(1).is_none(), "1-byte writes cannot tear");
    }
}
