//! The flash array: channels × dies with page-granular reads.
//!
//! Pages are striped across channels (page `i` lives on channel
//! `i % channels`), so sequential table scans exploit all channels — the
//! "internal parallelism of the storage device" the paper's RS design
//! leans on.

use crate::config::RsConfig;
use fabric_sim::Cycles;

/// Scheduling model of the flash array. Each (channel, die) pair is a
/// resource with a `free_at` time; a page read occupies its die for the
/// array-read time and its channel for the transfer time.
#[derive(Debug, Clone)]
pub struct FlashArray {
    channels: usize,
    dies: usize,
    read_cycles: Cycles,
    write_cycles: Cycles,
    xfer_cycles: Cycles,
    die_free: Vec<Cycles>,
    channel_free: Vec<Cycles>,
    page_reads: u64,
    failed_reads: u64,
    page_writes: u64,
    failed_writes: u64,
}

impl FlashArray {
    /// `ns_to_cycles` converts device nanoseconds into the simulation's
    /// global cycle clock.
    pub fn new(cfg: &RsConfig, ns_to_cycles: impl Fn(f64) -> Cycles) -> Self {
        FlashArray {
            channels: cfg.channels,
            dies: cfg.dies_per_channel,
            read_cycles: ns_to_cycles(cfg.read_page_ns),
            write_cycles: ns_to_cycles(cfg.write_page_ns),
            xfer_cycles: ns_to_cycles(cfg.channel_xfer_ns),
            die_free: vec![0; cfg.channels * cfg.dies_per_channel],
            channel_free: vec![0; cfg.channels],
            page_reads: 0,
            failed_reads: 0,
            page_writes: 0,
            failed_writes: 0,
        }
    }

    #[inline]
    fn locate(&self, page: u64) -> (usize, usize) {
        let channel = (page % self.channels as u64) as usize;
        let die = ((page / self.channels as u64) % self.dies as u64) as usize;
        (channel, die)
    }

    /// Schedule a page read issued at `now`; returns the time the page is
    /// in the controller's buffer.
    pub fn read_page(&mut self, page: u64, now: Cycles) -> Cycles {
        let (channel, die) = self.locate(page);
        let die_idx = channel * self.dies + die;
        // Array read occupies the die.
        let array_start = now.max(self.die_free[die_idx]);
        let array_done = array_start + self.read_cycles;
        self.die_free[die_idx] = array_done;
        // Transfer occupies the channel after the array read.
        let xfer_start = array_done.max(self.channel_free[channel]);
        let done = xfer_start + self.xfer_cycles;
        self.channel_free[channel] = done;
        self.page_reads += 1;
        done
    }

    /// Schedule a page program issued at `now`; returns the time the
    /// page is durable on the die. The mirror of [`Self::read_page`] with
    /// the resource order reversed: the channel moves the data into the
    /// plane register first, then the (much slower) array program
    /// occupies the die.
    pub fn write_page(&mut self, page: u64, now: Cycles) -> Cycles {
        let (channel, die) = self.locate(page);
        let die_idx = channel * self.dies + die;
        let xfer_start = now.max(self.channel_free[channel]);
        let xfer_done = xfer_start + self.xfer_cycles;
        self.channel_free[channel] = xfer_done;
        let program_start = xfer_done.max(self.die_free[die_idx]);
        let done = program_start + self.write_cycles;
        self.die_free[die_idx] = done;
        self.page_writes += 1;
        done
    }

    /// Pages read so far.
    pub fn page_reads(&self) -> u64 {
        self.page_reads
    }

    /// Pages programmed so far.
    pub fn page_writes(&self) -> u64 {
        self.page_writes
    }

    /// Record that the program just scheduled failed (injected write
    /// fault). Like failed reads, it still occupied its resources.
    pub fn note_failed_write(&mut self) {
        self.failed_writes += 1;
    }

    /// Programs that failed.
    pub fn failed_writes(&self) -> u64 {
        self.failed_writes
    }

    /// Record that the read just scheduled came back unreadable (ECC
    /// failure injected by a fault plan). The read still occupied its die
    /// and channel — failed work is not free work.
    pub fn note_failed_read(&mut self) {
        self.failed_reads += 1;
    }

    /// Reads that came back unreadable.
    pub fn failed_reads(&self) -> u64 {
        self.failed_reads
    }

    /// Clear queue state between experiments.
    pub fn reset(&mut self) {
        self.die_free.fill(0);
        self.channel_free.fill(0);
        self.page_reads = 0;
        self.failed_reads = 0;
        self.page_writes = 0;
        self.failed_writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::SimConfig;

    fn array() -> (FlashArray, SimConfig) {
        let sim = SimConfig::zynq_a53();
        let cfg = RsConfig::smartssd();
        let sim2 = sim.clone();
        (FlashArray::new(&cfg, move |ns| sim2.ns_to_cycles(ns)), sim)
    }

    #[test]
    fn pages_stripe_across_channels() {
        let (mut f, sim) = array();
        // 8 consecutive pages on 8 channels issued together finish in one
        // read + one transfer.
        let mut done = 0;
        for p in 0..8u64 {
            done = done.max(f.read_page(p, 0));
        }
        let expect = sim.ns_to_cycles(25_000.0) + sim.ns_to_cycles(3_300.0);
        assert_eq!(done, expect);
        assert_eq!(f.page_reads(), 8);
    }

    #[test]
    fn same_die_pages_serialize_on_the_array() {
        let (mut f, _) = array();
        // Pages 0 and 64 share channel 0, die 0 (8 channels x 8 dies).
        let d1 = f.read_page(0, 0);
        let d2 = f.read_page(64, 0);
        assert!(d2 >= d1 + 1);
    }

    #[test]
    fn die_interleaving_hides_array_time() {
        let (mut f, sim) = array();
        // Pages 0 and 8 share channel 0 but use different dies: their
        // array reads overlap; only the channel transfers serialize.
        let d1 = f.read_page(0, 0);
        let d2 = f.read_page(8, 0);
        assert_eq!(d1, sim.ns_to_cycles(25_000.0) + sim.ns_to_cycles(3_300.0));
        assert_eq!(d2, d1 + sim.ns_to_cycles(3_300.0));
    }

    #[test]
    fn sustained_scan_is_channel_bound() {
        let (mut f, sim) = array();
        let n = 64u64;
        let mut done = 0;
        for p in 0..n {
            done = done.max(f.read_page(p, 0));
        }
        // Steady state: each channel moves n/8 pages at xfer cadence once
        // the dies have filled the pipeline.
        let per_channel = n / 8;
        let lower = per_channel * sim.ns_to_cycles(3_300.0);
        assert!(done >= lower);
        let upper = sim.ns_to_cycles(25_000.0) * 2 + per_channel * sim.ns_to_cycles(3_300.0) * 2;
        assert!(done <= upper, "done={done} upper={upper}");
    }

    #[test]
    fn writes_pay_program_time_and_stripe_like_reads() {
        let (mut f, sim) = array();
        // One write: channel transfer, then the slow array program.
        let d = f.write_page(0, 0);
        assert_eq!(d, sim.ns_to_cycles(3_300.0) + sim.ns_to_cycles(200_000.0));
        assert!(d > f.read_page(1, 0), "programs are slower than reads");
        // 8 consecutive pages across 8 channels program in parallel.
        f.reset();
        let mut done = 0;
        for p in 0..8u64 {
            done = done.max(f.write_page(p, 0));
        }
        assert_eq!(
            done,
            sim.ns_to_cycles(3_300.0) + sim.ns_to_cycles(200_000.0)
        );
        assert_eq!(f.page_writes(), 8);
        // Same-die writes serialize on the array program.
        f.reset();
        let d1 = f.write_page(0, 0);
        let d2 = f.write_page(64, 0);
        assert!(d2 >= d1 + sim.ns_to_cycles(200_000.0));
        f.note_failed_write();
        assert_eq!(f.failed_writes(), 1);
    }

    #[test]
    fn reset_clears_queues() {
        let (mut f, _) = array();
        f.read_page(0, 0);
        f.reset();
        assert_eq!(f.page_reads(), 0);
        let d = f.read_page(0, 0);
        assert!(d > 0);
    }
}
