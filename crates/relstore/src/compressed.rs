//! Compressed column storage with on-the-fly reconstruction — the paper's
//! open question Q3: *"the storage \[fabric\] can convert from compressed
//! columns to rows in memory"*.
//!
//! Columns are dictionary encoded (a fabric-compatible codec, §III-D) and
//! stored on flash. The controller decompresses requested columns and
//! reconstructs row-major output while streaming, so the host receives
//! plain rows of the requested column group; the baseline ships the
//! compressed blobs and decodes on the host CPU.

use crate::config::RsConfig;
use crate::store::{RsStats, SsdDevice};
use compress::DictEncoded;
use fabric_sim::MemoryHierarchy;
use fabric_types::{ColumnId, ColumnType, FabricError, Result, Schema};

/// A table stored as dictionary-compressed columns on the device.
pub struct CompressedTable {
    schema: Schema,
    rows: usize,
    /// One encoded column per schema column, plus the flash footprint of
    /// each (pages).
    cols: Vec<(DictEncoded, crate::store::StoredTable)>,
}

impl CompressedTable {
    /// Compress and store `rows` of `schema`-shaped data given as one raw
    /// column-major buffer per column.
    pub fn store(
        dev: &mut SsdDevice,
        schema: Schema,
        rows: usize,
        columns: Vec<Vec<u8>>,
    ) -> Result<Self> {
        if columns.len() != schema.len() {
            return Err(FabricError::Storage("column count mismatch".into()));
        }
        let mut cols = Vec::with_capacity(columns.len());
        for ((_, def), raw) in schema.iter().zip(&columns) {
            let w = def.ty.width();
            if raw.len() != rows * w {
                return Err(FabricError::Storage(format!(
                    "column `{}` has {} bytes, expected {}",
                    def.name,
                    raw.len(),
                    rows * w
                )));
            }
            let enc = DictEncoded::encode(raw, w)?;
            // The compressed image (dict + codes) lives on flash; store it
            // as an opaque byte run (1-byte "rows" so page accounting is
            // byte-accurate).
            let image_len = enc.compressed_bytes();
            let stored = dev.store_rows(&vec![0u8; image_len.max(1)], 1)?;
            cols.push((enc, stored));
        }
        Ok(CompressedTable { schema, rows, cols })
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total compressed bytes on flash.
    pub fn compressed_bytes(&self) -> usize {
        self.cols.iter().map(|(e, _)| e.compressed_bytes()).sum()
    }

    /// Uncompressed size.
    pub fn original_bytes(&self) -> usize {
        self.cols.iter().map(|(e, _)| e.original_bytes()).sum()
    }

    /// Near-data path: the controller reads the compressed columns,
    /// decodes them, and ships reconstructed row-major tuples of the
    /// requested columns.
    pub fn fetch_rows_decompressed(
        &self,
        dev: &mut SsdDevice,
        mem: &mut MemoryHierarchy,
        cols: &[ColumnId],
    ) -> Result<(Vec<u8>, RsStats)> {
        let cfg = *dev.config();
        let start = mem.now();
        // Flash: only the compressed images of the touched columns.
        let mut pages = 0u64;
        for &c in cols {
            let stored = &self
                .cols
                .get(c)
                .ok_or(FabricError::ColumnIndexOutOfRange {
                    index: c,
                    len: self.cols.len(),
                })?
                .1;
            pages += stored.pages as u64;
        }
        // Controller decode: per value per requested column.
        let values = (self.rows * cols.len()) as f64;
        let ctrl_ns = values * cfg.ctrl_ns_per_value + self.rows as f64 * cfg.ctrl_ns_per_row;

        // Functional reconstruction.
        let mut out = Vec::new();
        for i in 0..self.rows {
            for &c in cols {
                out.extend_from_slice(self.cols[c].0.get(i));
            }
        }

        let done = timing(mem, &cfg, start, pages, ctrl_ns, out.len());
        mem.stall_until(done);
        Ok((
            out.clone(),
            RsStats {
                pages_read: pages,
                rows_scanned: self.rows as u64,
                rows_emitted: self.rows as u64,
                bytes_shipped: out.len() as u64,
                ..RsStats::default()
            },
        ))
    }

    /// Host path: ship the compressed images; the host CPU decodes and
    /// reconstructs (decode cost charged to the CPU).
    pub fn fetch_rows_host_decode(
        &self,
        dev: &mut SsdDevice,
        mem: &mut MemoryHierarchy,
        cols: &[ColumnId],
    ) -> Result<(Vec<u8>, RsStats)> {
        let cfg = *dev.config();
        let start = mem.now();
        let mut pages = 0u64;
        let mut shipped = 0u64;
        for &c in cols {
            let (enc, stored) = self.cols.get(c).ok_or(FabricError::ColumnIndexOutOfRange {
                index: c,
                len: self.cols.len(),
            })?;
            pages += stored.pages as u64;
            shipped += enc.compressed_bytes() as u64;
        }
        let done = timing(mem, &cfg, start, pages, 0.0, shipped as usize);
        mem.stall_until(done);

        // Host-side decode + reconstruction.
        let costs = mem.costs();
        let mut out = Vec::new();
        for i in 0..self.rows {
            for &c in cols {
                out.extend_from_slice(self.cols[c].0.get(i));
            }
        }
        mem.cpu(
            (self.rows * cols.len()) as u64 * (costs.vector_elem + costs.value_op)
                + self.rows as u64 * costs.reconstruct,
        );
        Ok((
            out.clone(),
            RsStats {
                pages_read: pages,
                rows_scanned: self.rows as u64,
                rows_emitted: self.rows as u64,
                bytes_shipped: shipped,
                ..RsStats::default()
            },
        ))
    }

    /// Column type helper.
    pub fn column_type(&self, c: ColumnId) -> Result<ColumnType> {
        Ok(self.schema.column(c)?.ty)
    }
}

/// Shared pipeline-timing helper: flash reads + controller work + link.
fn timing(
    mem: &MemoryHierarchy,
    cfg: &RsConfig,
    start: fabric_sim::Cycles,
    pages: u64,
    ctrl_ns: f64,
    ship_bytes: usize,
) -> fabric_sim::Cycles {
    let sim = mem.config();
    // Approximate flash time: channel-parallel page stream.
    let per_wave = cfg.channels as u64;
    let waves = pages.div_ceil(per_wave).max(1);
    let flash_done =
        start + sim.ns_to_cycles(cfg.read_page_ns) + waves * sim.ns_to_cycles(cfg.channel_xfer_ns);
    let ctrl_done = start + sim.ns_to_cycles(ctrl_ns.max(1.0));
    let link_done = start
        + sim.ns_to_cycles(cfg.link_base_ns)
        + sim.ns_to_cycles(ship_bytes.max(1) as f64 * cfg.link_ns_per_byte);
    flash_done.max(ctrl_done).max(link_done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::SimConfig;

    /// 10k rows, 2 columns: low-cardinality i32 and repetitive i64.
    fn setup() -> (MemoryHierarchy, SsdDevice, CompressedTable) {
        let mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let mut dev = SsdDevice::new(RsConfig::smartssd(), &mem);
        let rows = 10_000usize;
        let schema = Schema::from_pairs(&[("a", ColumnType::I32), ("b", ColumnType::I64)]);
        let col_a: Vec<u8> = (0..rows)
            .flat_map(|i| ((i % 16) as i32).to_le_bytes())
            .collect();
        let col_b: Vec<u8> = (0..rows)
            .flat_map(|i| ((i % 4) as i64 * 7).to_le_bytes())
            .collect();
        let t = CompressedTable::store(&mut dev, schema, rows, vec![col_a, col_b]).unwrap();
        (mem, dev, t)
    }

    #[test]
    fn compresses_low_cardinality_columns() {
        let (_, _, t) = setup();
        assert!(t.compressed_bytes() < t.original_bytes() / 4);
    }

    #[test]
    fn device_reconstruction_is_correct() {
        let (mut mem, mut dev, t) = setup();
        let (out, stats) = t
            .fetch_rows_decompressed(&mut dev, &mut mem, &[1, 0])
            .unwrap();
        assert_eq!(out.len(), 10_000 * 12);
        // Row 7: b = (7 % 4) * 7 = 21, a = 7.
        let b = i64::from_le_bytes(out[7 * 12..7 * 12 + 8].try_into().unwrap());
        let a = i32::from_le_bytes(out[7 * 12 + 8..7 * 12 + 12].try_into().unwrap());
        assert_eq!((b, a), (21, 7));
        assert_eq!(stats.rows_emitted, 10_000);
    }

    #[test]
    fn both_paths_agree_on_data() {
        let (mut mem, mut dev, t) = setup();
        let (near, _) = t
            .fetch_rows_decompressed(&mut dev, &mut mem, &[0, 1])
            .unwrap();
        let (host, _) = t
            .fetch_rows_host_decode(&mut dev, &mut mem, &[0, 1])
            .unwrap();
        assert_eq!(near, host);
    }

    #[test]
    fn host_path_ships_fewer_bytes_but_pays_cpu() {
        let (mut mem, mut dev, t) = setup();
        let (_, near) = t.fetch_rows_decompressed(&mut dev, &mut mem, &[0]).unwrap();
        let cpu_before = mem.stats().cpu_cycles;
        let (_, host) = t.fetch_rows_host_decode(&mut dev, &mut mem, &[0]).unwrap();
        let cpu_spent = mem.stats().cpu_cycles - cpu_before;
        // The compressed image is smaller than the decompressed rows.
        assert!(host.bytes_shipped < near.bytes_shipped);
        // And the host had to burn CPU to decode it.
        assert!(cpu_spent > 10_000);
    }

    #[test]
    fn bad_column_ids_and_shapes_error() {
        let (mut mem, mut dev, t) = setup();
        assert!(t.fetch_rows_decompressed(&mut dev, &mut mem, &[9]).is_err());
        let schema = Schema::from_pairs(&[("a", ColumnType::I32)]);
        assert!(CompressedTable::store(&mut dev, schema.clone(), 10, vec![]).is_err());
        assert!(CompressedTable::store(&mut dev, schema, 10, vec![vec![0u8; 3]]).is_err());
    }
}
