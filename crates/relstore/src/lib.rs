//! Relational Storage (RS) — the Relational Fabric instance for storage
//! devices (paper §IV-D).
//!
//! Modern computational SSDs (SmartSSD, OpenSSD) have programmable logic in
//! the flash controller. RS exploits it the same way Relational Memory
//! exploits programmable logic next to DRAM: the base data stays
//! row-oriented on flash, and the *controller* carves out the requested
//! data geometry — projection, selection, aggregation, and even on-the-fly
//! decompression (§IV-D: *"even decompression can be done on-the-fly along
//! with data transformation"*) — so only relevant bytes cross the host
//! link.
//!
//! * [`flash`] models the flash array: channels × dies, page-granular
//!   reads, and the internal parallelism that near-data processing taps
//!   (§VI cites exactly this);
//! * [`store`] implements row-oriented page layout, the near-data
//!   geometry fetch, and the host-side baseline (ship everything, filter
//!   on the CPU);
//! * [`compressed`] stores dictionary-compressed columns and lets the
//!   controller reconstruct rows from them on the fly — the paper's open
//!   question Q3 (storage fabric converts compressed columns to rows).

pub mod compressed;
pub mod config;
pub mod flash;
pub mod store;

pub use compressed::CompressedTable;
pub use config::RsConfig;
pub use flash::FlashArray;
pub use store::{SsdDevice, StoredTable};
