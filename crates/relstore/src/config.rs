//! Computational-SSD parameters.

/// Parameters of the simulated computational SSD.
///
/// Defaults approximate a SmartSSD-class device: 8 channels × 2 dies of
/// NAND with ~60 µs page reads, a PCIe 3.0 x4 host link (~3.2 GB/s), and an
/// embedded controller that processes a row per ~4 ns once pages are
/// buffered.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RsConfig {
    /// Independent flash channels.
    pub channels: usize,
    /// Dies per channel (interleaving within a channel).
    pub dies_per_channel: usize,
    /// Flash page size in bytes.
    pub page_bytes: usize,
    /// NAND array read time per page (ns).
    pub read_page_ns: f64,
    /// NAND array program (write) time per page (ns) — an order of
    /// magnitude slower than a read on MLC/TLC flash.
    pub write_page_ns: f64,
    /// Channel-bus transfer time per page (ns) — the per-channel
    /// serialization resource.
    pub channel_xfer_ns: f64,
    /// Host-link throughput (ns per byte; 0.3125 ≈ 3.2 GB/s).
    pub link_ns_per_byte: f64,
    /// Fixed host-link command latency (ns).
    pub link_base_ns: f64,
    /// Controller processing time per row (ns) — predicate evaluation and
    /// packing in the device.
    pub ctrl_ns_per_row: f64,
    /// Controller time per decompressed value (ns) — hardware dictionary
    /// decoders run several units in parallel.
    pub ctrl_ns_per_value: f64,
}

impl RsConfig {
    /// SmartSSD-like defaults.
    pub fn smartssd() -> Self {
        RsConfig {
            channels: 8,
            dies_per_channel: 8,
            page_bytes: 4096,
            read_page_ns: 25_000.0,
            write_page_ns: 200_000.0,
            channel_xfer_ns: 3_300.0,
            link_ns_per_byte: 0.3125,
            link_base_ns: 10_000.0,
            ctrl_ns_per_row: 4.0,
            ctrl_ns_per_value: 0.5,
        }
    }

    /// Peak internal read bandwidth in bytes/ns (all channels streaming).
    pub fn internal_bw(&self) -> f64 {
        self.page_bytes as f64 * self.channels as f64 / self.channel_xfer_ns.max(1.0)
    }

    /// Host-link bandwidth in bytes/ns.
    pub fn link_bw(&self) -> f64 {
        1.0 / self.link_ns_per_byte
    }
}

impl Default for RsConfig {
    fn default() -> Self {
        Self::smartssd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_bandwidth_exceeds_link_bandwidth() {
        // The premise of near-storage computation: the device can read
        // flash internally faster than it can ship bytes to the host.
        let c = RsConfig::smartssd();
        assert!(
            c.internal_bw() > 2.0 * c.link_bw(),
            "internal {} vs link {}",
            c.internal_bw(),
            c.link_bw()
        );
    }
}
