//! Row-oriented page layout and the two access paths: near-data geometry
//! fetch (the RS fabric) versus ship-everything-to-host.

use crate::config::RsConfig;
use crate::flash::FlashArray;
use fabric_sim::{
    Category, CircuitBreaker, Cycles, FaultPlan, FaultStats, MemoryHierarchy, RecoveryPolicy,
};
use fabric_types::{crc32, FabricError, FieldSlice, Geometry, OutputMode, Predicate, Result};
use relmem::packer;

/// Device name reported in breaker fail-fast errors.
const DEVICE_NAME: &str = "relstore-ssd";
/// Link name reported in shipment-corruption errors.
const LINK_NAME: &str = "host-link";

/// A table stored row-major on flash pages. Rows never straddle pages
/// (pages carry `rows_per_page` whole rows plus padding).
#[derive(Debug, Clone)]
pub struct StoredTable {
    pub first_page: u64,
    pub pages: usize,
    pub rows: usize,
    pub row_width: usize,
    pub rows_per_page: usize,
}

impl StoredTable {
    /// Page index and in-page byte offset of row `i`.
    pub fn locate(&self, i: usize) -> (u64, usize) {
        let page = self.first_page + (i / self.rows_per_page) as u64;
        let off = (i % self.rows_per_page) * self.row_width;
        (page, off)
    }
}

/// Statistics of one fetch operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RsStats {
    pub pages_read: u64,
    pub rows_scanned: u64,
    pub rows_emitted: u64,
    /// Bytes that crossed the host link.
    pub bytes_shipped: u64,
    /// Faults injected into this fetch (failed page reads, corrupted
    /// shipments) by the active [`fabric_sim::FaultPlan`].
    pub injected_faults: u64,
    /// Recovery attempts (page re-reads, link re-shipments).
    pub retries: u64,
}

impl RsStats {
    /// Record every counter into a metrics registry under
    /// `<prefix>.<counter>` — the single serialization path for stats
    /// (replaces hand-rolled formatters; see fabric-lint `raw-stats-print`).
    pub fn record_into(&self, registry: &mut fabric_sim::MetricsRegistry, prefix: &str) {
        for (name, value) in [
            ("pages_read", self.pages_read),
            ("rows_scanned", self.rows_scanned),
            ("rows_emitted", self.rows_emitted),
            ("bytes_shipped", self.bytes_shipped),
            ("injected_faults", self.injected_faults),
            ("retries", self.retries),
        ] {
            registry.counter_add(&format!("{prefix}.{name}"), value);
        }
    }
}

/// The simulated computational SSD.
pub struct SsdDevice {
    cfg: RsConfig,
    flash: FlashArray,
    data: Vec<u8>,
    next_page: u64,
    link_ns_per_byte: f64,
    link_base: Cycles,
    ctrl_row: Cycles,
    cpu_ghz: f64,
    /// Active fault plan; `None` = infallible device (the historical
    /// behaviour, bit- and cycle-identical to before faults existed).
    faults: Option<FaultPlan>,
    policy: RecoveryPolicy,
    /// Consecutive-failure breaker guarding the whole device.
    health: CircuitBreaker,
    /// CRC-32 of every stored page, computed at store time; the frame the
    /// host checks shipments against.
    page_crcs: Vec<u32>,
    /// Durable page programs completed over the device's lifetime — the
    /// device-global counter [`FabricError::PowerLoss::writes_done`]
    /// reports.
    durable_writes: u64,
}

impl SsdDevice {
    /// Build a device whose clock is the simulation's CPU clock (so device
    /// completion times compose with [`MemoryHierarchy::stall_until`]).
    pub fn new(cfg: RsConfig, mem: &MemoryHierarchy) -> Self {
        let sim = mem.config().clone();
        let sim2 = sim.clone();
        let policy = RecoveryPolicy::default();
        SsdDevice {
            flash: FlashArray::new(&cfg, move |ns| sim2.ns_to_cycles(ns)),
            data: Vec::new(),
            next_page: 0,
            link_ns_per_byte: cfg.link_ns_per_byte,
            link_base: sim.ns_to_cycles(cfg.link_base_ns),
            ctrl_row: sim.ns_to_cycles(cfg.ctrl_ns_per_row),
            cpu_ghz: sim.cpu_ghz,
            faults: None,
            health: CircuitBreaker::new(&policy),
            policy,
            page_crcs: Vec::new(),
            durable_writes: 0,
            cfg,
        }
    }

    /// Durable page programs completed so far, across every
    /// [`Self::store_rows_durable`] call.
    pub fn durable_writes(&self) -> u64 {
        self.durable_writes
    }

    pub fn config(&self) -> &RsConfig {
        &self.cfg
    }

    /// Arm the device with a seeded fault plan and recovery budgets. Every
    /// subsequent fetch runs page reads and shipments under injection.
    pub fn inject_faults(&mut self, plan: FaultPlan, policy: RecoveryPolicy) {
        self.faults = Some(plan);
        self.health = CircuitBreaker::new(&policy);
        self.policy = policy;
    }

    /// Disarm fault injection (the plan's stats are discarded).
    pub fn clear_faults(&mut self) {
        self.faults = None;
        self.health = CircuitBreaker::new(&self.policy);
    }

    /// Faults injected so far by the active plan (all zero when disarmed).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|p| p.stats()).unwrap_or_default()
    }

    /// Health of the device's circuit breaker.
    pub fn health(&self) -> &CircuitBreaker {
        &self.health
    }

    /// CRC-32 frame of stored page `page`, if it exists.
    pub fn page_crc(&self, page: u64) -> Option<u32> {
        self.page_crcs.get(page as usize).copied()
    }

    fn ns_to_cycles(&self, ns: f64) -> Cycles {
        ((ns * self.cpu_ghz).round() as Cycles).max(1)
    }

    /// Store `rows` fixed-width rows (concatenated in `bytes`) onto flash.
    /// Untimed: loading happens outside the measured window.
    pub fn store_rows(&mut self, bytes: &[u8], row_width: usize) -> Result<StoredTable> {
        if row_width == 0 || !bytes.len().is_multiple_of(row_width) {
            return Err(FabricError::Storage(format!(
                "byte length {} not a multiple of row width {row_width}",
                bytes.len()
            )));
        }
        if row_width > self.cfg.page_bytes {
            return Err(FabricError::Storage("row wider than a flash page".into()));
        }
        let rows = bytes.len() / row_width;
        let rows_per_page = self.cfg.page_bytes / row_width;
        let pages = rows.div_ceil(rows_per_page).max(1);
        let first_page = self.next_page;
        self.next_page += pages as u64;
        self.data
            .resize((self.next_page as usize) * self.cfg.page_bytes, 0);
        for i in 0..rows {
            let page = first_page as usize + i / rows_per_page;
            let off = (i % rows_per_page) * row_width;
            let dst = page * self.cfg.page_bytes + off;
            self.data[dst..dst + row_width]
                .copy_from_slice(&bytes[i * row_width..(i + 1) * row_width]);
        }
        // Frame every page with a CRC-32 at store time.
        self.page_crcs.resize(self.next_page as usize, 0);
        for p in first_page as usize..self.next_page as usize {
            let base = p * self.cfg.page_bytes;
            self.page_crcs[p] = crc32(&self.data[base..base + self.cfg.page_bytes]);
        }
        Ok(StoredTable {
            first_page,
            pages,
            rows,
            row_width,
            rows_per_page,
        })
    }

    /// Store rows through the *timed, fault-aware* write path: every page
    /// is programmed through the flash array under the active fault plan,
    /// so flash write errors (retried with backoff, then
    /// [`FabricError::FlashWriteError`]), silent torn page writes (caught
    /// later by [`Self::verify_pages`]), and power cuts
    /// ([`FabricError::PowerLoss`], leaving a prefix of the in-flight
    /// page) all apply. The recorded page CRC is always that of the
    /// *intended* page image — a torn page is exactly a CRC mismatch.
    ///
    /// `PowerLoss::writes_done` reports the *device-global* durable-write
    /// count ([`Self::durable_writes`]), not a per-call index. On any
    /// failure the unused remainder of the allocation is rolled back:
    /// `next_page` retreats to just past the last page the device
    /// physically touched (a power cut's torn prefix stays on the
    /// medium, with its intended CRC recorded), so a failed store never
    /// leaves never-programmed zero pages behind. Pages fully programmed
    /// by the failed call remain on the medium but are unreachable — no
    /// [`StoredTable`] refers to them.
    pub fn store_rows_durable(
        &mut self,
        mem: &mut MemoryHierarchy,
        bytes: &[u8],
        row_width: usize,
    ) -> Result<StoredTable> {
        if row_width == 0 || !bytes.len().is_multiple_of(row_width) {
            return Err(FabricError::Storage(format!(
                "byte length {} not a multiple of row width {row_width}",
                bytes.len()
            )));
        }
        if row_width > self.cfg.page_bytes {
            return Err(FabricError::Storage("row wider than a flash page".into()));
        }
        let rows = bytes.len() / row_width;
        let rows_per_page = self.cfg.page_bytes / row_width;
        let pages = rows.div_ceil(rows_per_page).max(1);
        let first_page = self.next_page;
        self.next_page += pages as u64;
        self.data
            .resize((self.next_page as usize) * self.cfg.page_bytes, 0);
        self.page_crcs.resize(self.next_page as usize, 0);

        mem.trace_begin("rs.store_durable", Category::Store);
        let start = mem.now();
        let mut write_done = start;
        let mut failure = None;
        // Pages the device physically touched (for failure rollback).
        let mut reached = 0usize;
        for p in 0..pages {
            let page = first_page + p as u64;
            // The intended page image: whole rows plus zero padding.
            let mut image = vec![0u8; self.cfg.page_bytes];
            let row_lo = p * rows_per_page;
            let row_hi = ((p + 1) * rows_per_page).min(rows);
            for i in row_lo..row_hi {
                let off = (i - row_lo) * row_width;
                image[off..off + row_width]
                    .copy_from_slice(&bytes[i * row_width..(i + 1) * row_width]);
            }
            self.page_crcs[page as usize] = crc32(&image);

            // Fault dance: power cut first (one draw per durable write),
            // then the program-retry loop, then a possible silent tear.
            enum PageOutcome {
                Stored(Cycles),
                Torn(usize, Cycles),
                Crashed(usize),
                Failed(u32),
            }
            let page_bytes = self.cfg.page_bytes;
            let outcome = {
                let flash = &mut self.flash;
                match self.faults.as_mut() {
                    None => PageOutcome::Stored(flash.write_page(page, start)),
                    Some(plan) => {
                        if plan.write_crash() {
                            PageOutcome::Crashed(plan.crash_keep(page_bytes))
                        } else {
                            let mut attempts = 0u32;
                            let mut at = start;
                            loop {
                                attempts += 1;
                                let done = flash.write_page(page, at);
                                if !plan.flash_write_failed() {
                                    break match plan.torn_write(page_bytes) {
                                        Some(keep) => PageOutcome::Torn(keep, done),
                                        None => PageOutcome::Stored(done),
                                    };
                                }
                                flash.note_failed_write();
                                if attempts > self.policy.max_retries {
                                    break PageOutcome::Failed(attempts);
                                }
                                at = done + self.policy.backoff_cycles(attempts, self.cpu_ghz);
                            }
                        }
                    }
                }
            };

            let base = page as usize * self.cfg.page_bytes;
            match outcome {
                PageOutcome::Stored(done) => {
                    self.data[base..base + self.cfg.page_bytes].copy_from_slice(&image);
                    write_done = write_done.max(done);
                    self.durable_writes += 1;
                    reached = p + 1;
                }
                PageOutcome::Torn(keep, done) => {
                    // The device reports success; only `keep` bytes made it.
                    self.data[base..base + keep].copy_from_slice(&image[..keep]);
                    write_done = write_done.max(done);
                    self.durable_writes += 1;
                    reached = p + 1;
                    mem.trace_instant(
                        "rs.fault.torn",
                        Category::Fault,
                        &[("page", page), ("keep", keep as u64)],
                    );
                }
                PageOutcome::Crashed(keep) => {
                    // The torn prefix is physically on the medium; the
                    // page's intended CRC stays recorded so the tear is a
                    // plain CRC mismatch to any later reader.
                    self.data[base..base + keep].copy_from_slice(&image[..keep]);
                    reached = p + 1;
                    mem.trace_instant("rs.fault.power", Category::Fault, &[("page", page)]);
                    mem.metrics_mut().counter_add("rs.power_losses", 1);
                    mem.flight_dump("power-loss");
                    failure = Some(FabricError::PowerLoss {
                        device: DEVICE_NAME.into(),
                        writes_done: self.durable_writes,
                    });
                    break;
                }
                PageOutcome::Failed(attempts) => {
                    reached = p;
                    mem.trace_instant(
                        "rs.fault.flash_write",
                        Category::Fault,
                        &[("page", page), ("attempt", attempts as u64)],
                    );
                    failure = Some(FabricError::FlashWriteError { page, attempts });
                    break;
                }
            }
        }
        if failure.is_some() {
            // Roll back the never-programmed remainder of the allocation:
            // the medium ends just past the last page the device touched.
            let keep_pages = first_page as usize + reached;
            self.next_page = keep_pages as u64;
            self.data.truncate(keep_pages * self.cfg.page_bytes);
            self.page_crcs.truncate(keep_pages);
        }
        mem.stall_until(write_done);
        mem.trace_end(
            "rs.store_durable",
            Category::Store,
            &[
                ("pages", pages as u64),
                ("failed", u64::from(failure.is_some())),
            ],
        );
        let mut rs = mem.metrics_mut().scoped("durability.relstore");
        if failure.is_none() {
            rs.counter_add("tables", 1);
            rs.counter_add("pages", pages as u64);
            rs.counter_add("bytes", bytes.len() as u64);
        } else {
            rs.counter_add("failures", 1);
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(StoredTable {
                first_page,
                pages,
                rows,
                row_width,
                rows_per_page,
            }),
        }
    }

    /// Pages of `t` whose stored bytes no longer match the CRC recorded
    /// at store time — the scrub pass that exposes silent torn writes.
    pub fn verify_pages(&self, t: &StoredTable) -> Vec<u64> {
        (t.first_page..t.first_page + t.pages as u64)
            .filter(|&p| {
                let base = p as usize * self.cfg.page_bytes;
                let stored = &self.data[base..base + self.cfg.page_bytes];
                self.page_crcs.get(p as usize).copied() != Some(crc32(stored))
            })
            .collect()
    }

    fn row_bytes(&self, t: &StoredTable, i: usize) -> &[u8] {
        let (page, off) = t.locate(i);
        let base = page as usize * self.cfg.page_bytes + off;
        &self.data[base..base + t.row_width]
    }

    /// Read `page` under the active fault plan, retrying with backoff.
    /// Each retry is physically another read: it re-occupies the page's
    /// die and channel, so contention compounds under fault storms. A
    /// latent sector error fails every attempt and surfaces as
    /// [`FabricError::FlashReadError`].
    fn read_page_checked(
        &mut self,
        mem: &mut MemoryHierarchy,
        page: u64,
        issue_at: Cycles,
        stats: &mut RsStats,
    ) -> Result<Cycles> {
        let flash = &mut self.flash;
        let Some(plan) = self.faults.as_mut() else {
            return Ok(flash.read_page(page, issue_at));
        };
        let mut attempts = 0u32;
        let mut at = issue_at;
        loop {
            attempts += 1;
            let done = flash.read_page(page, at);
            if !plan.flash_read_failed(page) {
                return Ok(done);
            }
            stats.injected_faults += 1;
            flash.note_failed_read();
            mem.trace_instant(
                "rs.fault.flash",
                Category::Fault,
                &[("page", page), ("attempt", attempts as u64)],
            );
            if attempts > self.policy.max_retries {
                return Err(FabricError::FlashReadError { page, attempts });
            }
            stats.retries += 1;
            at = done + self.policy.backoff_cycles(attempts, self.cpu_ghz);
        }
    }

    /// Ship `bytes` over the host link, arriving no earlier than
    /// `arrive_at`. Under a fault plan the host checks the shipment's
    /// CRC-32 frame (charged per shipped line) and requests re-shipment on
    /// corruption, bounded by the retry budget.
    fn finish_shipment(
        &mut self,
        mem: &mut MemoryHierarchy,
        arrive_at: Cycles,
        bytes: usize,
        stats: &mut RsStats,
    ) -> Result<()> {
        let Some(plan) = self.faults.as_mut() else {
            mem.stall_until(arrive_at);
            return Ok(());
        };
        let reship = self.link_base
            + ((bytes.max(1) as f64 * self.link_ns_per_byte * self.cpu_ghz).round() as Cycles)
                .max(1);
        let check = ((bytes / 64).max(1)) as u64 * mem.costs().value_op;
        let mut arrive = arrive_at;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            mem.stall_until(arrive);
            mem.cpu(check);
            if !plan.link_corrupted() {
                return Ok(());
            }
            stats.injected_faults += 1;
            mem.trace_instant(
                "rs.fault.link",
                Category::Fault,
                &[("attempt", attempts as u64)],
            );
            if attempts > self.policy.max_retries {
                return Err(FabricError::CorruptBatch {
                    device: LINK_NAME.into(),
                    attempts,
                });
            }
            stats.retries += 1;
            arrive = mem.now() + self.policy.backoff_cycles(attempts, self.cpu_ghz) + reship;
        }
    }

    /// Breaker gate shared by every fetch entry point.
    fn admit(&mut self) -> Result<()> {
        if self.health.allow() {
            Ok(())
        } else {
            Err(FabricError::DeviceTimeout {
                device: DEVICE_NAME.into(),
                attempts: 0,
            })
        }
    }

    /// Near-data path: the controller reads pages with full channel
    /// parallelism, evaluates the geometry (projection + selection), and
    /// ships only the packed result over the host link. Blocks the CPU
    /// until the result has arrived (`mem.stall_until`).
    pub fn fetch_geometry(
        &mut self,
        mem: &mut MemoryHierarchy,
        t: &StoredTable,
        fields: Vec<FieldSlice>,
        predicate: Predicate,
    ) -> Result<(Vec<u8>, RsStats)> {
        let g = Geometry::packed(0, t.row_width, t.rows, fields).with_predicate(predicate);
        g.validate()?;
        self.admit()?;

        mem.trace_begin("rs.fetch_geometry", Category::Store);
        let start = mem.now();
        let mut stats = RsStats {
            pages_read: t.pages as u64,
            rows_scanned: t.rows as u64,
            ..RsStats::default()
        };
        // Flash: all pages, issued as fast as the channels accept them.
        let mut flash_done = start;
        for p in 0..t.pages as u64 {
            match self.read_page_checked(mem, t.first_page + p, start, &mut stats) {
                Ok(done) => flash_done = flash_done.max(done),
                Err(e) => {
                    self.health.record_failure();
                    mem.trace_end("rs.fetch_geometry", Category::Store, &[("failed", 1)]);
                    return Err(e);
                }
            }
        }
        // Controller: streams rows as pages land.
        let ctrl_done = start + t.rows as u64 * self.ctrl_row;

        // Functional result.
        let mut out = Vec::new();
        let mut emitted = 0u64;
        for i in 0..t.rows {
            let row = self.row_bytes(t, i);
            if packer::row_qualifies(&g, row)? {
                packer::pack_row(&g, row, &mut out);
                emitted += 1;
            }
        }

        // Host link: pipelined with production; the last byte arrives after
        // the slower of (device production, link drain).
        let link_done = start
            + self.link_base
            + self.ns_to_cycles(out.len().max(1) as f64 * self.link_ns_per_byte);
        if let Err(e) = self.finish_shipment(
            mem,
            flash_done.max(ctrl_done).max(link_done),
            out.len(),
            &mut stats,
        ) {
            mem.trace_end("rs.fetch_geometry", Category::Store, &[("failed", 1)]);
            return Err(e);
        }
        self.health.record_success();

        stats.rows_emitted = emitted;
        stats.bytes_shipped = out.len() as u64;
        mem.trace_end(
            "rs.fetch_geometry",
            Category::Store,
            &[
                ("pages", stats.pages_read),
                ("rows_emitted", emitted),
                ("bytes_shipped", stats.bytes_shipped),
            ],
        );
        Ok((out, stats))
    }

    /// Near-data aggregation: only the aggregate scalars cross the link
    /// (§IV-B applied to storage).
    pub fn fetch_aggregate(
        &mut self,
        mem: &mut MemoryHierarchy,
        t: &StoredTable,
        g: &Geometry,
    ) -> Result<(Vec<fabric_types::Value>, RsStats)> {
        let OutputMode::Aggregate(specs) = &g.mode else {
            return Err(FabricError::Storage(
                "fetch_aggregate needs an Aggregate geometry".into(),
            ));
        };
        g.validate()?;
        self.admit()?;
        mem.trace_begin("rs.fetch_aggregate", Category::Store);
        let start = mem.now();
        let mut stats = RsStats {
            pages_read: t.pages as u64,
            rows_scanned: t.rows as u64,
            bytes_shipped: 64,
            ..RsStats::default()
        };
        let mut flash_done = start;
        for p in 0..t.pages as u64 {
            match self.read_page_checked(mem, t.first_page + p, start, &mut stats) {
                Ok(done) => flash_done = flash_done.max(done),
                Err(e) => {
                    self.health.record_failure();
                    mem.trace_end("rs.fetch_aggregate", Category::Store, &[("failed", 1)]);
                    return Err(e);
                }
            }
        }
        let ctrl_done = start + t.rows as u64 * self.ctrl_row;

        let mut bank = relmem::aggregate::AggBank::new(specs);
        let mut emitted = 0u64;
        for i in 0..t.rows {
            let row = self.row_bytes(t, i);
            if packer::row_qualifies(g, row)? {
                bank.update_raw(row)?;
                emitted += 1;
            }
        }
        if let Err(e) = self.finish_shipment(
            mem,
            flash_done.max(ctrl_done) + self.link_base,
            64,
            &mut stats,
        ) {
            mem.trace_end("rs.fetch_aggregate", Category::Store, &[("failed", 1)]);
            return Err(e);
        }
        self.health.record_success();
        stats.rows_emitted = emitted;
        mem.trace_end(
            "rs.fetch_aggregate",
            Category::Store,
            &[("pages", stats.pages_read), ("rows_emitted", emitted)],
        );
        Ok((bank.finish()?, stats))
    }

    /// Host-side baseline: ship every page over the link; the host filters
    /// and projects on the CPU afterwards (the caller does that part).
    /// Returns the raw row bytes (page padding stripped).
    pub fn fetch_raw(
        &mut self,
        mem: &mut MemoryHierarchy,
        t: &StoredTable,
    ) -> Result<(Vec<u8>, RsStats)> {
        self.admit()?;
        mem.trace_begin("rs.fetch_raw", Category::Store);
        let start = mem.now();
        let mut stats = RsStats {
            pages_read: t.pages as u64,
            rows_scanned: t.rows as u64,
            rows_emitted: t.rows as u64,
            ..RsStats::default()
        };
        let mut flash_done = start;
        for p in 0..t.pages as u64 {
            match self.read_page_checked(mem, t.first_page + p, start, &mut stats) {
                Ok(done) => flash_done = flash_done.max(done),
                Err(e) => {
                    self.health.record_failure();
                    mem.trace_end("rs.fetch_raw", Category::Store, &[("failed", 1)]);
                    return Err(e);
                }
            }
        }
        let shipped = (t.pages * self.cfg.page_bytes) as u64;
        let link_done =
            start + self.link_base + self.ns_to_cycles(shipped as f64 * self.link_ns_per_byte);
        if let Err(e) =
            self.finish_shipment(mem, flash_done.max(link_done), shipped as usize, &mut stats)
        {
            mem.trace_end("rs.fetch_raw", Category::Store, &[("failed", 1)]);
            return Err(e);
        }
        self.health.record_success();

        let mut out = Vec::with_capacity(t.rows * t.row_width);
        for i in 0..t.rows {
            out.extend_from_slice(self.row_bytes(t, i));
        }
        stats.bytes_shipped = shipped;
        mem.trace_end(
            "rs.fetch_raw",
            Category::Store,
            &[("pages", stats.pages_read), ("bytes_shipped", shipped)],
        );
        Ok((out, stats))
    }

    /// Reset device queue state between experiments.
    pub fn reset_timing(&mut self) {
        self.flash.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::SimConfig;
    use fabric_types::{AggFunc, AggSpec, CmpOp, ColumnPredicate, ColumnType, Value};

    /// 2000 rows of 4 i32 columns; c_j(i) = i * 4 + j.
    fn setup() -> (MemoryHierarchy, SsdDevice, StoredTable) {
        let mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let mut dev = SsdDevice::new(RsConfig::smartssd(), &mem);
        let rows = 2000usize;
        let mut bytes = Vec::with_capacity(rows * 16);
        for i in 0..rows {
            for j in 0..4 {
                bytes.extend_from_slice(&((i * 4 + j) as i32).to_le_bytes());
            }
        }
        let t = dev.store_rows(&bytes, 16).unwrap();
        (mem, dev, t)
    }

    fn f32field(col: usize, offset: usize) -> FieldSlice {
        FieldSlice::new(col, offset, ColumnType::I32)
    }

    #[test]
    fn layout_and_locate() {
        let (_, _, t) = setup();
        assert_eq!(t.rows_per_page, 256);
        assert_eq!(t.pages, 8); // 2000 / 256 -> 8 pages
        assert_eq!(t.locate(0), (0, 0));
        assert_eq!(t.locate(256), (1, 0));
        assert_eq!(t.locate(257), (1, 16));
    }

    #[test]
    fn near_data_projection_returns_correct_bytes() {
        let (mut mem, mut dev, t) = setup();
        let (out, stats) = dev
            .fetch_geometry(&mut mem, &t, vec![f32field(2, 8)], Predicate::always_true())
            .unwrap();
        assert_eq!(out.len(), 2000 * 4);
        assert_eq!(stats.rows_emitted, 2000);
        // Row 100, column 2 = 402.
        let v = i32::from_le_bytes(out[400..404].try_into().unwrap());
        assert_eq!(v, 402);
    }

    #[test]
    fn near_data_selection_filters() {
        let (mut mem, mut dev, t) = setup();
        let pred = Predicate::always_true().and(ColumnPredicate::new(
            f32field(0, 0),
            CmpOp::Lt,
            Value::I32(40),
        ));
        let (out, stats) = dev
            .fetch_geometry(&mut mem, &t, vec![f32field(0, 0)], pred)
            .unwrap();
        assert_eq!(stats.rows_emitted, 10); // c0 = 4i < 40 -> i < 10
        assert_eq!(out.len(), 40);
    }

    #[test]
    fn near_data_ships_fewer_bytes_and_finishes_faster_for_narrow_projections() {
        let (mut mem, mut dev, t) = setup();
        let t0 = mem.now();
        let (_, near) = dev
            .fetch_geometry(&mut mem, &t, vec![f32field(0, 0)], Predicate::always_true())
            .unwrap();
        let near_time = mem.now() - t0;
        dev.reset_timing();
        let t0 = mem.now();
        let (_, host) = dev.fetch_raw(&mut mem, &t).unwrap();
        let host_time = mem.now() - t0;
        assert!(near.bytes_shipped < host.bytes_shipped / 3);
        assert!(
            near_time <= host_time,
            "near {near_time} vs host {host_time}"
        );
    }

    #[test]
    fn aggregate_ships_only_scalars() {
        let (mut mem, mut dev, t) = setup();
        let g = Geometry::packed(0, 16, t.rows, vec![f32field(1, 4)]).with_mode(
            OutputMode::Aggregate(vec![
                AggSpec::count(),
                AggSpec::over(AggFunc::Sum, f32field(1, 4)),
            ]),
        );
        let (vals, stats) = dev.fetch_aggregate(&mut mem, &t, &g).unwrap();
        assert_eq!(vals[0], Value::I64(2000));
        let expect: i64 = (0..2000i64).map(|i| i * 4 + 1).sum();
        assert_eq!(vals[1], Value::I64(expect));
        assert_eq!(stats.bytes_shipped, 64);
    }

    #[test]
    fn fetch_raw_roundtrips_rows() {
        let (mut mem, mut dev, t) = setup();
        let (out, _) = dev.fetch_raw(&mut mem, &t).unwrap();
        assert_eq!(out.len(), 2000 * 16);
        let v = i32::from_le_bytes(out[16 * 1234 + 12..16 * 1234 + 16].try_into().unwrap());
        assert_eq!(v, (1234 * 4 + 3) as i32);
    }

    #[test]
    fn store_validates_input() {
        let (mem, _, _) = setup();
        let mut dev = SsdDevice::new(RsConfig::smartssd(), &mem);
        assert!(dev.store_rows(&[1, 2, 3], 2).is_err());
        assert!(dev.store_rows(&[0; 8192], 8192).is_err()); // row > page
    }

    #[test]
    fn transient_flash_faults_recover_with_identical_bytes() {
        use fabric_sim::{FaultConfig, FaultPlan, RecoveryPolicy};
        let (mut mem, mut dev, t) = setup();
        let (clean, _) = dev.fetch_raw(&mut mem, &t).unwrap();
        dev.reset_timing();

        let cfg = FaultConfig {
            flash_transient_prob: 0.2,
            link_corrupt_prob: 0.2,
            ..FaultConfig::quiet(77)
        };
        dev.inject_faults(FaultPlan::new(cfg), RecoveryPolicy::default());
        let t0 = mem.now();
        let (faulty, stats) = dev.fetch_raw(&mut mem, &t).unwrap();
        assert_eq!(clean, faulty, "recovered fetch must be bit-identical");
        assert!(stats.injected_faults > 0, "p=0.2 over 8 pages should hit");
        assert_eq!(stats.retries, stats.injected_faults);
        assert!(mem.now() > t0);
        assert_eq!(dev.fault_stats().total(), stats.injected_faults);
    }

    #[test]
    fn latent_sector_error_surfaces_cleanly() {
        use fabric_sim::{BreakerState, FaultConfig, FaultPlan, RecoveryPolicy};
        let (mut mem, mut dev, t) = setup();
        // Latent probability 1.0: every page is bad, retries cannot help.
        let cfg = FaultConfig::quiet(3).with_latent(1.0);
        let policy = RecoveryPolicy::default();
        dev.inject_faults(FaultPlan::new(cfg), policy);
        let err = dev.fetch_raw(&mut mem, &t).unwrap_err();
        assert_eq!(
            err,
            FabricError::FlashReadError {
                page: t.first_page,
                attempts: policy.max_retries + 1,
            }
        );
        // Repeated failures trip the breaker; further fetches fail fast.
        let _ = dev.fetch_raw(&mut mem, &t).unwrap_err();
        let _ = dev.fetch_raw(&mut mem, &t).unwrap_err();
        assert!(matches!(
            dev.health().state(),
            BreakerState::Open { .. } | BreakerState::HalfOpen
        ));
        let err = dev.fetch_raw(&mut mem, &t).unwrap_err();
        assert_eq!(
            err,
            FabricError::DeviceTimeout {
                device: "relstore-ssd".into(),
                attempts: 0,
            }
        );
        assert!(dev.health().rejections > 0);
    }

    #[test]
    fn unshippable_link_surfaces_corrupt_batch() {
        use fabric_sim::{FaultConfig, FaultPlan, RecoveryPolicy};
        let (mut mem, mut dev, t) = setup();
        let cfg = FaultConfig {
            link_corrupt_prob: 1.0,
            ..FaultConfig::quiet(3)
        };
        let policy = RecoveryPolicy::default();
        dev.inject_faults(FaultPlan::new(cfg), policy);
        let err = dev
            .fetch_geometry(&mut mem, &t, vec![f32field(0, 0)], Predicate::always_true())
            .unwrap_err();
        assert_eq!(
            err,
            FabricError::CorruptBatch {
                device: "host-link".into(),
                attempts: policy.max_retries + 1,
            }
        );
    }

    #[test]
    fn quiet_plan_changes_nothing_but_the_crc_check() {
        use fabric_sim::{FaultPlan, RecoveryPolicy};
        let (mut mem, mut dev, t) = setup();
        let (clean, clean_stats) = dev.fetch_raw(&mut mem, &t).unwrap();
        dev.reset_timing();
        dev.inject_faults(FaultPlan::quiet(), RecoveryPolicy::default());
        let (quiet, quiet_stats) = dev.fetch_raw(&mut mem, &t).unwrap();
        assert_eq!(clean, quiet);
        assert_eq!(clean_stats.bytes_shipped, quiet_stats.bytes_shipped);
        assert_eq!(quiet_stats.injected_faults, 0);
        assert_eq!(quiet_stats.retries, 0);
    }

    #[test]
    fn page_crcs_frame_stored_pages() {
        let (_, dev, t) = setup();
        for p in 0..t.pages as u64 {
            assert!(dev.page_crc(t.first_page + p).is_some());
        }
        assert!(dev.page_crc(t.first_page + t.pages as u64).is_none());
    }

    #[test]
    fn multiple_tables_coexist() {
        let (mut mem, mut dev, t1) = setup();
        let bytes: Vec<u8> = (0..64u8).collect();
        let t2 = dev.store_rows(&bytes, 8).unwrap();
        assert!(t2.first_page >= t1.first_page + t1.pages as u64);
        let (out, _) = dev.fetch_raw(&mut mem, &t2).unwrap();
        assert_eq!(out, bytes);
    }

    fn row_bytes_i32(rows: usize) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(rows * 16);
        for i in 0..rows {
            for j in 0..4 {
                bytes.extend_from_slice(&((i * 4 + j) as i32).to_le_bytes());
            }
        }
        bytes
    }

    #[test]
    fn durable_store_pays_program_time_and_reads_back_identical() {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let mut dev = SsdDevice::new(RsConfig::smartssd(), &mem);
        let bytes = row_bytes_i32(2000);
        let t0 = mem.now();
        let t = dev.store_rows_durable(&mut mem, &bytes, 16).unwrap();
        assert!(mem.now() > t0, "page programs cost time");
        assert_eq!(dev.verify_pages(&t), Vec::<u64>::new());
        let (out, _) = dev.fetch_raw(&mut mem, &t).unwrap();
        assert_eq!(out, bytes);
    }

    #[test]
    fn flash_write_faults_retry_then_fail_past_the_budget() {
        use fabric_sim::{FaultConfig, FaultPlan, RecoveryPolicy};
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let mut dev = SsdDevice::new(RsConfig::smartssd(), &mem);
        let mut cfg = FaultConfig::quiet(77);
        cfg.flash_write_prob = 0.1;
        dev.inject_faults(FaultPlan::new(cfg), RecoveryPolicy::default());
        // Retries absorb a 10% program-failure rate over many pages.
        let bytes = row_bytes_i32(4000);
        let t = dev.store_rows_durable(&mut mem, &bytes, 16).unwrap();
        assert!(dev.fault_stats().flash_write_errors > 0);
        assert_eq!(dev.verify_pages(&t), Vec::<u64>::new());
        let (out, _) = dev.fetch_raw(&mut mem, &t).unwrap();
        assert_eq!(out, bytes);
        // A certain-failure plan exhausts the retry budget.
        let mut cfg = FaultConfig::quiet(78);
        cfg.flash_write_prob = 1.0;
        dev.inject_faults(FaultPlan::new(cfg), RecoveryPolicy::default());
        let err = dev.store_rows_durable(&mut mem, &bytes, 16).unwrap_err();
        assert!(matches!(err, FabricError::FlashWriteError { .. }), "{err}");
    }

    #[test]
    fn torn_pages_are_caught_by_verify_pages() {
        use fabric_sim::{FaultConfig, FaultPlan, RecoveryPolicy};
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let mut dev = SsdDevice::new(RsConfig::smartssd(), &mem);
        let mut cfg = FaultConfig::quiet(79);
        cfg.torn_write_prob = 0.25;
        dev.inject_faults(FaultPlan::new(cfg), RecoveryPolicy::default());
        let bytes = row_bytes_i32(4000);
        let t = dev.store_rows_durable(&mut mem, &bytes, 16).unwrap();
        let torn = dev.verify_pages(&t);
        let expect = dev.fault_stats().torn_writes;
        assert!(expect > 0, "seed 79 should tear at least one page");
        assert_eq!(torn.len() as u64, expect);
        for p in &torn {
            assert!((t.first_page..t.first_page + t.pages as u64).contains(p));
        }
    }

    #[test]
    fn a_power_cut_leaves_a_prefix_and_is_deterministic() {
        use fabric_sim::{FaultConfig, FaultPlan, RecoveryPolicy};
        let run = |crash_at: u64| {
            let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
            let mut dev = SsdDevice::new(RsConfig::smartssd(), &mem);
            let cfg = FaultConfig::quiet(80).with_crash_at(crash_at);
            dev.inject_faults(FaultPlan::new(cfg), RecoveryPolicy::default());
            let bytes = row_bytes_i32(2000);
            let err = dev.store_rows_durable(&mut mem, &bytes, 16).unwrap_err();
            // The failed store rolls its unused allocation back: the
            // medium ends at the torn in-flight page, with no zero pages
            // (or zero CRCs) beyond it.
            assert_eq!(dev.next_page, 3);
            assert_eq!(dev.data.len(), 3 * dev.cfg.page_bytes);
            assert_eq!(dev.page_crcs.len(), 3);
            (err, dev.data.clone())
        };
        let (err, data) = run(3);
        match err {
            FabricError::PowerLoss {
                device,
                writes_done,
            } => {
                assert_eq!(device, DEVICE_NAME);
                assert_eq!(writes_done, 2, "two pages durable before the cut");
            }
            other => panic!("expected PowerLoss, got {other}"),
        }
        // Same seed, same crash point → bit-identical surviving media.
        let (_, data2) = run(3);
        assert_eq!(data, data2);
    }

    #[test]
    fn power_cut_counts_durable_writes_device_globally() {
        use fabric_sim::{FaultConfig, FaultPlan, RecoveryPolicy};
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let mut dev = SsdDevice::new(RsConfig::smartssd(), &mem);
        // One plan across two stores: the first (8 pages) survives whole,
        // the second cuts at device write 11 — its 3rd page.
        let cfg = FaultConfig::quiet(80).with_crash_at(11);
        dev.inject_faults(FaultPlan::new(cfg), RecoveryPolicy::default());
        let bytes = row_bytes_i32(2000);
        let t1 = dev.store_rows_durable(&mut mem, &bytes, 16).unwrap();
        assert_eq!(t1.pages, 8);
        assert_eq!(dev.durable_writes(), 8);
        let err = dev.store_rows_durable(&mut mem, &bytes, 16).unwrap_err();
        match err {
            FabricError::PowerLoss { writes_done, .. } => {
                assert_eq!(
                    writes_done, 10,
                    "writes_done spans the device, not the failing call"
                );
            }
            other => panic!("expected PowerLoss, got {other}"),
        }
        // Rollback keeps the first table intact and ends the medium at
        // the second store's torn page.
        assert_eq!(dev.next_page, t1.first_page + t1.pages as u64 + 3);
        assert_eq!(dev.page_crcs.len() as u64, dev.next_page);
        assert_eq!(dev.data.len(), dev.next_page as usize * dev.cfg.page_bytes);
        assert_eq!(dev.verify_pages(&t1), Vec::<u64>::new());
        let (out, _) = dev.fetch_raw(&mut mem, &t1).unwrap();
        assert_eq!(out, bytes);
    }
}
