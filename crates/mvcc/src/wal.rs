//! Byte codecs for durable commit records and checkpoint images
//! (DESIGN.md §14).
//!
//! The `durability` crate frames and stores opaque payloads; *meaning*
//! lives here. Two payload shapes exist:
//!
//! * a **commit record** — `(txn_id, commit_ts, write ops)`, encoded with
//!   the user schema's fixed column widths so replay re-applies exactly
//!   the committed write set;
//! * a **checkpoint image** — the oracle watermark plus the *physical*
//!   table state (full versioned rows in rid order, version chains,
//!   per-logical commit stamps), so a restore reproduces scan order
//!   bit-for-bit — plus the tiny **checkpoint ref** that goes into the
//!   log to name the blob.
//!
//! All integers are little-endian. The codecs never panic on garbage:
//! every read is bounds-checked and surfaces [`FabricError::Codec`] —
//! though in practice the WAL frame CRC has already vetted the bytes.

use crate::table::{LogicalId, VersionedTable};
use crate::txn::WriteOp;
use fabric_sim::MemoryHierarchy;
use fabric_types::{FabricError, Result, Schema, Value};
use rowstore::RowId;

/// A decoded commit record.
#[derive(Debug, Clone)]
pub struct CommitImage {
    pub txn_id: u64,
    pub commit_ts: u64,
    pub writes: Vec<WriteOp>,
}

/// A decoded checkpoint image.
#[derive(Debug, Clone)]
pub struct CheckpointImage {
    /// Oracle watermark at checkpoint time (latest allocated timestamp).
    pub watermark: u64,
    /// Full physical rows (user columns + begin/end ts) in rid order.
    pub rows: Vec<Vec<Value>>,
    /// Version chains per logical row.
    pub chains: Vec<Vec<RowId>>,
    /// Newest commit timestamp per logical row.
    pub last_commit: Vec<u64>,
}

// ------------------------------------------------------------ primitives

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(FabricError::Codec(format!(
                "record truncated: wanted {n} bytes at {} of {}",
                self.pos,
                self.bytes.len()
            ))),
        }
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn done(&self) -> Result<()> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(FabricError::Codec(format!(
                "{} trailing bytes after record",
                self.bytes.len() - self.pos
            )))
        }
    }
}

fn push_value(out: &mut Vec<u8>, schema: &Schema, col: usize, v: &Value) -> Result<()> {
    let ty = schema.column(col)?.ty;
    let at = out.len();
    out.resize(at + ty.width(), 0);
    v.encode_into(ty, &mut out[at..])
}

fn read_value(r: &mut Reader<'_>, schema: &Schema, col: usize) -> Result<Value> {
    let ty = schema.column(col)?.ty;
    Ok(Value::decode(ty, r.take(ty.width())?))
}

// ---------------------------------------------------------- commit codec

const OP_INSERT: u8 = 0;
const OP_UPDATE: u8 = 1;
const OP_DELETE: u8 = 2;

/// Encode a validated write set as a commit-record payload.
pub fn encode_commit(
    user_schema: &Schema,
    txn_id: u64,
    commit_ts: u64,
    writes: &[WriteOp],
) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    out.extend_from_slice(&txn_id.to_le_bytes());
    out.extend_from_slice(&commit_ts.to_le_bytes());
    out.extend_from_slice(&u32::try_from(writes.len()).map_err(len_err)?.to_le_bytes());
    for w in writes {
        match w {
            WriteOp::Insert(values) => {
                if values.len() != user_schema.len() {
                    return Err(FabricError::Codec(format!(
                        "insert has {} values, schema has {}",
                        values.len(),
                        user_schema.len()
                    )));
                }
                out.push(OP_INSERT);
                for (col, v) in values.iter().enumerate() {
                    push_value(&mut out, user_schema, col, v)?;
                }
            }
            WriteOp::Update(logical, updates) => {
                out.push(OP_UPDATE);
                out.extend_from_slice(&(*logical as u64).to_le_bytes());
                out.extend_from_slice(
                    &u32::try_from(updates.len()).map_err(len_err)?.to_le_bytes(),
                );
                for (col, v) in updates {
                    out.extend_from_slice(&u32::try_from(*col).map_err(len_err)?.to_le_bytes());
                    push_value(&mut out, user_schema, *col, v)?;
                }
            }
            WriteOp::Delete(logical) => {
                out.push(OP_DELETE);
                out.extend_from_slice(&(*logical as u64).to_le_bytes());
            }
        }
    }
    Ok(out)
}

/// Decode a commit-record payload.
pub fn decode_commit(user_schema: &Schema, bytes: &[u8]) -> Result<CommitImage> {
    let mut r = Reader::new(bytes);
    let txn_id = r.u64()?;
    let commit_ts = r.u64()?;
    let n = r.u32()? as usize;
    let mut writes = Vec::with_capacity(n);
    for _ in 0..n {
        let op = r.u8()?;
        writes.push(match op {
            OP_INSERT => {
                let mut values = Vec::with_capacity(user_schema.len());
                for col in 0..user_schema.len() {
                    values.push(read_value(&mut r, user_schema, col)?);
                }
                WriteOp::Insert(values)
            }
            OP_UPDATE => {
                let logical = r.u64()? as LogicalId;
                let k = r.u32()? as usize;
                let mut updates = Vec::with_capacity(k);
                for _ in 0..k {
                    let col = r.u32()? as usize;
                    updates.push((col, read_value(&mut r, user_schema, col)?));
                }
                WriteOp::Update(logical, updates)
            }
            OP_DELETE => WriteOp::Delete(r.u64()? as LogicalId),
            other => return Err(FabricError::Codec(format!("unknown write-op tag {other}"))),
        });
    }
    r.done()?;
    Ok(CommitImage {
        txn_id,
        commit_ts,
        writes,
    })
}

// ------------------------------------------------------ checkpoint codec

/// Encode the full physical state of `table` plus the oracle watermark.
pub fn encode_checkpoint(
    mem: &MemoryHierarchy,
    table: &VersionedTable,
    watermark: u64,
) -> Result<Vec<u8>> {
    let full = table.physical().schema();
    let mut out = Vec::new();
    out.extend_from_slice(&watermark.to_le_bytes());
    let n_rows = table.version_count();
    out.extend_from_slice(&u32::try_from(n_rows).map_err(len_err)?.to_le_bytes());
    for rid in 0..n_rows {
        let row = table.physical().decode_row_untimed(mem, rid)?;
        for (col, v) in row.iter().enumerate() {
            push_value(&mut out, full, col, v)?;
        }
    }
    let chains = table.chains();
    let stamps = table.last_commits();
    out.extend_from_slice(&u32::try_from(chains.len()).map_err(len_err)?.to_le_bytes());
    for (chain, stamp) in chains.iter().zip(stamps) {
        out.extend_from_slice(&stamp.to_le_bytes());
        out.extend_from_slice(&u32::try_from(chain.len()).map_err(len_err)?.to_le_bytes());
        for &rid in chain {
            out.extend_from_slice(&u32::try_from(rid).map_err(len_err)?.to_le_bytes());
        }
    }
    Ok(out)
}

/// Decode a checkpoint image against the *full* physical schema (user
/// columns plus the two timestamp columns).
pub fn decode_checkpoint(full_schema: &Schema, bytes: &[u8]) -> Result<CheckpointImage> {
    let mut r = Reader::new(bytes);
    let watermark = r.u64()?;
    let n_rows = r.u32()? as usize;
    let mut rows = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let mut row = Vec::with_capacity(full_schema.len());
        for col in 0..full_schema.len() {
            row.push(read_value(&mut r, full_schema, col)?);
        }
        rows.push(row);
    }
    let n_logical = r.u32()? as usize;
    let mut chains = Vec::with_capacity(n_logical);
    let mut last_commit = Vec::with_capacity(n_logical);
    for _ in 0..n_logical {
        last_commit.push(r.u64()?);
        let len = r.u32()? as usize;
        let mut chain = Vec::with_capacity(len);
        for _ in 0..len {
            chain.push(r.u32()? as RowId);
        }
        chains.push(chain);
    }
    r.done()?;
    Ok(CheckpointImage {
        watermark,
        rows,
        chains,
        last_commit,
    })
}

/// Encode the log-resident pointer to checkpoint blob `id`.
pub fn encode_checkpoint_ref(id: u64, watermark: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&watermark.to_le_bytes());
    out
}

/// Decode a checkpoint ref: `(blob_id, watermark)`.
pub fn decode_checkpoint_ref(bytes: &[u8]) -> Result<(u64, u64)> {
    let mut r = Reader::new(bytes);
    let id = r.u64()?;
    let watermark = r.u64()?;
    r.done()?;
    Ok((id, watermark))
}

fn len_err<E>(_: E) -> FabricError {
    FabricError::Codec("length exceeds u32".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::SimConfig;
    use fabric_types::ColumnType;

    fn user_schema() -> Schema {
        Schema::from_pairs(&[
            ("k", ColumnType::I64),
            ("name", ColumnType::FixedStr(8)),
            ("v", ColumnType::F64),
        ])
    }

    #[test]
    fn commit_roundtrip_preserves_every_op_shape() {
        let s = user_schema();
        let writes = vec![
            WriteOp::Insert(vec![
                Value::I64(7),
                Value::Str("ok".to_string()),
                Value::F64(1.25),
            ]),
            WriteOp::Update(3, vec![(0, Value::I64(9)), (2, Value::F64(-2.5))]),
            WriteOp::Delete(12),
        ];
        let bytes = encode_commit(&s, 42, 17, &writes).unwrap();
        let img = decode_commit(&s, &bytes).unwrap();
        assert_eq!(img.txn_id, 42);
        assert_eq!(img.commit_ts, 17);
        assert_eq!(img.writes.len(), 3);
        match &img.writes[0] {
            WriteOp::Insert(v) => {
                assert_eq!(v[0], Value::I64(7));
                assert_eq!(v[1], Value::Str("ok".to_string()));
                assert_eq!(v[2], Value::F64(1.25));
            }
            other => panic!("expected insert, got {other:?}"),
        }
        match &img.writes[1] {
            WriteOp::Update(l, u) => {
                assert_eq!(*l, 3);
                assert_eq!(u, &[(0, Value::I64(9)), (2, Value::F64(-2.5))]);
            }
            other => panic!("expected update, got {other:?}"),
        }
        assert!(matches!(img.writes[2], WriteOp::Delete(12)));
    }

    #[test]
    fn decoders_reject_garbage_without_panicking() {
        let s = user_schema();
        assert!(decode_commit(&s, &[]).is_err());
        assert!(decode_commit(&s, &[1, 2, 3]).is_err());
        // Valid header, bogus op tag.
        let mut bytes = encode_commit(&s, 1, 1, &[WriteOp::Delete(0)]).unwrap();
        bytes[20] = 77;
        assert!(decode_commit(&s, &bytes).is_err());
        // Trailing junk is an error, not silently ignored.
        let mut bytes = encode_commit(&s, 1, 1, &[]).unwrap();
        bytes.push(0);
        assert!(decode_commit(&s, &bytes).is_err());
        assert!(decode_checkpoint_ref(&[0; 15]).is_err());
        assert!(decode_checkpoint_ref(&[0; 17]).is_err());
    }

    #[test]
    fn checkpoint_roundtrip_restores_an_identical_table() {
        let mut mem = MemoryHierarchy::new(SimConfig::zynq_a53());
        let mut t = VersionedTable::create(&mut mem, user_schema(), 256).unwrap();
        let l0 = t
            .apply_insert(
                &mut mem,
                &[Value::I64(1), Value::Str("a".into()), Value::F64(0.5)],
                2,
            )
            .unwrap();
        t.apply_insert(
            &mut mem,
            &[Value::I64(2), Value::Str("b".into()), Value::F64(1.5)],
            3,
        )
        .unwrap();
        t.apply_update(&mut mem, l0, &[(2, Value::F64(9.5))], 5)
            .unwrap();

        let bytes = encode_checkpoint(&mem, &t, 5).unwrap();
        let img = decode_checkpoint(t.physical().schema(), &bytes).unwrap();
        assert_eq!(img.watermark, 5);
        assert_eq!(img.rows.len(), 3);
        assert_eq!(img.chains, t.chains().to_vec());
        assert_eq!(img.last_commit, t.last_commits().to_vec());

        let r = VersionedTable::restore(
            &mut mem,
            user_schema(),
            256,
            &img.rows,
            img.chains,
            img.last_commit,
        )
        .unwrap();
        for ts in [2u64, 3, 5, 9] {
            assert_eq!(
                r.snapshot_rows(&mut mem, ts).unwrap(),
                t.snapshot_rows(&mut mem, ts).unwrap()
            );
        }
    }

    #[test]
    fn checkpoint_ref_roundtrip() {
        let b = encode_checkpoint_ref(9, 1234);
        assert_eq!(decode_checkpoint_ref(&b).unwrap(), (9, 1234));
    }
}
